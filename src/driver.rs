//! End-to-end compilation driver: scalar function in, three programs out
//! (scalar reference, VeGen-vectorized, baseline-SLP-vectorized).
//!
//! This is the equivalent of the paper's experimental setup — each kernel
//! compiled by "clang -O3" (our scalar lowering), "LLVM's vectorizer" (the
//! baseline SLP crate) and "the VeGen-generated vectorizer" (the core
//! pipeline) — all lowered to the same vector VM so they can be executed
//! (correctness) and costed (performance).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};
use vegen_analysis::{analyze_kernel, AnalysisReport};
use vegen_baseline::{vectorize_baseline, BaselineConfig};
use vegen_codegen::{check_equivalence, lower, lower_scalar};
use vegen_core::{select_packs, BeamConfig, CostModel, SelectionResult, VectorizerCtx};
use vegen_ir::canon::{add_narrow_constants, canonicalize};
use vegen_ir::Function;
use vegen_isa::{InstDb, TargetIsa};
use vegen_match::TargetDesc;
use vegen_vm::{static_cycles, VmProgram};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Target ISA (AVX2 or AVX512-VNNI in the paper's evaluation).
    pub target: TargetIsa,
    /// Pack-selection configuration (beam width etc.).
    pub beam: BeamConfig,
    /// Run the §6 pattern canonicalization (ablated in Fig. 11).
    pub canonicalize_patterns: bool,
}

impl PipelineConfig {
    /// Defaults for a target, with the given beam width.
    pub fn new(target: TargetIsa, width: usize) -> PipelineConfig {
        PipelineConfig { target, beam: BeamConfig::with_width(width), canonicalize_patterns: true }
    }
}

/// One compiled kernel: the three programs plus selection statistics.
#[derive(Debug)]
pub struct CompiledKernel {
    /// The canonicalized (and constant-augmented) scalar function.
    pub function: Function,
    /// 1:1 scalar lowering (the "not vectorized" build).
    pub scalar: VmProgram,
    /// The VeGen-vectorized program.
    pub vegen: VmProgram,
    /// The baseline-SLP program.
    pub baseline: VmProgram,
    /// Pack-selection outcome.
    pub selection: SelectionResult,
    /// Number of SLP trees the baseline committed.
    pub baseline_trees: usize,
    /// Static validation of the selection and the VeGen program: pack
    /// legality, lane provenance, and VM lint.
    pub analysis: AnalysisReport,
}

/// Fetch (and cache) the generated target description for a target.
///
/// `TargetDesc::build` is the expensive offline phase (pattern generation
/// over the whole instruction database); the cache `Mutex` is held only for
/// lookups and inserts, never across the build itself, so concurrent engine
/// workers targeting *different* ISAs do not serialize on each other. Two
/// racing builders of the same key both build, and the double-checked
/// insert keeps the first — wasted work in a rare race beats a global lock
/// on every compilation.
pub fn target_desc(target: &TargetIsa, canonicalize_patterns: bool) -> Arc<TargetDesc> {
    type DescCache = Mutex<HashMap<(String, bool), Arc<TargetDesc>>>;
    static CACHE: OnceLock<DescCache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let key = (target.name.clone(), canonicalize_patterns);
    if let Some(desc) = cache.lock().unwrap().get(&key) {
        return desc.clone();
    }
    let built = Arc::new(TargetDesc::build(&InstDb::for_target(target), canonicalize_patterns));
    cache.lock().unwrap().entry(key).or_insert(built).clone()
}

/// Wall time of each pipeline stage of one [`compile_timed`] call.
///
/// These are the stage boundaries the engine's telemetry hooks into: the §6
/// offline phase shows up as `target_desc` (amortized to ~0 by the process
/// cache), everything else is the online phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimes {
    /// Canonicalization + narrow-constant annotation (§6).
    pub canonicalize: Duration,
    /// Target-description fetch (builds once per (ISA, canon) per process).
    pub target_desc: Duration,
    /// Match-table construction + pack selection (§4.4, §5).
    pub selection: Duration,
    /// Lowering the pack set to the vector VM, incl. the scalar lowering
    /// and the profitability backstop.
    pub lowering: Duration,
    /// Static validation: pack legality + lane provenance + VM lint.
    pub analysis: Duration,
    /// The baseline LLVM-style SLP comparator.
    pub baseline: Duration,
}

impl StageTimes {
    /// Sum of all stages.
    pub fn total(&self) -> Duration {
        self.canonicalize
            + self.target_desc
            + self.selection
            + self.lowering
            + self.analysis
            + self.baseline
    }
}

/// Canonicalize and annotate a scalar function — the front half of the
/// pipeline, exposed so callers (the engine's content-addressed cache) can
/// hash the canonical form before deciding whether to compile at all.
pub fn prepare(f: &Function) -> Function {
    add_narrow_constants(&canonicalize(f))
}

/// Compile `f` three ways (scalar / baseline / VeGen).
pub fn compile(f: &Function, cfg: &PipelineConfig) -> CompiledKernel {
    compile_timed(f, cfg).0
}

/// [`compile`], also reporting per-stage wall times.
pub fn compile_timed(f: &Function, cfg: &PipelineConfig) -> (CompiledKernel, StageTimes) {
    let t = Instant::now();
    let prepared = {
        let _sp = vegen_trace::span("driver", "canonicalize");
        prepare(f)
    };
    let canonicalize_time = t.elapsed();
    let (kernel, mut times) = compile_prepared_timed(prepared, cfg);
    times.canonicalize = canonicalize_time;
    (kernel, times)
}

/// Compile an already-[`prepare`]d function, reporting per-stage wall
/// times (with `canonicalize` zero, since that stage was the caller's).
pub fn compile_prepared_timed(
    prepared: Function,
    cfg: &PipelineConfig,
) -> (CompiledKernel, StageTimes) {
    let mut times = StageTimes::default();

    let t = Instant::now();
    let desc = {
        let _sp = vegen_trace::span("driver", "target_desc");
        target_desc(&cfg.target, cfg.canonicalize_patterns)
    };
    times.target_desc = t.elapsed();

    let t = Instant::now();
    let (ctx, selection) = {
        let _sp = vegen_trace::span("driver", "selection");
        let ctx = VectorizerCtx::new(&prepared, &desc, CostModel::default());
        let selection = select_packs(&ctx, &cfg.beam);
        (ctx, selection)
    };
    times.selection = t.elapsed();

    let t = Instant::now();
    let (scalar, vegen) = {
        let _sp = vegen_trace::span("driver", "lowering");
        let scalar = lower_scalar(&prepared);
        let mut vegen = lower(&ctx, &selection.packs);
        // Profitability backstop: like any production vectorizer, keep the
        // scalar code when the vectorized program does not actually win
        // under the (more precise) program-level cost model.
        if static_cycles(&vegen) >= static_cycles(&scalar) {
            vegen = scalar.clone();
        }
        (scalar, vegen)
    };
    times.lowering = t.elapsed();

    let t = Instant::now();
    let analysis = {
        let _sp = vegen_trace::span("driver", "analysis");
        analyze_kernel(&prepared, &desc, &selection.packs, &vegen, cfg.canonicalize_patterns)
    };
    times.analysis = t.elapsed();

    let t = Instant::now();
    let bl = {
        let _sp = vegen_trace::span("driver", "baseline");
        let bl_cfg = BaselineConfig { max_bits: cfg.target.max_bits, ..BaselineConfig::default() };
        vectorize_baseline(&prepared, &bl_cfg)
    };
    times.baseline = t.elapsed();

    let kernel = CompiledKernel {
        function: prepared,
        scalar,
        vegen,
        baseline: bl.program,
        selection,
        baseline_trees: bl.trees_vectorized,
        analysis,
    };
    (kernel, times)
}

impl CompiledKernel {
    /// Check all three programs against the scalar function's semantics.
    ///
    /// # Errors
    ///
    /// Returns a description of the first divergence.
    pub fn verify(&self, trials: u64) -> Result<(), String> {
        let _sp = vegen_trace::span("driver", "verify");
        check_equivalence(&self.function, &self.scalar, trials)
            .map_err(|e| format!("scalar: {e}"))?;
        check_equivalence(&self.function, &self.vegen, trials)
            .map_err(|e| format!("vegen: {e}"))?;
        check_equivalence(&self.function, &self.baseline, trials)
            .map_err(|e| format!("baseline: {e}"))?;
        Ok(())
    }

    /// Estimated cycles for each program under the throughput model:
    /// `(scalar, baseline, vegen)`.
    pub fn cycles(&self) -> (f64, f64, f64) {
        (static_cycles(&self.scalar), static_cycles(&self.baseline), static_cycles(&self.vegen))
    }

    /// VeGen's speedup over the baseline ("Speedup over LLVM" in the
    /// paper's figures).
    pub fn speedup_vs_baseline(&self) -> f64 {
        let (_, bl, vg) = self.cycles();
        bl / vg
    }

    /// VeGen's speedup over scalar code.
    pub fn speedup_vs_scalar(&self) -> f64 {
        let (sc, _, vg) = self.cycles();
        sc / vg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vegen_ir::{FunctionBuilder, Type};

    #[test]
    fn driver_compiles_and_verifies_dot_kernel() {
        let mut b = FunctionBuilder::new("dot4");
        let a = b.param("A", Type::I16, 8);
        let bb = b.param("B", Type::I16, 8);
        let c = b.param("C", Type::I32, 4);
        for lane in 0..4i64 {
            let mut terms = Vec::new();
            for k in 0..2i64 {
                let x = b.load(a, lane * 2 + k);
                let y = b.load(bb, lane * 2 + k);
                let xw = b.sext(x, Type::I32);
                let yw = b.sext(y, Type::I32);
                terms.push(b.mul(xw, yw));
            }
            let s = b.add(terms[0], terms[1]);
            b.store(c, lane, s);
        }
        let f = b.finish();
        let cfg = PipelineConfig::new(TargetIsa::avx2(), 8);
        let ck = compile(&f, &cfg);
        ck.verify(32).unwrap();
        let (sc, bl, vg) = ck.cycles();
        assert!(vg < sc, "vegen ({vg}) must beat scalar ({sc})");
        assert!(vg < bl, "vegen ({vg}) must beat baseline ({bl}) on a dot product");
        assert!(ck.vegen.vector_ops_used().iter().any(|n| n.contains("pmaddwd")));
    }

    #[test]
    fn constant_multiplier_kernel_uses_pmaddwd() {
        // The idct4-style shape: products with 16-bit constants.
        let mut b = FunctionBuilder::new("const_madd");
        let a = b.param("A", Type::I16, 8);
        let c = b.param("C", Type::I32, 4);
        for lane in 0..4i64 {
            let x = b.load(a, lane * 2);
            let y = b.load(a, lane * 2 + 1);
            let xw = b.sext(x, Type::I32);
            let yw = b.sext(y, Type::I32);
            let k83 = b.iconst(Type::I32, 83);
            let k36 = b.iconst(Type::I32, 36);
            let m0 = b.mul(xw, k83);
            let m1 = b.mul(yw, k36);
            let s = b.add(m0, m1);
            b.store(c, lane, s);
        }
        let f = b.finish();
        let cfg = PipelineConfig::new(TargetIsa::avx2(), 16);
        let ck = compile(&f, &cfg);
        ck.verify(32).unwrap();
        assert!(
            ck.vegen.vector_ops_used().iter().any(|n| n.contains("pmaddwd")),
            "constants must bind as pmaddwd live-ins; used: {:?}\n{}",
            ck.vegen.vector_ops_used(),
            vegen_vm::listing(&ck.vegen)
        );
    }
}
