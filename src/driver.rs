//! End-to-end compilation driver: scalar function in, three programs out
//! (scalar reference, VeGen-vectorized, baseline-SLP-vectorized).
//!
//! This is the equivalent of the paper's experimental setup — each kernel
//! compiled by "clang -O3" (our scalar lowering), "LLVM's vectorizer" (the
//! baseline SLP crate) and "the VeGen-generated vectorizer" (the core
//! pipeline) — all lowered to the same vector VM so they can be executed
//! (correctness) and costed (performance).

use crate::error::{enter_stage, CompileError, ErrorCause, Stage};
use crate::fault;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};
use vegen_analysis::{analyze_kernel, AnalysisReport};
use vegen_baseline::{try_vectorize_baseline, BaselineConfig};
use vegen_codegen::{check_equivalence, try_lower, try_lower_scalar};
use vegen_core::{
    select_packs_reusing, BeamConfig, CostModel, SelectionResult, SelectionReuse, VectorizerCtx,
};
use vegen_ir::canon::{add_narrow_constants, canonicalize};
use vegen_ir::Function;
use vegen_isa::{InstDb, TargetIsa};
use vegen_match::TargetDesc;
use vegen_vm::{static_cycles, VmProgram};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Target ISA (AVX2 or AVX512-VNNI in the paper's evaluation).
    pub target: TargetIsa,
    /// Pack-selection configuration (beam width etc.).
    pub beam: BeamConfig,
    /// Run the §6 pattern canonicalization (ablated in Fig. 11).
    pub canonicalize_patterns: bool,
}

impl PipelineConfig {
    /// Defaults for a target, with the given beam width.
    pub fn new(target: TargetIsa, width: usize) -> PipelineConfig {
        PipelineConfig { target, beam: BeamConfig::with_width(width), canonicalize_patterns: true }
    }
}

/// One compiled kernel: the three programs plus selection statistics.
#[derive(Debug)]
pub struct CompiledKernel {
    /// The canonicalized (and constant-augmented) scalar function.
    pub function: Function,
    /// 1:1 scalar lowering (the "not vectorized" build).
    pub scalar: VmProgram,
    /// The VeGen-vectorized program.
    pub vegen: VmProgram,
    /// The baseline-SLP program.
    pub baseline: VmProgram,
    /// Pack-selection outcome.
    pub selection: SelectionResult,
    /// Number of SLP trees the baseline committed.
    pub baseline_trees: usize,
    /// Static validation of the selection and the VeGen program: pack
    /// legality, lane provenance, and VM lint.
    pub analysis: AnalysisReport,
}

/// Fetch (and cache) the generated target description for a target.
///
/// `TargetDesc::build` is the expensive offline phase (pattern generation
/// over the whole instruction database); the cache `Mutex` is held only for
/// lookups and inserts, never across the build itself, so concurrent engine
/// workers targeting *different* ISAs do not serialize on each other. Two
/// racing builders of the same key both build, and the double-checked
/// insert keeps the first — wasted work in a rare race beats a global lock
/// on every compilation.
pub fn target_desc(target: &TargetIsa, canonicalize_patterns: bool) -> Arc<TargetDesc> {
    type DescCache = Mutex<HashMap<(String, bool), Arc<TargetDesc>>>;
    static CACHE: OnceLock<DescCache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let key = (target.name.clone(), canonicalize_patterns);
    // `unwrap_or_else(into_inner)`: a worker that panicked while holding
    // this lock (caught at the engine boundary) must not poison target
    // descriptions for every later compilation — the map is only ever
    // grown, so the recovered state is always consistent.
    if let Some(desc) = cache.lock().unwrap_or_else(|e| e.into_inner()).get(&key) {
        return desc.clone();
    }
    let built = Arc::new(TargetDesc::build(&InstDb::for_target(target), canonicalize_patterns));
    cache.lock().unwrap_or_else(|e| e.into_inner()).entry(key).or_insert(built).clone()
}

/// Wall time of each pipeline stage of one [`compile_timed`] call.
///
/// These are the stage boundaries the engine's telemetry hooks into: the §6
/// offline phase shows up as `target_desc` (amortized to ~0 by the process
/// cache), everything else is the online phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimes {
    /// Canonicalization + narrow-constant annotation (§6).
    pub canonicalize: Duration,
    /// Target-description fetch (builds once per (ISA, canon) per process).
    pub target_desc: Duration,
    /// Match-table construction + pack selection (§4.4, §5).
    pub selection: Duration,
    /// Lowering the pack set to the vector VM, incl. the scalar lowering
    /// and the profitability backstop.
    pub lowering: Duration,
    /// Static validation: pack legality + lane provenance + VM lint.
    pub analysis: Duration,
    /// The baseline LLVM-style SLP comparator.
    pub baseline: Duration,
}

impl StageTimes {
    /// Sum of all stages.
    pub fn total(&self) -> Duration {
        self.canonicalize
            + self.target_desc
            + self.selection
            + self.lowering
            + self.analysis
            + self.baseline
    }
}

/// Canonicalize and annotate a scalar function — the front half of the
/// pipeline, exposed so callers (the engine's content-addressed cache) can
/// hash the canonical form before deciding whether to compile at all.
pub fn prepare(f: &Function) -> Function {
    add_narrow_constants(&canonicalize(f))
}

/// Record one stage's wall time into the service metrics registry.
/// Unconditional (unlike trace spans): stage boundaries are per-kernel,
/// so the registry lookup is far off any hot loop.
fn record_stage(metric: &'static str, d: Duration) {
    vegen_trace::metrics::histogram(metric).record_duration(d);
}

/// [`prepare`] with stage attribution and fault injection — the form the
/// engine uses so canonicalize-stage faults and panics are typed.
///
/// # Errors
///
/// Returns an injected canonicalize-stage fault, if one is installed.
pub fn try_prepare(f: &Function) -> Result<Function, CompileError> {
    let _st = enter_stage(Stage::Canonicalize);
    fault::fire(Stage::Canonicalize, &f.name)
        .map_err(|c| CompileError::new(Stage::Canonicalize, &f.name, c))?;
    let t = Instant::now();
    let prepared = prepare(f);
    record_stage("driver_stage_canonicalize_us", t.elapsed());
    Ok(prepared)
}

/// Compile `f` three ways (scalar / baseline / VeGen).
pub fn compile(f: &Function, cfg: &PipelineConfig) -> CompiledKernel {
    compile_timed(f, cfg).0
}

/// [`compile`], also reporting per-stage wall times.
pub fn compile_timed(f: &Function, cfg: &PipelineConfig) -> (CompiledKernel, StageTimes) {
    let t = Instant::now();
    let prepared = {
        let _sp = vegen_trace::span("driver", "canonicalize");
        prepare(f)
    };
    let canonicalize_time = t.elapsed();
    record_stage("driver_stage_canonicalize_us", canonicalize_time);
    let (kernel, mut times) = compile_prepared_timed(prepared, cfg);
    times.canonicalize = canonicalize_time;
    (kernel, times)
}

/// Compile an already-[`prepare`]d function, reporting per-stage wall
/// times (with `canonicalize` zero, since that stage was the caller's).
///
/// # Panics
///
/// Panics on any pipeline failure; use [`try_compile_prepared_timed`] on
/// fault-tolerant paths (the engine) to get a typed [`CompileError`].
pub fn compile_prepared_timed(
    prepared: Function,
    cfg: &PipelineConfig,
) -> (CompiledKernel, StageTimes) {
    try_compile_prepared_timed(prepared, cfg, None).unwrap_or_else(|e| panic!("{e}"))
}

/// Check an engine-level deadline at a stage boundary.
fn check_deadline(
    stage: Stage,
    kernel: &str,
    deadline: Option<(Instant, Duration)>,
) -> Result<(), CompileError> {
    if let Some((at, limit)) = deadline {
        if Instant::now() >= at {
            vegen_trace::instant("driver", "deadline");
            return Err(CompileError::new(stage, kernel, ErrorCause::Deadline { limit }));
        }
    }
    Ok(())
}

/// Fallible form of [`compile_prepared_timed`]: every stage failure —
/// budget exhaustion, malformed input, injected fault — comes back as a
/// typed [`CompileError`] naming the stage, kernel, and cause.
///
/// `deadline` is an engine-level per-job budget `(expiry, configured
/// limit)`: it is checked at every stage boundary, and the *remaining*
/// window is threaded into the beam search as a wall budget so the
/// selection loop (the only unbounded stage) observes it cooperatively.
///
/// # Errors
///
/// Returns the first stage failure. Panics are *not* caught here — that
/// is the engine boundary's job (`catch_unwind` around the whole call) —
/// but stage attribution for caught panics is recorded via
/// [`crate::error::StageGuard`].
pub fn try_compile_prepared_timed(
    prepared: Function,
    cfg: &PipelineConfig,
    deadline: Option<(Instant, Duration)>,
) -> Result<(CompiledKernel, StageTimes), CompileError> {
    try_compile_prepared_reusing(prepared, cfg, deadline, &mut SelectionReuse::new())
}

/// [`try_compile_prepared_timed`] threading a [`SelectionReuse`] through
/// pack selection, so the caller (the engine's degradation ladder) can
/// carry the frozen interned context and the transposition table from a
/// failed wide search into its width-1 retry — the retry skips the freeze
/// pre-pass entirely and starts with a warm estimate table.
///
/// The reuse handle is only consulted by the selection stage; on any typed
/// error it still holds the parked snapshot, so a retry on the *same*
/// prepared function is cheap. After a caught panic the caller must
/// [`SelectionReuse::reset`] it instead.
///
/// # Errors
///
/// Same contract as [`try_compile_prepared_timed`].
pub fn try_compile_prepared_reusing(
    prepared: Function,
    cfg: &PipelineConfig,
    deadline: Option<(Instant, Duration)>,
    reuse: &mut SelectionReuse,
) -> Result<(CompiledKernel, StageTimes), CompileError> {
    let name = prepared.name.clone();
    let mut times = StageTimes::default();

    let t = Instant::now();
    check_deadline(Stage::TargetDesc, &name, deadline)?;
    let desc = {
        let _sp = vegen_trace::span("driver", "target_desc");
        let _st = enter_stage(Stage::TargetDesc);
        fault::fire(Stage::TargetDesc, &name)
            .map_err(|c| CompileError::new(Stage::TargetDesc, &name, c))?;
        target_desc(&cfg.target, cfg.canonicalize_patterns)
    };
    times.target_desc = t.elapsed();
    record_stage("driver_stage_target_desc_us", times.target_desc);

    let t = Instant::now();
    check_deadline(Stage::Selection, &name, deadline)?;
    let (ctx, selection) = {
        let _sp = vegen_trace::span("driver", "selection");
        let _st = enter_stage(Stage::Selection);
        fault::fire(Stage::Selection, &name)
            .map_err(|c| CompileError::new(Stage::Selection, &name, c))?;
        // Thread the remaining job window into the beam as a wall budget
        // (tightening any caller-set budget, never loosening it).
        let beam = match deadline {
            Some((at, _)) => {
                let remaining = at.saturating_duration_since(Instant::now());
                let wall = match cfg.beam.budget.wall {
                    Some(w) => w.min(remaining),
                    None => remaining,
                };
                let mut beam = cfg.beam.clone();
                beam.budget.wall = Some(wall);
                beam
            }
            None => cfg.beam.clone(),
        };
        let ctx = VectorizerCtx::new(&prepared, &desc, CostModel::default());
        let selection = select_packs_reusing(&ctx, &beam, reuse)
            .map_err(|e| CompileError::new(Stage::Selection, &name, ErrorCause::Search(e)))?;
        (ctx, selection)
    };
    times.selection = t.elapsed();
    record_stage("driver_stage_selection_us", times.selection);

    let t = Instant::now();
    check_deadline(Stage::Lowering, &name, deadline)?;
    let (scalar, vegen) = {
        let _sp = vegen_trace::span("driver", "lowering");
        let _st = enter_stage(Stage::Lowering);
        fault::fire(Stage::Lowering, &name)
            .map_err(|c| CompileError::new(Stage::Lowering, &name, c))?;
        let scalar = try_lower_scalar(&prepared)
            .map_err(|e| CompileError::new(Stage::Lowering, &name, ErrorCause::Lowering(e)))?;
        let mut vegen = try_lower(&ctx, &selection.packs)
            .map_err(|e| CompileError::new(Stage::Lowering, &name, ErrorCause::Lowering(e)))?;
        // Profitability backstop: like any production vectorizer, keep the
        // scalar code when the vectorized program does not actually win
        // under the (more precise) program-level cost model.
        if static_cycles(&vegen) >= static_cycles(&scalar) {
            vegen = scalar.clone();
        }
        (scalar, vegen)
    };
    times.lowering = t.elapsed();
    record_stage("driver_stage_lowering_us", times.lowering);

    let t = Instant::now();
    check_deadline(Stage::Analysis, &name, deadline)?;
    let analysis = {
        let _sp = vegen_trace::span("driver", "analysis");
        let _st = enter_stage(Stage::Analysis);
        fault::fire(Stage::Analysis, &name)
            .map_err(|c| CompileError::new(Stage::Analysis, &name, c))?;
        analyze_kernel(&prepared, &desc, &selection.packs, &vegen, cfg.canonicalize_patterns)
    };
    times.analysis = t.elapsed();
    record_stage("driver_stage_analysis_us", times.analysis);

    let t = Instant::now();
    check_deadline(Stage::Baseline, &name, deadline)?;
    let bl = {
        let _sp = vegen_trace::span("driver", "baseline");
        let _st = enter_stage(Stage::Baseline);
        fault::fire(Stage::Baseline, &name)
            .map_err(|c| CompileError::new(Stage::Baseline, &name, c))?;
        let bl_cfg = BaselineConfig { max_bits: cfg.target.max_bits, ..BaselineConfig::default() };
        try_vectorize_baseline(&prepared, &bl_cfg)
            .map_err(|e| CompileError::new(Stage::Baseline, &name, ErrorCause::Baseline(e)))?
    };
    times.baseline = t.elapsed();
    record_stage("driver_stage_baseline_us", times.baseline);

    let kernel = CompiledKernel {
        function: prepared,
        scalar,
        vegen,
        baseline: bl.program,
        selection,
        baseline_trees: bl.trees_vectorized,
        analysis,
    };
    Ok((kernel, times))
}

/// Lower `prepared` scalar-only — the bottom rung of the engine's
/// degradation ladder. No selection, no baseline, no analysis: all three
/// program slots hold the 1:1 scalar lowering, which is always correct
/// by construction and cheap to produce even for adversarial inputs.
pub fn compile_scalar_fallback(
    prepared: Function,
) -> Result<(CompiledKernel, StageTimes), CompileError> {
    let name = prepared.name.clone();
    let mut times = StageTimes::default();
    let t = Instant::now();
    let scalar = {
        let _sp = vegen_trace::span("driver", "scalar_fallback");
        let _st = enter_stage(Stage::Lowering);
        try_lower_scalar(&prepared)
            .map_err(|e| CompileError::new(Stage::Lowering, &name, ErrorCause::Lowering(e)))?
    };
    times.lowering = t.elapsed();
    let kernel = CompiledKernel {
        function: prepared,
        vegen: scalar.clone(),
        baseline: scalar.clone(),
        scalar,
        selection: SelectionResult::default(),
        baseline_trees: 0,
        analysis: AnalysisReport::default(),
    };
    Ok((kernel, times))
}

impl CompiledKernel {
    /// Check all three programs against the scalar function's semantics.
    ///
    /// # Errors
    ///
    /// Returns a description of the first divergence.
    pub fn verify(&self, trials: u64) -> Result<(), String> {
        let _sp = vegen_trace::span("driver", "verify");
        check_equivalence(&self.function, &self.scalar, trials)
            .map_err(|e| format!("scalar: {e}"))?;
        check_equivalence(&self.function, &self.vegen, trials)
            .map_err(|e| format!("vegen: {e}"))?;
        check_equivalence(&self.function, &self.baseline, trials)
            .map_err(|e| format!("baseline: {e}"))?;
        Ok(())
    }

    /// Estimated cycles for each program under the throughput model:
    /// `(scalar, baseline, vegen)`.
    pub fn cycles(&self) -> (f64, f64, f64) {
        (static_cycles(&self.scalar), static_cycles(&self.baseline), static_cycles(&self.vegen))
    }

    /// VeGen's speedup over the baseline ("Speedup over LLVM" in the
    /// paper's figures).
    pub fn speedup_vs_baseline(&self) -> f64 {
        let (_, bl, vg) = self.cycles();
        bl / vg
    }

    /// VeGen's speedup over scalar code.
    pub fn speedup_vs_scalar(&self) -> f64 {
        let (sc, _, vg) = self.cycles();
        sc / vg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vegen_ir::{FunctionBuilder, Type};

    #[test]
    fn driver_compiles_and_verifies_dot_kernel() {
        let mut b = FunctionBuilder::new("dot4");
        let a = b.param("A", Type::I16, 8);
        let bb = b.param("B", Type::I16, 8);
        let c = b.param("C", Type::I32, 4);
        for lane in 0..4i64 {
            let mut terms = Vec::new();
            for k in 0..2i64 {
                let x = b.load(a, lane * 2 + k);
                let y = b.load(bb, lane * 2 + k);
                let xw = b.sext(x, Type::I32);
                let yw = b.sext(y, Type::I32);
                terms.push(b.mul(xw, yw));
            }
            let s = b.add(terms[0], terms[1]);
            b.store(c, lane, s);
        }
        let f = b.finish();
        let cfg = PipelineConfig::new(TargetIsa::avx2(), 8);
        let ck = compile(&f, &cfg);
        ck.verify(32).unwrap();
        let (sc, bl, vg) = ck.cycles();
        assert!(vg < sc, "vegen ({vg}) must beat scalar ({sc})");
        assert!(vg < bl, "vegen ({vg}) must beat baseline ({bl}) on a dot product");
        assert!(ck.vegen.vector_ops_used().iter().any(|n| n.contains("pmaddwd")));
    }

    #[test]
    fn constant_multiplier_kernel_uses_pmaddwd() {
        // The idct4-style shape: products with 16-bit constants.
        let mut b = FunctionBuilder::new("const_madd");
        let a = b.param("A", Type::I16, 8);
        let c = b.param("C", Type::I32, 4);
        for lane in 0..4i64 {
            let x = b.load(a, lane * 2);
            let y = b.load(a, lane * 2 + 1);
            let xw = b.sext(x, Type::I32);
            let yw = b.sext(y, Type::I32);
            let k83 = b.iconst(Type::I32, 83);
            let k36 = b.iconst(Type::I32, 36);
            let m0 = b.mul(xw, k83);
            let m1 = b.mul(yw, k36);
            let s = b.add(m0, m1);
            b.store(c, lane, s);
        }
        let f = b.finish();
        let cfg = PipelineConfig::new(TargetIsa::avx2(), 16);
        let ck = compile(&f, &cfg);
        ck.verify(32).unwrap();
        assert!(
            ck.vegen.vector_ops_used().iter().any(|n| n.contains("pmaddwd")),
            "constants must bind as pmaddwd live-ins; used: {:?}\n{}",
            ck.vegen.vector_ops_used(),
            vegen_vm::listing(&ck.vegen)
        );
    }
}
