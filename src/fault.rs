//! Deterministic fault injection for the compilation pipeline.
//!
//! A [`FaultPlan`] is a set of `(kernel, stage, kind)` triples installed
//! process-wide; the driver calls [`fire`] at every stage boundary and
//! the matching spec detonates — a panic, a delay (to trip deadlines),
//! or a typed analysis error. Plans are deterministic: either spelled
//! out explicitly (`kernel:stage:kind` syntax, `VEGEN_FAULTS` env /
//! `--faults` flag) or derived from a seed over a kernel list
//! ([`FaultPlan::seeded`]), so a CI smoke run injects the *same* faults
//! every time.
//!
//! Each spec fires **once** by default: the engine's degradation ladder
//! retries a failed kernel at beam width 1, and a fault that re-fired on
//! every attempt would make the retry rung untestable. Set
//! [`FaultSpec::once`] to `false` to fault every attempt and force the
//! kernel all the way down to the scalar rung.

use crate::error::{ErrorCause, Stage};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;
use vegen_ir::rng::XorShift;

/// What an injected fault does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic with a recognizable message (tests the `catch_unwind` path).
    Panic,
    /// Sleep for the given duration (tests deadline/budget paths).
    Delay(Duration),
    /// Return a typed [`ErrorCause::Injected`] error.
    Error,
}

impl FaultKind {
    /// Stable lower-case name ("panic" / "delay" / "error").
    pub fn tag(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Delay(_) => "delay",
            FaultKind::Error => "error",
        }
    }
}

/// One injected fault: fires when `kernel` reaches `stage`.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Kernel (function) name the fault targets.
    pub kernel: String,
    /// Stage boundary at which it fires.
    pub stage: Stage,
    /// What happens.
    pub kind: FaultKind,
    /// Fire only on the first matching attempt (default). `false` makes
    /// the fault hit every ladder rung that re-runs the stage.
    pub once: bool,
}

struct ArmedSpec {
    spec: FaultSpec,
    fired: AtomicBool,
}

/// A deterministic set of faults, installable process-wide.
#[derive(Default)]
pub struct FaultPlan {
    specs: Vec<ArmedSpec>,
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.specs.iter().map(|a| &a.spec)).finish()
    }
}

impl FaultPlan {
    /// A plan over explicit specs.
    pub fn new(specs: Vec<FaultSpec>) -> FaultPlan {
        FaultPlan {
            specs: specs
                .into_iter()
                .map(|spec| ArmedSpec { spec, fired: AtomicBool::new(false) })
                .collect(),
        }
    }

    /// Parse the `kernel:stage:kind[,kernel:stage:kind...]` syntax used
    /// by `--faults` and `VEGEN_FAULTS`. `kind` is `panic`, `error`,
    /// `delay=<ms>`; append `!` to a kind to make it fire on every
    /// attempt instead of once (e.g. `dot4:selection:panic!`).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed spec.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let mut specs = Vec::new();
        for item in s.split(',').map(str::trim).filter(|i| !i.is_empty()) {
            let parts: Vec<&str> = item.split(':').collect();
            if parts.len() != 3 {
                return Err(format!("fault spec `{item}`: want kernel:stage:kind"));
            }
            let stage = Stage::parse(parts[1])
                .ok_or_else(|| format!("fault spec `{item}`: unknown stage `{}`", parts[1]))?;
            let (kind_str, once) = match parts[2].strip_suffix('!') {
                Some(k) => (k, false),
                None => (parts[2], true),
            };
            let kind = if kind_str == "panic" {
                FaultKind::Panic
            } else if kind_str == "error" {
                FaultKind::Error
            } else if let Some(ms) = kind_str.strip_prefix("delay=") {
                let ms: u64 =
                    ms.parse().map_err(|_| format!("fault spec `{item}`: bad delay `{ms}`"))?;
                FaultKind::Delay(Duration::from_millis(ms))
            } else {
                return Err(format!(
                    "fault spec `{item}`: unknown kind `{kind_str}` (want panic|error|delay=<ms>)"
                ));
            };
            specs.push(FaultSpec { kernel: parts[0].to_string(), stage, kind, once });
        }
        Ok(FaultPlan::new(specs))
    }

    /// A deterministic plan over `kernels`: pick `count` distinct kernels
    /// with an [`XorShift`] seeded by `seed` and alternate fault kinds
    /// (panic at selection, delay at selection, error at lowering) so a
    /// seeded smoke run exercises every ladder path.
    pub fn seeded(kernels: &[&str], seed: u64, count: usize) -> FaultPlan {
        let mut rng = XorShift::new(seed ^ 0x5eed_fa17);
        let mut pool: Vec<&str> = kernels.to_vec();
        let mut specs = Vec::new();
        let n = count.min(pool.len());
        for i in 0..n {
            let pick = rng.below(pool.len());
            let kernel = pool.swap_remove(pick);
            let (stage, kind) = match i % 3 {
                0 => (Stage::Selection, FaultKind::Panic),
                1 => (Stage::Selection, FaultKind::Delay(Duration::from_millis(50))),
                _ => (Stage::Lowering, FaultKind::Error),
            };
            specs.push(FaultSpec { kernel: kernel.to_string(), stage, kind, once: true });
        }
        FaultPlan::new(specs)
    }

    /// The specs in this plan (for reporting which kernels are faulted).
    pub fn specs(&self) -> impl Iterator<Item = &FaultSpec> {
        self.specs.iter().map(|a| &a.spec)
    }

    /// Number of specs.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

fn installed() -> &'static Mutex<Option<Arc<FaultPlan>>> {
    static PLAN: OnceLock<Mutex<Option<Arc<FaultPlan>>>> = OnceLock::new();
    PLAN.get_or_init(|| Mutex::new(None))
}

/// Install `plan` process-wide (replacing any previous plan).
pub fn install(plan: FaultPlan) {
    *installed().lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::new(plan));
}

/// Remove the installed plan.
pub fn clear() {
    *installed().lock().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Is a plan currently installed?
pub fn active() -> bool {
    installed().lock().unwrap_or_else(|e| e.into_inner()).is_some()
}

/// Fire any fault registered for `(stage, kernel)`.
///
/// Called by the driver at each stage boundary. A `Panic` fault panics
/// (with a `"injected fault"` message so tests can recognize it); a
/// `Delay` sleeps and returns `Ok`; an `Error` returns the typed cause.
/// Emits a `fault` trace instant either way.
///
/// # Errors
///
/// Returns [`ErrorCause::Injected`] for `Error`-kind faults.
///
/// # Panics
///
/// Panics deliberately for `Panic`-kind faults.
pub fn fire(stage: Stage, kernel: &str) -> Result<(), ErrorCause> {
    let plan = {
        let guard = installed().lock().unwrap_or_else(|e| e.into_inner());
        match guard.as_ref() {
            Some(p) => p.clone(),
            None => return Ok(()),
        }
    };
    for armed in &plan.specs {
        if armed.spec.stage != stage || armed.spec.kernel != kernel {
            continue;
        }
        if armed.spec.once && armed.fired.swap(true, Ordering::Relaxed) {
            continue; // already fired once
        }
        if vegen_trace::enabled() {
            vegen_trace::instant_owned(
                "fault",
                format!("{}:{}:{}", armed.spec.kind.tag(), stage.name(), kernel),
            );
        }
        match &armed.spec.kind {
            FaultKind::Panic => {
                panic!("injected fault: panic at {} for kernel `{kernel}`", stage.name());
            }
            FaultKind::Delay(d) => {
                std::thread::sleep(*d);
            }
            FaultKind::Error => {
                return Err(ErrorCause::Injected {
                    detail: format!("error at {} for kernel `{kernel}`", stage.name()),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_the_cli_syntax() {
        let plan =
            FaultPlan::parse("dot4:selection:panic, idct4:lowering:delay=25,fir:analysis:error!")
                .unwrap();
        let specs: Vec<&FaultSpec> = plan.specs().collect();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].kernel, "dot4");
        assert_eq!(specs[0].stage, Stage::Selection);
        assert_eq!(specs[0].kind, FaultKind::Panic);
        assert!(specs[0].once);
        assert_eq!(specs[1].kind, FaultKind::Delay(Duration::from_millis(25)));
        assert_eq!(specs[2].kind, FaultKind::Error);
        assert!(!specs[2].once, "`!` suffix means fire on every attempt");

        assert!(FaultPlan::parse("dot4:selection").is_err());
        assert!(FaultPlan::parse("dot4:warp:panic").is_err());
        assert!(FaultPlan::parse("dot4:selection:frobnicate").is_err());
        assert!(FaultPlan::parse("dot4:selection:delay=abc").is_err());
    }

    #[test]
    fn seeded_plans_are_deterministic_and_distinct() {
        let kernels = ["a", "b", "c", "d", "e"];
        let p1 = FaultPlan::seeded(&kernels, 42, 3);
        let p2 = FaultPlan::seeded(&kernels, 42, 3);
        let names = |p: &FaultPlan| p.specs().map(|s| s.kernel.clone()).collect::<Vec<_>>();
        assert_eq!(names(&p1), names(&p2), "same seed, same plan");
        let mut uniq = names(&p1);
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 3, "kernels are distinct");
        assert_eq!(FaultPlan::seeded(&kernels, 7, 100).len(), kernels.len());
    }
}
