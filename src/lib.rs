//! VeGen: a vectorizer generator for SIMD and beyond — Rust reproduction.
//!
//! This facade crate re-exports the whole workspace so examples and
//! downstream users can depend on a single crate. See the subcrates for the
//! pieces:
//!
//! * [`ir`] — scalar SSA IR, interpreter, canonicalizer.
//! * [`pseudo`] — Intel-pseudocode frontend and symbolic bit-vector
//!   evaluator (the paper's offline z3 pipeline).
//! * [`vidl`] — the Vector Instruction Description Language (Fig. 5).
//! * [`isa`] — the target instruction database (SSE/AVX2/AVX512-VNNI).
//! * [`matcher`] — generated pattern matchers and the match table.
//! * [`core`] — vector packs and pack selection (SLP heuristic, beam search).
//! * [`codegen`] — scheduling and lowering to vector programs.
//! * [`analysis`] — static pack-legality and lane-provenance validation.
//! * [`vm`] — the vector virtual machine and cycle cost model.
//! * [`baseline`] — an LLVM-style SLP vectorizer used as the comparator.
//! * [`kernels`] — every kernel from the paper's evaluation as scalar IR.
//!
//! Fault tolerance lives in this facade: [`error`] is the typed
//! [`error::CompileError`] taxonomy every pipeline stage reports through,
//! and [`fault`] is the deterministic fault-injection harness the engine's
//! degradation ladder is tested against.

pub mod driver;
pub mod error;
pub mod fault;

pub use vegen_analysis as analysis;
pub use vegen_baseline as baseline;
pub use vegen_codegen as codegen;
pub use vegen_core as core;
pub use vegen_ir as ir;
pub use vegen_isa as isa;
pub use vegen_kernels as kernels;
pub use vegen_match as matcher;
pub use vegen_pseudo as pseudo;
pub use vegen_vidl as vidl;
pub use vegen_vm as vm;
