//! Typed errors for the compilation pipeline.
//!
//! Every stage of [`crate::driver`] can fail — by running over budget, by
//! hitting a malformed input, by an injected fault, or by an outright
//! panic caught at the engine boundary. All of those become a
//! [`CompileError`] carrying the [`Stage`] it happened in, the kernel
//! name, and a typed [`ErrorCause`], so the engine's degradation ladder
//! and the report schema can reason about *why* a compilation failed
//! instead of pattern-matching on panic strings.

use std::cell::Cell;
use std::fmt;
use std::time::Duration;
use vegen_baseline::BaselineError;
use vegen_codegen::LowerError;
use vegen_core::SelectError;

/// The pipeline stages, in execution order. Used for error attribution,
/// fault injection sites, and trace labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Serve-mode admission control: the bounded request queue, and the
    /// queue-wait portion of a per-request deadline.
    Admission,
    /// Canonicalization + narrow-constant annotation (§6).
    Canonicalize,
    /// Target-description fetch/build (the offline phase).
    TargetDesc,
    /// Match-table construction + pack selection (§4.4, §5).
    Selection,
    /// Lowering pack set and scalar reference to the vector VM.
    Lowering,
    /// Static validation (pack legality, lane provenance, VM lint).
    Analysis,
    /// The baseline LLVM-style SLP comparator.
    Baseline,
    /// Randomized equivalence checking of the three programs.
    Verify,
    /// Persistent compile-cache I/O (disk lookup before the pipeline,
    /// write-through after it).
    Cache,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 9] = [
        Stage::Admission,
        Stage::Canonicalize,
        Stage::TargetDesc,
        Stage::Selection,
        Stage::Lowering,
        Stage::Analysis,
        Stage::Baseline,
        Stage::Verify,
        Stage::Cache,
    ];

    /// Stable lower-case name (used in fault specs, traces, reports).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Admission => "admission",
            Stage::Canonicalize => "canonicalize",
            Stage::TargetDesc => "target_desc",
            Stage::Selection => "selection",
            Stage::Lowering => "lowering",
            Stage::Analysis => "analysis",
            Stage::Baseline => "baseline",
            Stage::Verify => "verify",
            Stage::Cache => "cache",
        }
    }

    /// Parse a stage name as produced by [`Stage::name`].
    pub fn parse(s: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|st| st.name() == s)
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a stage failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorCause {
    /// A panic caught at the engine boundary (payload message preserved).
    Panic {
        /// The panic payload, downcast to a string when possible.
        message: String,
    },
    /// Pack selection ran out of budget or was cancelled.
    Search(SelectError),
    /// The engine-level per-job deadline expired between stages.
    Deadline {
        /// The configured per-job deadline.
        limit: Duration,
    },
    /// Lowering rejected the pack set or function.
    Lowering(LowerError),
    /// The baseline vectorizer rejected the function.
    Baseline(BaselineError),
    /// A deterministic injected fault (testing only).
    Injected {
        /// The fault description, e.g. `"panic at selection"`.
        detail: String,
    },
    /// Randomized equivalence checking found a divergence.
    Verify {
        /// The first divergence found.
        detail: String,
    },
    /// Reading or writing the persistent on-disk compile cache failed
    /// (I/O error, corrupt entry, failed round-trip self-check). Always
    /// recoverable: the engine recompiles and the job itself succeeds.
    CacheIo {
        /// What went wrong, including the entry path when known.
        detail: String,
    },
    /// Serve-mode admission control shed the request: the bounded queue
    /// was full when it arrived.
    Overloaded {
        /// The queue capacity that was exceeded.
        capacity: usize,
    },
}

impl ErrorCause {
    /// Does this cause represent a timeout/budget exhaustion (as opposed
    /// to a hard failure)? Drives the engine's `deadline_hits` counter.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            ErrorCause::Deadline { .. }
                | ErrorCause::Search(SelectError::Deadline { .. })
                | ErrorCause::Search(SelectError::StepBudget { .. })
                | ErrorCause::Search(SelectError::Cancelled)
        )
    }

    /// Stable short tag for reports and failure tables.
    pub fn tag(&self) -> &'static str {
        match self {
            ErrorCause::Panic { .. } => "panic",
            ErrorCause::Search(SelectError::StepBudget { .. }) => "step_budget",
            ErrorCause::Search(SelectError::Deadline { .. }) => "deadline",
            ErrorCause::Search(SelectError::Cancelled) => "cancelled",
            ErrorCause::Deadline { .. } => "deadline",
            ErrorCause::Lowering(_) => "lowering",
            ErrorCause::Baseline(_) => "baseline",
            ErrorCause::Injected { .. } => "injected",
            ErrorCause::Verify { .. } => "verify",
            ErrorCause::CacheIo { .. } => "cache_io",
            ErrorCause::Overloaded { .. } => "overloaded",
        }
    }
}

impl fmt::Display for ErrorCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorCause::Panic { message } => write!(f, "panic: {message}"),
            ErrorCause::Search(e) => write!(f, "{e}"),
            ErrorCause::Deadline { limit } => write!(f, "job deadline ({limit:?}) expired"),
            ErrorCause::Lowering(e) => write!(f, "{e}"),
            ErrorCause::Baseline(e) => write!(f, "{e}"),
            ErrorCause::Injected { detail } => write!(f, "injected fault: {detail}"),
            ErrorCause::Verify { detail } => write!(f, "verification failed: {detail}"),
            ErrorCause::CacheIo { detail } => write!(f, "cache I/O: {detail}"),
            ErrorCause::Overloaded { capacity } => {
                write!(f, "overloaded: request queue full ({capacity} entries)")
            }
        }
    }
}

/// A typed compilation failure: which stage, which kernel, what cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// The stage the failure is attributed to.
    pub stage: Stage,
    /// The kernel (function) being compiled.
    pub kernel: String,
    /// The typed cause.
    pub cause: ErrorCause,
}

impl CompileError {
    /// Construct an error for `kernel` at `stage`.
    pub fn new(stage: Stage, kernel: impl Into<String>, cause: ErrorCause) -> CompileError {
        CompileError { stage, kernel: kernel.into(), cause }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kernel `{}`: {} stage: {}", self.kernel, self.stage, self.cause)
    }
}

impl std::error::Error for CompileError {}

thread_local! {
    static CURRENT_STAGE: Cell<Option<Stage>> = const { Cell::new(None) };
}

/// RAII marker for the currently-executing pipeline stage on this thread.
///
/// If the stage panics, the guard's `Drop` runs *during unwinding* and
/// records its stage into a thread-local slot; the engine's
/// `catch_unwind` boundary then reads [`take_panic_stage`] to attribute
/// the caught panic. The innermost live guard wins.
pub struct StageGuard {
    stage: Stage,
    prev: Option<Stage>,
}

/// Mark `stage` as the live stage for this thread until the guard drops.
pub fn enter_stage(stage: Stage) -> StageGuard {
    let prev = CURRENT_STAGE.with(|c| c.replace(Some(stage)));
    StageGuard { stage, prev }
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // Innermost guard unwinds first; keep its attribution.
            PANIC_STAGE.with(|c| {
                if c.get().is_none() {
                    c.set(Some(self.stage));
                }
            });
        }
        CURRENT_STAGE.with(|c| c.set(self.prev));
    }
}

/// The stage currently live on this thread, if any.
pub fn current_stage() -> Option<Stage> {
    CURRENT_STAGE.with(|c| c.get())
}

thread_local! {
    static PANIC_STAGE: Cell<Option<Stage>> = const { Cell::new(None) };
}

/// Take (and clear) the stage recorded by the most recent panicking
/// [`StageGuard`] on this thread. Call at the `catch_unwind` boundary;
/// clear-on-read keeps a stale attribution from leaking into the next
/// job on a reused worker thread.
pub fn take_panic_stage() -> Option<Stage> {
    PANIC_STAGE.with(|c| c.take())
}

/// Downcast a panic payload to a human-readable message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_round_trip() {
        for s in Stage::ALL {
            assert_eq!(Stage::parse(s.name()), Some(s));
        }
        assert_eq!(Stage::parse("nonsense"), None);
    }

    #[test]
    fn stage_guard_nests_and_restores() {
        assert_eq!(current_stage(), None);
        {
            let _g = enter_stage(Stage::Selection);
            assert_eq!(current_stage(), Some(Stage::Selection));
            {
                let _h = enter_stage(Stage::Lowering);
                assert_eq!(current_stage(), Some(Stage::Lowering));
            }
            assert_eq!(current_stage(), Some(Stage::Selection));
        }
        assert_eq!(current_stage(), None);
    }

    #[test]
    fn panicking_stage_is_attributed() {
        let caught = std::panic::catch_unwind(|| {
            let _g = enter_stage(Stage::Lowering);
            let _h = enter_stage(Stage::Selection);
            panic!("boom");
        });
        assert!(caught.is_err());
        assert_eq!(take_panic_stage(), Some(Stage::Selection), "innermost guard wins");
        assert_eq!(take_panic_stage(), None, "attribution is clear-on-read");
        assert_eq!(panic_message(caught.unwrap_err().as_ref()), "boom");
    }

    #[test]
    fn timeouts_are_classified() {
        assert!(ErrorCause::Deadline { limit: Duration::from_millis(5) }.is_timeout());
        assert!(ErrorCause::Search(SelectError::Cancelled).is_timeout());
        assert!(!ErrorCause::Panic { message: "boom".into() }.is_timeout());
        assert!(!ErrorCause::CacheIo { detail: "short read".into() }.is_timeout());
        assert!(!ErrorCause::Overloaded { capacity: 8 }.is_timeout());
    }

    #[test]
    fn service_causes_have_stable_tags_and_display() {
        let io = CompileError::new(
            Stage::Cache,
            "dot4",
            ErrorCause::CacheIo { detail: "truncated entry".into() },
        );
        assert_eq!(io.cause.tag(), "cache_io");
        assert!(io.to_string().contains("cache") && io.to_string().contains("truncated entry"));
        let shed =
            CompileError::new(Stage::Admission, "dot4", ErrorCause::Overloaded { capacity: 4 });
        assert_eq!(shed.cause.tag(), "overloaded");
        assert!(shed.to_string().contains("admission") && shed.to_string().contains("queue full"));
    }

    #[test]
    fn display_is_informative() {
        let e = CompileError::new(
            Stage::Selection,
            "dot4",
            ErrorCause::Search(SelectError::StepBudget { steps: 10, limit: 10 }),
        );
        let s = e.to_string();
        assert!(s.contains("dot4") && s.contains("selection") && s.contains("step budget"));
    }
}
