//! Cross-crate correctness: every evaluation kernel, compiled for both
//! targets at two beam widths, must be semantically equivalent to its
//! scalar reference under execution (scalar, baseline, and VeGen programs
//! alike).

use vegen::core::BeamConfig;
use vegen::driver::{compile, PipelineConfig};
use vegen::isa::TargetIsa;

fn check_all(target: TargetIsa, width: usize) {
    for k in vegen::kernels::all() {
        let f = (k.build)();
        let cfg = PipelineConfig {
            target: target.clone(),
            beam: BeamConfig::with_width(width),
            canonicalize_patterns: true,
        };
        let ck = compile(&f, &cfg);
        ck.verify(16).unwrap_or_else(|e| {
            panic!("kernel {} ({}, beam {width}) diverged: {e}", k.name, target.name)
        });
    }
}

#[test]
fn all_kernels_avx2_slp_heuristic() {
    check_all(TargetIsa::avx2(), 1);
}

#[test]
fn all_kernels_avx2_beam16() {
    check_all(TargetIsa::avx2(), 16);
}

#[test]
fn all_kernels_avx512vnni_beam16() {
    check_all(TargetIsa::avx512vnni(), 16);
}

#[test]
fn kernels_without_pattern_canonicalization_stay_correct() {
    // The Fig. 11 ablation configuration must degrade performance, never
    // correctness.
    for k in vegen::kernels::all() {
        let f = (k.build)();
        let cfg = PipelineConfig {
            target: TargetIsa::avx2(),
            beam: BeamConfig::with_width(16),
            canonicalize_patterns: false,
        };
        let ck = compile(&f, &cfg);
        ck.verify(8).unwrap_or_else(|e| panic!("kernel {} (no canon) diverged: {e}", k.name));
    }
}
