//! Property-based end-to-end fuzzing: random straight-line scalar programs
//! must compile (VeGen and baseline) to programs with identical memory
//! effects.
//!
//! This is the reproduction's strongest correctness weapon — the paper
//! leaned on LLVM's maturity and hardware runs; we generate arbitrary
//! well-typed kernels and execute everything. Cases come from the in-tree
//! deterministic [`XorShift`] stream (the repo builds offline, so the
//! former `proptest` harness was replaced); every failure reproduces from
//! its case index.

use vegen::core::BeamConfig;
use vegen::driver::{compile, PipelineConfig};
use vegen::ir::rng::XorShift;
use vegen::ir::{BinOp, CmpPred, Function, FunctionBuilder, Type, ValueId};
use vegen::isa::TargetIsa;

#[derive(Debug, Clone)]
enum Step {
    Load { buf: usize, off: usize },
    Bin { op: usize, a: usize, b: usize },
    MinMax { max: bool, a: usize, b: usize },
    Clamp { a: usize },
    Widen { a: usize },
    Store { off: usize, v: usize },
}

fn gen_step(r: &mut XorShift) -> Step {
    match r.below(6) {
        0 => Step::Load { buf: r.below(3), off: r.below(8) },
        1 => Step::Bin { op: r.below(6), a: r.below(64), b: r.below(64) },
        2 => Step::MinMax { max: r.bool(), a: r.below(64), b: r.below(64) },
        3 => Step::Clamp { a: r.below(64) },
        4 => Step::Widen { a: r.below(64) },
        _ => Step::Store { off: r.below(16), v: r.below(64) },
    }
}

/// Interpret a step list into a well-typed function: values are tracked in
/// two pools (i16 and i32); indices select modulo pool size.
fn build(steps: &[Step]) -> Option<Function> {
    let mut b = FunctionBuilder::new("fuzz");
    let bufs = [b.param("A", Type::I16, 8), b.param("B", Type::I16, 8), b.param("C", Type::I16, 8)];
    let out = b.param("O", Type::I32, 16);
    let out16 = b.param("P", Type::I16, 16);
    let mut narrow: Vec<ValueId> = Vec::new();
    let mut wide: Vec<ValueId> = Vec::new();
    let mut next_out = 0usize;
    let mut next_out16 = 0usize;
    let bin_ops = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::And, BinOp::Or, BinOp::Xor];
    for s in steps {
        match s {
            Step::Load { buf, off } => {
                let v = b.load(bufs[buf % 3], (*off % 8) as i64);
                narrow.push(v);
            }
            Step::Bin { op, a, b: rb } => {
                if wide.len() < 2 {
                    continue;
                }
                let x = wide[a % wide.len()];
                let y = wide[rb % wide.len()];
                let v = b.bin(bin_ops[op % bin_ops.len()], x, y);
                wide.push(v);
            }
            Step::MinMax { max, a, b: rb } => {
                if wide.len() < 2 {
                    continue;
                }
                let x = wide[a % wide.len()];
                let y = wide[rb % wide.len()];
                let pred = if *max { CmpPred::Sgt } else { CmpPred::Slt };
                let c = b.cmp(pred, x, y);
                let v = b.select(c, x, y);
                wide.push(v);
            }
            Step::Clamp { a } => {
                if wide.is_empty() {
                    continue;
                }
                let x = wide[a % wide.len()];
                let v = b.clamp(x, i16::MIN as i64, i16::MAX as i64);
                wide.push(v);
            }
            Step::Widen { a } => {
                if narrow.is_empty() {
                    continue;
                }
                let x = narrow[a % narrow.len()];
                let v = b.sext(x, Type::I32);
                wide.push(v);
            }
            Step::Store { off, v } => {
                // Alternate between i32 and truncated i16 stores.
                if wide.is_empty() {
                    continue;
                }
                let x = wide[v % wide.len()];
                if off % 2 == 0 && next_out < 16 {
                    b.store(out, next_out as i64, x);
                    next_out += 1;
                } else if next_out16 < 16 {
                    let t = b.trunc(x, Type::I16);
                    b.store(out16, next_out16 as i64, t);
                    next_out16 += 1;
                }
            }
        }
    }
    let f = b.finish();
    if f.stores().is_empty() {
        return None;
    }
    Some(f)
}

#[test]
fn random_programs_vectorize_correctly() {
    let widths = [1usize, 4, 16];
    let mut r = XorShift::new(0xF022_BEEF);
    for case in 0..192u32 {
        let n = 8 + r.below(72);
        let steps: Vec<Step> = (0..n).map(|_| gen_step(&mut r)).collect();
        let width = widths[r.below(widths.len())];
        let Some(f) = build(&steps) else { continue };
        assert!(vegen::ir::verify::verify(&f).is_ok(), "case {case}");
        if std::env::var("VEGEN_FUZZ_DUMP").is_ok() {
            eprintln!("=== candidate {case} (beam {width}) ===\n{f}");
        }
        let cfg = PipelineConfig {
            target: TargetIsa::avx2(),
            beam: BeamConfig::with_width(width),
            canonicalize_patterns: true,
        };
        let ck = compile(&f, &cfg);
        if let Err(e) = ck.verify(8) {
            panic!("fuzzed program diverged (case {case}, beam {width}):\n{f}\n{e}");
        }
    }
}
