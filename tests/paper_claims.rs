//! The paper's qualitative claims, as executable assertions.
//!
//! Each test pins one finding from §7 (the evaluation): which instructions
//! VeGen uses on which kernel, where the LLVM-style baseline fails, and
//! where VeGen itself fails — losses included, because the reproduction is
//! only credible if it reproduces the paper's negative results too.

use vegen::core::BeamConfig;
use vegen::driver::{compile, CompiledKernel, PipelineConfig};
use vegen::isa::TargetIsa;

fn compiled(name: &str, target: TargetIsa, width: usize) -> CompiledKernel {
    let k = vegen::kernels::find(name).unwrap_or_else(|| panic!("kernel {name}"));
    let cfg =
        PipelineConfig { target, beam: BeamConfig::with_width(width), canonicalize_patterns: true };
    let ck = compile(&(k.build)(), &cfg);
    ck.verify(16).unwrap_or_else(|e| panic!("{name} diverged: {e}"));
    ck
}

fn uses(ck: &CompiledKernel, inst: &str) -> bool {
    ck.vegen.vector_ops_used().iter().any(|n| n.contains(inst))
}

/// Fig. 2 / §2: on AVX512-VNNI, the TVM micro-kernel compiles to a handful
/// of instructions built around `vpdpbusd`; no other code generator can
/// use the instruction, and VeGen's output is by far the shortest.
#[test]
fn tvm_kernel_uses_vpdpbusd_on_vnni() {
    let ck = compiled("tvm_dot_16x1x16", TargetIsa::avx512vnni(), 64);
    assert!(uses(&ck, "vpdpbusd"));
    assert!(
        ck.vegen.instruction_count() <= 8,
        "Fig. 2 shape: a handful of instructions, got {}",
        ck.vegen.instruction_count()
    );
    assert!(!ck.baseline.vector_ops_used().iter().any(|n| n.contains("vpdpbusd")));
    assert!(ck.vegen.instruction_count() * 4 < ck.baseline.instruction_count());
}

/// §2: without VNNI (plain AVX2) the same kernel still vectorizes, but
/// through the mundane widen/multiply/add route.
#[test]
fn tvm_kernel_without_vnni_is_ordinary() {
    let ck = compiled("tvm_dot_16x1x16", TargetIsa::avx2(), 16);
    assert!(!uses(&ck, "vpdpbusd"));
    let (sc, _, vg) = ck.cycles();
    assert!(vg < sc);
}

/// Fig. 10(b): the non-SIMD tests — LLVM's SLP vectorizer cannot touch
/// them; VeGen beats it on every one.
#[test]
fn non_simd_isel_tests_beat_the_baseline() {
    for (name, inst) in [
        ("hadd_pd", "vhaddpd"),
        ("hsub_ps", "vhsubps"),
        ("hadd_i16", "vphaddw"),
        ("hsub_i32", "vphsubd"),
        ("pmaddwd", "vpmaddwd"),
        ("pmaddubs", "vpmaddubsw"),
    ] {
        let ck = compiled(name, TargetIsa::avx2(), 16);
        assert!(uses(&ck, inst), "{name} must use {inst}: {:?}", ck.vegen.vector_ops_used());
        let (_, bl, vg) = ck.cycles();
        assert!(vg < bl, "{name}: vegen {vg} must beat baseline {bl}");
    }
}

/// Fig. 10(a): on the SIMD tests with min/max/abs semantics both compilers
/// land on the same single instruction (speedup 1.0 in the paper).
#[test]
fn simd_isel_tests_tie_the_baseline() {
    for name in ["max_pd", "min_ps", "abs_i16", "abs_i32"] {
        let ck = compiled(name, TargetIsa::avx2(), 16);
        let (_, bl, vg) = ck.cycles();
        assert!((bl - vg).abs() < 1e-9, "{name}: expected a tie, got baseline {bl} vs vegen {vg}");
    }
}

/// §7.1: VeGen loses abs_pd/abs_ps — it has no instruction whose semantics
/// are the compare-negate-select float-abs pattern, while LLVM vectorizes
/// it (and lowers via the sign-mask trick).
#[test]
fn vegen_loses_float_abs_as_in_the_paper() {
    for name in ["abs_pd", "abs_ps"] {
        let ck = compiled(name, TargetIsa::avx2(), 16);
        assert_eq!(ck.vegen.vector_op_count(), 0, "{name}: VeGen must fail to vectorize");
        assert!(ck.baseline_trees > 0, "{name}: the baseline must vectorize");
        let (_, bl, vg) = ck.cycles();
        assert!(vg > bl, "{name}: VeGen loses here, as reported");
    }
}

/// §7.4 / Fig. 15: complex multiplication — VeGen uses vfmaddsub213pd; the
/// baseline's blend-cost overestimate keeps it scalar.
#[test]
fn cmul_uses_fmaddsub_and_the_baseline_refuses() {
    let ck = compiled("cmul", TargetIsa::avx2(), 64);
    assert!(uses(&ck, "fmaddsub"));
    assert_eq!(ck.baseline_trees, 0);
    let (_, bl, vg) = ck.cycles();
    assert!(vg < bl);
}

/// §7.3 / Fig. 14: the int32x8 dot product multiplies odd and even lanes
/// separately with the widening `vpmuldq` — OpenCV's expert strategy.
#[test]
fn int32x8_uses_the_pmuldq_strategy() {
    let ck = compiled("int32x8", TargetIsa::avx2(), 64);
    assert!(uses(&ck, "pmuldq"));
    assert!(uses(&ck, "vpaddq"));
    let (_, bl, vg) = ck.cycles();
    assert!(vg < bl);
}

/// §7.3: int16x16 maps straight onto vpmaddwd.
#[test]
fn int16x16_uses_pmaddwd() {
    let ck = compiled("int16x16", TargetIsa::avx2(), 16);
    assert!(uses(&ck, "pmaddwd"));
}

/// §7.2 / Fig. 12: on idct4, beam search (k = 128) finds a strictly better
/// solution than the SLP heuristic (k = 1), and it involves vpmaddwd plus
/// the saturating vpackssdw.
#[test]
fn idct4_needs_beam_search() {
    let narrow = compiled("idct4", TargetIsa::avx512vnni(), 1);
    let wide = compiled("idct4", TargetIsa::avx512vnni(), 128);
    let (_, _, vg_narrow) = narrow.cycles();
    let (_, _, vg_wide) = wide.cycles();
    assert!(vg_wide < vg_narrow, "beam-128 ({vg_wide}) must beat the SLP heuristic ({vg_narrow})");
    assert!(uses(&wide, "vpmaddwd"));
    assert!(uses(&wide, "vpackssdw"));
}

/// §7.2: disabling pattern canonicalization hurts exactly the kernels that
/// use saturation arithmetic (idct4 here), because the raw saturate
/// patterns keep the documentation's non-strict comparisons.
#[test]
fn canonicalization_ablation_hurts_idct4() {
    let k = vegen::kernels::find("idct4").unwrap();
    let mk = |canon: bool| {
        let cfg = PipelineConfig {
            target: TargetIsa::avx2(),
            beam: BeamConfig::with_width(128),
            canonicalize_patterns: canon,
        };
        compile(&(k.build)(), &cfg)
    };
    let with = mk(true);
    let without = mk(false);
    with.verify(8).unwrap();
    without.verify(8).unwrap();
    let (_, _, vg_with) = with.cycles();
    let (_, _, vg_without) = without.cycles();
    assert!(
        vg_with < vg_without,
        "canonicalization must pay off on idct4: {vg_with} vs {vg_without}"
    );
    assert!(
        !without.vegen.vector_ops_used().iter().any(|n| n.contains("packssdw")),
        "without canonicalization the saturating pack must not match"
    );
}

/// Fig. 13: every OpenCV kernel vectorizes profitably on AVX2.
#[test]
fn opencv_kernels_vectorize() {
    for name in ["int8x32", "uint8x32", "int32x8", "int16x16"] {
        let ck = compiled(name, TargetIsa::avx2(), 16);
        let (sc, _, vg) = ck.cycles();
        assert!(vg < sc, "{name} must beat scalar");
        assert!(ck.vegen.vector_op_count() > 0);
    }
}
