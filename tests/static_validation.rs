//! Static translation validation over the whole evaluation suite, plus
//! seeded corruptions demonstrating that the static analysis rejects bugs
//! the dynamic random-testing check can miss.

use vegen::analysis::{analyze_program, Severity};
use vegen::codegen::check_equivalence;
use vegen::core::BeamConfig;
use vegen::driver::{compile, PipelineConfig};
use vegen::ir::CmpPred;
use vegen::isa::TargetIsa;
use vegen::vm::{LaneSrc, ScalarOp, VmInst, VmProgram};

fn cfg(target: TargetIsa, width: usize, canon: bool) -> PipelineConfig {
    PipelineConfig { target, beam: BeamConfig::with_width(width), canonicalize_patterns: canon }
}

fn assert_suite_clean(target: TargetIsa, width: usize, canon: bool) {
    for k in vegen::kernels::all() {
        let f = (k.build)();
        let ck = compile(&f, &cfg(target.clone(), width, canon));
        assert!(
            ck.analysis.is_clean(),
            "kernel {} ({}, beam {width}, canon {canon}) failed static validation:\n{}",
            k.name,
            target.name,
            ck.analysis.all().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
        );
        assert!(ck.analysis.lanes_proved > 0, "kernel {} proved no stored lanes at all", k.name);
    }
}

#[test]
fn suite_statically_valid_avx2() {
    assert_suite_clean(TargetIsa::avx2(), 16, true);
}

#[test]
fn suite_statically_valid_avx512vnni() {
    assert_suite_clean(TargetIsa::avx512vnni(), 16, true);
}

#[test]
fn suite_statically_valid_without_canonicalization() {
    // The Fig. 11 ablation: patterns built without §6 canonicalization
    // must still validate (the provenance pass replays the same flavor).
    assert_suite_clean(TargetIsa::avx2(), 16, false);
}

/// Corrupting shuffle indices in compiled programs: every swap that is
/// semantically visible must be rejected statically, and at least one such
/// swap must exist across the suite (the analysis is exercised for real).
#[test]
fn shuffle_index_corruptions_rejected() {
    let mut rejected = 0usize;
    let mut accepted_equivalent = 0usize;
    for k in vegen::kernels::all() {
        let f = (k.build)();
        let ck = compile(&f, &cfg(TargetIsa::avx2(), 16, true));
        for (idx, inst) in ck.vegen.insts.iter().enumerate() {
            let VmInst::Build { lanes, .. } = inst else { continue };
            // Find two FromVec lanes whose swap changes the program.
            let Some((i, j)) = first_swappable_pair(lanes) else { continue };
            let mut corrupted = ck.vegen.clone();
            let VmInst::Build { lanes, .. } = &mut corrupted.insts[idx] else { unreachable!() };
            lanes.swap(i, j);
            let report = analyze_program(&ck.function, &corrupted, true);
            if report.is_clean() {
                // The analysis may only accept a swap that really is
                // semantically neutral (e.g. both lanes feed a commutative
                // reduction). Execution must agree.
                check_equivalence(&ck.function, &corrupted, 64).unwrap_or_else(|e| {
                    panic!(
                        "kernel {}: statically accepted Build swap at inst {idx} \
                         lanes {i}<->{j} is dynamically wrong: {e}",
                        k.name
                    )
                });
                accepted_equivalent += 1;
            } else {
                assert!(
                    report.provenance.iter().any(|d| d.severity == Severity::Error),
                    "kernel {}: rejection must come from provenance: {:?}",
                    k.name,
                    report
                );
                rejected += 1;
            }
        }
    }
    assert!(
        rejected > 0,
        "no Build corruption was rejected anywhere in the suite \
         (rejected {rejected}, neutral {accepted_equivalent})"
    );
}

fn first_swappable_pair(lanes: &[LaneSrc]) -> Option<(usize, usize)> {
    for i in 0..lanes.len() {
        for j in i + 1..lanes.len() {
            if lanes[i] != lanes[j] {
                if let (LaneSrc::FromVec { .. }, LaneSrc::FromVec { .. }) = (&lanes[i], &lanes[j]) {
                    return Some((i, j));
                }
            }
        }
    }
    None
}

/// An off-by-one comparison predicate (`<=` corrupted to `<`) diverges
/// only when the operands are exactly equal — probability 2^-32 per trial
/// on full-range 32-bit data. The dynamic check at a realistic trial count
/// misses it; the static provenance check rejects it immediately, naming
/// the corrupted instruction.
#[test]
fn predicate_corruption_caught_statically_missed_dynamically() {
    use vegen::ir::{FunctionBuilder, Type};
    let mut b = FunctionBuilder::new("clip");
    let src = b.param("B", Type::I32, 4);
    let lim = b.param("L", Type::I32, 4);
    let dst = b.param("A", Type::I32, 4);
    for lane in 0..4i64 {
        let x = b.load(src, lane);
        let l = b.load(lim, lane);
        let c = b.cmp(CmpPred::Sle, x, l);
        let clipped = b.select(c, x, l);
        b.store(dst, lane, clipped);
    }
    let f = b.finish();

    let ck = compile(&f, &cfg(TargetIsa::avx2(), 16, true));
    assert!(ck.analysis.is_clean(), "uncorrupted kernel must validate");

    // Corrupt the scalar lowering: the first Sle comparison becomes Slt.
    let mut corrupted = ck.scalar.clone();
    let mut hit = None;
    for (idx, inst) in corrupted.insts.iter_mut().enumerate() {
        if let VmInst::Scalar { op: ScalarOp::Cmp { pred, .. }, .. } = inst {
            if *pred == CmpPred::Sle {
                *pred = CmpPred::Slt;
                hit = Some(idx);
                break;
            }
        }
    }
    let hit = hit.expect("scalar lowering of a clip kernel must contain an Sle compare");

    // The dynamic check misses the bug at its default-scale trial count:
    // random full-range operands are never exactly equal.
    check_equivalence(&f, &corrupted, 8)
        .expect("dynamic check was expected to miss the off-by-one predicate");

    // The static check rejects it and names the instruction.
    let report = analyze_program(&f, &corrupted, true);
    assert!(!report.is_clean(), "static validation must reject the corruption");
    let named = report
        .provenance
        .iter()
        .any(|d| d.message.contains(&format!("#{}", locate_store(&corrupted, hit))));
    assert!(
        named || report.provenance.iter().any(|d| d.message.contains("A[")),
        "diagnostic must name the store or location: {:?}",
        report.provenance
    );
}

/// The store (transitively) consuming the corrupted compare — the writer
/// the provenance diagnostic names.
fn locate_store(prog: &VmProgram, from: usize) -> usize {
    for (idx, inst) in prog.insts.iter().enumerate().skip(from) {
        if matches!(inst, VmInst::StoreScalar { .. } | VmInst::VecStore { .. }) {
            return idx;
        }
    }
    from
}

/// Swapping the operands of a commutative scalar op is semantically
/// neutral; normalization must accept it (no false positives).
#[test]
fn commutative_operand_swap_accepted() {
    let mut tested = 0usize;
    for k in vegen::kernels::all() {
        let f = (k.build)();
        let ck = compile(&f, &cfg(TargetIsa::avx2(), 16, true));
        let mut swapped = ck.scalar.clone();
        let mut did_swap = false;
        for inst in swapped.insts.iter_mut() {
            if let VmInst::Scalar { op: ScalarOp::Bin { op, lhs, rhs }, .. } = inst {
                if op.is_commutative() && lhs != rhs {
                    std::mem::swap(lhs, rhs);
                    did_swap = true;
                }
            }
        }
        if !did_swap {
            continue;
        }
        let report = analyze_program(&ck.function, &swapped, true);
        assert!(
            report.is_clean(),
            "kernel {}: operand order of commutative ops must not matter: {:?}",
            k.name,
            report.provenance
        );
        tested += 1;
    }
    assert!(tested > 0, "no suite kernel has a commutative binary op");
}

/// Dropping a lane of a store pack (a don't-care lane where the scalar
/// program stores a value) is rejected with a diagnostic naming the lane.
#[test]
fn dropped_store_lane_rejected() {
    let mut tested = 0usize;
    for k in vegen::kernels::all() {
        let f = (k.build)();
        let ck = compile(&f, &cfg(TargetIsa::avx2(), 16, true));
        // Replace the last lane of the first Build with Undef — a dropped
        // pack lane. Kernels whose programs have no Build are covered by
        // the other corruption tests.
        let mut corrupted = ck.vegen.clone();
        let mut did = false;
        for inst in corrupted.insts.iter_mut() {
            if let VmInst::Build { lanes, .. } = inst {
                if let Some(last) = lanes.last_mut() {
                    if !matches!(last, LaneSrc::Undef) {
                        *last = LaneSrc::Undef;
                        did = true;
                        break;
                    }
                }
            }
        }
        if !did {
            continue;
        }
        let report = analyze_program(&ck.function, &corrupted, true);
        if report.is_clean() {
            // Acceptable only if the lane really was a don't-care.
            check_equivalence(&ck.function, &corrupted, 64).unwrap_or_else(|e| {
                panic!(
                    "kernel {}: statically accepted dropped lane is dynamically wrong: {e}",
                    k.name
                )
            });
            continue;
        }
        tested += 1;
    }
    assert!(tested > 0, "no dropped-lane corruption was rejected anywhere in the suite");
}
