//! Walkthrough: how beam width changes what VeGen finds on x265's idct4.
//!
//! ```sh
//! cargo run --release --example idct_walkthrough
//! ```
//!
//! idct4 is the paper's showcase kernel (§7.2, Fig. 12): profitable
//! vectorization needs shuffles that feed `vpmaddwd` operands no compute
//! pack produces directly, and only beam search (not the greedy SLP
//! heuristic) is willing to pay for them up front.

use vegen::core::BeamConfig;
use vegen::driver::{compile, PipelineConfig};
use vegen::isa::TargetIsa;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = vegen::kernels::find("idct4").expect("idct4 is a built-in kernel");
    let f = (kernel.build)();
    println!(
        "idct4: {} scalar IR instructions (4x4 inverse DCT butterfly with\n\
         widening constant multiplies, rounding shift, and i16 saturation)\n",
        f.insts.len()
    );

    let mut last_cycles = f64::INFINITY;
    for width in [1usize, 64, 128] {
        let cfg = PipelineConfig {
            target: TargetIsa::avx512vnni(),
            beam: BeamConfig::with_width(width),
            canonicalize_patterns: true,
        };
        let ck = compile(&f, &cfg);
        ck.verify(32).map_err(|e| -> Box<dyn std::error::Error> { e.into() })?;
        let (scalar, baseline, vegen) = ck.cycles();
        println!(
            "beam width {width:>3}: {vegen:>6.1} cycles (scalar {scalar:.0}, LLVM-SLP {baseline:.0}) \
             — {} packs, ops: {}",
            ck.selection.packs.len(),
            ck.vegen.vector_ops_used().join(", ")
        );
        if width == 128 {
            println!("\nbeam-128 code (compare Fig. 12):\n{}", vegen::vm::listing(&ck.vegen));
            assert!(
                vegen <= last_cycles,
                "the widest beam should not lose to the narrow ones here"
            );
        }
        last_cycles = vegen;
    }
    Ok(())
}
