//! Retargeting: teach VeGen a brand-new vector instruction by writing
//! down its semantics — nothing else.
//!
//! ```sh
//! cargo run --release --example retarget
//! ```
//!
//! The paper's headline claim is that supporting a new (even non-SIMD)
//! instruction takes only a semantics description: the offline phase
//! generates the pattern matchers and lane-binding tables, and the
//! target-independent vectorizer picks the instruction up automatically.
//! Here we invent `sad4` — a horizontal sum-of-absolute-differences
//! instruction in the spirit of ARMv8's dot-product extensions — and watch
//! the vectorizer use it on a motion-estimation-style kernel.

use vegen::core::{select_packs, BeamConfig, CostModel, VectorizerCtx};
use vegen::ir::canon::{add_narrow_constants, canonicalize};
use vegen::ir::{FunctionBuilder, Type};
use vegen::isa::specs::Spec;
use vegen::isa::{Extension, InstDb};
use vegen::matcher::TargetDesc;
use vegen::pseudo::FpMode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the instruction in Intel-style pseudocode: each 32-bit
    //    output lane accumulates |a - b| over four byte pairs.
    let mut pseudocode = String::new();
    for j in 0..4 {
        let i = j * 32;
        let mut terms = format!("src[{}:{}]", i + 31, i);
        for k in 0..4 {
            let b = i + k * 8;
            terms.push_str(&format!(
                " + ABS(SignExtend32(a[{hi}:{lo}]) - SignExtend32(b[{hi}:{lo}]))",
                hi = b + 7,
                lo = b
            ));
        }
        pseudocode.push_str(&format!("dst[{}:{}] := {}\n", i + 31, i, terms));
    }
    let spec = Spec {
        name: "sad4_128".into(),
        asm: "sad4".into(),
        ext: Extension::Sse41, // pretend it shipped with SSE4.1
        bits: 128,
        out_elem_bits: 32,
        fp: FpMode::Int,
        inv_throughput: 0.5,
        inputs: vec![("src".into(), 128), ("a".into(), 128), ("b".into(), 128)],
        pseudocode,
    };

    // 2. Offline phase: pseudocode -> symbolic formula -> simplify -> VIDL
    //    -> generated matchers, all validated by random testing.
    let def = spec.build()?;
    println!(
        "lifted `{}`: {} output lanes, {} distinct operation(s), SIMD = {}",
        def.name,
        def.sem.out_lanes(),
        def.sem.ops.len(),
        def.sem.is_simd()
    );
    let db = InstDb::from_defs(vec![def]);
    let desc = TargetDesc::build(&db, true);

    // 3. A motion-estimation kernel: acc[i] += |x[4i+k] - y[4i+k]|, the
    //    scalar shape our new instruction implements.
    let mut b = FunctionBuilder::new("sad_kernel");
    let x = b.param("x", Type::I8, 16);
    let y = b.param("y", Type::I8, 16);
    let acc = b.param("acc", Type::I32, 4);
    for i in 0..4i64 {
        let mut sum = b.load(acc, i);
        for k in 0..4i64 {
            let xv = b.load(x, 4 * i + k);
            let yv = b.load(y, 4 * i + k);
            let xw = b.sext(xv, Type::I32);
            let yw = b.sext(yv, Type::I32);
            let d = b.sub(xw, yw);
            let zero = b.iconst(Type::I32, 0);
            let neg = b.sub(zero, d);
            let is_neg = b.cmp(vegen::ir::CmpPred::Slt, d, zero);
            let ad = b.select(is_neg, neg, d);
            sum = b.add(sum, ad);
        }
        b.store(acc, i, sum);
    }
    let f = add_narrow_constants(&canonicalize(&b.finish()));

    // 4. The unchanged, target-independent vectorizer picks it up.
    let ctx = VectorizerCtx::new(&f, &desc, CostModel::default());
    let sel = select_packs(&ctx, &BeamConfig::with_width(16)).unwrap();
    let prog = vegen::codegen::lower(&ctx, &sel.packs);
    println!("\nGenerated code:\n{}", vegen::vm::listing(&prog));
    assert!(
        prog.vector_ops_used().iter().any(|n| n.contains("sad4")),
        "the new instruction must be used: {:?}",
        prog.vector_ops_used()
    );

    // 5. Still correct, by execution.
    vegen::codegen::check_equivalence(&f, &prog, 64)
        .map_err(|e| -> Box<dyn std::error::Error> { e.into() })?;
    println!(
        "sad_kernel vectorized with the brand-new instruction and verified on 64 random inputs."
    );
    Ok(())
}
