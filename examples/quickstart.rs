//! Quickstart: vectorize a scalar dot-product kernel end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! This walks the whole VeGen pipeline on the paper's running example
//! (Fig. 4): build a scalar kernel, compile it with the generated
//! vectorizer, inspect the vector code, and check it against the scalar
//! semantics by execution.

use vegen::driver::{compile, PipelineConfig};
use vegen::ir::{FunctionBuilder, Type};
use vegen::isa::TargetIsa;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The scalar program of Fig. 4(d), widened to four output lanes:
    //   C[i] = A[2i] * B[2i] + A[2i+1] * B[2i+1]
    let mut b = FunctionBuilder::new("dot_prod");
    let a = b.param("A", Type::I16, 8);
    let bb = b.param("B", Type::I16, 8);
    let c = b.param("C", Type::I32, 4);
    for i in 0..4i64 {
        let mut terms = Vec::new();
        for k in 0..2i64 {
            let x = b.load(a, 2 * i + k);
            let y = b.load(bb, 2 * i + k);
            let xw = b.sext(x, Type::I32);
            let yw = b.sext(y, Type::I32);
            terms.push(b.mul(xw, yw));
        }
        let s = b.add(terms[0], terms[1]);
        b.store(c, i, s);
    }
    let f = b.finish();
    println!("Scalar input:\n{f}\n");

    // Compile for AVX2 with the default beam width.
    let cfg = PipelineConfig::new(TargetIsa::avx2(), 64);
    let ck = compile(&f, &cfg);

    // The vectorizer found pmaddwd from its generated pattern matchers.
    println!("VeGen output:\n{}", vegen::vm::listing(&ck.vegen));
    assert!(ck.vegen.vector_ops_used().iter().any(|n| n.contains("pmaddwd")));

    // Execution-checked equivalence on random inputs.
    ck.verify(64).map_err(|e| -> Box<dyn std::error::Error> { e.into() })?;
    let (scalar, baseline, vegen) = ck.cycles();
    println!("estimated cycles — scalar: {scalar:.1}, LLVM-SLP: {baseline:.1}, VeGen: {vegen:.1}");
    println!("speedup over the SLP baseline: {:.2}x", baseline / vegen);
    Ok(())
}
