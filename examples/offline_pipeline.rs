//! The offline phase, step by step: pseudocode → symbolic bit-vector
//! formula → simplification → VIDL → validation.
//!
//! ```sh
//! cargo run --release --example offline_pipeline
//! ```
//!
//! This is §6.1 of the paper as a runnable demo, on `pmaddwd` (the
//! running example) and on `psubusb` (the saturating subtract whose
//! ambiguous documentation the paper's random testing caught).

use vegen::pseudo::simplify::simplify;
use vegen::pseudo::{eval_program, lift_to_vidl, parse_program, validate_description, FpMode};
use vegen::vidl::print::inst_text;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- pmaddwd -------------------------------------------------------
    let pseudocode = r#"
        FOR j := 0 to 3
            i := j*32
            dst[i+31:i] := SignExtend32(a[i+31:i+16])*SignExtend32(b[i+31:i+16]) +
                           SignExtend32(a[i+15:i])*SignExtend32(b[i+15:i])
        ENDFOR
    "#;
    println!("== pmaddwd pseudocode ==\n{pseudocode}");
    let program = parse_program(pseudocode)?;
    let inputs = [("a", 128), ("b", 128)];
    let raw = eval_program(&program, &inputs, 128, FpMode::Int)?;
    println!("raw symbolic formula: {} nodes", raw.size());
    let simplified = simplify(&raw);
    println!("after the z3-style simplifier: {} nodes", simplified.size());
    let desc = lift_to_vidl("pmaddwd", &inputs, 32, FpMode::Int, &simplified)?;
    println!("\nlifted VIDL description:\n{}", inst_text(&desc));
    println!(
        "non-SIMD: {} (cross-lane operand flow), validated by random testing: {:?}",
        !desc.is_simd(),
        validate_description(&simplified, &inputs, &desc, 500).map(|_| "ok")
    );

    // --- psubusb: the §6.1 documentation trap ---------------------------
    let pseudocode = r#"
        FOR j := 0 to 15
            i := j*8
            dst[i+7:i] := SaturateU8(ZeroExtend32(a[i+7:i]) - ZeroExtend32(b[i+7:i]))
        ENDFOR
    "#;
    println!("\n== psubusb pseudocode ==\n{pseudocode}");
    let program = parse_program(pseudocode)?;
    let inputs = [("a", 128), ("b", 128)];
    let formula = simplify(&eval_program(&program, &inputs, 128, FpMode::Int)?);
    let desc = lift_to_vidl("psubusb", &inputs, 8, FpMode::Int, &formula)?;
    validate_description(&formula, &inputs, &desc, 500)
        .map_err(|e| -> Box<dyn std::error::Error> { e.into() })?;
    println!(
        "psubusb validated over 500 random vectors — including the subtlety the\n\
         paper found: the unsigned subtraction saturates as a *signed* value\n\
         (a negative difference clamps to zero)."
    );
    Ok(())
}
