//! End-to-end suite benchmark: the whole `vegen-kernels` suite through
//! the engine, cold then warm, with per-stage wall attribution — the
//! wall-clock companion to the beam microbenchmark.
//!
//! Besides the human-readable summary, the run writes `BENCH_suite.json`
//! (schema `vegen-bench-suite/v1`): cold/warm batch walls, the cold run's
//! per-stage totals, the warm cache hit ratio, and the same per-run
//! kernel rows an engine report carries — so `vegen-engine diff` accepts
//! the artifact directly for regression gating against an older run.

use std::time::{Duration, Instant};
use vegen::driver::PipelineConfig;
use vegen_core::BeamConfig;
use vegen_engine::json::Json;
use vegen_engine::report::RunReport;
use vegen_engine::{Engine, EngineConfig, Job, JobResult};
use vegen_isa::TargetIsa;

fn micros(d: Duration) -> Json {
    Json::Num(d.as_secs_f64() * 1e6)
}

/// Sum one stage across a run's results (cold attribution: cache hits
/// carry zeroed stages, so this is the work actually done).
fn stage_totals(results: &[JobResult]) -> Vec<(&'static str, Duration)> {
    let mut totals = [
        ("canonicalize", Duration::ZERO),
        ("target_desc", Duration::ZERO),
        ("selection", Duration::ZERO),
        ("lowering", Duration::ZERO),
        ("analysis", Duration::ZERO),
        ("baseline", Duration::ZERO),
        ("verify", Duration::ZERO),
    ];
    for r in results {
        let st = &r.stages;
        for (slot, d) in totals.iter_mut().zip([
            st.canonicalize,
            st.target_desc,
            st.selection,
            st.lowering,
            st.analysis,
            st.baseline,
            r.verify_time,
        ]) {
            slot.1 += d;
        }
    }
    totals.to_vec()
}

fn main() {
    let engine = Engine::new(EngineConfig::default());
    let pipeline = PipelineConfig {
        target: TargetIsa::avx2(),
        beam: BeamConfig::with_width(16),
        canonicalize_patterns: true,
    };
    let jobs: Vec<Job> = vegen_kernels::all()
        .into_iter()
        .map(|k| Job::new(k.name, (k.build)(), pipeline.clone()))
        .collect();

    let t0 = Instant::now();
    let cold = engine.compile_batch(&jobs);
    let cold_wall = t0.elapsed();
    let t1 = Instant::now();
    let warm = engine.compile_batch(&jobs);
    let warm_wall = t1.elapsed();

    let warm_hits = warm.iter().filter(|r| r.cache_hit).count();
    let hit_ratio = warm_hits as f64 / warm.len().max(1) as f64;
    println!(
        "suite: {} kernels — cold {cold_wall:.2?}, warm {warm_wall:.2?}, \
         warm cache hits {warm_hits}/{} ({:.0}%)",
        cold.len(),
        warm.len(),
        hit_ratio * 100.0
    );
    let totals = stage_totals(&cold);
    for (name, d) in &totals {
        println!("  cold stage {name:<12} {d:.2?}");
    }

    let cold_run = RunReport::new("cold", cold_wall, &cold);
    let warm_run = RunReport::new("warm", warm_wall, &warm);
    let doc = Json::obj([
        ("schema", Json::str("vegen-bench-suite/v1")),
        ("kernels_total", Json::int(cold.len() as u64)),
        ("cold_wall_us", micros(cold_wall)),
        ("warm_wall_us", micros(warm_wall)),
        ("warm_cache_hit_ratio", Json::Num(hit_ratio)),
        (
            "cold_stage_totals_us",
            Json::Obj(totals.iter().map(|(n, d)| (n.to_string(), micros(*d))).collect()),
        ),
        ("runs", Json::Arr(vec![cold_run.to_json(), warm_run.to_json()])),
    ]);

    // Cargo runs benches with the package root as CWD; anchor the artifact
    // at the workspace root where CI picks it up.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_suite.json");
    match std::fs::write(path, doc.render_pretty()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}
