//! Criterion benches, one group per evaluation artifact.
//!
//! Two kinds of measurement:
//!
//! * `compile/*` — wall-clock time of the *vectorizer itself* (pattern
//!   matching + pack selection + lowering) across beam widths. This is the
//!   compile-time story behind §5.2: beam search buys code quality with
//!   search time, and the SLP heuristic (k = 1) is the cheap point.
//! * `execute/*` — wall-clock time of the three program variants (scalar /
//!   LLVM-SLP / VeGen) under the vector VM. NOTE: these are *interpreter*
//!   times. The VM charges real allocations per vector op, so small
//!   vectorized programs can interpret slower than their scalar forms even
//!   when the modeled cycle count (the paper's metric, reported by the
//!   `report_*` binaries and recorded in EXPERIMENTS.md) is far lower.
//!   They are included to pin total-work trends on the larger kernels, not
//!   as a performance claim.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vegen::driver::{compile, CompiledKernel, PipelineConfig};
use vegen_core::BeamConfig;
use vegen_ir::interp::random_memory;
use vegen_isa::TargetIsa;
use vegen_kernels::{Kernel, Suite};
use vegen_vm::run_program;

fn cfg(target: TargetIsa, width: usize) -> PipelineConfig {
    PipelineConfig { target, beam: BeamConfig::with_width(width), canonicalize_patterns: true }
}

fn compile_kernel(k: &Kernel, target: TargetIsa, width: usize) -> CompiledKernel {
    let f = (k.build)();
    let ck = compile(&f, &cfg(target, width));
    ck.verify(4).expect("bench kernels must be correct");
    ck
}

/// Compile-time scaling with beam width — idct4 is the kernel where the
/// extra search effort famously pays off (Fig. 11/12).
fn compile_time(c: &mut Criterion) {
    for name in ["pmaddwd", "idct4", "chroma", "int16x16"] {
        let k = vegen_kernels::find(name).unwrap();
        let f = (k.build)();
        let mut g = c.benchmark_group(format!("compile/{name}"));
        for width in [1usize, 16, 64] {
            let config = cfg(TargetIsa::avx2(), width);
            g.bench_function(format!("beam{width}"), |b| {
                b.iter(|| black_box(compile(black_box(&f), &config)))
            });
        }
        g.finish();
    }
}

fn bench_execute(c: &mut Criterion, group: &str, k: &Kernel, target: TargetIsa, width: usize) {
    let ck = compile_kernel(k, target, width);
    let mem0 = random_memory(&ck.function, 7);
    let mut g = c.benchmark_group(format!("{group}/{}", k.name));
    for (variant, prog) in [
        ("scalar", &ck.scalar),
        ("llvm_slp", &ck.baseline),
        ("vegen", &ck.vegen),
    ] {
        g.bench_function(variant, |b| {
            b.iter(|| {
                let mut mem = mem0.clone();
                run_program(black_box(prog), &mut mem).unwrap();
                black_box(mem);
            })
        });
    }
    g.finish();
}

/// Fig. 2: the TVM micro-kernel on AVX512-VNNI.
fn fig2(c: &mut Criterion) {
    let k = vegen_kernels::find("tvm_dot_16x1x16").unwrap();
    bench_execute(c, "execute_fig2", &k, TargetIsa::avx512vnni(), 64);
}

/// Fig. 10: a representative subset of the isel tests (AVX2).
fn fig10(c: &mut Criterion) {
    for name in ["pmaddwd", "pmaddubs", "hadd_i16", "max_pd", "abs_pd"] {
        let k = vegen_kernels::find(name).unwrap();
        bench_execute(c, "execute_fig10", &k, TargetIsa::avx2(), 16);
    }
}

/// Fig. 11: the DSP kernels (AVX2; idct kernels at the paper's beam 128).
fn fig11(c: &mut Criterion) {
    for k in vegen_kernels::all().into_iter().filter(|k| k.suite == Suite::Dsp) {
        let width = if k.name.starts_with("idct") { 128 } else { 16 };
        bench_execute(c, "execute_fig11", &k, TargetIsa::avx2(), width);
    }
}

/// Fig. 13: the OpenCV dot products (AVX2).
fn fig13(c: &mut Criterion) {
    for k in vegen_kernels::all().into_iter().filter(|k| k.suite == Suite::OpenCv) {
        bench_execute(c, "execute_fig13", &k, TargetIsa::avx2(), 16);
    }
}

/// Fig. 15: complex multiplication (AVX2).
fn fig15(c: &mut Criterion) {
    let k = vegen_kernels::find("cmul").unwrap();
    bench_execute(c, "execute_fig15", &k, TargetIsa::avx2(), 16);
}

fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .warm_up_time(std::time::Duration::from_millis(150))
        .measurement_time(std::time::Duration::from_millis(400))
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = compile_time, fig2, fig10, fig11, fig13, fig15
}
criterion_main!(benches);
