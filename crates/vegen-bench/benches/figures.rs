//! Wall-clock benches, one group per evaluation artifact.
//!
//! Formerly a Criterion harness; this repository builds offline with no
//! external crates, so the measurement loop is a small self-contained
//! median-of-samples timer (`harness = false`).
//!
//! Two kinds of measurement:
//!
//! * `compile/*` — wall-clock time of the *vectorizer itself* (pattern
//!   matching + pack selection + lowering) across beam widths. This is the
//!   compile-time story behind §5.2: beam search buys code quality with
//!   search time, and the SLP heuristic (k = 1) is the cheap point.
//! * `execute/*` — wall-clock time of the three program variants (scalar /
//!   LLVM-SLP / VeGen) under the vector VM. NOTE: these are *interpreter*
//!   times. The VM charges real allocations per vector op, so small
//!   vectorized programs can interpret slower than their scalar forms even
//!   when the modeled cycle count (the paper's metric, reported by the
//!   `report_*` binaries and recorded in EXPERIMENTS.md) is far lower.
//!   They are included to pin total-work trends on the larger kernels, not
//!   as a performance claim.

use std::hint::black_box;
use std::time::{Duration, Instant};
use vegen::driver::{compile, CompiledKernel, PipelineConfig};
use vegen_core::BeamConfig;
use vegen_ir::interp::random_memory;
use vegen_isa::TargetIsa;
use vegen_kernels::{Kernel, Suite};
use vegen_vm::run_program;

fn cfg(target: TargetIsa, width: usize) -> PipelineConfig {
    PipelineConfig { target, beam: BeamConfig::with_width(width), canonicalize_patterns: true }
}

fn compile_kernel(k: &Kernel, target: TargetIsa, width: usize) -> CompiledKernel {
    let f = (k.build)();
    let ck = compile(&f, &cfg(target, width));
    ck.verify(4).expect("bench kernels must be correct");
    ck
}

/// Median wall time of `f` over a fixed sample count, with a short warmup.
fn bench(label: &str, mut f: impl FnMut()) {
    const SAMPLES: usize = 15;
    let warmup_until = Instant::now() + Duration::from_millis(50);
    while Instant::now() < warmup_until {
        f();
    }
    let mut times: Vec<Duration> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        // Batch iterations so sub-microsecond bodies still measure.
        let t0 = Instant::now();
        for _ in 0..8 {
            f();
        }
        times.push(t0.elapsed() / 8);
    }
    times.sort();
    let median = times[SAMPLES / 2];
    let min = times[0];
    let max = times[SAMPLES - 1];
    println!("{label:<40} median {median:>10.2?}  (min {min:.2?}, max {max:.2?})");
}

/// Compile-time scaling with beam width — idct4 is the kernel where the
/// extra search effort famously pays off (Fig. 11/12).
fn compile_time() {
    for name in ["pmaddwd", "idct4", "chroma", "int16x16"] {
        let k = vegen_kernels::find(name).unwrap();
        let f = (k.build)();
        for width in [1usize, 16, 64] {
            let config = cfg(TargetIsa::avx2(), width);
            bench(&format!("compile/{name}/beam{width}"), || {
                black_box(compile(black_box(&f), &config));
            });
        }
    }
}

fn bench_execute(group: &str, k: &Kernel, target: TargetIsa, width: usize) {
    let ck = compile_kernel(k, target, width);
    let mem0 = random_memory(&ck.function, 7);
    for (variant, prog) in
        [("scalar", &ck.scalar), ("llvm_slp", &ck.baseline), ("vegen", &ck.vegen)]
    {
        bench(&format!("{group}/{}/{variant}", k.name), || {
            let mut mem = mem0.clone();
            run_program(black_box(prog), &mut mem).unwrap();
            black_box(&mem);
        });
    }
}

fn main() {
    compile_time();
    // Fig. 2: the TVM micro-kernel on AVX512-VNNI.
    let tvm = vegen_kernels::find("tvm_dot_16x1x16").unwrap();
    bench_execute("execute_fig2", &tvm, TargetIsa::avx512vnni(), 64);
    // Fig. 10: a representative subset of the isel tests (AVX2).
    for name in ["pmaddwd", "pmaddubs", "hadd_i16", "max_pd", "abs_pd"] {
        let k = vegen_kernels::find(name).unwrap();
        bench_execute("execute_fig10", &k, TargetIsa::avx2(), 16);
    }
    // Fig. 11: the DSP kernels (AVX2; idct kernels at the paper's beam 128).
    for k in vegen_kernels::all().into_iter().filter(|k| k.suite == Suite::Dsp) {
        let width = if k.name.starts_with("idct") { 128 } else { 16 };
        bench_execute("execute_fig11", &k, TargetIsa::avx2(), width);
    }
    // Fig. 13: the OpenCV dot products (AVX2).
    for k in vegen_kernels::all().into_iter().filter(|k| k.suite == Suite::OpenCv) {
        bench_execute("execute_fig13", &k, TargetIsa::avx2(), 16);
    }
    // Fig. 15: complex multiplication (AVX2).
    let cmul = vegen_kernels::find("cmul").unwrap();
    bench_execute("execute_fig15", &cmul, TargetIsa::avx2(), 16);
}
