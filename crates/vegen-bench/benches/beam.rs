//! Beam-search microbenchmark: `select_packs` in isolation (no lowering,
//! no baseline, no verification) at the paper's beam widths 1 / 64 / 128,
//! on the largest kernels in the suite by instruction count.
//!
//! Each line also reports the search-effort counters
//! ([`vegen_core::BeamStats`]) of one representative run: states expanded,
//! transitions generated, dedup hits, and the producer-cache hit/miss
//! split, so a regression in search *shape* (not just wall time) is
//! visible. Each timed iteration builds a fresh `VectorizerCtx` so the
//! measurement is a cold selection — the producer memo is rebuilt, not
//! amortized across samples.

use std::hint::black_box;
use std::time::{Duration, Instant};
use vegen::driver::{prepare, target_desc};
use vegen_core::{select_packs, BeamConfig, CostModel, VectorizerCtx};
use vegen_ir::Function;
use vegen_isa::TargetIsa;

/// Median wall time of `f` over a fixed sample count, with a short warmup.
fn bench(label: &str, mut f: impl FnMut()) {
    const SAMPLES: usize = 9;
    let warmup_until = Instant::now() + Duration::from_millis(30);
    while Instant::now() < warmup_until {
        f();
    }
    let mut times: Vec<Duration> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed());
    }
    times.sort();
    let median = times[SAMPLES / 2];
    let min = times[0];
    let max = times[SAMPLES - 1];
    println!("{label:<34} median {median:>10.2?}  (min {min:.2?}, max {max:.2?})");
}

fn main() {
    // The largest kernels by canonicalized instruction count — where
    // selection time dominates the pipeline.
    let mut prepared: Vec<(&'static str, Function)> =
        vegen_kernels::all().iter().map(|k| (k.name, prepare(&(k.build)()))).collect();
    prepared.sort_by_key(|(_, f)| std::cmp::Reverse(f.insts.len()));
    prepared.truncate(4);

    let desc = target_desc(&TargetIsa::avx2(), true);
    for (name, f) in &prepared {
        println!("kernel {name}: {} insts", f.insts.len());
        for width in [1usize, 64, 128] {
            let cfg = BeamConfig::with_width(width);
            bench(&format!("select/{name}/beam{width}"), || {
                let ctx = VectorizerCtx::new(f, &desc, CostModel::default());
                black_box(select_packs(&ctx, &cfg).unwrap());
            });
            // Search-effort counters from one representative run.
            let ctx = VectorizerCtx::new(f, &desc, CostModel::default());
            let r = select_packs(&ctx, &cfg).unwrap();
            let s = r.stats;
            println!(
                "  states {} transitions {} dedup_hits {} hash_collisions {} \
                 producer hit/miss {}/{} interned ops/packs {}/{}",
                s.states_expanded,
                s.transitions,
                s.dedup_hits,
                s.hash_collisions,
                s.producer_cache_hits,
                s.producer_cache_misses,
                s.interned_operands,
                s.interned_packs,
            );
        }
    }
}
