//! Beam-search microbenchmark: `select_packs` in isolation (no lowering,
//! no baseline, no verification) at the paper's beam widths 1 / 64 / 128,
//! on the largest kernels in the suite by instruction count — now with a
//! thread-scaling matrix (1 / 2 / 4 intra-kernel beam workers).
//!
//! Each timed iteration builds a fresh `VectorizerCtx` so the measurement
//! is a cold selection — the producer memo is rebuilt, not amortized
//! across samples. A separate "warm" row per kernel reuses one
//! [`SelectionReuse`] handle across all three widths, measuring what the
//! engine's degradation ladder and the bench's width sweep actually pay
//! once the frozen snapshot and the transposition table exist.
//!
//! Besides the human-readable table, the run writes `BENCH_beam.json`
//! (machine-readable wall times in nanoseconds, per kernel × width ×
//! thread count, plus the search-effort counters of one representative
//! run) for CI artifacts and offline comparison.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};
use vegen::driver::{prepare, target_desc};
use vegen_core::{
    select_packs, select_packs_reusing, BeamConfig, CostModel, SelectionReuse, VectorizerCtx,
};
use vegen_ir::Function;
use vegen_isa::TargetIsa;

const SAMPLES: usize = 9;
const WIDTHS: [usize; 3] = [1, 64, 128];
const THREADS: [usize; 3] = [1, 2, 4];

/// Median / min / max wall time of `f` over a fixed sample count, with a
/// short warmup.
fn sample(mut f: impl FnMut()) -> (Duration, Duration, Duration) {
    let warmup_until = Instant::now() + Duration::from_millis(30);
    while Instant::now() < warmup_until {
        f();
    }
    let mut times: Vec<Duration> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed());
    }
    times.sort();
    (times[SAMPLES / 2], times[0], times[SAMPLES - 1])
}

fn main() {
    // The largest kernels by canonicalized instruction count — where
    // selection time dominates the pipeline.
    let mut prepared: Vec<(&'static str, Function)> =
        vegen_kernels::all().iter().map(|k| (k.name, prepare(&(k.build)()))).collect();
    prepared.sort_by_key(|(_, f)| std::cmp::Reverse(f.insts.len()));
    prepared.truncate(4);

    let desc = target_desc(&TargetIsa::avx2(), true);
    let mut rows = String::new();
    for (name, f) in &prepared {
        println!("kernel {name}: {} insts", f.insts.len());
        for width in WIDTHS {
            // Cold wall per thread count (fresh ctx, fresh freeze).
            let mut medians = [Duration::ZERO; THREADS.len()];
            for (ti, &threads) in THREADS.iter().enumerate() {
                let cfg = BeamConfig { beam_threads: threads, ..BeamConfig::with_width(width) };
                let (median, min, max) = sample(|| {
                    let ctx = VectorizerCtx::new(f, &desc, CostModel::default());
                    black_box(select_packs(&ctx, &cfg).unwrap());
                });
                medians[ti] = median;
                println!(
                    "select/{name}/beam{width}/t{threads:<2} median {median:>10.2?}  \
                     (min {min:.2?}, max {max:.2?})"
                );
                if !rows.is_empty() {
                    rows.push(',');
                }
                write!(
                    rows,
                    "\n    {{\"kernel\": \"{name}\", \"width\": {width}, \
                     \"threads\": {threads}, \"median_ns\": {}, \"min_ns\": {}, \
                     \"max_ns\": {}}}",
                    median.as_nanos(),
                    min.as_nanos(),
                    max.as_nanos()
                )
                .unwrap();
            }
            let speedup4 = medians[0].as_secs_f64() / medians[2].as_secs_f64().max(1e-12);
            println!("  speedup at 4 threads vs 1: {speedup4:.2}x");

            // Search-effort counters from one representative run (shape is
            // thread-count-independent; see the determinism suite).
            let cfg = BeamConfig { beam_threads: 4, ..BeamConfig::with_width(width) };
            let ctx = VectorizerCtx::new(f, &desc, CostModel::default());
            let r = select_packs(&ctx, &cfg).unwrap();
            let s = r.stats;
            println!(
                "  states {} transitions {} dedup_hits {} tt hit/miss {}/{} \
                 freeze {:.2?} merge {:.2?} interned ops/packs {}/{}",
                s.states_expanded,
                s.transitions,
                s.dedup_hits,
                s.tt_hits,
                s.tt_misses,
                s.freeze_wall,
                s.merge_wall,
                s.interned_operands,
                s.interned_packs,
            );
        }

        // Warm sweep: one reuse handle across the whole width ladder —
        // the freeze runs once and the transposition table carries over.
        let (median, min, max) = sample(|| {
            let ctx = VectorizerCtx::new(f, &desc, CostModel::default());
            let mut reuse = SelectionReuse::new();
            for width in WIDTHS {
                let cfg = BeamConfig { beam_threads: 4, ..BeamConfig::with_width(width) };
                black_box(select_packs_reusing(&ctx, &cfg, &mut reuse).unwrap());
            }
        });
        println!(
            "select/{name}/warm-sweep/t4       median {median:>10.2?}  \
             (min {min:.2?}, max {max:.2?})"
        );
        if !rows.is_empty() {
            rows.push(',');
        }
        write!(
            rows,
            "\n    {{\"kernel\": \"{name}\", \"width\": \"sweep\", \"threads\": 4, \
             \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
            median.as_nanos(),
            min.as_nanos(),
            max.as_nanos()
        )
        .unwrap();
    }

    let doc = format!(
        "{{\n  \"schema\": \"vegen-bench-beam/v1\",\n  \"samples\": {SAMPLES},\n  \
         \"rows\": [{rows}\n  ]\n}}\n"
    );
    // Cargo runs benches with the package root as CWD; anchor the artifact
    // at the workspace root where CI picks it up.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_beam.json");
    match std::fs::write(path, &doc) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}
