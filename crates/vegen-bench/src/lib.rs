//! Shared harness utilities for the experiment reports and Criterion
//! benches.
//!
//! Every table and figure of the paper has a `report_*` binary in this
//! crate (see `src/bin/`) plus a Criterion bench (see `benches/`); this
//! library holds the common measurement code.

use std::sync::OnceLock;
use vegen::driver::{CompiledKernel, PipelineConfig};
use vegen_core::BeamConfig;
use vegen_engine::{Engine, EngineConfig, Job, JobResult};
use vegen_isa::TargetIsa;
use vegen_kernels::Kernel;

/// One measured kernel row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Kernel name.
    pub name: String,
    /// Estimated scalar cycles.
    pub scalar_cycles: f64,
    /// Estimated baseline (LLVM-SLP) cycles.
    pub baseline_cycles: f64,
    /// Estimated VeGen cycles.
    pub vegen_cycles: f64,
    /// VeGen speedup over the baseline (the paper's headline metric).
    pub speedup: f64,
    /// Instruction counts: (scalar, baseline, vegen).
    pub inst_counts: (usize, usize, usize),
    /// Distinct vector instructions VeGen used.
    pub vegen_ops: Vec<String>,
    /// Did the baseline vectorize anything?
    pub baseline_vectorized: bool,
}

/// The process-wide compilation engine behind every figure and report.
///
/// Sharing one engine means one content-addressed cache: a kernel measured
/// by several figures (or at a beam width another figure already used)
/// compiles once per process, and every binary gets parallel batches for
/// free.
pub fn engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE
        .get_or_init(|| Engine::new(EngineConfig { verify_trials: 24, ..EngineConfig::default() }))
}

/// Compile a kernel under a configuration (through the shared [`engine`]),
/// verify all three programs, and measure.
///
/// # Panics
///
/// Panics if any program diverges from the scalar semantics — a
/// correctness bug that must never reach a report.
pub fn measure(kernel: &Kernel, cfg: &PipelineConfig) -> Row {
    let f = (kernel.build)();
    let r = engine().compile_one(kernel.name, &f, cfg);
    row_from(&r)
}

/// [`measure`] a whole batch in parallel; rows come back in input order.
///
/// # Panics
///
/// Panics if any program diverges from the scalar semantics.
pub fn measure_batch(kernels: &[Kernel], cfg: &PipelineConfig) -> Vec<Row> {
    let jobs: Vec<Job> =
        kernels.iter().map(|k| Job::new(k.name, (k.build)(), cfg.clone())).collect();
    engine().compile_batch(&jobs).iter().map(row_from).collect()
}

fn row_from(r: &JobResult) -> Row {
    if let Some(e) = &r.verify_error {
        panic!("kernel {} failed verification: {e}", r.name);
    }
    // Measurements are meaningless on a degraded rung; the figure
    // reports demand every kernel compile cleanly.
    let ck = r.kernel.as_deref().unwrap_or_else(|| {
        panic!("kernel {} produced no program (rung {}): {:?}", r.name, r.rung.name(), r.faults)
    });
    row_of(&r.name, ck)
}

/// Extract a [`Row`] from a compiled kernel.
pub fn row_of(name: &str, ck: &CompiledKernel) -> Row {
    let (sc, bl, vg) = ck.cycles();
    Row {
        name: name.to_string(),
        scalar_cycles: sc,
        baseline_cycles: bl,
        vegen_cycles: vg,
        speedup: bl / vg,
        inst_counts: (
            ck.scalar.instruction_count(),
            ck.baseline.instruction_count(),
            ck.vegen.instruction_count(),
        ),
        vegen_ops: ck.vegen.vector_ops_used(),
        baseline_vectorized: ck.baseline_trees > 0,
    }
}

/// Standard configuration used by the figure reports.
pub fn config(target: TargetIsa, beam_width: usize, canonicalize_patterns: bool) -> PipelineConfig {
    PipelineConfig { target, beam: BeamConfig::with_width(beam_width), canonicalize_patterns }
}

/// Print a header + rows as an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, cell) in r.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for r in rows {
        line(r);
    }
}
