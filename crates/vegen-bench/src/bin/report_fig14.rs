//! Fig. 14: the code VeGen generates for OpenCV's int32x8 dot product on
//! AVX2 — the deceivingly complicated `vpmuldq` strategy (multiply odd and
//! even 32-bit lanes separately with the widening don't-care-lane multiply,
//! then add), which matches OpenCV's expert-optimized code.

use vegen::driver::PipelineConfig;
use vegen_core::BeamConfig;
use vegen_isa::TargetIsa;

fn main() {
    let k = vegen_kernels::find("int32x8").unwrap();
    let f = (k.build)();
    let cfg = PipelineConfig {
        target: TargetIsa::avx2(),
        beam: BeamConfig::with_width(64),
        canonicalize_patterns: true,
    };
    let ck = vegen_bench::engine()
        .compile_one(k.name, &f, &cfg)
        .kernel
        .expect("suite kernel must compile");
    ck.verify(32).expect("int32x8 must stay correct");
    let (sc, bl, vg) = ck.cycles();
    println!(
        "== Fig. 14 — OpenCV int32x8, AVX2 ==\n\
         scalar {sc:.1} | baseline {bl:.1} | VeGen {vg:.1} (speedup {:.2}x over baseline)\n",
        bl / vg
    );
    println!("{}", vegen_vm::listing(&ck.vegen));
    println!(
        "Paper's code: vmovdqu x2, vpmuldq (even lanes), vpshufd x2 (odds into even\n\
         position), vpmuldq again, vpaddq, store. The vpmuldq packs above use the\n\
         same odd/even split; the shuffles correspond to the vpshufd pair."
    );
    assert!(
        ck.vegen.vector_ops_used().iter().any(|n| n.contains("pmuldq")),
        "the vpmuldq strategy must appear"
    );
}
