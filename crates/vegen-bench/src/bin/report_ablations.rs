//! Ablations beyond the paper's own: what each design choice buys.
//!
//! * affinity seed enumeration (Fig. 8) on/off,
//! * the `Cshuffle` parameter (§6.2 sets it to 2),
//! * beam width sweep beyond the paper's {1, 64, 128}.

use vegen::driver::target_desc;
use vegen_bench::print_table;
use vegen_core::{select_packs, BeamConfig, CostModel, VectorizerCtx};
use vegen_ir::canon::{add_narrow_constants, canonicalize};
use vegen_isa::TargetIsa;

fn main() {
    let kernels = ["pmaddwd", "idct4", "chroma", "cmul", "int32x8", "fft4"];
    let desc = target_desc(&TargetIsa::avx2(), true);

    // --- Affinity seeds on/off -----------------------------------------
    let mut rows = Vec::new();
    for name in kernels {
        let k = vegen_kernels::find(name).unwrap();
        let f = add_narrow_constants(&canonicalize(&(k.build)()));
        let ctx = VectorizerCtx::new(&f, &desc, CostModel::default());
        let mut cells = vec![name.to_string()];
        for seeds in [true, false] {
            let cfg = BeamConfig { use_affinity_seeds: seeds, ..BeamConfig::with_width(64) };
            let r = select_packs(&ctx, &cfg).unwrap();
            cells.push(format!("{:.1}", r.vector_cost));
        }
        rows.push(cells);
    }
    print_table(
        "Ablation — affinity seed enumeration (estimated cost, lower is better)",
        &["kernel", "with seeds", "store chains only"],
        &rows,
    );

    // --- Cshuffle sensitivity -------------------------------------------
    let mut rows = Vec::new();
    for name in kernels {
        let k = vegen_kernels::find(name).unwrap();
        let f = add_narrow_constants(&canonicalize(&(k.build)()));
        let mut cells = vec![name.to_string()];
        for shuffle in [1.0, 2.0, 4.0, 8.0] {
            let cost = CostModel { c_shuffle: shuffle, ..CostModel::default() };
            let ctx = VectorizerCtx::new(&f, &desc, cost);
            let r = select_packs(&ctx, &BeamConfig::with_width(64)).unwrap();
            cells.push(format!("{:.1}", r.vector_cost));
        }
        rows.push(cells);
    }
    print_table(
        "Ablation — Cshuffle (paper: 2.0). Shuffle-hungry kernels opt out as it rises",
        &["kernel", "Cs=1", "Cs=2", "Cs=4", "Cs=8"],
        &rows,
    );

    // --- Beam width sweep -----------------------------------------------
    let mut rows = Vec::new();
    for name in kernels {
        let k = vegen_kernels::find(name).unwrap();
        let f = add_narrow_constants(&canonicalize(&(k.build)()));
        let ctx = VectorizerCtx::new(&f, &desc, CostModel::default());
        let mut cells = vec![name.to_string()];
        for width in [1usize, 4, 16, 64, 128, 256] {
            let r = select_packs(&ctx, &BeamConfig::with_width(width)).unwrap();
            cells.push(format!("{:.1}", r.vector_cost));
        }
        rows.push(cells);
    }
    print_table(
        "Ablation — beam width (estimated cost; the paper evaluates 1/64/128)",
        &["kernel", "k=1", "k=4", "k=16", "k=64", "k=128", "k=256"],
        &rows,
    );
}
