//! Fig. 2: the TVM convolution micro-kernel (`dot_16x1x16_uint8_int8_int32`)
//! on AVX512-VNNI — instruction counts, speedups, and the generated code.

use vegen::driver::PipelineConfig;
use vegen_bench::print_table;
use vegen_core::BeamConfig;
use vegen_isa::TargetIsa;

fn main() {
    let k = vegen_kernels::find("tvm_dot_16x1x16").unwrap();
    let f = (k.build)();
    let cfg = PipelineConfig {
        target: TargetIsa::avx512vnni(),
        beam: BeamConfig::with_width(64),
        canonicalize_patterns: true,
    };
    let ck = vegen_bench::engine()
        .compile_one(k.name, &f, &cfg)
        .kernel
        .expect("suite kernel must compile");
    ck.verify(32).expect("all programs must agree");

    let (sc, bl, vg) = ck.cycles();
    let rows = vec![
        vec![
            "scalar (not vectorized)".into(),
            ck.scalar.instruction_count().to_string(),
            format!("{sc:.1}"),
            "1.0x".into(),
            "-".into(),
        ],
        vec![
            "LLVM-SLP baseline".into(),
            ck.baseline.instruction_count().to_string(),
            format!("{bl:.1}"),
            format!("{:.1}x", sc / bl),
            ck.baseline.vector_ops_used().join(" "),
        ],
        vec![
            "VeGen".into(),
            ck.vegen.instruction_count().to_string(),
            format!("{vg:.1}"),
            format!("{:.1}x", sc / vg),
            ck.vegen.vector_ops_used().join(" "),
        ],
    ];
    print_table(
        "Fig. 2 — TVM dot_16x1x16_uint8_int8_int32, AVX512-VNNI",
        &["code generator", "instructions", "est. cycles", "speedup vs scalar", "vector ops used"],
        &rows,
    );
    println!("\nPaper reference: ICC 273 insts (1.0x) / GCC 106 (1.5x) / LLVM 61 (2.2x) / VeGen 4 (11.0x).");
    println!("VeGen's speedup over the LLVM-style baseline here: {:.1}x\n", bl / vg);
    println!("Generated VeGen code:\n{}", vegen_vm::listing(&ck.vegen));
}
