//! Fig. 13: OpenCV's fixed-size dot-product kernels on AVX2 and
//! AVX512-VNNI (speedup over the LLVM-SLP baseline).

use vegen_bench::{config, measure_batch, print_table};
use vegen_isa::TargetIsa;
use vegen_kernels::Suite;

fn main() {
    for target in [TargetIsa::avx2(), TargetIsa::avx512vnni()] {
        let cfg = config(target.clone(), 64, true);
        let kernels: Vec<_> =
            vegen_kernels::all().into_iter().filter(|k| k.suite == Suite::OpenCv).collect();
        let mut rows = Vec::new();
        for r in measure_batch(&kernels, &cfg) {
            rows.push(vec![r.name.clone(), format!("{:.1}", r.speedup), r.vegen_ops.join(" ")]);
        }
        print_table(
            &format!("Fig. 13 — OpenCV dot products, {}", target.name),
            &["kernel", "speedup", "VeGen ops"],
            &rows,
        );
    }
    println!("\nPaper reference: AVX2 int8x32 1.1, uint8x32 2.0, int32x8 1.5, int16x16 1.6;");
    println!("AVX512-VNNI: int8x32 0.7, uint8x32 2.2, int32x8 1.7, int16x16 2.5.");
    println!("int32x8's winning strategy (odd/even vpmuldq) is shown by report_fig14.");
}
