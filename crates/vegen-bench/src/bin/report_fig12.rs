//! Fig. 12: the code VeGen generates for idct4 with beam width 128 on
//! AVX512-VNNI — the kernel where beam search finds what the SLP heuristic
//! misses (shuffle-fed `vpmaddwd` + saturating `vpackssdw`).

use vegen::driver::PipelineConfig;
use vegen_core::BeamConfig;
use vegen_isa::TargetIsa;
use vegen_vm::static_cycles;

fn main() {
    let k = vegen_kernels::find("idct4").unwrap();
    let f = (k.build)();
    for width in [1usize, 128] {
        let cfg = PipelineConfig {
            target: TargetIsa::avx512vnni(),
            beam: BeamConfig::with_width(width),
            canonicalize_patterns: true,
        };
        let ck = vegen_bench::engine()
            .compile_one(k.name, &f, &cfg)
            .kernel
            .expect("suite kernel must compile");
        ck.verify(32).expect("idct4 must stay correct");
        let (sc, bl, vg) = ck.cycles();
        println!(
            "\n== Fig. 12 — idct4, AVX512-VNNI, beam {width} ==\n\
             scalar {sc:.1} cycles | baseline {bl:.1} | VeGen {vg:.1} (speedup {:.2}x)\n\
             vector ops: {:?}\n",
            bl / vg,
            ck.vegen.vector_ops_used()
        );
        if width == 128 {
            println!("{}", vegen_vm::listing(&ck.vegen));
            println!(
                "Paper's snippet uses vpermi2d/vphaddd/vpmaddwd/vpackssdw/vpunpck*;\n\
                 the shuffles above play the vpermi2d/vpunpck roles, feeding vpmaddwd\n\
                 operands that no compute pack produces directly — the code shape\n\
                 'discovered with beam search but not with the SLP heuristic' (§7.2)."
            );
        }
    }
    let _ = static_cycles;
}
