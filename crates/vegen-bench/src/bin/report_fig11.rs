//! Fig. 11: speedups (over the LLVM-SLP baseline) on the x265/FFmpeg
//! kernels, across beam widths {1, 64, 128}, with and without pattern
//! canonicalization, on AVX2 and AVX512-VNNI.

use vegen::driver::PipelineConfig;
use vegen_bench::{measure_batch, print_table};
use vegen_core::BeamConfig;
use vegen_isa::TargetIsa;
use vegen_kernels::Suite;

fn main() {
    for target in [TargetIsa::avx2(), TargetIsa::avx512vnni()] {
        let kernels: Vec<_> =
            vegen_kernels::all().into_iter().filter(|k| k.suite == Suite::Dsp).collect();
        // One parallel batch per column; the shared engine's cache carries
        // repeated (kernel, config) pairs across figures.
        let columns: Vec<Vec<vegen_bench::Row>> =
            [(1usize, true), (64, true), (128, true), (128, false)]
                .into_iter()
                .map(|(width, canon)| {
                    let cfg = PipelineConfig {
                        target: target.clone(),
                        beam: BeamConfig::with_width(width),
                        canonicalize_patterns: canon,
                    };
                    measure_batch(&kernels, &cfg)
                })
                .collect();
        let mut rows = Vec::new();
        for (i, k) in kernels.iter().enumerate() {
            let mut cells = vec![k.name.to_string()];
            for col in &columns {
                cells.push(format!("{:.2}", col[i].speedup));
            }
            rows.push(cells);
        }
        print_table(
            &format!("Fig. 11 — DSP kernels, {} (speedup over LLVM-SLP baseline)", target.name),
            &["kernel", "beam-1", "beam-64", "beam-128", "beam-128 (no canon)"],
            &rows,
        );
    }
    println!(
        "\nPaper reference (AVX2, beam-128): fft4 1.38, fft8 1.18, sbc 1.58, idct8 1.36, idct4 2.15, chroma 2.12;"
    );
    println!(
        "beam-1 (SLP heuristic): fft4 1.06, fft8 1.09, sbc 1.17, idct8 1.25, idct4 0.94, chroma 1.05."
    );
    println!("Canonicalization matters on the saturating kernels (idct4, idct8, chroma).");
}
