//! Smoke run: batch-compile, verify, and summarize every kernel on AVX2
//! through the shared engine — then run the batch again warm to show the
//! content-addressed cache at work.
use std::time::Instant;
use vegen_bench::{config, engine, print_table};
use vegen_engine::Job;
use vegen_isa::TargetIsa;

fn main() {
    let cfg = config(TargetIsa::avx2(), 16, true);
    let jobs: Vec<Job> = vegen_kernels::all()
        .into_iter()
        .map(|k| Job::new(k.name, (k.build)(), cfg.clone()))
        .collect();

    let t0 = Instant::now();
    let results = engine().compile_batch(&jobs);
    let cold = t0.elapsed();

    let mut rows = Vec::new();
    for r in &results {
        if let Some(e) = &r.verify_error {
            panic!("kernel {} failed verification: {e}", r.name);
        }
        let ck = r.kernel.as_deref().expect("suite kernel must compile");
        let (sc, bl, vg) = ck.cycles();
        rows.push(vec![
            r.name.clone(),
            format!("{sc:.1}"),
            format!("{bl:.1}"),
            format!("{vg:.1}"),
            format!("{:.2}", ck.speedup_vs_baseline()),
            ck.vegen.vector_ops_used().join(","),
            format!("{:?}", r.stages.total() + r.verify_time),
        ]);
    }
    print_table(
        "smoke (AVX2, beam 16)",
        &["kernel", "scalar", "llvm", "vegen", "speedup", "vegen ops", "compile+verify"],
        &rows,
    );

    let t1 = Instant::now();
    let warm = engine().compile_batch(&jobs);
    let warm_wall = t1.elapsed();
    let hits = warm.iter().filter(|r| r.cache_hit).count();
    let stats = engine().cache_stats();
    println!(
        "\ncold batch {cold:.2?} | warm batch {warm_wall:.2?} ({hits}/{} cache hits) | \
         cache {} entries, {:.0}% hit rate overall",
        warm.len(),
        stats.entries,
        stats.hit_rate() * 100.0
    );
}
