//! Smoke run: compile, verify, and summarize every kernel on AVX2.
use vegen_bench::{config, measure, print_table};
use vegen_isa::TargetIsa;

fn main() {
    let cfg = config(TargetIsa::avx2(), 16, true);
    let mut rows = Vec::new();
    for k in vegen_kernels::all() {
        let t0 = std::time::Instant::now();
        let r = measure(&k, &cfg);
        rows.push(vec![
            r.name.clone(),
            format!("{:.1}", r.scalar_cycles),
            format!("{:.1}", r.baseline_cycles),
            format!("{:.1}", r.vegen_cycles),
            format!("{:.2}", r.speedup),
            r.vegen_ops.join(","),
            format!("{:?}", t0.elapsed()),
        ]);
    }
    print_table(
        "smoke (AVX2, beam 16)",
        &["kernel", "scalar", "llvm", "vegen", "speedup", "vegen ops", "time"],
        &rows,
    );
}
