use vegen::driver::target_desc;
use vegen_core::slp::SlpCost;
use vegen_core::{select_packs, BeamConfig, CostModel, OperandVec, VectorizerCtx};
use vegen_ir::canon::{add_narrow_constants, canonicalize};
use vegen_ir::InstKind;
use vegen_isa::TargetIsa;

fn main() {
    let k = vegen_kernels::find("fft8").unwrap();
    let f = add_narrow_constants(&canonicalize(&(k.build)()));
    let desc = target_desc(&TargetIsa::avx2(), true);
    let ctx = VectorizerCtx::new(&f, &desc, CostModel::default());
    let vals: Vec<_> = f
        .stores()
        .iter()
        .map(|&s| match f.inst(s).kind {
            InstKind::Store { value, .. } => value,
            _ => unreachable!(),
        })
        .collect();
    let slp = SlpCost::new(&ctx);
    // First 8 outputs as one operand, second 8 as another.
    let x1 = OperandVec::from_values(vals[0..8].iter().copied());
    let x2 = OperandVec::from_values(vals[8..16].iter().copied());
    println!("costSLP(out[0..8]) = {:.1}", slp.cost(&x1));
    println!("costSLP(out[8..16]) = {:.1}", slp.cost(&x2));
    let x4: Vec<f64> = (0..4)
        .map(|i| slp.cost(&OperandVec::from_values(vals[i * 4..(i + 1) * 4].iter().copied())))
        .collect();
    println!("costSLP per 4-chunk: {x4:?}");
    for (w, iters) in [(64usize, None), (128, Some(600usize))] {
        let cfg = BeamConfig { max_iters: iters, ..BeamConfig::with_width(w) };
        let t0 = std::time::Instant::now();
        let r = select_packs(&ctx, &cfg);
        println!(
            "beam {w}: vec {:.1} scalar {:.1} packs {} ({:?})",
            r.vector_cost,
            r.scalar_cost,
            r.packs.len(),
            t0.elapsed()
        );
    }
}
