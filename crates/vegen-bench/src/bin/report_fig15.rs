//! Fig. 15 / §7.4: complex multiplication. VeGen uses `vfmaddsub213pd`;
//! the LLVM-SLP baseline leaves the kernel scalar because of the
//! blend-cost overestimate in its profitability analysis.

use vegen::driver::PipelineConfig;
use vegen_baseline::{vectorize_baseline, BaselineConfig};
use vegen_core::BeamConfig;
use vegen_ir::canon::{add_narrow_constants, canonicalize};
use vegen_isa::TargetIsa;
use vegen_vm::static_cycles;

fn main() {
    let k = vegen_kernels::find("cmul").unwrap();
    let f = (k.build)();
    let cfg = PipelineConfig {
        target: TargetIsa::avx2(),
        beam: BeamConfig::with_width(64),
        canonicalize_patterns: true,
    };
    let ck = vegen_bench::engine()
        .compile_one(k.name, &f, &cfg)
        .kernel
        .expect("suite kernel must compile");
    ck.verify(64).expect("cmul must stay correct");
    let (sc, bl, vg) = ck.cycles();
    println!("== Fig. 15 — complex multiplication, AVX2 ==");
    println!("scalar {sc:.1} | LLVM-SLP {bl:.1} | VeGen {vg:.1} cycles");
    println!("VeGen speedup over LLVM: {:.2}x (paper: 1.27x)\n", bl / vg);
    println!(
        "VeGen ({} instructions):\n{}",
        ck.vegen.instruction_count(),
        vegen_vm::listing(&ck.vegen)
    );
    println!(
        "LLVM-SLP baseline ({} instructions):\n{}",
        ck.baseline.instruction_count(),
        vegen_vm::listing(&ck.baseline)
    );
    assert_eq!(ck.baseline_trees, 0, "the baseline must refuse to vectorize cmul (§7.4)");
    assert!(ck.vegen.vector_ops_used().iter().any(|n| n.contains("fmaddsub")));

    // §7.4's root-cause analysis, reproduced: sweep the blend charge the
    // baseline's cost model adds to an alternating bundle. The cmul tree
    // is borderline (a broadcast plus a reversed gather eat the margin);
    // the blend overestimate is what keeps it strictly unprofitable.
    let prepared = add_narrow_constants(&canonicalize(&f));
    println!("Blend-cost sweep (the §7.4 overestimate):");
    for blend in [0.0, 1.0, 2.0, 3.0] {
        let cfg = BaselineConfig { addsub_blend_cost: blend, ..BaselineConfig::avx2() };
        let r = vectorize_baseline(&prepared, &cfg);
        println!(
            "  blend cost {blend}: baseline vectorizes {} tree(s), {:.1} cycles",
            r.trees_vectorized,
            static_cycles(&r.program)
        );
    }
}
