//! Fig. 10: speedups (over the LLVM-SLP baseline) on the 21 instruction-
//! selection tests ported from LLVM's x86 backend. Table (a) lists tests
//! the baseline can vectorize; (b) lists those it cannot (all non-SIMD).

use vegen_bench::{config, measure_batch};
use vegen_isa::TargetIsa;
use vegen_kernels::Suite;

fn main() {
    // Both the SLP heuristic and beam search generate the same code on
    // these tests in the paper; we report both widths to demonstrate it.
    // Each width is one parallel batch through the shared engine.
    let cfg1 = config(TargetIsa::avx2(), 1, true);
    let cfg64 = config(TargetIsa::avx2(), 64, true);
    for (title, suite, paper) in [
        (
            "Fig. 10(a) — tests LLVM is able to vectorize",
            Suite::IselVectorizable,
            "paper: max/min 1.0, mul_addsub 1.0, abs_pd 0.8, abs_ps 0.4, abs_iN 1.0",
        ),
        (
            "Fig. 10(b) — tests LLVM is unable to vectorize",
            Suite::IselNonSimd,
            "paper: hadd_pd 1.4, hadd_ps 1.2, hsub_pd 1.4, hsub_ps 1.2, hadd_i16 2.9, hsub_i16 4.9, hadd_i32 1.3, hsub_i32 1.3, pmaddubs 16.8, pmaddwd 4.2",
        ),
    ] {
        let kernels: Vec<_> =
            vegen_kernels::all().into_iter().filter(|k| k.suite == suite).collect();
        let rows1 = measure_batch(&kernels, &cfg1);
        let rows64 = measure_batch(&kernels, &cfg64);
        let mut rows = Vec::new();
        for (r1, r64) in rows1.iter().zip(&rows64) {
            rows.push(vec![
                r1.name.clone(),
                format!("{:.1}", r1.speedup),
                format!("{:.1}", r64.speedup),
                if r1.baseline_vectorized { "yes".into() } else { "no".into() },
                r64.vegen_ops.join(" "),
            ]);
        }
        vegen_bench::print_table(
            title,
            &["test", "speedup (k=1)", "speedup (k=64)", "LLVM vectorizes", "VeGen ops"],
            &rows,
        );
        println!("{paper}");
    }
}
