//! Instruction specifications: Intel-style pseudocode plus metadata.
//!
//! These play the role of the Intrinsics Guide XML in the paper's pipeline.
//! A convention worth noting (pinned by tests in `vegen-pseudo`): arithmetic
//! is written at the C-promotion width — e.g. `pmaddwd` multiplies
//! *sign-extended 32-bit* values — so the lifted patterns match the IR that
//! a C compiler's front end produces for the reference scalar kernels,
//! which is exactly the canonical form the paper gets by running the
//! patterns through `instcombine`.

use crate::{Extension, InstDef};
use std::fmt::Write as _;
use std::sync::OnceLock;
use vegen_pseudo::{translate, FpMode, TranslateError};

/// A buildable instruction specification.
#[derive(Debug, Clone)]
pub struct Spec {
    /// Unique name `<mnemonic>_<bits>`.
    pub name: String,
    /// Assembly mnemonic for listings.
    pub asm: String,
    /// Required extension.
    pub ext: Extension,
    /// Output register width in bits.
    pub bits: u32,
    /// Output element width in bits.
    pub out_elem_bits: u32,
    /// Integer or float arithmetic.
    pub fp: FpMode,
    /// Inverse throughput in cycles (from Intrinsics Guide `perf2.js`-style
    /// data); the paper's cost is twice this (§6.2).
    pub inv_throughput: f64,
    /// Input registers: `(name, width in bits)`.
    pub inputs: Vec<(String, u32)>,
    /// The pseudocode.
    pub pseudocode: String,
}

impl Spec {
    /// Run the offline pipeline for this spec.
    ///
    /// # Errors
    ///
    /// Propagates any stage failure from [`vegen_pseudo::translate`].
    pub fn build(&self) -> Result<InstDef, TranslateError> {
        let inputs: Vec<(&str, u32)> = self.inputs.iter().map(|(n, w)| (n.as_str(), *w)).collect();
        let sem = translate(
            &self.name,
            &inputs,
            self.bits,
            self.out_elem_bits,
            self.fp,
            &self.pseudocode,
        )?;
        Ok(InstDef {
            name: self.name.clone(),
            asm: self.asm.clone(),
            ext: self.ext,
            bits: self.bits,
            cost: 2.0 * self.inv_throughput,
            sem,
        })
    }
}

/// `a[i+15:i]`-style slice text.
fn lane(reg: &str, base: u32, elem: u32) -> String {
    format!("{reg}[{}:{}]", base + elem - 1, base)
}

/// An elementwise two-input SIMD body applied to every lane.
fn simd2(bits: u32, elem: u32, f: impl Fn(&str, &str) -> String) -> String {
    let mut s = String::new();
    for j in 0..bits / elem {
        let i = j * elem;
        let a = lane("a", i, elem);
        let b = lane("b", i, elem);
        let _ = writeln!(s, "dst[{}:{}] := {}", i + elem - 1, i, f(&a, &b));
    }
    s
}

/// An elementwise one-input SIMD body.
fn simd1(bits: u32, elem: u32, f: impl Fn(&str) -> String) -> String {
    let mut s = String::new();
    for j in 0..bits / elem {
        let i = j * elem;
        let a = lane("a", i, elem);
        let _ = writeln!(s, "dst[{}:{}] := {}", i + elem - 1, i, f(&a));
    }
    s
}

/// An elementwise three-input SIMD body (FMA family).
fn simd3(bits: u32, elem: u32, f: impl Fn(&str, &str, &str, u32) -> String) -> String {
    let mut s = String::new();
    for j in 0..bits / elem {
        let i = j * elem;
        let a = lane("a", i, elem);
        let b = lane("b", i, elem);
        let c = lane("c", i, elem);
        let _ = writeln!(s, "dst[{}:{}] := {}", i + elem - 1, i, f(&a, &b, &c, j));
    }
    s
}

struct SpecBuilder {
    specs: Vec<Spec>,
}

impl SpecBuilder {
    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        mnemonic: &str,
        asm: &str,
        ext: Extension,
        bits: u32,
        out_elem: u32,
        fp: FpMode,
        inv_tp: f64,
        n_inputs: usize,
        pseudocode: String,
    ) {
        let input_names = ["a", "b", "c"];
        // Accumulator-style instructions pass src explicitly instead.
        let inputs: Vec<(String, u32)> =
            input_names[..n_inputs].iter().map(|n| (n.to_string(), bits)).collect();
        self.specs.push(Spec {
            name: format!("{mnemonic}_{bits}"),
            asm: asm.to_string(),
            ext,
            bits,
            out_elem_bits: out_elem,
            fp,
            inv_throughput: inv_tp,
            inputs,
            pseudocode,
        });
    }
}

/// Extension required for a plain SSE2-era op at each width.
fn int_ext(bits: u32) -> Extension {
    match bits {
        128 => Extension::Sse2,
        256 => Extension::Avx2,
        _ => Extension::Avx512f,
    }
}

fn float_ext(bits: u32) -> Extension {
    match bits {
        128 => Extension::Sse2,
        256 => Extension::Avx,
        _ => Extension::Avx512f,
    }
}

/// All built-in instruction specs.
pub fn all_specs() -> &'static [Spec] {
    static SPECS: OnceLock<Vec<Spec>> = OnceLock::new();
    SPECS.get_or_init(build_all)
}

fn build_all() -> Vec<Spec> {
    let mut b = SpecBuilder { specs: Vec::new() };
    use Extension::*;
    use FpMode::{Float, Int};

    // ------------------------------------------------------------------
    // Plain integer SIMD arithmetic.
    // ------------------------------------------------------------------
    for bits in [128u32, 256, 512] {
        for (mn, elem) in [("paddb", 8), ("paddw", 16), ("paddd", 32), ("paddq", 64)] {
            b.push(
                mn,
                &format!("v{mn}"),
                int_ext(bits),
                bits,
                elem,
                Int,
                0.33,
                2,
                simd2(bits, elem, |a, bb| format!("{a} + {bb}")),
            );
        }
        for (mn, elem) in [("psubb", 8), ("psubw", 16), ("psubd", 32), ("psubq", 64)] {
            b.push(
                mn,
                &format!("v{mn}"),
                int_ext(bits),
                bits,
                elem,
                Int,
                0.33,
                2,
                simd2(bits, elem, |a, bb| format!("{a} - {bb}")),
            );
        }
        // Low-half multiplies (wrapping).
        b.push(
            "pmullw",
            "vpmullw",
            int_ext(bits),
            bits,
            16,
            Int,
            0.5,
            2,
            simd2(bits, 16, |a, bb| format!("{a} * {bb}")),
        );
        let mulld_ext = if bits == 128 { Sse41 } else { int_ext(bits) };
        b.push(
            "pmulld",
            "vpmulld",
            mulld_ext,
            bits,
            32,
            Int,
            1.0,
            2,
            simd2(bits, 32, |a, bb| format!("{a} * {bb}")),
        );
        // Bitwise ops.
        b.push(
            "pand",
            "vpand",
            int_ext(bits),
            bits,
            64,
            Int,
            0.33,
            2,
            simd2(bits, 64, |a, bb| format!("{a} AND {bb}")),
        );
        b.push(
            "por",
            "vpor",
            int_ext(bits),
            bits,
            64,
            Int,
            0.33,
            2,
            simd2(bits, 64, |a, bb| format!("{a} OR {bb}")),
        );
        b.push(
            "pxor",
            "vpxor",
            int_ext(bits),
            bits,
            64,
            Int,
            0.33,
            2,
            simd2(bits, 64, |a, bb| format!("{a} XOR {bb}")),
        );
    }

    // Saturating adds/subs (SSE2-era; 256 needs AVX2).
    for bits in [128u32, 256] {
        let e = int_ext(bits);
        b.push(
            "paddsb",
            "vpaddsb",
            e,
            bits,
            8,
            Int,
            0.5,
            2,
            simd2(bits, 8, |a, bb| format!("Saturate8(SignExtend32({a}) + SignExtend32({bb}))")),
        );
        b.push(
            "paddsw",
            "vpaddsw",
            e,
            bits,
            16,
            Int,
            0.5,
            2,
            simd2(bits, 16, |a, bb| format!("Saturate16(SignExtend32({a}) + SignExtend32({bb}))")),
        );
        b.push(
            "psubsb",
            "vpsubsb",
            e,
            bits,
            8,
            Int,
            0.5,
            2,
            simd2(bits, 8, |a, bb| format!("Saturate8(SignExtend32({a}) - SignExtend32({bb}))")),
        );
        b.push(
            "psubsw",
            "vpsubsw",
            e,
            bits,
            16,
            Int,
            0.5,
            2,
            simd2(bits, 16, |a, bb| format!("Saturate16(SignExtend32({a}) - SignExtend32({bb}))")),
        );
        b.push(
            "paddusb",
            "vpaddusb",
            e,
            bits,
            8,
            Int,
            0.5,
            2,
            simd2(bits, 8, |a, bb| format!("SaturateU8(ZeroExtend32({a}) + ZeroExtend32({bb}))")),
        );
        b.push(
            "paddusw",
            "vpaddusw",
            e,
            bits,
            16,
            Int,
            0.5,
            2,
            simd2(bits, 16, |a, bb| format!("SaturateU16(ZeroExtend32({a}) + ZeroExtend32({bb}))")),
        );
        b.push(
            "psubusb",
            "vpsubusb",
            e,
            bits,
            8,
            Int,
            0.5,
            2,
            simd2(bits, 8, |a, bb| format!("SaturateU8(ZeroExtend32({a}) - ZeroExtend32({bb}))")),
        );
        b.push(
            "psubusw",
            "vpsubusw",
            e,
            bits,
            16,
            Int,
            0.5,
            2,
            simd2(bits, 16, |a, bb| format!("SaturateU16(ZeroExtend32({a}) - ZeroExtend32({bb}))")),
        );
    }

    // Integer min/max (mixed SSE2/SSE4.1 heritage) and abs (SSSE3).
    for bits in [128u32, 256] {
        let sse41_or_avx2 = if bits == 128 { Sse41 } else { Avx2 };
        let sse2_or_avx2 = int_ext(bits);
        let ssse3_or_avx2 = if bits == 128 { Ssse3 } else { Avx2 };
        for (mn, elem, ext, fun) in [
            ("pminsb", 8, sse41_or_avx2, "MIN"),
            ("pminsw", 16, sse2_or_avx2, "MIN"),
            ("pminsd", 32, sse41_or_avx2, "MIN"),
            ("pmaxsb", 8, sse41_or_avx2, "MAX"),
            ("pmaxsw", 16, sse2_or_avx2, "MAX"),
            ("pmaxsd", 32, sse41_or_avx2, "MAX"),
            ("pminub", 8, sse2_or_avx2, "MINU"),
            ("pminuw", 16, sse41_or_avx2, "MINU"),
            ("pminud", 32, sse41_or_avx2, "MINU"),
            ("pmaxub", 8, sse2_or_avx2, "MAXU"),
            ("pmaxuw", 16, sse41_or_avx2, "MAXU"),
            ("pmaxud", 32, sse41_or_avx2, "MAXU"),
        ] {
            b.push(
                mn,
                &format!("v{mn}"),
                ext,
                bits,
                elem,
                Int,
                0.5,
                2,
                simd2(bits, elem, |a, bb| format!("{fun}({a}, {bb})")),
            );
        }
        for (mn, elem) in [("pabsb", 8), ("pabsw", 16), ("pabsd", 32)] {
            b.push(
                mn,
                &format!("v{mn}"),
                ssse3_or_avx2,
                bits,
                elem,
                Int,
                0.5,
                1,
                simd1(bits, elem, |a| format!("ABS({a})")),
            );
        }
    }

    // Variable per-lane shifts (AVX2) — how shift-by-constant scalar code
    // vectorizes (the shift-amount operand becomes a constant vector).
    for bits in [128u32, 256] {
        b.push(
            "psllvd",
            "vpsllvd",
            Avx2,
            bits,
            32,
            Int,
            0.5,
            2,
            simd2(bits, 32, |a, bb| format!("{a} << {bb}")),
        );
        b.push(
            "psravd",
            "vpsravd",
            Avx2,
            bits,
            32,
            Int,
            0.5,
            2,
            simd2(bits, 32, |a, bb| format!("{a} >> {bb}")),
        );
    }

    // Averages and high-half multiplies (SSE2): rounding-average bytes and
    // words, and the upper 16 bits of widening word products.
    for bits in [128u32, 256] {
        let e = int_ext(bits);
        for (mn, elem, ext_fn) in [("pavgb", 8u32, "ZeroExtend16"), ("pavgw", 16, "ZeroExtend32")] {
            b.push(
                mn,
                &format!("v{mn}"),
                e,
                bits,
                elem,
                Int,
                0.5,
                2,
                simd2(bits, elem, |a, bb| {
                    format!("Truncate{elem}(({ext_fn}({a}) + {ext_fn}({bb}) + 1) >> 1)")
                }),
            );
        }
        for (mn, ext_fn) in [("pmulhw", "SignExtend32"), ("pmulhuw", "ZeroExtend32")] {
            let mut code = String::new();
            for j in 0..bits / 16 {
                let i = j * 16;
                let _ = writeln!(
                    code,
                    "tmp{j}[31:0] := {ext_fn}({}) * {ext_fn}({})\ndst[{}:{}] := tmp{j}[31:16]",
                    lane("a", i, 16),
                    lane("b", i, 16),
                    i + 15,
                    i,
                );
            }
            b.push(mn, &format!("v{mn}"), e, bits, 16, Int, 0.5, 2, code);
        }
    }

    // ------------------------------------------------------------------
    // Widening moves (SSE4.1 pmovsx/pmovzx family): how byte/word data
    // reaches dword lanes — required for the "naive" vectorization of the
    // OpenCV byte kernels.
    // ------------------------------------------------------------------
    for (bits, ext) in [(128u32, Sse41), (256, Avx2), (512, Avx512f)] {
        for (mn, from, to, fun) in [
            ("pmovsxbw", 8u32, 16u32, "SignExtend16"),
            ("pmovsxbd", 8, 32, "SignExtend32"),
            ("pmovsxwd", 16, 32, "SignExtend32"),
            ("pmovsxdq", 32, 64, "SignExtend64"),
            ("pmovzxbw", 8, 16, "ZeroExtend16"),
            ("pmovzxbd", 8, 32, "ZeroExtend32"),
            ("pmovzxwd", 16, 32, "ZeroExtend32"),
            ("pmovzxdq", 32, 64, "ZeroExtend64"),
        ] {
            let lanes = bits / to;
            let mut code = String::new();
            for j in 0..lanes {
                let _ = writeln!(
                    code,
                    "dst[{}:{}] := {fun}({})",
                    (j + 1) * to - 1,
                    j * to,
                    lane("a", j * from, from),
                );
            }
            // The source register is always 128-bit (xmm) except for the
            // 512-bit word->dword variants that read a full ymm.
            let in_bits = (lanes * from).max(128).next_power_of_two();
            b.push_in(mn, &format!("v{mn}"), ext, bits, in_bits, to, Int, 0.5, code);
        }
    }

    // ------------------------------------------------------------------
    // Float SIMD.
    // ------------------------------------------------------------------
    for bits in [128u32, 256, 512] {
        let e = float_ext(bits);
        for (mn, elem, op, tp) in [
            ("addps", 32, "+", 0.5),
            ("addpd", 64, "+", 0.5),
            ("subps", 32, "-", 0.5),
            ("subpd", 64, "-", 0.5),
            ("mulps", 32, "*", 0.5),
            ("mulpd", 64, "*", 0.5),
        ] {
            b.push(
                mn,
                &format!("v{mn}"),
                e,
                bits,
                elem,
                Float,
                tp,
                2,
                simd2(bits, elem, |a, bb| format!("{a} {op} {bb}")),
            );
        }
        for (mn, elem, fun) in
            [("minps", 32, "MIN"), ("minpd", 64, "MIN"), ("maxps", 32, "MAX"), ("maxpd", 64, "MAX")]
        {
            b.push(
                mn,
                &format!("v{mn}"),
                e,
                bits,
                elem,
                Float,
                0.5,
                2,
                simd2(bits, elem, |a, bb| format!("{fun}({a}, {bb})")),
            );
        }
    }

    // ------------------------------------------------------------------
    // Non-SIMD: SIMOMD addsub, FMA addsub (Fig. 1(b), §7.4).
    // ------------------------------------------------------------------
    for bits in [128u32, 256] {
        let sse3_or_avx = if bits == 128 { Sse3 } else { Avx };
        for (mn, elem) in [("addsubps", 32), ("addsubpd", 64)] {
            b.push(
                mn,
                &format!("v{mn}"),
                sse3_or_avx,
                bits,
                elem,
                Float,
                1.0,
                2,
                addsub(bits, elem),
            );
        }
        for (mn, elem) in [("fmaddsub213ps", 32), ("fmaddsub213pd", 64)] {
            b.push(
                mn,
                &format!("v{mn}"),
                Fma,
                bits,
                elem,
                Float,
                0.5,
                3,
                simd3(bits, elem, |a, bb, c, j| {
                    if j % 2 == 0 {
                        format!("{a} * {bb} - {c}")
                    } else {
                        format!("{a} * {bb} + {c}")
                    }
                }),
            );
        }
        for (mn, elem) in [("fmadd213ps", 32), ("fmadd213pd", 64)] {
            b.push(
                mn,
                &format!("v{mn}"),
                Fma,
                bits,
                elem,
                Float,
                0.5,
                3,
                simd3(bits, elem, |a, bb, c, _| format!("{a} * {bb} + {c}")),
            );
        }
        for (mn, elem) in [("fmsub213ps", 32), ("fmsub213pd", 64)] {
            b.push(
                mn,
                &format!("v{mn}"),
                Fma,
                bits,
                elem,
                Float,
                0.5,
                3,
                simd3(bits, elem, |a, bb, c, _| format!("{a} * {bb} - {c}")),
            );
        }
    }

    // ------------------------------------------------------------------
    // Non-SIMD: horizontal add/sub, float and integer (Fig. 1(c)).
    // 256-bit variants operate within each 128-bit half, faithfully.
    // ------------------------------------------------------------------
    for bits in [128u32, 256] {
        let sse3_or_avx = if bits == 128 { Sse3 } else { Avx };
        let ssse3_or_avx2 = if bits == 128 { Ssse3 } else { Avx2 };
        for (mn, elem, op, fp, ext, tp) in [
            ("haddps", 32, "+", Float, sse3_or_avx, 2.0),
            ("haddpd", 64, "+", Float, sse3_or_avx, 2.0),
            ("hsubps", 32, "-", Float, sse3_or_avx, 2.0),
            ("hsubpd", 64, "-", Float, sse3_or_avx, 2.0),
            ("phaddw", 16, "+", Int, ssse3_or_avx2, 2.0),
            ("phaddd", 32, "+", Int, ssse3_or_avx2, 2.0),
            ("phsubw", 16, "-", Int, ssse3_or_avx2, 2.0),
            ("phsubd", 32, "-", Int, ssse3_or_avx2, 2.0),
        ] {
            b.push(mn, &format!("v{mn}"), ext, bits, elem, fp, tp, 2, horizontal(bits, elem, op));
        }
    }

    // ------------------------------------------------------------------
    // Non-SIMD: multiply-add dot products (Fig. 1(d)) and VNNI.
    // ------------------------------------------------------------------
    for bits in [128u32, 256, 512] {
        let ext = match bits {
            128 => Sse2,
            256 => Avx2,
            _ => Avx512f,
        };
        b.push("pmaddwd", "vpmaddwd", ext, bits, 32, Int, 0.5, 2, pmaddwd(bits));
        let ext_ub = match bits {
            128 => Ssse3,
            256 => Avx2,
            _ => Avx512f,
        };
        b.push("pmaddubsw", "vpmaddubsw", ext_ub, bits, 16, Int, 0.5, 2, pmaddubsw(bits));
    }
    for bits in [128u32, 256, 512] {
        b.push_acc("vpdpbusd", Avx512Vnni, bits, 0.5, vpdpbusd(bits));
        b.push_acc("vpdpwssd", Avx512Vnni, bits, 0.5, vpdpwssd(bits));
    }

    // ------------------------------------------------------------------
    // Non-SIMD: widening odd-lane multiplies (Fig. 6) and pack-saturate.
    // ------------------------------------------------------------------
    for bits in [128u32, 256] {
        let sse41_or_avx2 = if bits == 128 { Sse41 } else { Avx2 };
        b.push(
            "pmuldq",
            "vpmuldq",
            sse41_or_avx2,
            bits,
            64,
            Int,
            0.5,
            2,
            pmul_dq(bits, "SignExtend64"),
        );
        b.push(
            "pmuludq",
            "vpmuludq",
            int_ext(bits),
            bits,
            64,
            Int,
            0.5,
            2,
            pmul_dq(bits, "ZeroExtend64"),
        );
        for (mn, in_elem, sat) in [
            ("packssdw", 32, "Saturate16"),
            ("packsswb", 16, "Saturate8"),
            ("packusdw", 32, "SaturateU16"),
            ("packuswb", 16, "SaturateU8"),
        ] {
            let ext = if mn == "packusdw" { sse41_or_avx2 } else { int_ext(bits) };
            b.push(
                mn,
                &format!("v{mn}"),
                ext,
                bits,
                in_elem / 2,
                Int,
                1.0,
                2,
                pack_saturate(bits, in_elem, sat),
            );
        }
    }

    b.specs
}

impl SpecBuilder {
    /// Single-input instruction with an explicit input register width
    /// (the pmovsx/zx family reads a narrower register than it writes).
    #[allow(clippy::too_many_arguments)]
    fn push_in(
        &mut self,
        mnemonic: &str,
        asm: &str,
        ext: Extension,
        bits: u32,
        in_bits: u32,
        out_elem: u32,
        fp: FpMode,
        inv_tp: f64,
        pseudocode: String,
    ) {
        self.specs.push(Spec {
            name: format!("{mnemonic}_{bits}"),
            asm: asm.to_string(),
            ext,
            bits,
            out_elem_bits: out_elem,
            fp,
            inv_throughput: inv_tp,
            inputs: vec![("a".into(), in_bits)],
            pseudocode,
        });
    }

    /// Accumulator-style: `dst = src (+) f(a, b)` with `src` as input 0.
    fn push_acc(&mut self, mnemonic: &str, ext: Extension, bits: u32, inv_tp: f64, code: String) {
        self.specs.push(Spec {
            name: format!("{mnemonic}_{bits}"),
            asm: mnemonic.to_string(),
            ext,
            bits,
            out_elem_bits: 32,
            fp: FpMode::Int,
            inv_throughput: inv_tp,
            inputs: vec![("src".into(), bits), ("a".into(), bits), ("b".into(), bits)],
            pseudocode: code,
        });
    }
}

/// `addsub`: subtract on even lanes, add on odd lanes (Fig. 1(b)).
fn addsub(bits: u32, elem: u32) -> String {
    let mut s = String::new();
    for j in 0..bits / elem {
        let i = j * elem;
        let op = if j % 2 == 0 { "-" } else { "+" };
        let _ = writeln!(
            s,
            "dst[{}:{}] := {} {op} {}",
            i + elem - 1,
            i,
            lane("a", i, elem),
            lane("b", i, elem),
        );
    }
    s
}

/// Horizontal pairwise combine: lanes `[0, n/2)` from `a`, `[n/2, n)` from
/// `b`, per 128-bit half for the 256-bit variants. Following x86, `hadd`
/// computes `a[1] + a[0]` and `hsub` computes `a[0] - a[1]`.
fn horizontal(bits: u32, elem: u32, op: &str) -> String {
    let mut s = String::new();
    let half = 128;
    for h in 0..bits / half {
        let base = h * half;
        let pairs_per_reg = half / (2 * elem);
        for (reg, reg_slot) in [("a", 0u32), ("b", 1u32)] {
            for p in 0..pairs_per_reg {
                let lo_in = base + p * 2 * elem;
                let hi_in = lo_in + elem;
                let out = base + (reg_slot * pairs_per_reg + p) * elem;
                let (x, y) = if op == "-" {
                    (lane(reg, lo_in, elem), lane(reg, hi_in, elem))
                } else {
                    (lane(reg, hi_in, elem), lane(reg, lo_in, elem))
                };
                let _ = writeln!(s, "dst[{}:{}] := {x} {op} {y}", out + elem - 1, out);
            }
        }
    }
    s
}

/// `pmaddwd`: adjacent 16-bit pairs multiplied (sign-extended to 32) and
/// summed.
fn pmaddwd(bits: u32) -> String {
    let mut s = String::new();
    for j in 0..bits / 32 {
        let i = j * 32;
        let _ = writeln!(
            s,
            "dst[{}:{}] := SignExtend32({}) * SignExtend32({}) + SignExtend32({}) * SignExtend32({})",
            i + 31,
            i,
            lane("a", i, 16),
            lane("b", i, 16),
            lane("a", i + 16, 16),
            lane("b", i + 16, 16),
        );
    }
    s
}

/// `pmaddubsw`: unsigned×signed byte pairs, summed and saturated to 16 bits.
fn pmaddubsw(bits: u32) -> String {
    let mut s = String::new();
    for j in 0..bits / 16 {
        let i = j * 16;
        let _ = writeln!(
            s,
            "dst[{}:{}] := Saturate16(ZeroExtend32({}) * SignExtend32({}) + ZeroExtend32({}) * SignExtend32({}))",
            i + 15,
            i,
            lane("a", i, 8),
            lane("b", i, 8),
            lane("a", i + 8, 8),
            lane("b", i + 8, 8),
        );
    }
    s
}

/// VNNI `vpdpbusd`: per 32-bit lane, accumulate four unsigned×signed byte
/// products into `src`.
fn vpdpbusd(bits: u32) -> String {
    let mut s = String::new();
    for j in 0..bits / 32 {
        let i = j * 32;
        let mut terms = lane("src", i, 32).to_string();
        for k in 0..4 {
            let bi = i + k * 8;
            let _ = write!(
                terms,
                " + ZeroExtend32({}) * SignExtend32({})",
                lane("a", bi, 8),
                lane("b", bi, 8)
            );
        }
        let _ = writeln!(s, "dst[{}:{}] := {}", i + 31, i, terms);
    }
    s
}

/// VNNI `vpdpwssd`: per 32-bit lane, accumulate two signed word products.
fn vpdpwssd(bits: u32) -> String {
    let mut s = String::new();
    for j in 0..bits / 32 {
        let i = j * 32;
        let _ = writeln!(
            s,
            "dst[{}:{}] := {} + SignExtend32({}) * SignExtend32({}) + SignExtend32({}) * SignExtend32({})",
            i + 31,
            i,
            lane("src", i, 32),
            lane("a", i, 16),
            lane("b", i, 16),
            lane("a", i + 16, 16),
            lane("b", i + 16, 16),
        );
    }
    s
}

/// `pmuldq`/`pmuludq`: widening multiplies of the even (0-indexed) 32-bit
/// lanes only — the don't-care-lane example of Fig. 6.
fn pmul_dq(bits: u32, extend: &str) -> String {
    let mut s = String::new();
    for j in 0..bits / 64 {
        let out = j * 64;
        let in_lane = j * 64; // lanes 0, 2, 4, ... of the 32-bit grid
        let _ = writeln!(
            s,
            "dst[{}:{}] := {extend}({}) * {extend}({})",
            out + 63,
            out,
            lane("a", in_lane, 32),
            lane("b", in_lane, 32),
        );
    }
    s
}

/// Pack with saturation: narrow `a`'s elements into the low half and `b`'s
/// into the high half (per 128-bit half for 256-bit variants).
fn pack_saturate(bits: u32, in_elem: u32, sat: &str) -> String {
    let out_elem = in_elem / 2;
    let mut s = String::new();
    let half = 128;
    for h in 0..bits / half {
        let base = h * half;
        let in_per_reg = half / in_elem;
        for (reg, slot) in [("a", 0u32), ("b", 1u32)] {
            for p in 0..in_per_reg {
                let src = base + p * in_elem;
                let out = base + (slot * in_per_reg + p) * out_elem;
                let _ = writeln!(
                    s,
                    "dst[{}:{}] := {sat}({})",
                    out + out_elem - 1,
                    out,
                    lane(reg, src, in_elem),
                );
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizontal_128_pd_shape() {
        let code = horizontal(128, 64, "+");
        assert!(code.contains("dst[63:0] := a[127:64] + a[63:0]"));
        assert!(code.contains("dst[127:64] := b[127:64] + b[63:0]"));
    }

    #[test]
    fn horizontal_256_is_per_half() {
        let code = horizontal(256, 64, "+");
        // Second half takes a's upper 128 bits, not b's.
        assert!(code.contains("dst[191:128] := a[255:192] + a[191:128]"));
        assert!(code.contains("dst[255:192] := b[255:192] + b[191:128]"));
    }

    #[test]
    fn pack_shape_128() {
        let code = pack_saturate(128, 32, "Saturate16");
        assert!(code.contains("dst[15:0] := Saturate16(a[31:0])"));
        assert!(code.contains("dst[79:64] := Saturate16(b[31:0])"));
    }

    #[test]
    fn vpdpbusd_has_accumulator_and_four_products() {
        let code = vpdpbusd(128);
        let first = code.lines().next().unwrap();
        assert!(first.starts_with("dst[31:0] := src[31:0]"));
        assert_eq!(first.matches('*').count(), 4);
    }

    #[test]
    fn every_spec_builds() {
        // The full pipeline (including random-testing validation) must pass
        // for every built-in instruction. This is the reproduction of the
        // paper's offline validation run.
        for s in all_specs() {
            s.build().unwrap_or_else(|e| panic!("{} failed: {e}", s.name));
        }
    }

    #[test]
    fn spec_count_is_substantial() {
        assert!(all_specs().len() >= 60, "got {}", all_specs().len());
    }
}
