#![warn(missing_docs)]

//! The target instruction database.
//!
//! Each instruction is *specified* by its Intel-style pseudocode (the same
//! input format the paper consumes from the Intrinsics Guide XML) plus
//! metadata (ISA extension, vector width, inverse throughput). At database
//! construction the whole offline pipeline runs per instruction —
//! pseudocode → symbolic evaluation → simplification → lifting → VIDL →
//! random-testing validation — exactly reproducing VeGen's offline phase.
//!
//! The database covers the SSE2/SSE3/SSSE3/SSE4.1/AVX/AVX2/FMA/AVX512-VNNI
//! subsets the paper's evaluation exercises: plain SIMD arithmetic,
//! saturating arithmetic, min/max/abs, the non-SIMD families (`addsub`,
//! horizontal add/sub, `pmaddwd`, `pmaddubsw`, `pmuldq`, the pack-saturate
//! family, `fmaddsub`) and the AVX512-VNNI dot products (`vpdpbusd`,
//! `vpdpwssd`).
//!
//! # Example
//!
//! ```
//! use vegen_isa::{InstDb, TargetIsa};
//!
//! let db = InstDb::for_target(&TargetIsa::avx2());
//! let pmaddwd = db.find("pmaddwd_128").expect("pmaddwd is in the AVX2 db");
//! assert_eq!(pmaddwd.sem.out_lanes(), 4);
//! assert!(!pmaddwd.sem.is_simd());
//!
//! // AVX512-VNNI adds the dot-product instructions.
//! let db512 = InstDb::for_target(&TargetIsa::avx512vnni());
//! assert!(db512.find("vpdpbusd_512").is_some());
//! ```

pub mod specs;

use std::collections::BTreeSet;
use std::sync::OnceLock;
use vegen_vidl::InstSemantics;

/// An ISA extension gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // variant and field names are the documentation
pub enum Extension {
    Sse2,
    Sse3,
    Ssse3,
    Sse41,
    Avx,
    Avx2,
    Fma,
    Avx512f,
    Avx512Vnni,
}

/// A target configuration: which extensions are available and the widest
/// vector register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetIsa {
    /// Display name (used in reports: "AVX2", "AVX512-VNNI").
    pub name: String,
    /// Enabled extensions.
    pub extensions: BTreeSet<Extension>,
    /// Maximum vector register width in bits (128, 256, or 512).
    pub max_bits: u32,
}

impl TargetIsa {
    /// The AVX2 server configuration of the paper (Xeon E5-2680 v3).
    pub fn avx2() -> TargetIsa {
        use Extension::*;
        TargetIsa {
            name: "AVX2".into(),
            extensions: [Sse2, Sse3, Ssse3, Sse41, Avx, Avx2, Fma].into_iter().collect(),
            max_bits: 256,
        }
    }

    /// The AVX512-VNNI server configuration of the paper (Xeon 8275CL).
    pub fn avx512vnni() -> TargetIsa {
        use Extension::*;
        TargetIsa {
            name: "AVX512-VNNI".into(),
            extensions: [Sse2, Sse3, Ssse3, Sse41, Avx, Avx2, Fma, Avx512f, Avx512Vnni]
                .into_iter()
                .collect(),
            max_bits: 512,
        }
    }

    /// A narrow SSE4-era target (used by ablation benches).
    pub fn sse4() -> TargetIsa {
        use Extension::*;
        TargetIsa {
            name: "SSE4".into(),
            extensions: [Sse2, Sse3, Ssse3, Sse41].into_iter().collect(),
            max_bits: 128,
        }
    }

    /// True if the target has `ext` enabled.
    pub fn has(&self, ext: Extension) -> bool {
        self.extensions.contains(&ext)
    }
}

/// One target instruction: metadata plus lifted VIDL semantics.
#[derive(Debug, Clone)]
pub struct InstDef {
    /// Unique name, `<mnemonic>_<bits>` (e.g. `pmaddwd_256`).
    pub name: String,
    /// Assembly mnemonic used in listings (e.g. `vpmaddwd`).
    pub asm: String,
    /// Required extension.
    pub ext: Extension,
    /// Total output width in bits.
    pub bits: u32,
    /// Cost: twice the inverse throughput, per §6.2 of the paper.
    pub cost: f64,
    /// Lifted, validated semantics.
    pub sem: InstSemantics,
}

/// The instruction database for one target.
#[derive(Debug, Clone)]
pub struct InstDb {
    defs: Vec<InstDef>,
}

impl InstDb {
    /// Build (or fetch from the process-wide cache) the database filtered to
    /// `target`'s extensions and register width.
    ///
    /// # Panics
    ///
    /// Panics if any built-in spec fails the offline pipeline — that would
    /// be a bug in the specs, and the validation suite pins each of them.
    pub fn for_target(target: &TargetIsa) -> InstDb {
        let all = full_database();
        InstDb {
            defs: all
                .iter()
                .filter(|d| target.has(d.ext) && d.bits <= target.max_bits)
                .cloned()
                .collect(),
        }
    }

    /// Build a database from explicit definitions — how downstream users
    /// retarget VeGen to a new (or hypothetical) instruction set: write
    /// [`specs::Spec`]s, `build()` them through the offline pipeline, and
    /// hand the results here.
    pub fn from_defs(defs: Vec<InstDef>) -> InstDb {
        InstDb { defs }
    }

    /// Every instruction available on this target.
    pub fn iter(&self) -> impl Iterator<Item = &InstDef> {
        self.defs.iter()
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True if the database is empty.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Look up an instruction by its unique name.
    pub fn find(&self, name: &str) -> Option<&InstDef> {
        self.defs.iter().find(|d| d.name == name)
    }
}

/// Build and cache the full (all-extensions) database once per process.
/// Running ~80 instructions through parse → symeval → simplify → lift →
/// validate takes a moment; everything downstream shares this.
pub fn full_database() -> &'static [InstDef] {
    static DB: OnceLock<Vec<InstDef>> = OnceLock::new();
    DB.get_or_init(|| {
        specs::all_specs()
            .iter()
            .map(|s| s.build().unwrap_or_else(|e| panic!("spec {} failed: {e}", s.name)))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_builds_and_validates() {
        let db = full_database();
        assert!(db.len() >= 60, "expected a substantial database, got {}", db.len());
    }

    #[test]
    fn avx2_excludes_vnni_and_512() {
        let db = InstDb::for_target(&TargetIsa::avx2());
        assert!(db.find("vpdpbusd_512").is_none());
        assert!(db.find("vpdpbusd_128").is_none());
        assert!(db.iter().all(|d| d.bits <= 256));
        assert!(db.find("pmaddwd_256").is_some());
    }

    #[test]
    fn vnni_target_has_dot_products() {
        let db = InstDb::for_target(&TargetIsa::avx512vnni());
        for n in ["vpdpbusd_128", "vpdpbusd_256", "vpdpbusd_512", "vpdpwssd_512"] {
            assert!(db.find(n).is_some(), "missing {n}");
        }
    }

    #[test]
    fn sse4_has_no_avx() {
        let db = InstDb::for_target(&TargetIsa::sse4());
        assert!(db.iter().all(|d| d.bits <= 128));
        assert!(db.find("fmaddsub_pd_128").is_none(), "FMA is post-SSE4");
    }

    #[test]
    fn non_simd_instructions_are_flagged() {
        let db = InstDb::for_target(&TargetIsa::avx2());
        for n in ["pmaddwd_128", "haddpd_128", "addsubpd_128", "pmaddubsw_128"] {
            let d = db.find(n).unwrap();
            assert!(!d.sem.is_simd(), "{n} must be non-SIMD");
        }
        for n in ["paddd_128", "mulpd_128", "pminsd_128"] {
            let d = db.find(n).unwrap();
            assert!(d.sem.is_simd(), "{n} must be SIMD");
        }
    }

    #[test]
    fn pmuldq_has_dont_care_lanes() {
        let db = InstDb::for_target(&TargetIsa::avx2());
        let d = db.find("pmuldq_128").unwrap();
        assert!(d.sem.has_dont_care_lanes(0));
        assert!(d.sem.has_dont_care_lanes(1));
    }

    #[test]
    fn costs_are_positive() {
        for d in full_database() {
            assert!(d.cost > 0.0, "{} has nonpositive cost", d.name);
        }
    }

    #[test]
    fn hsub_direction_matches_x86() {
        // HSUBPD: dst[0] = a[0] - a[1].
        use vegen_ir::Constant;
        use vegen_ir::Type;
        let db = InstDb::for_target(&TargetIsa::avx2());
        let d = db.find("hsubpd_128").unwrap();
        let a = vec![Constant::f64(5.0), Constant::f64(2.0)];
        let b = vec![Constant::f64(10.0), Constant::f64(4.0)];
        let out = vegen_vidl::eval_inst(&d.sem, &[a, b]).unwrap();
        assert_eq!(out[0].as_f64(), 3.0);
        assert_eq!(out[1].as_f64(), 6.0);
        let _ = Type::F64;
    }

    #[test]
    fn hadd_order_is_lane_hi_plus_lo() {
        use vegen_ir::Constant;
        let db = InstDb::for_target(&TargetIsa::avx2());
        let d = db.find("haddpd_128").unwrap();
        let a = vec![Constant::f64(1.0), Constant::f64(2.0)];
        let b = vec![Constant::f64(10.0), Constant::f64(20.0)];
        let out = vegen_vidl::eval_inst(&d.sem, &[a, b]).unwrap();
        assert_eq!(out[0].as_f64(), 3.0);
        assert_eq!(out[1].as_f64(), 30.0);
    }

    #[test]
    fn pmovsx_reads_low_lanes_only() {
        use vegen_ir::Constant;
        use vegen_ir::Type;
        let db = InstDb::for_target(&TargetIsa::avx2());
        let d = db.find("pmovsxbd_128").unwrap();
        assert_eq!(d.sem.out_lanes(), 4);
        assert_eq!(d.sem.inputs[0].lanes, 16);
        assert!(d.sem.has_dont_care_lanes(0), "lanes 4..16 are unused");
        let mut input = vec![Constant::int(Type::I8, 0); 16];
        input[0] = Constant::int(Type::I8, -5);
        input[3] = Constant::int(Type::I8, 127);
        input[7] = Constant::int(Type::I8, 99); // must be ignored
        let out = vegen_vidl::eval_inst(&d.sem, &[input]).unwrap();
        assert_eq!(out[0].as_i64(), -5);
        assert_eq!(out[3].as_i64(), 127);
    }

    #[test]
    fn vpdpwssd_accumulates_word_pairs() {
        use vegen_ir::Constant;
        use vegen_ir::Type;
        let db = InstDb::for_target(&TargetIsa::avx512vnni());
        let d = db.find("vpdpwssd_128").unwrap();
        let src = vec![Constant::int(Type::I32, 1000); 4];
        let mut a = vec![Constant::int(Type::I16, 0); 8];
        let mut b = vec![Constant::int(Type::I16, 0); 8];
        a[0] = Constant::int(Type::I16, -3);
        b[0] = Constant::int(Type::I16, 100);
        a[1] = Constant::int(Type::I16, 7);
        b[1] = Constant::int(Type::I16, 10);
        let out = vegen_vidl::eval_inst(&d.sem, &[src, a, b]).unwrap();
        assert_eq!(out[0].as_i64(), 1000 - 300 + 70);
        assert_eq!(out[1].as_i64(), 1000);
    }

    #[test]
    fn packssdw_saturates_and_interleaves_registers() {
        use vegen_ir::Constant;
        use vegen_ir::Type;
        let db = InstDb::for_target(&TargetIsa::avx2());
        let d = db.find("packssdw_128").unwrap();
        let a: Vec<Constant> =
            [100_000, -100_000, 5, -5].iter().map(|&v| Constant::int(Type::I32, v)).collect();
        let b: Vec<Constant> = [1, 2, 3, 4].iter().map(|&v| Constant::int(Type::I32, v)).collect();
        let out = vegen_vidl::eval_inst(&d.sem, &[a, b]).unwrap();
        let vals: Vec<i64> = out.iter().map(|c| c.as_i64()).collect();
        assert_eq!(vals, vec![32767, -32768, 5, -5, 1, 2, 3, 4]);
    }

    #[test]
    fn addsub_subtracts_even_adds_odd() {
        use vegen_ir::Constant;
        let db = InstDb::for_target(&TargetIsa::avx2());
        let d = db.find("addsubpd_128").unwrap();
        let a = vec![Constant::f64(10.0), Constant::f64(10.0)];
        let b = vec![Constant::f64(3.0), Constant::f64(3.0)];
        let out = vegen_vidl::eval_inst(&d.sem, &[a, b]).unwrap();
        assert_eq!(out[0].as_f64(), 7.0);
        assert_eq!(out[1].as_f64(), 13.0);
    }

    #[test]
    fn fmaddsub_is_fms_even_fma_odd() {
        use vegen_ir::Constant;
        let db = InstDb::for_target(&TargetIsa::avx2());
        let d = db.find("fmaddsub213pd_128").unwrap();
        let a = vec![Constant::f64(2.0), Constant::f64(2.0)];
        let b = vec![Constant::f64(5.0), Constant::f64(5.0)];
        let c = vec![Constant::f64(1.0), Constant::f64(1.0)];
        let out = vegen_vidl::eval_inst(&d.sem, &[a, b, c]).unwrap();
        assert_eq!(out[0].as_f64(), 9.0); // 2*5 - 1
        assert_eq!(out[1].as_f64(), 11.0); // 2*5 + 1
    }

    #[test]
    fn saturating_unsigned_subtract_clamps_to_zero() {
        // The §6.1 psubus documentation trap, at the database level.
        use vegen_ir::Constant;
        use vegen_ir::Type;
        let db = InstDb::for_target(&TargetIsa::avx2());
        let d = db.find("psubusb_128").unwrap();
        let mut a = vec![Constant::int(Type::I8, 0); 16];
        let mut b = vec![Constant::int(Type::I8, 0); 16];
        a[0] = Constant::int(Type::I8, 3);
        b[0] = Constant::int(Type::I8, 10);
        a[1] = Constant::int(Type::I8, -1); // 255 unsigned
        b[1] = Constant::int(Type::I8, 1);
        let out = vegen_vidl::eval_inst(&d.sem, &[a, b]).unwrap();
        assert_eq!(out[0].as_u64(), 0, "3 - 10 saturates to zero");
        assert_eq!(out[1].as_u64(), 254);
    }

    #[test]
    fn names_are_unique() {
        let db = full_database();
        let mut names: Vec<&str> = db.iter().map(|d| d.name.as_str()).collect();
        names.sort();
        let n = names.len();
        names.dedup();
        assert_eq!(n, names.len());
    }
}
