//! Seeded spec-corruption tests: every corruption the auditor must catch
//! is injected into a pristine database and `check_database` must reject
//! it *naming the corrupted instruction* (and, where one exists, the
//! offending lane). The one corruption the auditor accepts — renaming an
//! operation, which is display metadata — must additionally be proved
//! dynamically neutral under the VIDL evaluator at 64 trials.

use vegen_analysis::speccheck::{check_database, corrupt_database};
use vegen_analysis::{Diagnostic, Location, SpecCheckReport};
use vegen_ir::{Constant, Type};
use vegen_isa::specs::{all_specs, Spec};
use vegen_isa::{InstDb, TargetIsa};
use vegen_vidl::eval_inst;

fn pristine(target: &TargetIsa) -> (Vec<Spec>, InstDb) {
    let specs: Vec<Spec> = all_specs()
        .iter()
        .filter(|s| target.has(s.ext) && s.bits <= target.max_bits)
        .cloned()
        .collect();
    (specs, InstDb::for_target(target))
}

/// Corrupt the AVX2 database with `kind` and audit it; returns the report
/// and the name of the mutated instruction.
fn audit_corrupted(kind: &str) -> (SpecCheckReport, String, InstDb) {
    let target = TargetIsa::avx2();
    let (specs, db) = pristine(&target);
    let (bad, name) = corrupt_database(&db, kind).expect(kind);
    let report = check_database(&target.name, &specs, &bad, true);
    (report, name, bad)
}

/// The diagnostics that name instruction `name` (by message or by the
/// `spec:#i` index resolving to it), errors only.
fn errors_naming<'a>(report: &'a SpecCheckReport, db: &InstDb, name: &str) -> Vec<&'a Diagnostic> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.severity == vegen_analysis::Severity::Error)
        .filter(|d| {
            d.message.contains(name)
                || matches!(d.location, Location::Inst { index, .. }
                    if db.iter().nth(index).map(|x| x.name.as_str()) == Some(name))
        })
        .collect()
}

#[test]
fn swapped_lane_binding_is_rejected_with_lane() {
    let (report, name, db) = audit_corrupted("lane-swap");
    assert!(!report.is_clean(), "lane swap must be rejected");
    let named = errors_naming(&report, &db, &name);
    assert!(!named.is_empty(), "diagnostics must name {name}: {:?}", report.diagnostics);
    // The swap mutates lanes 0 and 1; at least one error must point at a
    // concrete lane.
    assert!(
        named.iter().any(|d| matches!(d.location, Location::Inst { lane: Some(0) | Some(1), .. })),
        "an error must name the swapped lane: {named:?}"
    );
}

#[test]
fn widened_result_width_is_rejected() {
    let (report, name, db) = audit_corrupted("widen");
    assert!(!report.is_clean());
    let named = errors_naming(&report, &db, &name);
    assert!(
        named.iter().any(|d| d.message.contains("width") || d.message.contains("element type")),
        "must report the width divergence for {name}: {:?}",
        report.diagnostics
    );
}

#[test]
fn flipped_cmp_predicate_is_rejected_with_lane() {
    let (report, name, db) = audit_corrupted("flip-cmp");
    assert!(!report.is_clean());
    let named = errors_naming(&report, &db, &name);
    assert!(!named.is_empty(), "diagnostics must name {name}: {:?}", report.diagnostics);
    assert!(
        named.iter().any(|d| matches!(d.location, Location::Inst { lane: Some(_), .. })),
        "a flipped predicate diverges per lane and must be lane-located: {named:?}"
    );
}

#[test]
fn duplicated_match_rule_is_rejected() {
    let (report, name, db) = audit_corrupted("dup-rule");
    assert!(!report.is_clean());
    let named = errors_naming(&report, &db, &name);
    assert!(
        named.iter().any(|d| d.message.contains("duplicate")),
        "must report the duplicate rule for {name}: {:?}",
        report.diagnostics
    );
    assert!(report.stats.max_overlap_class >= 2);
}

#[test]
fn negative_cost_is_rejected() {
    let (report, name, db) = audit_corrupted("neg-cost");
    assert!(!report.is_clean());
    let named = errors_naming(&report, &db, &name);
    assert!(
        named.iter().any(|d| d.message.contains("cost")),
        "must report the cost anomaly for {name}: {:?}",
        report.diagnostics
    );
}

/// Renaming an operation is display-only: the auditor must accept it, and
/// we prove the acceptance sound by showing the corrupted instruction is
/// observationally identical to the pristine one under the VIDL evaluator
/// across 64 random input registers.
#[test]
fn renamed_operation_is_accepted_and_dynamically_neutral() {
    let target = TargetIsa::avx2();
    let (specs, db) = pristine(&target);
    let (bad, name) = corrupt_database(&db, "rename-op").expect("rename-op");
    let report = check_database(&target.name, &specs, &bad, true);
    assert!(
        report.is_clean(),
        "an operation rename is semantically neutral and must be accepted: {:?}",
        report.diagnostics
    );

    let before = db.find(&name).expect("pristine def");
    let after = bad.find(&name).expect("corrupted def");
    let mut state = 0x5eed_c0ff_u64;
    let mut next = || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state = state.wrapping_mul(0x2545f4914f6cdd1d).wrapping_add(0x9e3779b9);
        state
    };
    for _ in 0..64 {
        let inputs: Vec<Vec<Constant>> = before
            .sem
            .inputs
            .iter()
            .map(|shape| {
                (0..shape.lanes)
                    .map(|_| {
                        let r = next();
                        match shape.elem {
                            Type::F32 => Constant::f32(((r % 4096) as f32 - 2048.0) / 32.0),
                            Type::F64 => Constant::f64(((r % 4096) as f64 - 2048.0) / 32.0),
                            ty => Constant::int(
                                ty,
                                vegen_ir::constant::sext(
                                    r & vegen_ir::constant::mask(ty.bits()),
                                    ty.bits(),
                                ),
                            ),
                        }
                    })
                    .collect()
            })
            .collect();
        assert_eq!(
            eval_inst(&before.sem, &inputs),
            eval_inst(&after.sem, &inputs),
            "renamed {name} must be observationally identical"
        );
    }
}
