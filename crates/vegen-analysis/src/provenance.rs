//! Lane-provenance translation validation (the static analogue of §6.1's
//! offline validation, applied per compilation).
//!
//! Both the prepared scalar [`Function`] and the lowered [`VmProgram`] are
//! evaluated *symbolically* over a shared hash-consed expression arena:
//! every loaded lane starts as an opaque `Init(base, offset)` leaf, every
//! computation builds an interned expression node, and every store writes a
//! symbolic memory cell. If the two final symbolic memories agree cell for
//! cell, every stored lane of the vector program provably computes the same
//! function of the inputs as the scalar store it replaced — for *all*
//! memory images, without executing either program.
//!
//! Interned nodes are normalized at construction with exactly the liberties
//! the structural matcher takes (see `vegen_match::pattern`): commutative
//! operands are sorted, comparisons are oriented by operand order with
//! [`CmpPred::swapped`], selects over non-canonical predicates are rewritten
//! through [`CmpPred::inverse`] with swapped arms, and constant subtrees are
//! folded with the interpreter's own [`eval_bin`]/[`eval_cmp`]/[`eval_cast`]
//! (which absorbs the matcher's narrow-constant liberty: the VM computes
//! `sext(83:i16)` where the IR had `83:i32`, and folding makes them the
//! same node). Because the normalization at each node is a function of the
//! already-interned children, equal programs reach equal `SymId`s no matter
//! which side interned first.
//!
//! [`VmInst::VecOp`] lanes are evaluated through the *pattern* of the
//! lane's operation — [`pattern_of_operation`] with the same
//! `canonicalize_patterns` flag the match table was built with — so the
//! analysis replays precisely the shapes the matcher certified, for both
//! the default and the Fig. 11 ablation configuration.

use crate::diag::{Diagnostic, Location};
use std::collections::HashMap;
use vegen_ir::interp::{eval_bin, eval_cast, eval_cmp};
use vegen_ir::{BinOp, CastOp, CmpPred, Constant, Function, InstKind, Param, Type};
use vegen_match::{pattern_of_operation, Pattern};
use vegen_vm::{LaneSrc, ScalarOp, VmInst, VmProgram};

/// Outcome of validating one program against its scalar reference.
#[derive(Debug, Clone, Default)]
pub struct ProvenanceResult {
    /// Mismatches and evaluation failures (all error severity).
    pub diagnostics: Vec<Diagnostic>,
    /// Stored memory cells proved equal to the scalar reference.
    pub lanes_proved: usize,
}

impl ProvenanceResult {
    /// True when every stored lane was proved.
    pub fn is_proved(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Statically prove `program`'s final memory equal to `f`'s, symbolically.
///
/// `canonicalize_patterns` must match the flag the program was compiled
/// with (it selects which pattern flavor VecOp lanes are replayed through).
pub fn validate(
    f: &Function,
    program: &VmProgram,
    canonicalize_patterns: bool,
) -> ProvenanceResult {
    let mut arena = Arena::default();
    let mut result = ProvenanceResult::default();

    let ir_mem = match eval_function(&mut arena, f) {
        Ok(mem) => mem,
        Err(d) => {
            result.diagnostics.push(d);
            return result;
        }
    };
    let vm_mem = match eval_vm(&mut arena, program, canonicalize_patterns) {
        Ok(mem) => mem,
        Err(d) => {
            result.diagnostics.push(d);
            return result;
        }
    };

    // Compare the two final symbolic memories cell by cell. Iterate the
    // union of written locations in deterministic (base, offset) order.
    let mut keys: Vec<(usize, i64)> =
        ir_mem.cells.keys().chain(vm_mem.cells.keys()).copied().collect();
    keys.sort_unstable();
    keys.dedup();
    for key in keys {
        let (base, offset) = key;
        let loc = Location::Mem { base, offset };
        let name = |p: &[Param]| p.get(base).map_or("?".to_string(), |p| p.name.clone());
        match (ir_mem.cells.get(&key), vm_mem.cells.get(&key)) {
            (Some(&a), Some(&b)) if a == b => result.lanes_proved += 1,
            (Some(&a), Some(&b)) => {
                let writer = vm_mem.writer(key);
                let msg = if arena.has_undef(b) {
                    format!(
                        "don't-care lane stored to {}[{offset}]: {} computes an undef-derived \
                         value where the scalar program stores {}",
                        name(&f.params),
                        writer,
                        arena.render(&f.params, a),
                    )
                } else {
                    format!(
                        "stored lane differs at {}[{offset}]: {} computes {} but the scalar \
                         program stores {}",
                        name(&f.params),
                        writer,
                        arena.render(&f.params, b),
                        arena.render(&f.params, a),
                    )
                };
                result.diagnostics.push(Diagnostic::error(loc, msg));
            }
            (Some(_), None) => {
                result.diagnostics.push(Diagnostic::error(
                    loc,
                    format!(
                        "missing store: the scalar program writes {}[{offset}] but the vector \
                         program never does",
                        name(&f.params)
                    ),
                ));
            }
            (None, Some(_)) => {
                let writer = vm_mem.writer(key);
                result.diagnostics.push(Diagnostic::error(
                    loc,
                    format!(
                        "extra store: {} writes {}[{offset}], which the scalar program never \
                         touches",
                        writer,
                        name(&f.params)
                    ),
                ));
            }
            (None, None) => unreachable!("key came from one of the maps"),
        }
    }
    result
}

/// Interned symbolic-expression id. Equal ids mean structurally equal
/// normalized expressions (hash-consing).
pub(crate) type SymId = u32;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum SymExpr {
    /// The initial contents of `base[offset]` — an opaque input.
    Init {
        base: usize,
        offset: i64,
        ty: Type,
    },
    Const(Constant),
    /// An undefined value (a don't-care lane).
    Undef(Type),
    Bin {
        op: BinOp,
        lhs: SymId,
        rhs: SymId,
    },
    FNeg {
        arg: SymId,
    },
    Cast {
        op: CastOp,
        to: Type,
        arg: SymId,
    },
    Cmp {
        pred: CmpPred,
        lhs: SymId,
        rhs: SymId,
    },
    Select {
        cond: SymId,
        on_true: SymId,
        on_false: SymId,
    },
}

/// The canonical half of each `(pred, pred.inverse())` pair. Selects whose
/// condition uses a predicate from the other half are normalized by
/// inverting the predicate and swapping the arms — the same rewrite the
/// matcher accepts when matching selects.
pub(crate) fn canonical_pred(p: CmpPred) -> bool {
    use CmpPred::*;
    matches!(p, Eq | Slt | Sle | Ult | Ule | Feq | Flt | Fle)
}

#[derive(Default)]
pub(crate) struct Arena {
    nodes: Vec<SymExpr>,
    interned: HashMap<SymExpr, SymId>,
}

impl Arena {
    pub(crate) fn intern(&mut self, e: SymExpr) -> SymId {
        if let Some(&id) = self.interned.get(&e) {
            return id;
        }
        let id = self.nodes.len() as SymId;
        self.nodes.push(e.clone());
        self.interned.insert(e, id);
        id
    }

    pub(crate) fn node(&self, id: SymId) -> &SymExpr {
        &self.nodes[id as usize]
    }

    pub(crate) fn mk_const(&mut self, c: Constant) -> SymId {
        self.intern(SymExpr::Const(c))
    }

    pub(crate) fn mk_undef(&mut self, ty: Type) -> SymId {
        self.intern(SymExpr::Undef(ty))
    }

    pub(crate) fn mk_init(&mut self, base: usize, offset: i64, ty: Type) -> SymId {
        self.intern(SymExpr::Init { base, offset, ty })
    }

    pub(crate) fn as_const(&self, id: SymId) -> Option<Constant> {
        match self.node(id) {
            SymExpr::Const(c) => Some(*c),
            _ => None,
        }
    }

    pub(crate) fn mk_bin(&mut self, op: BinOp, lhs: SymId, rhs: SymId) -> SymId {
        if let (Some(a), Some(b)) = (self.as_const(lhs), self.as_const(rhs)) {
            // Fold only when the interpreter agrees the result is defined
            // (division by a constant zero stays symbolic on both sides).
            if let Ok(c) = eval_bin(op, a, b) {
                return self.mk_const(c);
            }
        }
        let (lhs, rhs) = if op.is_commutative() && lhs > rhs { (rhs, lhs) } else { (lhs, rhs) };
        self.intern(SymExpr::Bin { op, lhs, rhs })
    }

    pub(crate) fn mk_fneg(&mut self, arg: SymId) -> SymId {
        if let Some(c) = self.as_const(arg) {
            match c.ty() {
                Type::F32 => return self.mk_const(Constant::f32(-c.as_f32())),
                Type::F64 => return self.mk_const(Constant::f64(-c.as_f64())),
                _ => {}
            }
        }
        self.intern(SymExpr::FNeg { arg })
    }

    pub(crate) fn mk_cast(&mut self, op: CastOp, to: Type, arg: SymId) -> SymId {
        if let Some(c) = self.as_const(arg) {
            return self.mk_const(eval_cast(op, c, to));
        }
        self.intern(SymExpr::Cast { op, to, arg })
    }

    pub(crate) fn mk_cmp(&mut self, pred: CmpPred, lhs: SymId, rhs: SymId) -> SymId {
        if let (Some(a), Some(b)) = (self.as_const(lhs), self.as_const(rhs)) {
            return self.mk_const(eval_cmp(pred, a, b));
        }
        let (pred, lhs, rhs) =
            if lhs > rhs { (pred.swapped(), rhs, lhs) } else { (pred, lhs, rhs) };
        self.intern(SymExpr::Cmp { pred, lhs, rhs })
    }

    pub(crate) fn mk_select(&mut self, cond: SymId, on_true: SymId, on_false: SymId) -> SymId {
        if let Some(c) = self.as_const(cond) {
            return if c.as_u64() != 0 { on_true } else { on_false };
        }
        if let SymExpr::Cmp { pred, lhs, rhs } = *self.node(cond) {
            if !canonical_pred(pred) {
                let inv = self.mk_cmp(pred.inverse(), lhs, rhs);
                return self.intern(SymExpr::Select {
                    cond: inv,
                    on_true: on_false,
                    on_false: on_true,
                });
            }
        }
        self.intern(SymExpr::Select { cond, on_true, on_false })
    }

    /// True if the expression tree contains an `Undef` leaf.
    pub(crate) fn has_undef(&self, id: SymId) -> bool {
        let mut stack = vec![id];
        let mut seen = std::collections::HashSet::new();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            match self.node(id) {
                SymExpr::Undef(_) => return true,
                SymExpr::Init { .. } | SymExpr::Const(_) => {}
                SymExpr::Bin { lhs, rhs, .. } | SymExpr::Cmp { lhs, rhs, .. } => {
                    stack.push(*lhs);
                    stack.push(*rhs);
                }
                SymExpr::FNeg { arg } | SymExpr::Cast { arg, .. } => stack.push(*arg),
                SymExpr::Select { cond, on_true, on_false } => {
                    stack.push(*cond);
                    stack.push(*on_true);
                    stack.push(*on_false);
                }
            }
        }
        false
    }

    /// Compact rendering for diagnostics, depth-capped so messages stay
    /// readable on deep expression trees.
    fn render(&self, params: &[Param], id: SymId) -> String {
        let names: Vec<&str> = params.iter().map(|p| p.name.as_str()).collect();
        self.render_depth(&names, id, 4)
    }

    /// Like [`Arena::render`], but with caller-supplied base names — the
    /// speccheck auditor renders over operation parameters, not IR params.
    pub(crate) fn render_named(&self, names: &[&str], id: SymId) -> String {
        self.render_depth(names, id, 4)
    }

    fn render_depth(&self, names: &[&str], id: SymId, depth: usize) -> String {
        if depth == 0 {
            return "…".to_string();
        }
        let sub = |this: &Arena, id| this.render_depth(names, id, depth - 1);
        match self.node(id) {
            SymExpr::Init { base, offset, .. } => {
                let name = names.get(*base).copied().unwrap_or("?");
                format!("{name}[{offset}]")
            }
            SymExpr::Const(c) => format!("{c}"),
            SymExpr::Undef(ty) => format!("undef:{ty}"),
            SymExpr::Bin { op, lhs, rhs } => {
                format!("{}({}, {})", op.name(), sub(self, *lhs), sub(self, *rhs))
            }
            SymExpr::FNeg { arg } => format!("fneg({})", sub(self, *arg)),
            SymExpr::Cast { op, to, arg } => format!("{}.{to}({})", op.name(), sub(self, *arg)),
            SymExpr::Cmp { pred, lhs, rhs } => {
                format!("{}({}, {})", pred.name(), sub(self, *lhs), sub(self, *rhs))
            }
            SymExpr::Select { cond, on_true, on_false } => {
                format!(
                    "select({}, {}, {})",
                    sub(self, *cond),
                    sub(self, *on_true),
                    sub(self, *on_false)
                )
            }
        }
    }
}

/// Symbolic memory: written cells plus (on the VM side) which instruction
/// wrote each cell last, for diagnostics.
#[derive(Default)]
struct SymMemory {
    cells: HashMap<(usize, i64), SymId>,
    writers: HashMap<(usize, i64), (usize, Option<usize>)>,
}

impl SymMemory {
    fn read(&mut self, arena: &mut Arena, base: usize, offset: i64, ty: Type) -> SymId {
        match self.cells.get(&(base, offset)) {
            Some(&s) => s,
            None => arena.mk_init(base, offset, ty),
        }
    }

    fn write(&mut self, base: usize, offset: i64, value: SymId, writer: (usize, Option<usize>)) {
        self.cells.insert((base, offset), value);
        self.writers.insert((base, offset), writer);
    }

    fn writer(&self, key: (usize, i64)) -> String {
        match self.writers.get(&key) {
            Some((idx, Some(lane))) => format!("vm inst #{idx} lane {lane}"),
            Some((idx, None)) => format!("vm inst #{idx}"),
            None => "the vector program".to_string(),
        }
    }
}

fn param_elem(params: &[Param], base: usize, at: Location) -> Result<Type, Diagnostic> {
    params
        .get(base)
        .map(|p| p.elem_ty)
        .ok_or_else(|| Diagnostic::error(at, format!("unknown parameter arg{base}")))
}

/// Symbolically execute the scalar function; return its final memory.
fn eval_function(arena: &mut Arena, f: &Function) -> Result<SymMemory, Diagnostic> {
    let mut mem = SymMemory::default();
    let mut vals: Vec<SymId> = Vec::with_capacity(f.insts.len());
    for (v, inst) in f.iter() {
        let at = Location::Value(v);
        let get = |vals: &[SymId], id: vegen_ir::ValueId| vals[id.index()];
        let sym = match &inst.kind {
            InstKind::Const(c) => arena.mk_const(*c),
            InstKind::Bin { op, lhs, rhs } => arena.mk_bin(*op, get(&vals, *lhs), get(&vals, *rhs)),
            InstKind::FNeg { arg } => arena.mk_fneg(get(&vals, *arg)),
            InstKind::Cast { op, arg } => arena.mk_cast(*op, inst.ty, get(&vals, *arg)),
            InstKind::Cmp { pred, lhs, rhs } => {
                arena.mk_cmp(*pred, get(&vals, *lhs), get(&vals, *rhs))
            }
            InstKind::Select { cond, on_true, on_false } => {
                arena.mk_select(get(&vals, *cond), get(&vals, *on_true), get(&vals, *on_false))
            }
            InstKind::Load { loc } => {
                let ty = param_elem(&f.params, loc.base, at)?;
                mem.read(arena, loc.base, loc.offset, ty)
            }
            InstKind::Store { loc, value } => {
                param_elem(&f.params, loc.base, at)?;
                mem.write(loc.base, loc.offset, get(&vals, *value), (v.index(), None));
                // Stores define no value; keep the slot aligned.
                arena.mk_undef(Type::Void)
            }
        };
        vals.push(sym);
    }
    Ok(mem)
}

/// A symbolic register: one expression (scalar) or one per lane (vector).
#[derive(Clone)]
enum RegVal {
    Scalar(SymId),
    Vector(Vec<SymId>),
}

/// Symbolically execute the VM program; return its final memory.
fn eval_vm(
    arena: &mut Arena,
    prog: &VmProgram,
    canonicalize_patterns: bool,
) -> Result<SymMemory, Diagnostic> {
    let mut mem = SymMemory::default();
    let mut regs: Vec<Option<RegVal>> = vec![None; prog.n_regs];
    // Patterns replayed for VecOp lanes, cached per (semantics, operation).
    let mut patterns: HashMap<(usize, usize), Pattern> = HashMap::new();

    for (idx, inst) in prog.insts.iter().enumerate() {
        let at = Location::VmInst { index: idx, lane: None };
        let scalar = |regs: &[Option<RegVal>], r: vegen_vm::Reg| -> Result<SymId, Diagnostic> {
            match regs.get(r.0 as usize).and_then(|v| v.as_ref()) {
                Some(RegVal::Scalar(s)) => Ok(*s),
                Some(RegVal::Vector(_)) => Err(Diagnostic::error(
                    at,
                    format!("r{} used as scalar but holds a vector", r.0),
                )),
                None => Err(Diagnostic::error(at, format!("use of undefined register r{}", r.0))),
            }
        };
        let vector = |regs: &[Option<RegVal>],
                      r: vegen_vm::Reg|
         -> Result<Vec<SymId>, Diagnostic> {
            match regs.get(r.0 as usize).and_then(|v| v.as_ref()) {
                Some(RegVal::Vector(l)) => Ok(l.clone()),
                Some(RegVal::Scalar(_)) => Err(Diagnostic::error(
                    at,
                    format!("r{} used as vector but holds a scalar", r.0),
                )),
                None => Err(Diagnostic::error(at, format!("use of undefined register r{}", r.0))),
            }
        };
        match inst {
            VmInst::Scalar { dst, op } => {
                let sym = match op {
                    ScalarOp::Const(c) => arena.mk_const(*c),
                    ScalarOp::Bin { op, lhs, rhs } => {
                        let (l, r) = (scalar(&regs, *lhs)?, scalar(&regs, *rhs)?);
                        arena.mk_bin(*op, l, r)
                    }
                    ScalarOp::FNeg { arg } => {
                        let a = scalar(&regs, *arg)?;
                        arena.mk_fneg(a)
                    }
                    ScalarOp::Cast { op, to, arg } => {
                        let a = scalar(&regs, *arg)?;
                        arena.mk_cast(*op, *to, a)
                    }
                    ScalarOp::Cmp { pred, lhs, rhs } => {
                        let (l, r) = (scalar(&regs, *lhs)?, scalar(&regs, *rhs)?);
                        arena.mk_cmp(*pred, l, r)
                    }
                    ScalarOp::Select { cond, on_true, on_false } => {
                        let c = scalar(&regs, *cond)?;
                        let t = scalar(&regs, *on_true)?;
                        let e = scalar(&regs, *on_false)?;
                        arena.mk_select(c, t, e)
                    }
                };
                regs[dst.0 as usize] = Some(RegVal::Scalar(sym));
            }
            VmInst::LoadScalar { dst, base, offset } => {
                let ty = param_elem(&prog.params, *base, at)?;
                let sym = mem.read(arena, *base, *offset, ty);
                regs[dst.0 as usize] = Some(RegVal::Scalar(sym));
            }
            VmInst::StoreScalar { base, offset, src } => {
                param_elem(&prog.params, *base, at)?;
                let sym = scalar(&regs, *src)?;
                mem.write(*base, *offset, sym, (idx, None));
            }
            VmInst::VecLoad { dst, base, start, lanes, elem } => {
                param_elem(&prog.params, *base, at)?;
                let syms =
                    (0..*lanes).map(|l| mem.read(arena, *base, start + l as i64, *elem)).collect();
                regs[dst.0 as usize] = Some(RegVal::Vector(syms));
            }
            VmInst::VecStore { base, start, src } => {
                param_elem(&prog.params, *base, at)?;
                let lanes = vector(&regs, *src)?;
                for (l, sym) in lanes.into_iter().enumerate() {
                    mem.write(*base, start + l as i64, sym, (idx, Some(l)));
                }
            }
            VmInst::VecOp { dst, sem, args } => {
                let Some(semantics) = prog.sems.get(*sem) else {
                    return Err(Diagnostic::error(at, format!("unknown semantics index {sem}")));
                };
                let arg_lanes: Vec<Vec<SymId>> =
                    args.iter().map(|&r| vector(&regs, r)).collect::<Result<_, _>>()?;
                let mut out = Vec::with_capacity(semantics.out_lanes());
                for (l, binding) in semantics.lanes.iter().enumerate() {
                    let lane_at = Location::VmInst { index: idx, lane: Some(l) };
                    let pat = patterns.entry((*sem, binding.op)).or_insert_with(|| {
                        pattern_of_operation(&semantics.ops[binding.op], canonicalize_patterns)
                    });
                    let mut psyms = Vec::with_capacity(binding.args.len());
                    for r in &binding.args {
                        let lane = arg_lanes
                            .get(r.input)
                            .and_then(|lanes| lanes.get(r.lane))
                            .copied()
                            .ok_or_else(|| {
                                Diagnostic::error(
                                    lane_at,
                                    format!(
                                        "lane binding reads input {} lane {}, which is out of \
                                         range",
                                        r.input, r.lane
                                    ),
                                )
                            })?;
                        psyms.push(lane);
                    }
                    out.push(eval_pattern(arena, pat, &psyms, lane_at)?);
                }
                regs[dst.0 as usize] = Some(RegVal::Vector(out));
            }
            VmInst::Build { dst, elem, lanes } => {
                let mut out = Vec::with_capacity(lanes.len());
                for (l, src) in lanes.iter().enumerate() {
                    let lane_at = Location::VmInst { index: idx, lane: Some(l) };
                    let sym = match src {
                        LaneSrc::FromVec { src, lane } => {
                            let v = vector(&regs, *src)?;
                            *v.get(*lane).ok_or_else(|| {
                                Diagnostic::error(
                                    lane_at,
                                    format!("shuffle index {lane} out of range for r{}", src.0),
                                )
                            })?
                        }
                        LaneSrc::FromScalar(r) => scalar(&regs, *r)?,
                        LaneSrc::Const(c) => arena.mk_const(*c),
                        LaneSrc::Undef => arena.mk_undef(*elem),
                    };
                    out.push(sym);
                }
                regs[dst.0 as usize] = Some(RegVal::Vector(out));
            }
            VmInst::Extract { dst, src, lane } => {
                let v = vector(&regs, *src)?;
                let sym = *v.get(*lane).ok_or_else(|| {
                    Diagnostic::error(
                        at,
                        format!("extract lane {lane} out of range for r{}", src.0),
                    )
                })?;
                regs[dst.0 as usize] = Some(RegVal::Scalar(sym));
            }
        }
    }
    Ok(mem)
}

/// Evaluate a matcher pattern over symbolic parameter bindings.
pub(crate) fn eval_pattern(
    arena: &mut Arena,
    pat: &Pattern,
    params: &[SymId],
    at: Location,
) -> Result<SymId, Diagnostic> {
    match pat {
        Pattern::Param(i) => params.get(*i).copied().ok_or_else(|| {
            Diagnostic::error(at, format!("pattern parameter {i} has no lane binding"))
        }),
        Pattern::Const(c) => Ok(arena.mk_const(*c)),
        Pattern::Bin { op, lhs, rhs } => {
            let l = eval_pattern(arena, lhs, params, at)?;
            let r = eval_pattern(arena, rhs, params, at)?;
            Ok(arena.mk_bin(*op, l, r))
        }
        Pattern::FNeg(a) => {
            let a = eval_pattern(arena, a, params, at)?;
            Ok(arena.mk_fneg(a))
        }
        Pattern::Cast { op, to, arg } => {
            let a = eval_pattern(arena, arg, params, at)?;
            Ok(arena.mk_cast(*op, *to, a))
        }
        Pattern::Cmp { pred, lhs, rhs } => {
            let l = eval_pattern(arena, lhs, params, at)?;
            let r = eval_pattern(arena, rhs, params, at)?;
            Ok(arena.mk_cmp(*pred, l, r))
        }
        Pattern::Select { cond, on_true, on_false } => {
            let c = eval_pattern(arena, cond, params, at)?;
            let t = eval_pattern(arena, on_true, params, at)?;
            let e = eval_pattern(arena, on_false, params, at)?;
            Ok(arena.mk_select(c, t, e))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use vegen_ir::{CmpPred, FunctionBuilder, Type};
    use vegen_vm::Reg;

    /// `A[0] = B[1]; A[1] = B[0]` as scalar IR.
    fn swap_function() -> Function {
        let mut b = FunctionBuilder::new("swap");
        let bb = b.param("B", Type::I32, 2);
        let a = b.param("A", Type::I32, 2);
        let x = b.load(bb, 1);
        let y = b.load(bb, 0);
        b.store(a, 0, x);
        b.store(a, 1, y);
        b.finish()
    }

    /// The vectorized swap: load B, permute the lanes, store A.
    fn swap_program(f: &Function, lanes: Vec<LaneSrc>) -> VmProgram {
        VmProgram {
            name: "swap".into(),
            params: f.params.clone(),
            sems: vec![],
            sem_asm: vec![],
            sem_cost: vec![],
            insts: vec![
                VmInst::VecLoad { dst: Reg(0), base: 0, start: 0, lanes: 2, elem: Type::I32 },
                VmInst::Build { dst: Reg(1), elem: Type::I32, lanes },
                VmInst::VecStore { base: 1, start: 0, src: Reg(1) },
            ],
            n_regs: 2,
        }
    }

    #[test]
    fn lane_permutation_proves() {
        let f = swap_function();
        let prog = swap_program(
            &f,
            vec![
                LaneSrc::FromVec { src: Reg(0), lane: 1 },
                LaneSrc::FromVec { src: Reg(0), lane: 0 },
            ],
        );
        let r = validate(&f, &prog, true);
        assert!(r.is_proved(), "diagnostics: {:?}", r.diagnostics);
        assert_eq!(r.lanes_proved, 2);
    }

    #[test]
    fn swapped_shuffle_indices_rejected() {
        // Corruption: the identity permutation where the kernel swaps.
        let f = swap_function();
        let prog = swap_program(
            &f,
            vec![
                LaneSrc::FromVec { src: Reg(0), lane: 0 },
                LaneSrc::FromVec { src: Reg(0), lane: 1 },
            ],
        );
        let r = validate(&f, &prog, true);
        assert_eq!(r.diagnostics.len(), 2, "both lanes must mismatch: {:?}", r.diagnostics);
        for d in &r.diagnostics {
            assert_eq!(d.severity, Severity::Error);
            assert!(d.message.contains("vm inst #2 lane"), "writer not named: {}", d.message);
        }
        assert!(r.diagnostics[0].message.contains("B[0]"), "{}", r.diagnostics[0].message);
        assert!(r.diagnostics[0].message.contains("B[1]"), "{}", r.diagnostics[0].message);
    }

    #[test]
    fn dropped_pack_lane_rejected_as_undef() {
        let f = swap_function();
        let prog =
            swap_program(&f, vec![LaneSrc::FromVec { src: Reg(0), lane: 1 }, LaneSrc::Undef]);
        let r = validate(&f, &prog, true);
        assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
        let d = &r.diagnostics[0];
        assert!(d.message.contains("don't-care lane stored"), "{}", d.message);
        assert!(d.message.contains("vm inst #2 lane 1"), "{}", d.message);
        assert_eq!(r.lanes_proved, 1);
    }

    #[test]
    fn reordered_dependent_store_rejected() {
        // x = A[1]; A[0] = x + 1; A[1] = 7  — the A[1] store must stay
        // after the load it anti-depends on.
        let mut b = FunctionBuilder::new("reorder");
        let a = b.param("A", Type::I32, 2);
        let x = b.load(a, 1);
        let one = b.iconst(Type::I32, 1);
        let s = b.add(x, one);
        b.store(a, 0, s);
        let seven = b.iconst(Type::I32, 7);
        b.store(a, 1, seven);
        let f = b.finish();

        let good = vec![
            VmInst::LoadScalar { dst: Reg(0), base: 0, offset: 1 },
            VmInst::Scalar { dst: Reg(1), op: ScalarOp::Const(Constant::int(Type::I32, 1)) },
            VmInst::Scalar {
                dst: Reg(2),
                op: ScalarOp::Bin { op: BinOp::Add, lhs: Reg(0), rhs: Reg(1) },
            },
            VmInst::StoreScalar { base: 0, offset: 0, src: Reg(2) },
            VmInst::Scalar { dst: Reg(3), op: ScalarOp::Const(Constant::int(Type::I32, 7)) },
            VmInst::StoreScalar { base: 0, offset: 1, src: Reg(3) },
        ];
        let mut prog = VmProgram {
            name: "reorder".into(),
            params: f.params.clone(),
            sems: vec![],
            sem_asm: vec![],
            sem_cost: vec![],
            insts: good,
            n_regs: 4,
        };
        assert!(validate(&f, &prog, true).is_proved());

        // Corruption: hoist the `A[1] = 7` store above the load, so the
        // load symbolically reads 7 and A[0] becomes the constant 8.
        let store7 = prog.insts.remove(5);
        let const7 = prog.insts.remove(4);
        prog.insts.insert(0, store7);
        prog.insts.insert(0, const7);
        let r = validate(&f, &prog, true);
        assert!(!r.is_proved());
        let d = &r.diagnostics[0];
        assert!(d.message.contains("A[0]"), "{}", d.message);
        assert!(d.message.contains("add(A[1], 1_i32)"), "scalar side rendered: {}", d.message);
    }

    #[test]
    fn inverted_select_predicate_proves() {
        // IR computes max via select(sgt(x, y), x, y); the VM computes the
        // equivalent select(sle(x, y), y, x). Normalization maps both to
        // the same node.
        let mut b = FunctionBuilder::new("max");
        let src = b.param("B", Type::I32, 2);
        let dst = b.param("A", Type::I32, 1);
        let x = b.load(src, 0);
        let y = b.load(src, 1);
        let c = b.cmp(CmpPred::Sgt, x, y);
        let m = b.select(c, x, y);
        b.store(dst, 0, m);
        let f = b.finish();

        let prog = VmProgram {
            name: "max".into(),
            params: f.params.clone(),
            sems: vec![],
            sem_asm: vec![],
            sem_cost: vec![],
            insts: vec![
                VmInst::LoadScalar { dst: Reg(0), base: 0, offset: 0 },
                VmInst::LoadScalar { dst: Reg(1), base: 0, offset: 1 },
                VmInst::Scalar {
                    dst: Reg(2),
                    op: ScalarOp::Cmp { pred: CmpPred::Sle, lhs: Reg(0), rhs: Reg(1) },
                },
                VmInst::Scalar {
                    dst: Reg(3),
                    op: ScalarOp::Select { cond: Reg(2), on_true: Reg(1), on_false: Reg(0) },
                },
                VmInst::StoreScalar { base: 1, offset: 0, src: Reg(3) },
            ],
            n_regs: 4,
        };
        let r = validate(&f, &prog, true);
        assert!(r.is_proved(), "{:?}", r.diagnostics);
    }

    #[test]
    fn narrow_constant_folds_to_ir_constant() {
        // IR multiplies by the i32 constant 83; the VM materializes 83 as
        // i16 and sign-extends (the narrow-constant liberty). Constant
        // folding makes them the same node.
        let mut b = FunctionBuilder::new("k83");
        let src = b.param("B", Type::I32, 1);
        let dst = b.param("A", Type::I32, 1);
        let x = b.load(src, 0);
        let k = b.iconst(Type::I32, 83);
        let m = b.mul(x, k);
        b.store(dst, 0, m);
        let f = b.finish();

        let prog = VmProgram {
            name: "k83".into(),
            params: f.params.clone(),
            sems: vec![],
            sem_asm: vec![],
            sem_cost: vec![],
            insts: vec![
                VmInst::LoadScalar { dst: Reg(0), base: 0, offset: 0 },
                VmInst::Scalar { dst: Reg(1), op: ScalarOp::Const(Constant::int(Type::I16, 83)) },
                VmInst::Scalar {
                    dst: Reg(2),
                    op: ScalarOp::Cast { op: CastOp::SExt, to: Type::I32, arg: Reg(1) },
                },
                VmInst::Scalar {
                    dst: Reg(3),
                    op: ScalarOp::Bin { op: BinOp::Mul, lhs: Reg(0), rhs: Reg(2) },
                },
                VmInst::StoreScalar { base: 1, offset: 0, src: Reg(3) },
            ],
            n_regs: 4,
        };
        let r = validate(&f, &prog, true);
        assert!(r.is_proved(), "{:?}", r.diagnostics);
    }

    #[test]
    fn missing_and_extra_stores_reported() {
        let f = swap_function();
        // Writes A[0] only, plus a stray write to B[0].
        let prog = VmProgram {
            name: "swap".into(),
            params: f.params.clone(),
            sems: vec![],
            sem_asm: vec![],
            sem_cost: vec![],
            insts: vec![
                VmInst::LoadScalar { dst: Reg(0), base: 0, offset: 1 },
                VmInst::StoreScalar { base: 1, offset: 0, src: Reg(0) },
                VmInst::StoreScalar { base: 0, offset: 0, src: Reg(0) },
            ],
            n_regs: 1,
        };
        let r = validate(&f, &prog, true);
        let msgs: Vec<&str> = r.diagnostics.iter().map(|d| d.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("extra store")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("missing store")), "{msgs:?}");
    }
}
