//! Independent re-check of pack legality (§4.4) on a selected pack set.
//!
//! The beam search only ever *constructs* legal packs
//! (`VectorizerCtx::producers_for` filters candidates and
//! `packs_legal` guards every transition), so this pass re-derives the
//! legality conditions from first principles — its own [`DepGraph`], the
//! VIDL-level [`InstSemantics::operand_bindings`] instead of the context's
//! cached binding tables, and Kahn's algorithm instead of the context's
//! tricolor DFS — and checks the *output* of selection. A bug anywhere in
//! the matcher, the interner, or the search that lets an illegal pack
//! through is caught here instead of surfacing as miscompiled code.

use crate::diag::{Diagnostic, Location};
use std::collections::HashMap;
use vegen_core::{Pack, PackSet, SetPackId};
use vegen_ir::deps::DepGraph;
use vegen_ir::{Function, InstKind, Type, ValueId};
use vegen_match::TargetDesc;

/// Check every §4.4 legality condition on `packs`.
///
/// Returned diagnostics are all error severity: lane overlap between
/// packs, dependent lanes, inconsistent operand bindings, malformed
/// memory packs, and dependence cycles in the contracted pack graph.
pub fn check_packs(f: &Function, desc: &TargetDesc, packs: &PackSet) -> Vec<Diagnostic> {
    let deps = DepGraph::build(f);
    let mut diags = Vec::new();

    // No value may be produced by two packs.
    let mut producer: HashMap<ValueId, SetPackId> = HashMap::new();
    for (pid, pack) in packs.iter() {
        for v in pack.defined_values() {
            if let Some(prev) = producer.insert(v, pid) {
                diags.push(Diagnostic::error(
                    Location::Pack { pack: pid.0, lane: None },
                    format!("value {v} is produced by both pack p{} and pack p{}", prev.0, pid.0),
                ));
            }
        }
    }

    for (pid, pack) in packs.iter() {
        check_lane_independence(&deps, pid, pack, &mut diags);
        match pack {
            Pack::Load { base, start, loads, elem } => {
                check_load_pack(f, pid, *base, *start, loads, *elem, &mut diags)
            }
            Pack::Store { base, start, stores, values, elem } => {
                check_store_pack(f, pid, *base, *start, stores, values, *elem, &mut diags)
            }
            Pack::Compute { inst, matches } => {
                check_compute_pack(f, desc, pid, *inst, matches, &mut diags)
            }
        }
    }

    check_schedulability(f, &deps, packs, &producer, &mut diags);
    diags
}

/// Lanes of one pack must be pairwise independent — no lane may
/// (transitively) depend on another, or the pack has no valid execution.
fn check_lane_independence(
    deps: &DepGraph,
    pid: SetPackId,
    pack: &Pack,
    diags: &mut Vec<Diagnostic>,
) {
    let values = pack.values();
    for (i, a) in values.iter().enumerate() {
        let Some(a) = a else { continue };
        for (j, b) in values.iter().enumerate().skip(i + 1) {
            let Some(b) = b else { continue };
            if !deps.independent(*a, *b) {
                diags.push(Diagnostic::error(
                    Location::Pack { pack: pid.0, lane: Some(j) },
                    format!("lanes {i} ({a}) and {j} ({b}) are not independent"),
                ));
            }
        }
    }
}

fn check_load_pack(
    f: &Function,
    pid: SetPackId,
    base: usize,
    start: i64,
    loads: &[Option<ValueId>],
    elem: Type,
    diags: &mut Vec<Diagnostic>,
) {
    let at = |lane| Location::Pack { pack: pid.0, lane };
    let Some(param) = f.params.get(base) else {
        diags.push(Diagnostic::error(at(None), format!("load pack from unknown parameter {base}")));
        return;
    };
    if param.elem_ty != elem {
        diags.push(Diagnostic::error(
            at(None),
            format!("load pack element type {elem} differs from {}: {}", param.name, param.elem_ty),
        ));
    }
    // Don't-care lanes are still read by the vector load, so the whole
    // range must be in bounds, not just the bound lanes.
    if start < 0 || start as usize + loads.len() > param.len {
        diags.push(Diagnostic::error(
            at(None),
            format!(
                "load pack {}[{start}..{}) is out of bounds (len {})",
                param.name,
                start + loads.len() as i64,
                param.len
            ),
        ));
    }
    for (lane, v) in loads.iter().enumerate() {
        let Some(v) = v else { continue };
        match f.inst(*v).kind {
            InstKind::Load { loc } if loc.base == base && loc.offset == start + lane as i64 => {}
            InstKind::Load { loc } => diags.push(Diagnostic::error(
                at(Some(lane)),
                format!(
                    "lane {lane} covers {v}, which loads arg{}[{}], not {}[{}]",
                    loc.base,
                    loc.offset,
                    param.name,
                    start + lane as i64
                ),
            )),
            _ => diags.push(Diagnostic::error(
                at(Some(lane)),
                format!("lane {lane} covers {v}, which is not a load"),
            )),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_store_pack(
    f: &Function,
    pid: SetPackId,
    base: usize,
    start: i64,
    stores: &[ValueId],
    values: &[ValueId],
    elem: Type,
    diags: &mut Vec<Diagnostic>,
) {
    let at = |lane| Location::Pack { pack: pid.0, lane };
    let Some(param) = f.params.get(base) else {
        diags.push(Diagnostic::error(at(None), format!("store pack to unknown parameter {base}")));
        return;
    };
    if param.elem_ty != elem {
        diags.push(Diagnostic::error(
            at(None),
            format!(
                "store pack element type {elem} differs from {}: {}",
                param.name, param.elem_ty
            ),
        ));
    }
    if start < 0 || start as usize + stores.len() > param.len {
        diags.push(Diagnostic::error(
            at(None),
            format!(
                "store pack {}[{start}..{}) is out of bounds (len {})",
                param.name,
                start + stores.len() as i64,
                param.len
            ),
        ));
    }
    if stores.len() != values.len() {
        diags.push(Diagnostic::error(
            at(None),
            format!("store pack has {} stores but {} values", stores.len(), values.len()),
        ));
        return;
    }
    for (lane, (s, val)) in stores.iter().zip(values).enumerate() {
        match f.inst(*s).kind {
            InstKind::Store { loc, value }
                if loc.base == base && loc.offset == start + lane as i64 && value == *val => {}
            InstKind::Store { loc, value } => diags.push(Diagnostic::error(
                at(Some(lane)),
                format!(
                    "lane {lane} covers {s}, which stores {value} to arg{}[{}], not {val} to \
                     {}[{}]",
                    loc.base,
                    loc.offset,
                    param.name,
                    start + lane as i64
                ),
            )),
            _ => diags.push(Diagnostic::error(
                at(Some(lane)),
                format!("lane {lane} covers {s}, which is not a store"),
            )),
        }
    }
}

/// Re-check a compute pack against its instruction's VIDL semantics: the
/// lane operations must be the ones the description assigns, and every
/// operand register lane the instruction reads must have a single
/// consistent IR value across all the output lanes it feeds (`operand_i(.)`
/// of §4.4, re-derived from [`InstSemantics::operand_bindings`]).
fn check_compute_pack(
    f: &Function,
    desc: &TargetDesc,
    pid: SetPackId,
    inst: usize,
    matches: &[Option<vegen_core::pack::PackedMatch>],
    diags: &mut Vec<Diagnostic>,
) {
    let at = |lane| Location::Pack { pack: pid.0, lane };
    let Some(di) = desc.insts.get(inst) else {
        diags.push(Diagnostic::error(at(None), format!("unknown target instruction {inst}")));
        return;
    };
    let sem = &di.def.sem;
    if matches.len() != sem.out_lanes() {
        diags.push(Diagnostic::error(
            at(None),
            format!(
                "{} has {} output lanes but the pack has {}",
                di.def.name,
                sem.out_lanes(),
                matches.len()
            ),
        ));
        return;
    }
    if matches.iter().all(|m| m.is_none()) {
        diags.push(Diagnostic::error(
            at(None),
            format!("{} pack defines no lanes at all", di.def.name),
        ));
    }
    for (lane, m) in matches.iter().enumerate() {
        let Some(m) = m else { continue };
        if m.op != di.lane_ops[lane] {
            diags.push(Diagnostic::error(
                at(Some(lane)),
                format!(
                    "lane {lane} is matched by operation {}, but {} runs {} on that lane",
                    desc.ops.get(m.op).name,
                    di.def.name,
                    desc.ops.get(di.lane_ops[lane]).name
                ),
            ));
        }
        if f.ty(m.root) != sem.out_elem {
            diags.push(Diagnostic::error(
                at(Some(lane)),
                format!(
                    "lane {lane} root {} has type {}, but {} produces {}",
                    m.root,
                    f.ty(m.root),
                    di.def.name,
                    sem.out_elem
                ),
            ));
        }
    }
    for input in 0..sem.inputs.len() {
        for (in_lane, uses) in sem.operand_bindings(input).iter().enumerate() {
            // A lane with no uses is a semantic don't-care; a lane whose
            // consuming output lanes are all unpacked is a selection-level
            // don't-care. Either way it is unconstrained. Otherwise every
            // live use must bind the same IR value.
            let mut bound: Option<ValueId> = None;
            for u in uses {
                let Some(m) = &matches[u.out_lane] else { continue };
                let Some(v) = m.live_ins.get(u.param).copied().flatten() else { continue };
                match bound {
                    None => bound = Some(v),
                    Some(w) if w != v => diags.push(Diagnostic::error(
                        at(Some(u.out_lane)),
                        format!(
                            "operand {input} lane {in_lane} is bound inconsistently: output \
                             lane {} needs {v} but an earlier lane bound {w}",
                            u.out_lane
                        ),
                    )),
                    Some(_) => {}
                }
            }
        }
    }
}

/// The contracted dependence graph — packs fused to single nodes, scalar
/// instructions as their own nodes — must be acyclic, or no instruction
/// schedule can realize the selection. Checked with Kahn's algorithm
/// (deliberately not the tricolor DFS the selection context uses).
fn check_schedulability(
    f: &Function,
    deps: &DepGraph,
    packs: &PackSet,
    producer: &HashMap<ValueId, SetPackId>,
    diags: &mut Vec<Diagnostic>,
) {
    let n_packs = packs.len();
    let node_of = |v: ValueId| producer.get(&v).map_or(n_packs + v.index(), |p| p.0);
    let n_nodes = n_packs + f.insts.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n_nodes];
    let mut indegree = vec![0usize; n_nodes];
    for v in f.value_ids() {
        let nv = node_of(v);
        for &d in deps.direct_deps(v) {
            let nd = node_of(d);
            if nd != nv {
                succs[nd].push(nv);
                indegree[nv] += 1;
            }
        }
    }
    let mut ready: Vec<usize> = (0..n_nodes).filter(|&n| indegree[n] == 0).collect();
    let mut processed = 0usize;
    while let Some(n) = ready.pop() {
        processed += 1;
        for &s in &succs[n] {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                ready.push(s);
            }
        }
    }
    if processed < n_nodes {
        let stuck: Vec<String> =
            (0..n_packs).filter(|&p| indegree[p] > 0).map(|p| format!("p{p}")).collect();
        diags.push(Diagnostic::error(
            Location::Program,
            format!(
                "pack dependence graph has a cycle (no feasible schedule); packs involved: {}",
                if stuck.is_empty() {
                    "none (scalar-only cycle)".to_string()
                } else {
                    stuck.join(", ")
                }
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vegen_ir::FunctionBuilder;
    use vegen_match::OpRegistry;

    fn empty_desc() -> TargetDesc {
        TargetDesc { ops: OpRegistry::default(), insts: vec![] }
    }

    #[test]
    fn wellformed_store_and_load_packs_pass() {
        let mut b = FunctionBuilder::new("copy2");
        let src = b.param("B", Type::I32, 2);
        let dst = b.param("A", Type::I32, 2);
        let x = b.load(src, 0);
        let y = b.load(src, 1);
        let s0 = b.store(dst, 0, x);
        let s1 = b.store(dst, 1, y);
        let f = b.finish();

        let mut packs = PackSet::new();
        packs.insert(Pack::Load {
            base: 0,
            start: 0,
            loads: vec![Some(x), Some(y)],
            elem: Type::I32,
        });
        packs.insert(Pack::Store {
            base: 1,
            start: 0,
            stores: vec![s0, s1],
            values: vec![x, y],
            elem: Type::I32,
        });
        let diags = check_packs(&f, &empty_desc(), &packs);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn swapped_store_lanes_rejected() {
        let mut b = FunctionBuilder::new("copy2");
        let src = b.param("B", Type::I32, 2);
        let dst = b.param("A", Type::I32, 2);
        let x = b.load(src, 0);
        let y = b.load(src, 1);
        let s0 = b.store(dst, 0, x);
        let s1 = b.store(dst, 1, y);
        let f = b.finish();

        let mut packs = PackSet::new();
        // Lane order corrupted: lane 0 covers the store to A[1].
        packs.insert(Pack::Store {
            base: 1,
            start: 0,
            stores: vec![s1, s0],
            values: vec![y, x],
            elem: Type::I32,
        });
        let diags = check_packs(&f, &empty_desc(), &packs);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags[0].message.contains("lane 0"), "{}", diags[0].message);
        assert!(matches!(diags[0].location, Location::Pack { pack: 0, lane: Some(0) }));
    }

    #[test]
    fn dependent_store_lanes_rejected() {
        // s1's stored value is loaded from the cell s0 writes.
        let mut b = FunctionBuilder::new("chain");
        let a = b.param("A", Type::I32, 2);
        let k = b.iconst(Type::I32, 5);
        let s0 = b.store(a, 0, k);
        let x = b.load(a, 0);
        let s1 = b.store(a, 1, x);
        let f = b.finish();

        let mut packs = PackSet::new();
        packs.insert(Pack::Store {
            base: 0,
            start: 0,
            stores: vec![s0, s1],
            values: vec![k, x],
            elem: Type::I32,
        });
        let diags = check_packs(&f, &empty_desc(), &packs);
        assert!(diags.iter().any(|d| d.message.contains("not independent")), "{diags:?}");
    }

    #[test]
    fn duplicate_producer_rejected() {
        let mut b = FunctionBuilder::new("dup");
        let src = b.param("B", Type::I32, 2);
        let dst = b.param("A", Type::I32, 2);
        let x = b.load(src, 0);
        let y = b.load(src, 1);
        let s0 = b.store(dst, 0, x);
        let s1 = b.store(dst, 1, y);
        let _ = (s0, s1);
        let f = b.finish();

        let mut packs = PackSet::new();
        packs.insert(Pack::Load {
            base: 0,
            start: 0,
            loads: vec![Some(x), Some(y)],
            elem: Type::I32,
        });
        packs.insert(Pack::Load { base: 0, start: 0, loads: vec![Some(x), None], elem: Type::I32 });
        let diags = check_packs(&f, &empty_desc(), &packs);
        assert!(diags.iter().any(|d| d.message.contains("produced by both pack")), "{diags:?}");
    }

    #[test]
    fn out_of_bounds_load_pack_rejected() {
        let mut b = FunctionBuilder::new("oob");
        let src = b.param("B", Type::I32, 2);
        let dst = b.param("A", Type::I32, 1);
        let x = b.load(src, 1);
        b.store(dst, 0, x);
        let f = b.finish();

        let mut packs = PackSet::new();
        // The don't-care lane extends the vector load past the buffer.
        packs.insert(Pack::Load { base: 0, start: 1, loads: vec![Some(x), None], elem: Type::I32 });
        let diags = check_packs(&f, &empty_desc(), &packs);
        assert!(diags.iter().any(|d| d.message.contains("out of bounds")), "{diags:?}");
    }

    #[test]
    fn cross_pack_cycle_rejected() {
        // Two store packs that each depend on the other through a
        // store-to-load chain: p0 = {s0, s3}, p1 = {s1, s2} where
        // s1 needs s0's store and s3 needs s2's store. Each pack's own
        // lanes stay independent; only the contracted graph has the cycle.
        let mut b = FunctionBuilder::new("cycle");
        let a = b.param("A", Type::I32, 2);
        let bb = b.param("B", Type::I32, 2);
        let k = b.iconst(Type::I32, 1);
        let s0 = b.store(a, 0, k);
        let x = b.load(a, 0);
        let s1 = b.store(bb, 0, x);
        let s2 = b.store(bb, 1, k);
        let y = b.load(bb, 1);
        let s3 = b.store(a, 1, y);
        let f = b.finish();

        let mut packs = PackSet::new();
        packs.insert(Pack::Store {
            base: 0,
            start: 0,
            stores: vec![s0, s3],
            values: vec![k, y],
            elem: Type::I32,
        });
        packs.insert(Pack::Store {
            base: 1,
            start: 0,
            stores: vec![s1, s2],
            values: vec![x, k],
            elem: Type::I32,
        });
        let diags = check_packs(&f, &empty_desc(), &packs);
        assert!(
            diags.iter().any(|d| d.message.contains("cycle")
                && d.message.contains("p0")
                && d.message.contains("p1")),
            "{diags:?}"
        );
        // The cycle is the only problem: per-pack checks are clean.
        assert!(diags.iter().all(|d| d.message.contains("cycle")), "{diags:?}");
    }
}
