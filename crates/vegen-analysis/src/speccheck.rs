//! Offline spec auditing: static verification of the pseudocode → VIDL →
//! match-table chain.
//!
//! The offline artifacts — pseudocode [`Spec`]s, their lifted
//! [`InstSemantics`], and the [`TargetDesc`] match table derived from them
//! — are trusted by every compile. This pass audits the whole chain
//! without compiling anything:
//!
//! 1. **Width/type audit**: every instruction's VIDL is re-checked
//!    (collecting *all* violations, with lane-level locations), output
//!    register widths must equal the declared bit width, and narrow
//!    integer arithmetic hidden under a widening cast (a C-promotion
//!    violation that would never match front-end IR) is flagged.
//! 2. **Source-chain audit**: each spec is re-run through the offline
//!    pipeline (parse → symeval → simplify → lift → validate) and the
//!    fresh semantics are compared per lane — ignoring operation *names*,
//!    which are display-only — against what the database actually carries,
//!    so any drift between pseudocode and shipped semantics is caught.
//! 3. **Match-table consistency**: overlapping rules (identical lane
//!    operations and bindings) are errors when ambiguous (duplicate name
//!    or equal cost) and warnings with a deterministic tie-break proof
//!    otherwise; dead rules (lanes whose canonicalized pattern can never
//!    match) and cost anomalies (non-positive, non-finite, or
//!    non-monotone-in-width costs) are reported.
//! 4. **Faithfulness + liberties**: each match rule's pattern is proved
//!    equal to its lane's operation semantics over the hash-consed
//!    [`crate::provenance`] expression arena; lanes the canonicalizer
//!    rewrote beyond the arena's normal form fall back to 64 random
//!    trials. The matcher's liberties — commutative operand swapping and
//!    cmp/select inversion — are verified against the concrete evaluator
//!    on the same NaN-free domain the offline validator samples.
//!
//! All findings use the shared [`Diagnostic`] type with
//! [`Location::Inst`] instruction/lane locations, so `vegen-engine
//! check-specs` can gate CI on error severity exactly like the per-compile
//! passes do.

use crate::diag::{Diagnostic, Location, Severity};
use crate::provenance::{canonical_pred, eval_pattern, Arena};
use std::collections::HashMap;
use vegen_ir::interp::{eval_bin, eval_cast, eval_cmp};
use vegen_ir::{BinOp, CastOp, CmpPred, Constant, Type};
use vegen_isa::specs::{all_specs, Spec};
use vegen_isa::{InstDb, InstDef, TargetIsa};
use vegen_match::{Pattern, TargetDesc};
use vegen_vidl::{check_inst_all, Expr, InstSemantics, Operation};

/// Structural statistics of a built match table, surfaced in engine
/// reports independently of the full audit.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MatchTableStats {
    /// Prepared match rules (one per instruction in the database).
    pub rules: usize,
    /// Deduplicated operations in the registry.
    pub ops: usize,
    /// Rules with at least one lane whose pattern can never match.
    pub dead_rules: usize,
    /// Size of the largest class of rules with identical lane operations
    /// and bindings (1 = no overlap).
    pub max_overlap_class: usize,
}

/// The outcome of auditing one target's spec chain.
#[derive(Debug, Clone, Default)]
pub struct SpecCheckReport {
    /// Target display name.
    pub target: String,
    /// Instructions audited.
    pub insts_checked: usize,
    /// Lanes whose match pattern was proved equal to the semantics
    /// symbolically (same arena id).
    pub lanes_proved: usize,
    /// Lanes proved by the 64-trial dynamic fallback (canonicalizer
    /// rewrites outside the arena's normal form).
    pub lanes_validated: usize,
    /// Match-table statistics.
    pub stats: MatchTableStats,
    /// All findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl SpecCheckReport {
    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// True when the audit found no errors (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// One-line human-readable summary.
    pub fn verdict(&self) -> String {
        if self.is_clean() {
            format!(
                "spec audit {}: {} instructions clean — {} lanes proved symbolically, {} \
                 validated dynamically, {} rules / {} ops, {} dead, {} warnings",
                self.target,
                self.insts_checked,
                self.lanes_proved,
                self.lanes_validated,
                self.stats.rules,
                self.stats.ops,
                self.stats.dead_rules,
                self.warning_count()
            )
        } else {
            format!(
                "spec audit {}: REJECTED — {} errors across {} instructions",
                self.target,
                self.error_count(),
                self.insts_checked
            )
        }
    }
}

/// Audit the built-in spec chain for one target configuration.
pub fn check_target(target: &TargetIsa, canonicalize_patterns: bool) -> SpecCheckReport {
    let specs: Vec<Spec> = all_specs()
        .iter()
        .filter(|s| target.has(s.ext) && s.bits <= target.max_bits)
        .cloned()
        .collect();
    let db = InstDb::for_target(target);
    check_database(&target.name, &specs, &db, canonicalize_patterns)
}

/// Audit an explicit database against its source specs.
///
/// `specs` are matched to database entries by name; this is the entry
/// point for corruption testing, where the database is a deliberately
/// mutated copy while the specs stay pristine.
pub fn check_database(
    target_name: &str,
    specs: &[Spec],
    db: &InstDb,
    canonicalize_patterns: bool,
) -> SpecCheckReport {
    let mut report = SpecCheckReport {
        target: target_name.to_string(),
        insts_checked: db.len(),
        ..SpecCheckReport::default()
    };
    let diags = &mut report.diagnostics;

    for (index, def) in db.iter().enumerate() {
        audit_widths(index, def, diags);
    }
    audit_spec_sources(specs, db, diags);

    let desc = match TargetDesc::try_build(db, canonicalize_patterns) {
        Ok(desc) => desc,
        Err(e) => {
            let (inst, lane) = match &e {
                vegen_match::TableError::UnknownOperation { inst, lane, .. }
                | vegen_match::TableError::BadPattern { inst, lane, .. } => (inst, *lane),
            };
            let index = db.iter().position(|d| &d.name == inst).unwrap_or(0);
            diags.push(Diagnostic::error(
                Location::Inst { index, lane: Some(lane) },
                format!("match table cannot be built: {e}"),
            ));
            return report;
        }
    };

    report.stats = audit_match_table(&desc, diags);

    let mut arena = Arena::default();
    let (proved, validated) = audit_faithfulness(&mut arena, &desc, diags);
    report.lanes_proved = proved;
    report.lanes_validated = validated;

    audit_liberties(&mut arena, &desc, diags);
    report
}

/// The structural statistics alone, without running the audit — cheap
/// enough for every engine report.
pub fn match_table_stats(desc: &TargetDesc) -> MatchTableStats {
    audit_match_table(desc, &mut Vec::new())
}

// ---------------------------------------------------------------------------
// 1. Width and type audit
// ---------------------------------------------------------------------------

fn audit_widths(index: usize, def: &InstDef, diags: &mut Vec<Diagnostic>) {
    for v in check_inst_all(&def.sem, None) {
        diags.push(Diagnostic::error(
            Location::Inst { index, lane: v.lane },
            format!("{}: {}", def.name, v.message),
        ));
    }
    if def.sem.out_bits() != def.bits {
        diags.push(Diagnostic::error(
            Location::Inst { index, lane: None },
            format!(
                "{}: declared output width is {} bits but the semantics produce {} lanes of {} \
                 ({} bits)",
                def.name,
                def.bits,
                def.sem.out_lanes(),
                def.sem.out_elem,
                def.sem.out_bits()
            ),
        ));
    }
    for op in &def.sem.ops {
        scan_promotion(index, &def.name, op, &op.expr, diags);
    }
}

/// Flag widening casts of narrow integer arithmetic: specs are written at
/// the C-promotion width precisely so their patterns match front-end IR,
/// and `sext(add_i8(..))`-shaped semantics break that convention.
fn scan_promotion(index: usize, inst: &str, op: &Operation, e: &Expr, diags: &mut Vec<Diagnostic>) {
    if let Expr::Cast { op: CastOp::SExt | CastOp::ZExt, arg, .. } = e {
        if let Expr::Bin { op: bop @ (BinOp::Add | BinOp::Sub | BinOp::Mul), .. } = arg.as_ref() {
            if let Some(ty) = arg.ty(&op.params) {
                if ty.is_int() && ty.bits() < 32 {
                    diags.push(Diagnostic::warning(
                        Location::Inst { index, lane: None },
                        format!(
                            "{inst}: operation {} widens a narrow {ty} {} — arithmetic below \
                             the C-promotion width will not match front-end IR",
                            op.name,
                            bop.name()
                        ),
                    ));
                }
            }
        }
    }
    match e {
        Expr::Param(_) | Expr::Const(_) => {}
        Expr::FNeg(a) => scan_promotion(index, inst, op, a, diags),
        Expr::Cast { arg, .. } => scan_promotion(index, inst, op, arg, diags),
        Expr::Bin { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => {
            scan_promotion(index, inst, op, lhs, diags);
            scan_promotion(index, inst, op, rhs, diags);
        }
        Expr::Select { cond, on_true, on_false } => {
            scan_promotion(index, inst, op, cond, diags);
            scan_promotion(index, inst, op, on_true, diags);
            scan_promotion(index, inst, op, on_false, diags);
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Source-chain audit
// ---------------------------------------------------------------------------

/// Re-run the offline pipeline for every spec and compare the fresh
/// artifacts against what the database carries.
fn audit_spec_sources(specs: &[Spec], db: &InstDb, diags: &mut Vec<Diagnostic>) {
    let by_name: HashMap<&str, &Spec> = specs.iter().map(|s| (s.name.as_str(), s)).collect();
    for (index, def) in db.iter().enumerate() {
        let loc = Location::Inst { index, lane: None };
        let Some(spec) = by_name.get(def.name.as_str()) else {
            diags.push(Diagnostic::warning(
                loc,
                format!(
                    "{}: no source spec found; the pseudocode chain cannot be re-audited",
                    def.name
                ),
            ));
            continue;
        };
        let fresh = match spec.build() {
            Ok(f) => f,
            Err(e) => {
                diags.push(Diagnostic::error(
                    loc,
                    format!("{}: offline pipeline fails on the source spec: {e}", def.name),
                ));
                continue;
            }
        };
        if def.bits != fresh.bits {
            diags.push(Diagnostic::error(
                loc,
                format!(
                    "{}: database width {} diverges from spec width {}",
                    def.name, def.bits, fresh.bits
                ),
            ));
        }
        if def.ext != fresh.ext {
            diags.push(Diagnostic::error(
                loc,
                format!(
                    "{}: database extension gate {:?} diverges from spec gate {:?}",
                    def.name, def.ext, fresh.ext
                ),
            ));
        }
        if (def.cost - fresh.cost).abs() > 1e-12 {
            diags.push(Diagnostic::error(
                loc,
                format!(
                    "{}: database cost {} diverges from 2x the spec's inverse throughput ({})",
                    def.name, def.cost, fresh.cost
                ),
            ));
        }
        compare_semantics(index, &def.name, &fresh.sem, &def.sem, diags);
    }
}

/// Per-lane structural comparison ignoring operation *names* (display
/// metadata): a renamed operation is semantically neutral; anything else
/// that differs is drift.
fn compare_semantics(
    index: usize,
    name: &str,
    fresh: &InstSemantics,
    got: &InstSemantics,
    diags: &mut Vec<Diagnostic>,
) {
    if got.inputs != fresh.inputs {
        diags.push(Diagnostic::error(
            Location::Inst { index, lane: None },
            format!(
                "{name}: input shapes {:?} diverge from the lifted semantics {:?}",
                got.inputs, fresh.inputs
            ),
        ));
    }
    if got.out_elem != fresh.out_elem {
        diags.push(Diagnostic::error(
            Location::Inst { index, lane: None },
            format!(
                "{name}: output element type {} diverges from the lifted semantics {}",
                got.out_elem, fresh.out_elem
            ),
        ));
    }
    if got.lanes.len() != fresh.lanes.len() {
        diags.push(Diagnostic::error(
            Location::Inst { index, lane: None },
            format!(
                "{name}: {} output lanes diverge from the lifted semantics ({} lanes)",
                got.lanes.len(),
                fresh.lanes.len()
            ),
        ));
        return;
    }
    for (lane, (gb, fb)) in got.lanes.iter().zip(&fresh.lanes).enumerate() {
        let loc = Location::Inst { index, lane: Some(lane) };
        if gb.args != fb.args {
            diags.push(Diagnostic::error(
                loc,
                format!(
                    "{name}: lane binding reads {:?} but the spec's pseudocode reads {:?}",
                    gb.args, fb.args
                ),
            ));
        }
        match (got.ops.get(gb.op), fresh.ops.get(fb.op)) {
            (Some(g), Some(f)) => {
                if g.params != f.params || g.ret != f.ret || g.expr != f.expr {
                    diags.push(Diagnostic::error(
                        loc,
                        format!(
                            "{name}: lane operation {} diverges semantically from the spec's \
                             pseudocode",
                            g.name
                        ),
                    ));
                }
            }
            _ => diags.push(Diagnostic::error(
                loc,
                format!("{name}: lane references an out-of-range operation"),
            )),
        }
    }
}

// ---------------------------------------------------------------------------
// 3. Match-table consistency
// ---------------------------------------------------------------------------

fn audit_match_table(desc: &TargetDesc, diags: &mut Vec<Diagnostic>) -> MatchTableStats {
    let mut stats = MatchTableStats {
        rules: desc.insts.len(),
        ops: desc.ops.len(),
        dead_rules: 0,
        max_overlap_class: if desc.insts.is_empty() { 0 } else { 1 },
    };

    // Overlap classes: rules indistinguishable to the vectorizer (same
    // per-lane operations and the same operand-binding tables).
    let mut classes: HashMap<Vec<u8>, Vec<usize>> = HashMap::new();
    for (i, inst) in desc.insts.iter().enumerate() {
        classes.entry(class_key(inst)).or_default().push(i);
    }
    let mut overlaps: Vec<&Vec<usize>> = classes.values().filter(|c| c.len() > 1).collect();
    overlaps.sort_by_key(|c| c[0]);
    for class in overlaps {
        stats.max_overlap_class = stats.max_overlap_class.max(class.len());
        // Deterministic tie-break: lowest cost wins, name as secondary key.
        let mut ranked: Vec<usize> = class.clone();
        ranked.sort_by(|&a, &b| {
            let (ia, ib) = (&desc.insts[a].def, &desc.insts[b].def);
            ia.cost
                .partial_cmp(&ib.cost)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(ia.name.cmp(&ib.name))
        });
        let names: Vec<&str> = ranked.iter().map(|&i| desc.insts[i].def.name.as_str()).collect();
        let dup_name =
            ranked.windows(2).find(|w| desc.insts[w[0]].def.name == desc.insts[w[1]].def.name);
        let (winner, runner_up) = (&desc.insts[ranked[0]].def, &desc.insts[ranked[1]].def);
        if let Some(w) = dup_name {
            diags.push(Diagnostic::error(
                Location::Inst { index: w[1], lane: None },
                format!(
                    "duplicate match rule: {} appears {} times with identical lane semantics",
                    desc.insts[w[0]].def.name,
                    ranked
                        .iter()
                        .filter(|&&i| desc.insts[i].def.name == desc.insts[w[0]].def.name)
                        .count()
                ),
            ));
        } else if winner.cost == runner_up.cost {
            diags.push(Diagnostic::error(
                Location::Inst { index: ranked[0], lane: None },
                format!(
                    "ambiguous match rules: {} have identical lane semantics and equal cost {} — \
                     selection order is unspecified",
                    names.join(", "),
                    winner.cost
                ),
            ));
        } else {
            diags.push(Diagnostic::warning(
                Location::Inst { index: ranked[0], lane: None },
                format!(
                    "overlapping match rules [{}]: deterministic tie-break — {} wins at cost {} \
                     (next: {} at {})",
                    names.join(", "),
                    winner.name,
                    winner.cost,
                    runner_up.name,
                    runner_up.cost
                ),
            ));
        }
    }

    // Dead and trivial rules.
    for (i, inst) in desc.insts.iter().enumerate() {
        let mut dead = false;
        for (lane, &op_id) in inst.lane_ops.iter().enumerate() {
            match &desc.ops.get(op_id).pattern {
                Pattern::Const(c) => {
                    dead = true;
                    diags.push(Diagnostic::warning(
                        Location::Inst { index: i, lane: Some(lane) },
                        format!(
                            "{}: lane pattern folded to the constant {c}; constants are never \
                             pattern roots, so this rule is dead",
                            inst.def.name
                        ),
                    ));
                }
                Pattern::Param(_) => {
                    diags.push(Diagnostic::warning(
                        Location::Inst { index: i, lane: Some(lane) },
                        format!(
                            "{}: lane pattern is a bare parameter and matches any value of its \
                             type",
                            inst.def.name
                        ),
                    ));
                }
                _ => {}
            }
        }
        if dead {
            stats.dead_rules += 1;
        }
    }

    // Cost anomalies.
    let mut by_asm: HashMap<&str, Vec<(u32, f64, usize)>> = HashMap::new();
    for (i, inst) in desc.insts.iter().enumerate() {
        let def = &inst.def;
        if !(def.cost.is_finite() && def.cost > 0.0) {
            diags.push(Diagnostic::error(
                Location::Inst { index: i, lane: None },
                format!("{}: cost {} is not a positive finite number", def.name, def.cost),
            ));
        }
        by_asm.entry(def.asm.as_str()).or_default().push((def.bits, def.cost, i));
    }
    for (asm, mut widths) in by_asm {
        widths.sort_by_key(|&(bits, _, _)| bits);
        for w in widths.windows(2) {
            let ((b1, c1, _), (b2, c2, i2)) = (w[0], w[1]);
            if b2 > b1 && c2 < c1 {
                diags.push(Diagnostic::warning(
                    Location::Inst { index: i2, lane: None },
                    format!(
                        "{asm}: cost {c2} at {b2} bits undercuts cost {c1} at {b1} bits — \
                         non-monotone cost table"
                    ),
                ));
            }
        }
    }
    stats
}

/// A stable hash key for a rule's vectorizer-visible identity: lane
/// operation ids plus the operand-binding tables.
fn class_key(inst: &vegen_match::DescInst) -> Vec<u8> {
    let mut key = Vec::new();
    for op in &inst.lane_ops {
        key.extend_from_slice(&(op.0 as u64).to_le_bytes());
    }
    key.push(0xff);
    for input in &inst.bindings {
        key.push(0xfe);
        for lane_uses in input {
            key.push(0xfd);
            for u in lane_uses {
                key.extend_from_slice(&(u.out_lane as u32).to_le_bytes());
                key.extend_from_slice(&(u.param as u32).to_le_bytes());
            }
        }
    }
    key
}

// ---------------------------------------------------------------------------
// 4. Faithfulness: match rule ≡ lane semantics
// ---------------------------------------------------------------------------

fn audit_faithfulness(
    arena: &mut Arena,
    desc: &TargetDesc,
    diags: &mut Vec<Diagnostic>,
) -> (usize, usize) {
    let mut proved = 0usize;
    let mut validated = 0usize;
    for (index, inst) in desc.insts.iter().enumerate() {
        for (lane, &op_id) in inst.lane_ops.iter().enumerate() {
            let at = Location::Inst { index, lane: Some(lane) };
            let reg = desc.ops.get(op_id);
            let binding = &inst.def.sem.lanes[lane];
            let vidl_op = &inst.def.sem.ops[binding.op];
            if reg.param_tys != vidl_op.params || reg.ret != vidl_op.ret {
                diags.push(Diagnostic::error(
                    at,
                    format!(
                        "{}: registered matcher signature diverges from the lane operation {}",
                        inst.def.name, vidl_op.name
                    ),
                ));
                continue;
            }
            let params: Vec<_> =
                vidl_op.params.iter().enumerate().map(|(j, &ty)| arena.mk_init(j, 0, ty)).collect();
            let sem_side = match expr_to_sym(arena, &vidl_op.expr, &params, at) {
                Ok(id) => id,
                Err(d) => {
                    diags.push(d);
                    continue;
                }
            };
            let pat_side = match eval_pattern(arena, &reg.pattern, &params, at) {
                Ok(id) => id,
                Err(d) => {
                    diags.push(d);
                    continue;
                }
            };
            if sem_side == pat_side {
                proved += 1;
                continue;
            }
            // The canonicalizer applies rewrites the arena's normal form
            // does not model (strict-inequality rewriting, trunc sinking,
            // extension narrowing); fall back to random trials on the same
            // NaN-free domain the offline validator uses.
            match concrete_equiv(vidl_op, &reg.pattern, 64) {
                Ok(()) => validated += 1,
                Err(msg) => {
                    let names: Vec<String> =
                        (0..vidl_op.params.len()).map(|j| format!("x{j}")).collect();
                    let names: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
                    diags.push(Diagnostic::error(
                        at,
                        format!(
                            "{}: match pattern diverges from lane semantics ({}): semantics {} \
                             vs pattern {}",
                            inst.def.name,
                            msg,
                            arena.render_named(&names, sem_side),
                            arena.render_named(&names, pat_side)
                        ),
                    ));
                }
            }
        }
    }
    (proved, validated)
}

/// Evaluate a VIDL operation body into the symbolic arena.
fn expr_to_sym(
    arena: &mut Arena,
    e: &Expr,
    params: &[crate::provenance::SymId],
    at: Location,
) -> Result<crate::provenance::SymId, Diagnostic> {
    match e {
        Expr::Param(i) => params.get(*i).copied().ok_or_else(|| {
            Diagnostic::error(at, format!("operation parameter {i} is out of range"))
        }),
        Expr::Const(c) => Ok(arena.mk_const(*c)),
        Expr::Bin { op, lhs, rhs } => {
            let l = expr_to_sym(arena, lhs, params, at)?;
            let r = expr_to_sym(arena, rhs, params, at)?;
            Ok(arena.mk_bin(*op, l, r))
        }
        Expr::FNeg(a) => {
            let a = expr_to_sym(arena, a, params, at)?;
            Ok(arena.mk_fneg(a))
        }
        Expr::Cast { op, to, arg } => {
            let a = expr_to_sym(arena, arg, params, at)?;
            Ok(arena.mk_cast(*op, *to, a))
        }
        Expr::Cmp { pred, lhs, rhs } => {
            let l = expr_to_sym(arena, lhs, params, at)?;
            let r = expr_to_sym(arena, rhs, params, at)?;
            Ok(arena.mk_cmp(*pred, l, r))
        }
        Expr::Select { cond, on_true, on_false } => {
            let c = expr_to_sym(arena, cond, params, at)?;
            let t = expr_to_sym(arena, on_true, params, at)?;
            let f = expr_to_sym(arena, on_false, params, at)?;
            Ok(arena.mk_select(c, t, f))
        }
    }
}

/// Deterministic xorshift mirroring the offline validator's generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0 = self.0.wrapping_mul(0x2545f4914f6cdd1d).wrapping_add(0x9e3779b9);
        self.0
    }
}

/// Draw a value on the offline validator's domain: extremes-biased
/// integers and small NaN-free floats (float predicate inversion is only
/// sound without NaN, so the audit samples the same domain the dynamic
/// validator pins).
fn draw(rng: &mut Rng, ty: Type) -> Constant {
    match ty {
        Type::F32 => Constant::f32(((rng.next() % 4096) as f32 - 2048.0) / 32.0),
        Type::F64 => Constant::f64(((rng.next() % 4096) as f64 - 2048.0) / 32.0),
        _ => {
            let bits = ty.bits();
            let r = rng.next();
            let v = match r % 8 {
                0 => vegen_ir::constant::mask(bits),
                1 => vegen_ir::constant::mask(bits) >> 1,
                2 => 1u64 << (bits - 1),
                3 => 0,
                _ => r & vegen_ir::constant::mask(bits),
            };
            Constant::int(ty, vegen_ir::constant::sext(v, bits))
        }
    }
}

fn pattern_to_expr(p: &Pattern) -> Expr {
    match p {
        Pattern::Param(i) => Expr::Param(*i),
        Pattern::Const(c) => Expr::Const(*c),
        Pattern::Bin { op, lhs, rhs } => Expr::Bin {
            op: *op,
            lhs: Box::new(pattern_to_expr(lhs)),
            rhs: Box::new(pattern_to_expr(rhs)),
        },
        Pattern::FNeg(a) => Expr::FNeg(Box::new(pattern_to_expr(a))),
        Pattern::Cast { op, to, arg } => {
            Expr::Cast { op: *op, to: *to, arg: Box::new(pattern_to_expr(arg)) }
        }
        Pattern::Cmp { pred, lhs, rhs } => Expr::Cmp {
            pred: *pred,
            lhs: Box::new(pattern_to_expr(lhs)),
            rhs: Box::new(pattern_to_expr(rhs)),
        },
        Pattern::Select { cond, on_true, on_false } => Expr::Select {
            cond: Box::new(pattern_to_expr(cond)),
            on_true: Box::new(pattern_to_expr(on_true)),
            on_false: Box::new(pattern_to_expr(on_false)),
        },
    }
}

fn eval_expr_concrete(e: &Expr, params: &[Constant]) -> Result<Constant, String> {
    match e {
        Expr::Param(i) => {
            params.get(*i).copied().ok_or_else(|| format!("parameter {i} out of range"))
        }
        Expr::Const(c) => Ok(*c),
        Expr::Bin { op, lhs, rhs } => {
            let l = eval_expr_concrete(lhs, params)?;
            let r = eval_expr_concrete(rhs, params)?;
            eval_bin(*op, l, r).map_err(|e| e.to_string())
        }
        Expr::FNeg(a) => {
            let v = eval_expr_concrete(a, params)?;
            match v.ty() {
                Type::F32 => Ok(Constant::f32(-v.as_f32())),
                Type::F64 => Ok(Constant::f64(-v.as_f64())),
                ty => Err(format!("fneg of {ty}")),
            }
        }
        Expr::Cast { op, to, arg } => {
            let v = eval_expr_concrete(arg, params)?;
            Ok(eval_cast(*op, v, *to))
        }
        Expr::Cmp { pred, lhs, rhs } => {
            let l = eval_expr_concrete(lhs, params)?;
            let r = eval_expr_concrete(rhs, params)?;
            Ok(eval_cmp(*pred, l, r))
        }
        Expr::Select { cond, on_true, on_false } => {
            let c = eval_expr_concrete(cond, params)?;
            if c.as_u64() != 0 {
                eval_expr_concrete(on_true, params)
            } else {
                eval_expr_concrete(on_false, params)
            }
        }
    }
}

/// 64-trial concrete equivalence of an operation body and its
/// canonicalized pattern.
fn concrete_equiv(op: &Operation, pat: &Pattern, trials: usize) -> Result<(), String> {
    let pat_expr = pattern_to_expr(pat);
    let mut rng = Rng(0x5eed_0002);
    for trial in 0..trials {
        let vals: Vec<Constant> = op.params.iter().map(|&ty| draw(&mut rng, ty)).collect();
        let sem = eval_expr_concrete(&op.expr, &vals);
        let got = eval_expr_concrete(&pat_expr, &vals);
        match (&sem, &got) {
            (Ok(a), Ok(b)) if a == b => {}
            (Err(_), Err(_)) => {}
            _ => {
                return Err(format!(
                    "trial {trial} diverges on inputs {vals:?}: semantics {sem:?}, pattern {got:?}"
                ))
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// 5. Commutativity and inversion closure
// ---------------------------------------------------------------------------

/// Verify the matcher's liberties — commutative operand swapping, cmp
/// operand swapping, and select/cmp inversion — against the concrete
/// evaluator, and check that the symbolic arena's normal form actually
/// closes over them.
fn audit_liberties(arena: &mut Arena, desc: &TargetDesc, diags: &mut Vec<Diagnostic>) {
    let mut bin_ops: Vec<BinOp> = Vec::new();
    let mut preds: Vec<CmpPred> = Vec::new();
    for inst in &desc.insts {
        for op in &inst.def.sem.ops {
            collect_ops(&op.expr, &mut bin_ops, &mut preds);
        }
    }
    for (_, reg) in desc.ops.iter() {
        collect_ops(&pattern_to_expr(&reg.pattern), &mut bin_ops, &mut preds);
    }
    bin_ops.sort();
    bin_ops.dedup();
    preds.sort();
    preds.dedup();

    let int_tys = [Type::I8, Type::I16, Type::I32, Type::I64];
    let float_tys = [Type::F32, Type::F64];
    let mut rng = Rng(0x5eed_0003);

    for &op in bin_ops.iter().filter(|o| o.is_commutative()) {
        let tys: &[Type] = if op.is_float() { &float_tys } else { &int_tys };
        for &ty in tys {
            for _ in 0..64 {
                let (a, b) = (draw(&mut rng, ty), draw(&mut rng, ty));
                let fwd = eval_bin(op, a, b);
                let rev = eval_bin(op, b, a);
                let agree = matches!((&fwd, &rev), (Ok(x), Ok(y)) if x == y)
                    || matches!((&fwd, &rev), (Err(_), Err(_)));
                if !agree {
                    diags.push(Diagnostic::error(
                        Location::Program,
                        format!(
                            "declared-commutative {} is not commutative on {ty}: {}({a:?}, \
                             {b:?}) = {fwd:?} but swapped = {rev:?}",
                            op.name(),
                            op.name()
                        ),
                    ));
                    break;
                }
            }
            // Arena closure: both operand orders intern to one id.
            let x = arena.mk_init(0, 0, ty);
            let y = arena.mk_init(1, 0, ty);
            if arena.mk_bin(op, x, y) != arena.mk_bin(op, y, x) {
                diags.push(Diagnostic::error(
                    Location::Program,
                    format!("arena does not normalize commutative {} on {ty}", op.name()),
                ));
            }
        }
    }

    for &pred in &preds {
        let tys: &[Type] = if pred.is_float() { &float_tys } else { &int_tys };
        for &ty in tys {
            for _ in 0..64 {
                let (a, b) = (draw(&mut rng, ty), draw(&mut rng, ty));
                let base = eval_cmp(pred, a, b).as_u64();
                if eval_cmp(pred.swapped(), b, a).as_u64() != base {
                    diags.push(Diagnostic::error(
                        Location::Program,
                        format!(
                            "swapped predicate law fails for {} on {ty} at ({a:?}, {b:?})",
                            pred.name()
                        ),
                    ));
                    break;
                }
                if eval_cmp(pred.inverse(), a, b).as_u64() != 1 - base {
                    diags.push(Diagnostic::error(
                        Location::Program,
                        format!(
                            "inverse predicate law fails for {} on {ty} at ({a:?}, {b:?}) — \
                             NaN-free domain assumed",
                            pred.name()
                        ),
                    ));
                    break;
                }
            }
            // Arena closure: swapped comparisons intern to one id, and a
            // select over a non-canonical predicate equals its inverted,
            // arm-swapped rewrite.
            let x = arena.mk_init(0, 0, ty);
            let y = arena.mk_init(1, 0, ty);
            if arena.mk_cmp(pred, x, y) != arena.mk_cmp(pred.swapped(), y, x) {
                diags.push(Diagnostic::error(
                    Location::Program,
                    format!("arena does not normalize swapped {} on {ty}", pred.name()),
                ));
            }
            if !canonical_pred(pred) {
                let t = arena.mk_init(2, 0, ty);
                let f = arena.mk_init(3, 0, ty);
                let c1 = arena.mk_cmp(pred, x, y);
                let s1 = arena.mk_select(c1, t, f);
                let c2 = arena.mk_cmp(pred.inverse(), x, y);
                let s2 = arena.mk_select(c2, f, t);
                if s1 != s2 {
                    diags.push(Diagnostic::error(
                        Location::Program,
                        format!("arena select inversion is not closed for {} on {ty}", pred.name()),
                    ));
                }
            }
        }
    }
}

fn collect_ops(e: &Expr, bin_ops: &mut Vec<BinOp>, preds: &mut Vec<CmpPred>) {
    match e {
        Expr::Param(_) | Expr::Const(_) => {}
        Expr::FNeg(a) => collect_ops(a, bin_ops, preds),
        Expr::Cast { arg, .. } => collect_ops(arg, bin_ops, preds),
        Expr::Bin { op, lhs, rhs } => {
            bin_ops.push(*op);
            collect_ops(lhs, bin_ops, preds);
            collect_ops(rhs, bin_ops, preds);
        }
        Expr::Cmp { pred, lhs, rhs } => {
            preds.push(*pred);
            collect_ops(lhs, bin_ops, preds);
            collect_ops(rhs, bin_ops, preds);
        }
        Expr::Select { cond, on_true, on_false } => {
            collect_ops(cond, bin_ops, preds);
            collect_ops(on_true, bin_ops, preds);
            collect_ops(on_false, bin_ops, preds);
        }
    }
}

// ---------------------------------------------------------------------------
// Deliberate corruption, for the CI smoke and the seeded corruption tests
// ---------------------------------------------------------------------------

/// Apply one named corruption to a database — support for the seeded
/// corruption tests and the `check-specs --corrupt KIND` CI smoke, which
/// both assert the audit rejects the mutated database and names the
/// mutated instruction. Returns the corrupted database and the name of
/// the instruction that was mutated.
///
/// Kinds: `lane-swap` (swap the first two output-lane bindings),
/// `widen` (widen the output element type without touching the declared
/// register width), `flip-cmp` (invert the first comparison predicate in
/// some operation body), `dup-rule` (append a byte-identical copy of the
/// first instruction), `neg-cost` (set the first instruction's cost to
/// −1), `rename-op` (rename a lane operation — display metadata only,
/// which the audit must *accept*).
pub fn corrupt_database(db: &InstDb, kind: &str) -> Result<(InstDb, String), String> {
    let mut defs: Vec<InstDef> = db.iter().cloned().collect();
    let name = match kind {
        "lane-swap" => {
            let d = defs
                .iter_mut()
                .find(|d| d.sem.lanes.len() >= 2 && d.sem.lanes[0] != d.sem.lanes[1])
                .ok_or("no instruction with two distinct lane bindings")?;
            d.sem.lanes.swap(0, 1);
            d.name.clone()
        }
        "widen" => {
            let d = defs
                .iter_mut()
                .find(|d| matches!(d.sem.out_elem, Type::I8 | Type::I16 | Type::I32 | Type::F32))
                .ok_or("no instruction with a widenable output element")?;
            d.sem.out_elem = match d.sem.out_elem {
                Type::I8 => Type::I16,
                Type::I16 => Type::I32,
                Type::I32 => Type::I64,
                Type::F32 => Type::F64,
                t => t,
            };
            d.name.clone()
        }
        "flip-cmp" => defs
            .iter_mut()
            .find_map(|d| {
                d.sem.ops.iter_mut().any(|op| flip_first_cmp(&mut op.expr)).then(|| d.name.clone())
            })
            .ok_or("no instruction with a comparison")?,
        "dup-rule" => {
            let d = defs.first().ok_or("empty database")?.clone();
            let name = d.name.clone();
            defs.push(d);
            name
        }
        "neg-cost" => {
            let d = defs.first_mut().ok_or("empty database")?;
            d.cost = -1.0;
            d.name.clone()
        }
        "rename-op" => {
            let d = defs.first_mut().ok_or("empty database")?;
            let op = d.sem.ops.first_mut().ok_or("instruction has no operations")?;
            op.name = format!("{}_renamed", op.name);
            d.name.clone()
        }
        other => Err(format!(
            "unknown corruption {other:?} (expect lane-swap|widen|flip-cmp|dup-rule|neg-cost|\
             rename-op)"
        ))?,
    };
    Ok((InstDb::from_defs(defs), name))
}

/// Invert the first comparison predicate found in `e`; true when one was.
fn flip_first_cmp(e: &mut Expr) -> bool {
    match e {
        Expr::Param(_) | Expr::Const(_) => false,
        Expr::FNeg(a) => flip_first_cmp(a),
        Expr::Cast { arg, .. } => flip_first_cmp(arg),
        Expr::Bin { lhs, rhs, .. } => flip_first_cmp(lhs) || flip_first_cmp(rhs),
        Expr::Cmp { pred, .. } => {
            *pred = pred.inverse();
            true
        }
        Expr::Select { cond, on_true, on_false } => {
            flip_first_cmp(cond) || flip_first_cmp(on_true) || flip_first_cmp(on_false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_tree_avx2_audits_clean() {
        let r = check_target(&TargetIsa::avx2(), true);
        assert!(
            r.is_clean(),
            "in-tree AVX2 specs must audit clean:\n{}",
            r.diagnostics.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
        );
        assert!(r.insts_checked >= 50, "expected a substantial database, got {}", r.insts_checked);
        assert!(r.lanes_proved > 0, "some lanes must be proved symbolically");
        assert_eq!(r.stats.rules, r.insts_checked);
        assert!(r.stats.ops > 0 && r.stats.ops < r.stats.rules * 8);
    }

    #[test]
    fn in_tree_vnni_audits_clean() {
        let r = check_target(&TargetIsa::avx512vnni(), true);
        assert!(
            r.is_clean(),
            "in-tree AVX512-VNNI specs must audit clean:\n{}",
            r.diagnostics.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
        );
    }

    #[test]
    fn uncanonicalized_patterns_prove_symbolically() {
        // Without the canonicalizer, every pattern is the operation body
        // verbatim, so the symbolic proof must close every lane.
        let r = check_target(&TargetIsa::sse4(), false);
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        assert_eq!(r.lanes_validated, 0, "no lane should need the dynamic fallback");
    }

    #[test]
    fn verdict_mentions_target() {
        let r = check_target(&TargetIsa::sse4(), true);
        assert!(r.verdict().contains("SSE4"), "{}", r.verdict());
    }
}
