//! Structured diagnostics shared by all three analysis passes.

use std::fmt;
use vegen_ir::ValueId;

/// How bad a finding is.
///
/// Errors mean the artifact is wrong (an illegal pack, a stored lane that
/// does not equal its scalar counterpart, a structurally broken VM
/// program) and gate CI; warnings flag suspicious-but-sound shapes
/// (dead vector code, identity shuffles) and do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but semantics-preserving.
    Warning,
    /// The checked property is violated.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Where a diagnostic points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Location {
    /// A scalar IR instruction.
    Value(ValueId),
    /// A pack in the selection (by [`vegen_core::SetPackId`] index), with
    /// an optional lane.
    Pack {
        /// Pack index within the selected [`vegen_core::PackSet`].
        pack: usize,
        /// Offending lane, when one can be named.
        lane: Option<usize>,
    },
    /// A VM instruction (by index into `VmProgram::insts`), with an
    /// optional lane.
    VmInst {
        /// Instruction index.
        index: usize,
        /// Offending lane, when one can be named.
        lane: Option<usize>,
    },
    /// A memory location: parameter buffer plus constant element offset.
    Mem {
        /// Parameter index.
        base: usize,
        /// Element offset.
        offset: i64,
    },
    /// A target instruction spec (by index into the audited database), with
    /// an optional output lane. The diagnostic message names the
    /// instruction; the location stays `Copy` by carrying the index.
    Inst {
        /// Index into the instruction database under audit.
        index: usize,
        /// Offending output lane, when one can be named.
        lane: Option<usize>,
    },
    /// The program as a whole (e.g. a dependence cycle across packs).
    Program,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Value(v) => write!(f, "ir:{v}"),
            Location::Pack { pack, lane: None } => write!(f, "pack:p{pack}"),
            Location::Pack { pack, lane: Some(l) } => write!(f, "pack:p{pack}.{l}"),
            Location::VmInst { index, lane: None } => write!(f, "vm:#{index}"),
            Location::VmInst { index, lane: Some(l) } => write!(f, "vm:#{index}.{l}"),
            Location::Mem { base, offset } => write!(f, "mem:arg{base}[{offset}]"),
            Location::Inst { index, lane: None } => write!(f, "spec:#{index}"),
            Location::Inst { index, lane: Some(l) } => write!(f, "spec:#{index}.{l}"),
            Location::Program => write!(f, "program"),
        }
    }
}

/// One finding of an analysis pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// What the finding points at.
    pub location: Location,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// An error at `location`.
    pub fn error(location: Location, message: impl Into<String>) -> Diagnostic {
        Diagnostic { severity: Severity::Error, location, message: message.into() }
    }

    /// A warning at `location`.
    pub fn warning(location: Location, message: impl Into<String>) -> Diagnostic {
        Diagnostic { severity: Severity::Warning, location, message: message.into() }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]: {}", self.severity, self.location, self.message)
    }
}
