#![warn(missing_docs)]

//! `vegen-analysis` — static pack-legality checking and lane-provenance
//! translation validation for the VeGen pipeline.
//!
//! The pipeline's existing correctness check,
//! `vegen_codegen::check_equivalence`, is *dynamic*: it executes the
//! scalar and vector programs over a handful of random memory images and
//! compares the results. Random sampling is a strong smoke test but can
//! miss bugs that only fire on specific values — an off-by-one comparison
//! predicate diverges only when the operands are exactly equal
//! (probability `2^-32` per trial on 32-bit data). This crate is the
//! static complement; every compile is checked without executing
//! anything:
//!
//! * [`legality`] independently re-derives the §4.4 pack-legality
//!   conditions on the selected [`vegen_core::PackSet`]: lane
//!   independence under a freshly built [`vegen_ir::deps::DepGraph`],
//!   operand-binding consistency against the VIDL
//!   [`vegen_vidl::InstSemantics`], well-formed memory packs, and
//!   schedulability (no cycle in the contracted pack graph).
//! * [`provenance`] symbolically evaluates both the scalar function and
//!   the lowered [`vegen_vm::VmProgram`] over one shared hash-consed
//!   expression arena and proves every stored lane equal to the scalar
//!   store it replaces — translation validation in the spirit of the
//!   paper's §6.1 offline validation, but per compilation.
//! * [`lint`] structurally checks the VM program (def-before-use,
//!   lane-width consistency, shuffle-index bounds, memory bounds) and
//!   warns about dead vector code and redundant shuffles.
//! * [`speccheck`] audits the *offline* artifacts every compile trusts:
//!   the pseudocode → VIDL → match-table chain is statically re-derived
//!   and cross-checked (widths, source drift, table ambiguity/dead rules/
//!   cost anomalies, per-lane matcher faithfulness, commutativity and
//!   inversion closure) — `vegen-engine check-specs` gates CI on it.
//!
//! All passes report through one [`Diagnostic`] type; [`analyze_kernel`]
//! bundles the per-compile ones into an [`AnalysisReport`].

pub mod diag;
pub mod legality;
pub mod lint;
pub mod provenance;
pub mod speccheck;

pub use diag::{Diagnostic, Location, Severity};
pub use speccheck::{
    check_database, check_target, corrupt_database, match_table_stats, MatchTableStats,
    SpecCheckReport,
};

use vegen_core::PackSet;
use vegen_ir::Function;
use vegen_match::TargetDesc;
use vegen_vm::VmProgram;

/// The combined outcome of all three static passes on one kernel.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// Pack-legality findings (empty when no pack set was checked).
    pub legality: Vec<Diagnostic>,
    /// Lane-provenance findings.
    pub provenance: Vec<Diagnostic>,
    /// VM-lint findings (errors and warnings).
    pub lint: Vec<Diagnostic>,
    /// Packs the legality pass examined.
    pub packs_checked: usize,
    /// Stored memory cells the provenance pass proved equal to the scalar
    /// reference.
    pub lanes_proved: usize,
}

impl AnalysisReport {
    /// All findings, legality first, then provenance, then lint.
    pub fn all(&self) -> impl Iterator<Item = &Diagnostic> {
        self.legality.iter().chain(&self.provenance).chain(&self.lint)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.all().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.all().filter(|d| d.severity == Severity::Warning).count()
    }

    /// True when no pass found an error (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// One-line human-readable summary.
    pub fn verdict(&self) -> String {
        if self.is_clean() {
            format!(
                "proved: {} packs legal, {} stored lanes equal to scalar ({} warnings)",
                self.packs_checked,
                self.lanes_proved,
                self.warning_count()
            )
        } else {
            format!(
                "REJECTED: {} errors ({} legality, {} provenance, {} lint)",
                self.error_count(),
                self.legality.iter().filter(|d| d.severity == Severity::Error).count(),
                self.provenance.iter().filter(|d| d.severity == Severity::Error).count(),
                self.lint.iter().filter(|d| d.severity == Severity::Error).count(),
            )
        }
    }
}

/// Run all three passes on one compiled kernel.
///
/// `f` must be the *prepared* (canonicalized, constant-augmented) function
/// the pipeline compiled, and `canonicalize_patterns` the flag the match
/// table was built with.
pub fn analyze_kernel(
    f: &Function,
    desc: &TargetDesc,
    packs: &PackSet,
    program: &VmProgram,
    canonicalize_patterns: bool,
) -> AnalysisReport {
    let legality = legality::check_packs(f, desc, packs);
    let prov = provenance::validate(f, program, canonicalize_patterns);
    let lint = lint::lint_program(program);
    AnalysisReport {
        legality,
        provenance: prov.diagnostics,
        lint,
        packs_checked: packs.len(),
        lanes_proved: prov.lanes_proved,
    }
}

/// Run the program-level passes (provenance + lint) without a pack set —
/// for programs that did not come from pack selection, such as the scalar
/// lowering or the baseline vectorizer's output.
pub fn analyze_program(
    f: &Function,
    program: &VmProgram,
    canonicalize_patterns: bool,
) -> AnalysisReport {
    let prov = provenance::validate(f, program, canonicalize_patterns);
    let lint = lint::lint_program(program);
    AnalysisReport {
        legality: Vec::new(),
        provenance: prov.diagnostics,
        lint,
        packs_checked: 0,
        lanes_proved: prov.lanes_proved,
    }
}
