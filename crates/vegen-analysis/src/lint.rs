//! Structural lint of lowered VM programs.
//!
//! Errors are shapes [`vegen_vm::run_program`] would reject at runtime
//! (or silently misread): uses of undefined registers, scalar/vector kind
//! confusion, lane-width mismatches against the instruction semantics,
//! out-of-range shuffle and extract indices, and out-of-bounds memory
//! accesses. Warnings flag legal but wasteful code: vector instructions
//! whose results never reach a store (a committed load pack whose
//! consumers sourced their operands elsewhere lowers to exactly that) and
//! identity shuffles.

use crate::diag::{Diagnostic, Location};
use vegen_ir::Type;
use vegen_vm::{LaneSrc, Reg, ScalarOp, VmInst, VmProgram};

/// What a register holds, as tracked in program order.
#[derive(Clone, Copy, PartialEq)]
enum RegKind {
    Scalar,
    Vector { lanes: usize, elem: Type },
}

/// Lint `prog`; returns errors and warnings in program order (dead-code
/// warnings last).
pub fn lint_program(prog: &VmProgram) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut defined: Vec<Option<RegKind>> = vec![None; prog.n_regs];

    for (idx, inst) in prog.insts.iter().enumerate() {
        let at = Location::VmInst { index: idx, lane: None };
        lint_inst(prog, idx, inst, &mut defined, &mut diags);
        if let Some(dst) = inst.def() {
            if (dst.0 as usize) >= prog.n_regs {
                diags.push(Diagnostic::error(
                    at,
                    format!(
                        "destination r{} is outside the register file (n_regs {})",
                        dst.0, prog.n_regs
                    ),
                ));
            }
        }
    }

    mark_dead_code(prog, &mut diags);
    diags
}

fn lint_inst(
    prog: &VmProgram,
    idx: usize,
    inst: &VmInst,
    defined: &mut Vec<Option<RegKind>>,
    diags: &mut Vec<Diagnostic>,
) {
    let at = Location::VmInst { index: idx, lane: None };
    let use_scalar =
        |r: Reg, defined: &[Option<RegKind>], diags: &mut Vec<Diagnostic>| match defined
            .get(r.0 as usize)
            .copied()
            .flatten()
        {
            Some(RegKind::Scalar) => {}
            Some(RegKind::Vector { .. }) => diags.push(Diagnostic::error(
                at,
                format!("r{} used as a scalar but holds a vector", r.0),
            )),
            None => {
                diags.push(Diagnostic::error(at, format!("use of undefined register r{}", r.0)))
            }
        };
    let use_vector = |r: Reg,
                      defined: &[Option<RegKind>],
                      diags: &mut Vec<Diagnostic>|
     -> Option<(usize, Type)> {
        match defined.get(r.0 as usize).copied().flatten() {
            Some(RegKind::Vector { lanes, elem }) => Some((lanes, elem)),
            Some(RegKind::Scalar) => {
                diags.push(Diagnostic::error(
                    at,
                    format!("r{} used as a vector but holds a scalar", r.0),
                ));
                None
            }
            None => {
                diags.push(Diagnostic::error(at, format!("use of undefined register r{}", r.0)));
                None
            }
        }
    };
    let check_bounds =
        |base: usize, first: i64, count: usize, diags: &mut Vec<Diagnostic>| match prog
            .params
            .get(base)
        {
            None => diags.push(Diagnostic::error(at, format!("unknown parameter arg{base}"))),
            Some(p) if first < 0 || first as usize + count > p.len => {
                diags.push(Diagnostic::error(
                    at,
                    format!(
                        "access {}[{first}..{}) is out of bounds (len {})",
                        p.name,
                        first + count as i64,
                        p.len
                    ),
                ));
            }
            Some(_) => {}
        };
    let define =
        |r: Reg, kind: RegKind, defined: &mut Vec<Option<RegKind>>, diags: &mut Vec<Diagnostic>| {
            if let Some(slot) = defined.get_mut(r.0 as usize) {
                if slot.is_some() {
                    diags.push(Diagnostic::warning(
                        at,
                        format!("register r{} is redefined (lowering emits fresh registers)", r.0),
                    ));
                }
                *slot = Some(kind);
            }
        };

    match inst {
        VmInst::Scalar { dst, op } => {
            match op {
                ScalarOp::Const(_) => {}
                ScalarOp::FNeg { arg } => use_scalar(*arg, defined, diags),
                ScalarOp::Cast { arg, .. } => use_scalar(*arg, defined, diags),
                ScalarOp::Bin { lhs, rhs, .. } | ScalarOp::Cmp { lhs, rhs, .. } => {
                    use_scalar(*lhs, defined, diags);
                    use_scalar(*rhs, defined, diags);
                }
                ScalarOp::Select { cond, on_true, on_false } => {
                    use_scalar(*cond, defined, diags);
                    use_scalar(*on_true, defined, diags);
                    use_scalar(*on_false, defined, diags);
                }
            }
            define(*dst, RegKind::Scalar, defined, diags);
        }
        VmInst::LoadScalar { dst, base, offset } => {
            check_bounds(*base, *offset, 1, diags);
            define(*dst, RegKind::Scalar, defined, diags);
        }
        VmInst::StoreScalar { base, offset, src } => {
            check_bounds(*base, *offset, 1, diags);
            use_scalar(*src, defined, diags);
        }
        VmInst::VecLoad { dst, base, start, lanes, elem } => {
            if *lanes == 0 {
                diags.push(Diagnostic::error(at, "zero-lane vector load"));
            }
            check_bounds(*base, *start, *lanes, diags);
            if let Some(p) = prog.params.get(*base) {
                if p.elem_ty != *elem {
                    diags.push(Diagnostic::error(
                        at,
                        format!(
                            "vector load element {elem} differs from {}: {}",
                            p.name, p.elem_ty
                        ),
                    ));
                }
            }
            define(*dst, RegKind::Vector { lanes: *lanes, elem: *elem }, defined, diags);
        }
        VmInst::VecStore { base, start, src } => {
            if let Some((lanes, elem)) = use_vector(*src, defined, diags) {
                check_bounds(*base, *start, lanes, diags);
                if let Some(p) = prog.params.get(*base) {
                    if p.elem_ty != elem {
                        diags.push(Diagnostic::error(
                            at,
                            format!(
                                "vector store element {elem} differs from {}: {}",
                                p.name, p.elem_ty
                            ),
                        ));
                    }
                }
            }
        }
        VmInst::VecOp { dst, sem, args } => {
            let Some(semantics) = prog.sems.get(*sem) else {
                diags.push(Diagnostic::error(at, format!("unknown semantics index {sem}")));
                return;
            };
            if args.len() != semantics.inputs.len() {
                diags.push(Diagnostic::error(
                    at,
                    format!(
                        "{} takes {} inputs but {} are supplied",
                        semantics.name,
                        semantics.inputs.len(),
                        args.len()
                    ),
                ));
            }
            for (i, (&arg, shape)) in args.iter().zip(&semantics.inputs).enumerate() {
                if let Some((lanes, elem)) = use_vector(arg, defined, diags) {
                    if lanes != shape.lanes || elem != shape.elem {
                        diags.push(Diagnostic::error(
                            at,
                            format!(
                                "{} input {i} wants {}x{}, r{} holds {}x{}",
                                semantics.name, shape.lanes, shape.elem, arg.0, lanes, elem
                            ),
                        ));
                    }
                }
            }
            define(
                *dst,
                RegKind::Vector { lanes: semantics.out_lanes(), elem: semantics.out_elem },
                defined,
                diags,
            );
        }
        VmInst::Build { dst, elem, lanes } => {
            let mut identity_of: Option<Reg> = None;
            for (l, src) in lanes.iter().enumerate() {
                match src {
                    LaneSrc::FromVec { src, lane } => {
                        if let Some((src_lanes, src_elem)) = use_vector(*src, defined, diags) {
                            if *lane >= src_lanes {
                                diags.push(Diagnostic::error(
                                    Location::VmInst { index: idx, lane: Some(l) },
                                    format!(
                                        "shuffle index {lane} out of range for r{} ({src_lanes} \
                                         lanes)",
                                        src.0
                                    ),
                                ));
                            }
                            if src_elem != *elem {
                                diags.push(Diagnostic::error(
                                    Location::VmInst { index: idx, lane: Some(l) },
                                    format!(
                                        "lane {l} moves a {src_elem} element into a {elem} vector"
                                    ),
                                ));
                            }
                            // Identity tracking: lane l must be lane l of
                            // one common full-width source.
                            if *lane == l
                                && src_lanes == lanes.len()
                                && (l == 0 || identity_of == Some(*src))
                            {
                                identity_of = Some(*src);
                            } else {
                                identity_of = None;
                            }
                        }
                    }
                    LaneSrc::FromScalar(r) => {
                        use_scalar(*r, defined, diags);
                        identity_of = None;
                    }
                    LaneSrc::Const(c) => {
                        if c.ty() != *elem {
                            diags.push(Diagnostic::error(
                                Location::VmInst { index: idx, lane: Some(l) },
                                format!(
                                    "lane {l} inserts a {} constant into a {elem} vector",
                                    c.ty()
                                ),
                            ));
                        }
                        identity_of = None;
                    }
                    LaneSrc::Undef => identity_of = None,
                }
            }
            if let Some(src) = identity_of {
                diags.push(Diagnostic::warning(
                    at,
                    format!("redundant shuffle: identity of r{} (use it directly)", src.0),
                ));
            }
            define(*dst, RegKind::Vector { lanes: lanes.len(), elem: *elem }, defined, diags);
        }
        VmInst::Extract { dst, src, lane } => {
            if let Some((lanes, _)) = use_vector(*src, defined, diags) {
                if *lane >= lanes {
                    diags.push(Diagnostic::error(
                        at,
                        format!("extract lane {lane} out of range for r{} ({lanes} lanes)", src.0),
                    ));
                }
            }
            define(*dst, RegKind::Scalar, defined, diags);
        }
    }
}

/// Warn about vector instructions whose results can never reach memory.
fn mark_dead_code(prog: &VmProgram, diags: &mut Vec<Diagnostic>) {
    let mut live = vec![false; prog.n_regs];
    let mut dead = Vec::new();
    for (idx, inst) in prog.insts.iter().enumerate().rev() {
        let inst_live = match inst.def() {
            None => true, // stores are roots
            Some(dst) => live.get(dst.0 as usize).copied().unwrap_or(false),
        };
        if inst_live {
            for r in inst.uses() {
                if let Some(slot) = live.get_mut(r.0 as usize) {
                    *slot = true;
                }
            }
        } else if matches!(
            inst,
            VmInst::VecLoad { .. } | VmInst::VecOp { .. } | VmInst::Build { .. }
        ) {
            dead.push(idx);
        }
    }
    for idx in dead.into_iter().rev() {
        diags.push(Diagnostic::warning(
            Location::VmInst { index: idx, lane: None },
            "dead vector instruction: its result never reaches a store".to_string(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use vegen_ir::{Constant, Param};

    fn prog(params: Vec<Param>, insts: Vec<VmInst>, n_regs: usize) -> VmProgram {
        VmProgram {
            name: "t".into(),
            params,
            sems: vec![],
            sem_asm: vec![],
            sem_cost: vec![],
            insts,
            n_regs,
        }
    }

    fn p(name: &str, elem_ty: Type, len: usize) -> Param {
        Param { name: name.into(), elem_ty, len }
    }

    #[test]
    fn undefined_register_is_an_error() {
        let pr = prog(
            vec![p("A", Type::I32, 1)],
            vec![VmInst::StoreScalar { base: 0, offset: 0, src: Reg(0) }],
            1,
        );
        let diags = lint_program(&pr);
        assert!(
            diags
                .iter()
                .any(|d| d.severity == Severity::Error
                    && d.message.contains("undefined register r0")),
            "{diags:?}"
        );
    }

    #[test]
    fn shuffle_index_out_of_range_is_an_error() {
        let pr = prog(
            vec![p("A", Type::I32, 2)],
            vec![
                VmInst::VecLoad { dst: Reg(0), base: 0, start: 0, lanes: 2, elem: Type::I32 },
                VmInst::Build {
                    dst: Reg(1),
                    elem: Type::I32,
                    lanes: vec![
                        LaneSrc::FromVec { src: Reg(0), lane: 5 },
                        LaneSrc::FromVec { src: Reg(0), lane: 0 },
                    ],
                },
                VmInst::VecStore { base: 0, start: 0, src: Reg(1) },
            ],
            2,
        );
        let diags = lint_program(&pr);
        assert!(
            diags.iter().any(|d| d.severity == Severity::Error
                && d.message.contains("shuffle index 5 out of range")),
            "{diags:?}"
        );
    }

    #[test]
    fn dead_vector_load_is_a_warning() {
        let pr = prog(
            vec![p("A", Type::I32, 4)],
            vec![
                VmInst::VecLoad { dst: Reg(0), base: 0, start: 0, lanes: 4, elem: Type::I32 },
                VmInst::Scalar { dst: Reg(1), op: ScalarOp::Const(Constant::int(Type::I32, 0)) },
                VmInst::StoreScalar { base: 0, offset: 0, src: Reg(1) },
            ],
            2,
        );
        let diags = lint_program(&pr);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].message.contains("dead vector instruction"), "{}", diags[0].message);
        assert!(matches!(diags[0].location, Location::VmInst { index: 0, lane: None }));
    }

    #[test]
    fn identity_build_is_a_warning() {
        let pr = prog(
            vec![p("A", Type::I32, 2)],
            vec![
                VmInst::VecLoad { dst: Reg(0), base: 0, start: 0, lanes: 2, elem: Type::I32 },
                VmInst::Build {
                    dst: Reg(1),
                    elem: Type::I32,
                    lanes: vec![
                        LaneSrc::FromVec { src: Reg(0), lane: 0 },
                        LaneSrc::FromVec { src: Reg(0), lane: 1 },
                    ],
                },
                VmInst::VecStore { base: 0, start: 0, src: Reg(1) },
            ],
            2,
        );
        let diags = lint_program(&pr);
        assert!(
            diags.iter().any(|d| d.severity == Severity::Warning
                && d.message.contains("redundant shuffle")),
            "{diags:?}"
        );
    }

    #[test]
    fn register_redefinition_is_a_warning() {
        let pr = prog(
            vec![p("A", Type::I32, 1)],
            vec![
                VmInst::Scalar { dst: Reg(0), op: ScalarOp::Const(Constant::int(Type::I32, 1)) },
                VmInst::Scalar { dst: Reg(0), op: ScalarOp::Const(Constant::int(Type::I32, 2)) },
                VmInst::StoreScalar { base: 0, offset: 0, src: Reg(0) },
            ],
            1,
        );
        let diags = lint_program(&pr);
        assert!(
            diags
                .iter()
                .any(|d| d.severity == Severity::Warning && d.message.contains("redefined")),
            "{diags:?}"
        );
    }

    #[test]
    fn kind_confusion_and_oob_access_are_errors() {
        let pr = prog(
            vec![p("A", Type::I32, 2)],
            vec![
                VmInst::VecLoad { dst: Reg(0), base: 0, start: 0, lanes: 2, elem: Type::I32 },
                // A vector register used as a scalar store source.
                VmInst::StoreScalar { base: 0, offset: 9, src: Reg(0) },
            ],
            1,
        );
        let diags = lint_program(&pr);
        assert!(diags.iter().any(|d| d.message.contains("used as a scalar")), "{diags:?}");
        assert!(diags.iter().any(|d| d.message.contains("out of bounds")), "{diags:?}");
    }
}
