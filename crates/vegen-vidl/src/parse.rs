//! Textual VIDL parser.
//!
//! The concrete syntax mirrors Fig. 5. An instruction declares its input
//! register shapes, its output element type, one result entry per output
//! lane, and the operations it references:
//!
//! ```text
//! inst pmaddwd (a: 4 x i16, b: 4 x i16) -> i32 [
//!   madd(a[0], b[0], a[1], b[1]),
//!   madd(a[2], b[2], a[3], b[3])
//! ] where
//! op madd (x1: i16, x2: i16, x3: i16, x4: i16) -> i32 =
//!   add(mul(sext_i32(x1), sext_i32(x2)), mul(sext_i32(x3), sext_i32(x4)))
//! ```
//!
//! Expression calls use the IR mnemonics (`add`, `fmul`, `ashr`, ...);
//! casts carry their destination type (`sext_i32`, `trunc_i8`, ...);
//! comparisons carry their predicate (`cmp_slt`, `cmp_fge`, ...); integer
//! literals are written `5:i16`, floats `1.5:f64`.

use crate::ast::{Expr, InstSemantics, LaneBinding, LaneRef, Operation, VecShape};
use crate::check::{check_inst_all, SourceMap};
use std::error::Error;
use std::fmt;
use vegen_ir::{BinOp, CastOp, CmpPred, Constant, Type};

/// A parse failure with a byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input.
    pub at: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VIDL parse error at byte {}: {}", self.at, self.message)
    }
}

impl Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Colon,
    Arrow,
    Equals,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer { src: src.as_bytes(), pos: 0 }
    }

    fn tokens(mut self) -> Result<Vec<(usize, Tok)>, ParseError> {
        let mut out = Vec::new();
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            let start = self.pos;
            match c {
                b' ' | b'\t' | b'\n' | b'\r' => {
                    self.pos += 1;
                }
                b'#' => {
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                b'(' => {
                    out.push((start, Tok::LParen));
                    self.pos += 1;
                }
                b')' => {
                    out.push((start, Tok::RParen));
                    self.pos += 1;
                }
                b'[' => {
                    out.push((start, Tok::LBracket));
                    self.pos += 1;
                }
                b']' => {
                    out.push((start, Tok::RBracket));
                    self.pos += 1;
                }
                b',' => {
                    out.push((start, Tok::Comma));
                    self.pos += 1;
                }
                b':' => {
                    out.push((start, Tok::Colon));
                    self.pos += 1;
                }
                b'=' => {
                    out.push((start, Tok::Equals));
                    self.pos += 1;
                }
                b'-' => {
                    if self.src.get(self.pos + 1) == Some(&b'>') {
                        out.push((start, Tok::Arrow));
                        self.pos += 2;
                    } else {
                        // Negative literal.
                        self.pos += 1;
                        let (tok, _) = self.number(start, true)?;
                        out.push((start, tok));
                    }
                }
                b'0'..=b'9' => {
                    let (tok, _) = self.number(start, false)?;
                    out.push((start, tok));
                }
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    // `.` continues an identifier (it cannot start one, so
                    // float literals are unaffected): intrinsic-style names
                    // like `llvm.smax.v8i16` come through the baseline
                    // builder and must round-trip through the printer.
                    let mut end = self.pos;
                    while end < self.src.len()
                        && (self.src[end].is_ascii_alphanumeric()
                            || self.src[end] == b'_'
                            || self.src[end] == b'.')
                    {
                        end += 1;
                    }
                    // The span is all ASCII by construction, but a typed
                    // error beats a panic if that invariant ever breaks.
                    let word = match std::str::from_utf8(&self.src[self.pos..end]) {
                        Ok(w) => w.to_string(),
                        Err(_) => {
                            return Err(ParseError {
                                at: start,
                                message: "invalid UTF-8 in identifier".into(),
                            })
                        }
                    };
                    self.pos = end;
                    out.push((start, Tok::Ident(word)));
                }
                other => {
                    return Err(ParseError {
                        at: start,
                        message: format!("unexpected character {:?}", other as char),
                    })
                }
            }
        }
        Ok(out)
    }

    fn number(&mut self, start: usize, neg: bool) -> Result<(Tok, usize), ParseError> {
        let begin = self.pos;
        let mut is_float = false;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'0'..=b'9' => self.pos += 1,
                b'.' if !is_float
                    && self.src.get(self.pos + 1).is_some_and(|c| c.is_ascii_digit()) =>
                {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.src[begin..self.pos])
            .map_err(|_| ParseError { at: start, message: "invalid UTF-8 in number".into() })?;
        let sign = if neg { -1.0 } else { 1.0 };
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| ParseError { at: start, message: "bad float literal".into() })?;
            Ok((Tok::Float(sign * v), self.pos))
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| ParseError { at: start, message: "bad integer literal".into() })?;
            Ok((Tok::Int(if neg { -v } else { v }), self.pos))
        }
    }
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    idx: usize,
}

impl Parser {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        let at = self.toks.get(self.idx).map(|t| t.0).unwrap_or(usize::MAX);
        Err(ParseError { at, message: message.into() })
    }

    /// Byte position of the token about to be consumed (0 at end of input).
    fn pos(&self) -> usize {
        self.toks.get(self.idx).map(|t| t.0).unwrap_or(0)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.idx).map(|t| &t.1)
    }

    fn next(&mut self) -> Result<Tok, ParseError> {
        let t = self.toks.get(self.idx).cloned();
        match t {
            Some((_, tok)) => {
                self.idx += 1;
                Ok(tok)
            }
            None => self.err("unexpected end of input"),
        }
    }

    fn expect(&mut self, want: Tok) -> Result<(), ParseError> {
        let got = self.next()?;
        if got == want {
            Ok(())
        } else {
            self.idx -= 1;
            self.err(format!("expected {want:?}, found {got:?}"))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => {
                self.idx -= 1;
                self.err(format!("expected identifier, found {other:?}"))
            }
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let s = self.ident()?;
        if s == kw {
            Ok(())
        } else {
            self.idx -= 1;
            self.err(format!("expected keyword `{kw}`, found `{s}`"))
        }
    }

    fn int(&mut self) -> Result<i64, ParseError> {
        match self.next()? {
            Tok::Int(v) => Ok(v),
            other => {
                self.idx -= 1;
                self.err(format!("expected integer, found {other:?}"))
            }
        }
    }

    fn ty(&mut self) -> Result<Type, ParseError> {
        let s = self.ident()?;
        parse_type(&s).ok_or_else(|| ParseError {
            at: self.toks[self.idx - 1].0,
            message: format!("unknown type `{s}`"),
        })
    }
}

fn parse_type(s: &str) -> Option<Type> {
    Some(match s {
        "i1" => Type::I1,
        "i8" => Type::I8,
        "i16" => Type::I16,
        "i32" => Type::I32,
        "i64" => Type::I64,
        "f32" => Type::F32,
        "f64" => Type::F64,
        _ => return None,
    })
}

fn parse_binop(s: &str) -> Option<BinOp> {
    Some(match s {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "sdiv" => BinOp::SDiv,
        "udiv" => BinOp::UDiv,
        "srem" => BinOp::SRem,
        "urem" => BinOp::URem,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "lshr" => BinOp::LShr,
        "ashr" => BinOp::AShr,
        "fadd" => BinOp::FAdd,
        "fsub" => BinOp::FSub,
        "fmul" => BinOp::FMul,
        "fdiv" => BinOp::FDiv,
        _ => return None,
    })
}

fn parse_pred(s: &str) -> Option<CmpPred> {
    Some(match s {
        "eq" => CmpPred::Eq,
        "ne" => CmpPred::Ne,
        "slt" => CmpPred::Slt,
        "sle" => CmpPred::Sle,
        "sgt" => CmpPred::Sgt,
        "sge" => CmpPred::Sge,
        "ult" => CmpPred::Ult,
        "ule" => CmpPred::Ule,
        "ugt" => CmpPred::Ugt,
        "uge" => CmpPred::Uge,
        "feq" => CmpPred::Feq,
        "fne" => CmpPred::Fne,
        "flt" => CmpPred::Flt,
        "fle" => CmpPred::Fle,
        "fgt" => CmpPred::Fgt,
        "fge" => CmpPred::Fge,
        _ => return None,
    })
}

/// `sext_i32` -> (SExt, I32), etc.
fn parse_cast_name(s: &str) -> Option<(CastOp, Type)> {
    let (op_name, ty_name) = s.split_once('_')?;
    let op = match op_name {
        "sext" => CastOp::SExt,
        "zext" => CastOp::ZExt,
        "trunc" => CastOp::Trunc,
        "fpext" => CastOp::FPExt,
        "fptrunc" => CastOp::FPTrunc,
        "sitofp" => CastOp::SIToFP,
        "uitofp" => CastOp::UIToFP,
        "fptosi" => CastOp::FPToSI,
        _ => return None,
    };
    Some((op, parse_type(ty_name)?))
}

impl Parser {
    /// expr := call | param-name | literal
    fn expr(&mut self, params: &[(String, Type)]) -> Result<Expr, ParseError> {
        match self.next()? {
            Tok::Int(v) => {
                self.expect(Tok::Colon)?;
                let ty = self.ty()?;
                if !ty.is_int() {
                    return self.err("integer literal with non-integer type");
                }
                Ok(Expr::Const(Constant::int(ty, v)))
            }
            Tok::Float(v) => {
                self.expect(Tok::Colon)?;
                let ty = self.ty()?;
                Ok(Expr::Const(match ty {
                    Type::F32 => Constant::f32(v as f32),
                    Type::F64 => Constant::f64(v),
                    _ => return self.err("float literal with non-float type"),
                }))
            }
            Tok::Ident(name) => {
                if self.peek() == Some(&Tok::LParen) {
                    self.call(&name, params)
                } else if let Some(i) = params.iter().position(|(n, _)| *n == name) {
                    Ok(Expr::Param(i))
                } else {
                    self.idx -= 1;
                    self.err(format!("unknown parameter `{name}`"))
                }
            }
            other => {
                self.idx -= 1;
                self.err(format!("expected expression, found {other:?}"))
            }
        }
    }

    fn call(&mut self, name: &str, params: &[(String, Type)]) -> Result<Expr, ParseError> {
        self.expect(Tok::LParen)?;
        let mut args = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                args.push(self.expr(params)?);
                if self.peek() == Some(&Tok::Comma) {
                    self.next()?;
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        if let Some(op) = parse_binop(name) {
            let [lhs, rhs] = self.args_n(name, args)?;
            return Ok(Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) });
        }
        if let Some((op, to)) = parse_cast_name(name) {
            let [arg] = self.args_n(name, args)?;
            return Ok(Expr::Cast { op, to, arg: Box::new(arg) });
        }
        if let Some(pred_name) = name.strip_prefix("cmp_") {
            if let Some(pred) = parse_pred(pred_name) {
                let [lhs, rhs] = self.args_n(name, args)?;
                return Ok(Expr::Cmp { pred, lhs: Box::new(lhs), rhs: Box::new(rhs) });
            }
        }
        match name {
            "select" => {
                let [cond, on_true, on_false] = self.args_n(name, args)?;
                Ok(Expr::Select {
                    cond: Box::new(cond),
                    on_true: Box::new(on_true),
                    on_false: Box::new(on_false),
                })
            }
            "fneg" => {
                let [arg] = self.args_n(name, args)?;
                Ok(Expr::FNeg(Box::new(arg)))
            }
            _ => self.err(format!("unknown function `{name}`")),
        }
    }

    /// Enforce a call's arity and move its arguments into a fixed-size
    /// array — the typed replacement for `arity(n)` checks followed by
    /// panicking `it.next().unwrap()` destructuring.
    fn args_n<const N: usize>(&self, name: &str, args: Vec<Expr>) -> Result<[Expr; N], ParseError> {
        let got = args.len();
        <[Expr; N]>::try_from(args).map_err(|_| ParseError {
            at: self.toks.get(self.idx.saturating_sub(1)).map(|t| t.0).unwrap_or(0),
            message: format!("`{name}` takes {N} arguments, got {got}"),
        })
    }

    /// op NAME ( name: ty, ... ) -> ty = expr
    fn operation(&mut self) -> Result<Operation, ParseError> {
        self.keyword("op")?;
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut params: Vec<(String, Type)> = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                let pname = self.ident()?;
                self.expect(Tok::Colon)?;
                let ty = self.ty()?;
                params.push((pname, ty));
                if self.peek() == Some(&Tok::Comma) {
                    self.next()?;
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        self.expect(Tok::Arrow)?;
        let ret = self.ty()?;
        self.expect(Tok::Equals)?;
        let expr = self.expr(&params)?;
        Ok(Operation { name, params: params.into_iter().map(|(_, t)| t).collect(), ret, expr })
    }

    /// inst NAME ( in: N x ty, ... ) -> ty [ res, ... ] where op...
    ///
    /// Also returns a [`SourceMap`] with the byte position of each lane
    /// binding and operation declaration, so checker violations can point
    /// back into the source text.
    fn inst(&mut self) -> Result<(InstSemantics, SourceMap), ParseError> {
        let mut map = SourceMap { inst: self.pos(), ..SourceMap::default() };
        self.keyword("inst")?;
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut input_names: Vec<String> = Vec::new();
        let mut inputs: Vec<VecShape> = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                let iname = self.ident()?;
                self.expect(Tok::Colon)?;
                let lanes = self.int()?;
                self.keyword("x")?;
                let elem = self.ty()?;
                if lanes <= 0 {
                    return self.err("lane count must be positive");
                }
                input_names.push(iname);
                inputs.push(VecShape { lanes: lanes as usize, elem });
                if self.peek() == Some(&Tok::Comma) {
                    self.next()?;
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        self.expect(Tok::Arrow)?;
        let out_elem = self.ty()?;
        self.expect(Tok::LBracket)?;
        // Results: opname(in[lane], ...)
        let mut raw_lanes: Vec<(usize, String, Vec<LaneRef>)> = Vec::new();
        loop {
            let lane_pos = self.pos();
            let opname = self.ident()?;
            self.expect(Tok::LParen)?;
            let mut refs = Vec::new();
            if self.peek() != Some(&Tok::RParen) {
                loop {
                    let iname = self.ident()?;
                    let input = match input_names.iter().position(|n| *n == iname) {
                        Some(i) => i,
                        None => {
                            self.idx -= 1;
                            return self.err(format!("unknown input register `{iname}`"));
                        }
                    };
                    self.expect(Tok::LBracket)?;
                    let lane = self.int()?;
                    self.expect(Tok::RBracket)?;
                    if lane < 0 {
                        return self.err("negative lane index");
                    }
                    refs.push(LaneRef { input, lane: lane as usize });
                    if self.peek() == Some(&Tok::Comma) {
                        self.next()?;
                    } else {
                        break;
                    }
                }
            }
            self.expect(Tok::RParen)?;
            raw_lanes.push((lane_pos, opname, refs));
            if self.peek() == Some(&Tok::Comma) {
                self.next()?;
            } else {
                break;
            }
        }
        self.expect(Tok::RBracket)?;
        self.keyword("where")?;
        let mut ops: Vec<Operation> = Vec::new();
        while self.peek().is_some() {
            map.ops.push(self.pos());
            ops.push(self.operation()?);
        }
        let mut lanes = Vec::with_capacity(raw_lanes.len());
        for (lane_pos, opname, args) in raw_lanes {
            map.lanes.push(lane_pos);
            let Some(op) = ops.iter().position(|o| o.name == opname) else {
                return Err(ParseError {
                    at: lane_pos,
                    message: format!("instruction {name} references undeclared op `{opname}`"),
                });
            };
            lanes.push(LaneBinding { op, args });
        }
        Ok((InstSemantics { name, inputs, out_elem, ops, lanes }, map))
    }
}

/// Parse a standalone operation declaration.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input; the result is also
/// type-checked.
pub fn parse_operation(src: &str) -> Result<Operation, ParseError> {
    let toks = Lexer::new(src).tokens()?;
    let decl_pos = toks.first().map(|t| t.0).unwrap_or(0);
    let mut p = Parser { toks, idx: 0 };
    let op = p.operation()?;
    if p.peek().is_some() {
        return p.err("trailing input after operation");
    }
    if let Some(v) = crate::check::check_operation_all(&op).into_iter().next() {
        return Err(ParseError { at: decl_pos, message: v.message });
    }
    Ok(op)
}

/// Parse (and check) a full instruction description.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or if the description fails
/// [`crate::check::check_inst`]; check failures carry the byte position of
/// the offending lane binding or operation declaration.
pub fn parse_inst(src: &str) -> Result<InstSemantics, ParseError> {
    let (inst, _) = parse_inst_with_map(src)?;
    Ok(inst)
}

/// Like [`parse_inst`], but also return the [`SourceMap`] with the byte
/// position of each lane binding and operation declaration.
///
/// # Errors
///
/// Same contract as [`parse_inst`].
pub fn parse_inst_with_map(src: &str) -> Result<(InstSemantics, SourceMap), ParseError> {
    let toks = Lexer::new(src).tokens()?;
    let mut p = Parser { toks, idx: 0 };
    let (inst, map) = p.inst()?;
    if p.peek().is_some() {
        return p.err("trailing input after instruction");
    }
    if let Some(v) = check_inst_all(&inst, Some(&map)).into_iter().next() {
        return Err(ParseError { at: v.pos.unwrap_or(map.inst), message: v.message });
    }
    Ok((inst, map))
}

#[cfg(test)]
mod tests {
    use super::*;

    const PMADDWD: &str = "inst pmaddwd (a: 4 x i16, b: 4 x i16) -> i32 [
        madd(a[0], b[0], a[1], b[1]),
        madd(a[2], b[2], a[3], b[3])
      ] where
      op madd (x1: i16, x2: i16, x3: i16, x4: i16) -> i32 =
        add(mul(sext_i32(x1), sext_i32(x2)), mul(sext_i32(x3), sext_i32(x4)))";

    #[test]
    fn parses_pmaddwd() {
        let i = parse_inst(PMADDWD).unwrap();
        assert_eq!(i.name, "pmaddwd");
        assert_eq!(i.inputs.len(), 2);
        assert_eq!(i.inputs[0].lanes, 4);
        assert_eq!(i.out_lanes(), 2);
        assert_eq!(i.ops.len(), 1);
        assert!(!i.is_simd());
    }

    #[test]
    fn parses_addsub() {
        let src = "inst addsubpd (a: 2 x f64, b: 2 x f64) -> f64 [
            sub(a[0], b[0]),
            add(a[1], b[1])
          ] where
          op sub (x: f64, y: f64) -> f64 = fsub(x, y)
          op add (x: f64, y: f64) -> f64 = fadd(x, y)";
        let i = parse_inst(src).unwrap();
        assert_eq!(i.ops.len(), 2);
        assert_eq!(i.lanes[0].op, 0);
        assert_eq!(i.lanes[1].op, 1);
        assert!(!i.is_simd());
    }

    #[test]
    fn parses_literals_and_select() {
        let src = "op sat (x: i32) -> i32 =
            select(cmp_sgt(x, 32767:i32), 32767:i32,
                   select(cmp_slt(x, -32768:i32), -32768:i32, x))";
        let op = parse_operation(src).unwrap();
        assert_eq!(op.params.len(), 1);
        let v = crate::eval::eval_operation(&op, &[Constant::int(Type::I32, 100_000)]).unwrap();
        assert_eq!(v.as_i64(), 32767);
    }

    #[test]
    fn comments_are_skipped() {
        let src = "# saturating add\nop s (x: i8) -> i8 = add(x, 1:i8) # inline\n";
        assert!(parse_operation(src).is_ok());
    }

    #[test]
    fn rejects_unknown_function() {
        let src = "op s (x: i8) -> i8 = frobnicate(x)";
        let e = parse_operation(src).unwrap_err();
        assert!(e.message.contains("unknown function"));
    }

    #[test]
    fn rejects_unknown_parameter() {
        let src = "op s (x: i8) -> i8 = add(x, y)";
        assert!(parse_operation(src).is_err());
    }

    #[test]
    fn rejects_arity_mismatch() {
        let src = "op s (x: i8) -> i8 = add(x)";
        let e = parse_operation(src).unwrap_err();
        assert!(e.message.contains("takes 2 arguments"));
    }

    #[test]
    fn rejects_type_errors_via_check() {
        let src = "op s (x: i8, y: i16) -> i8 = add(x, y)";
        assert!(parse_operation(src).is_err());
    }

    #[test]
    fn rejects_bad_lane_reference() {
        let src = "inst t (a: 2 x i32) -> i32 [ id(a[5]) ] where
                   op id (x: i32) -> i32 = add(x, 0:i32)";
        assert!(parse_inst(src).is_err());
    }

    #[test]
    fn rejects_undeclared_op_in_lane() {
        let src = "inst t (a: 2 x i32) -> i32 [ nosuch(a[0]) ] where
                   op id (x: i32) -> i32 = add(x, 0:i32)";
        let e = parse_inst(src).unwrap_err();
        assert!(e.message.contains("undeclared op"));
        // The position points at the lane binding, not byte 0.
        assert_eq!(e.at, src.find("nosuch").unwrap());
    }

    #[test]
    fn check_failure_positions_point_at_lane_binding() {
        let src = "inst t (a: 2 x i32) -> i32 [ id(a[0]), id(a[5]) ] where
                   op id (x: i32) -> i32 = add(x, 0:i32)";
        let e = parse_inst(src).unwrap_err();
        assert!(e.message.contains("out of range"), "{e}");
        assert_eq!(e.at, src.find("id(a[5])").unwrap());
    }

    #[test]
    fn check_failure_positions_point_at_operation() {
        // Lane bindings are fine; the op body is ill-typed.
        let src = "inst t (a: 2 x i32) -> i32 [ id(a[0]), id(a[1]) ] where
                   op id (x: i32) -> i32 = fadd(x, x)";
        let e = parse_inst(src).unwrap_err();
        assert!(e.message.contains("float/int mismatch"), "{e}");
        assert_eq!(e.at, src.find("op id").unwrap());
    }

    #[test]
    fn source_map_records_declarations() {
        let src = "inst t (a: 2 x i32) -> i32 [ id(a[0]), id(a[1]) ] where
                   op id (x: i32) -> i32 = add(x, 0:i32)";
        let (_, map) = parse_inst_with_map(src).unwrap();
        assert_eq!(map.inst, 0);
        assert_eq!(map.lanes, vec![src.find("id(a[0])").unwrap(), src.find("id(a[1])").unwrap()]);
        assert_eq!(map.ops, vec![src.find("op id").unwrap()]);
    }

    #[test]
    fn negative_literals() {
        let src = "op s (x: i16) -> i16 = add(x, -7:i16)";
        let op = parse_operation(src).unwrap();
        let v = crate::eval::eval_operation(&op, &[Constant::int(Type::I16, 10)]).unwrap();
        assert_eq!(v.as_i64(), 3);
    }

    #[test]
    fn float_ops_parse() {
        let src = "op f (x: f32, y: f32) -> f32 = fmul(fneg(x), fadd(y, 1.5:f32))";
        let op = parse_operation(src).unwrap();
        let v =
            crate::eval::eval_operation(&op, &[Constant::f32(2.0), Constant::f32(0.5)]).unwrap();
        assert_eq!(v.as_f32(), -4.0);
    }

    #[test]
    fn error_position_is_reported() {
        let e = parse_operation("op s (x: i8) -> i8 = @").unwrap_err();
        assert!(e.to_string().contains("byte 21"));
    }

    #[test]
    fn dotted_identifiers_parse() {
        // Intrinsic-style names (`llvm.smax.v8i16`) appear in printed
        // baseline semantics; the parser must accept what the printer
        // emits. A dot still cannot *start* an identifier.
        let src = "inst llvm.smax.v2i32 (a: 2 x i32, b: 2 x i32) -> i32 [
                     llvm.smax.v2i32_op(a[0], b[0]),
                     llvm.smax.v2i32_op(a[1], b[1])
                   ] where
                   op llvm.smax.v2i32_op (x: i32, y: i32) -> i32 =
                     select(cmp_sgt(x, y), x, y)";
        let inst = parse_inst(src).unwrap();
        assert_eq!(inst.name, "llvm.smax.v2i32");
        assert!(parse_operation("op s (x: i8) -> i8 = add(x, .5)").is_err());
    }
}
