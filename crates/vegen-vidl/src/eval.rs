//! Concrete evaluation of VIDL descriptions.
//!
//! The evaluator is the executable semantics of an instruction description:
//! the vector VM executes target instructions through it, and the offline
//! validator compares it against the pseudocode evaluator by random testing
//! (reproducing the validation methodology of §6.1).

use crate::ast::{Expr, InstSemantics, Operation};
use vegen_ir::interp::{eval_bin, eval_cast, eval_cmp, EvalError};
use vegen_ir::{Constant, Type};

/// Evaluate an expression with the given parameter values.
///
/// # Errors
///
/// Returns an error on division by zero.
pub fn eval_expr(e: &Expr, args: &[Constant]) -> Result<Constant, EvalError> {
    match e {
        Expr::Param(i) => Ok(args[*i]),
        Expr::Const(c) => Ok(*c),
        Expr::Bin { op, lhs, rhs } => eval_bin(*op, eval_expr(lhs, args)?, eval_expr(rhs, args)?),
        Expr::FNeg(a) => {
            let v = eval_expr(a, args)?;
            Ok(match v.ty() {
                Type::F32 => Constant::f32(-v.as_f32()),
                _ => Constant::f64(-v.as_f64()),
            })
        }
        Expr::Cast { op, to, arg } => Ok(eval_cast(*op, eval_expr(arg, args)?, *to)),
        Expr::Cmp { pred, lhs, rhs } => {
            Ok(eval_cmp(*pred, eval_expr(lhs, args)?, eval_expr(rhs, args)?))
        }
        Expr::Select { cond, on_true, on_false } => {
            if eval_expr(cond, args)?.as_bool() {
                eval_expr(on_true, args)
            } else {
                eval_expr(on_false, args)
            }
        }
    }
}

/// Apply an operation to arguments.
///
/// # Panics
///
/// Panics if the argument count or types don't match the declaration (the
/// checker enforces these for descriptions that passed it).
///
/// # Errors
///
/// Returns an error on division by zero.
pub fn eval_operation(op: &Operation, args: &[Constant]) -> Result<Constant, EvalError> {
    assert_eq!(args.len(), op.params.len(), "operation {} arity", op.name);
    for (a, p) in args.iter().zip(&op.params) {
        assert_eq!(a.ty(), *p, "operation {} argument type", op.name);
    }
    eval_expr(&op.expr, args)
}

/// Execute a whole instruction on concrete input registers, producing the
/// output register lane by lane.
///
/// # Panics
///
/// Panics if input shapes don't match the description.
///
/// # Errors
///
/// Returns an error on division by zero.
pub fn eval_inst(
    inst: &InstSemantics,
    inputs: &[Vec<Constant>],
) -> Result<Vec<Constant>, EvalError> {
    assert_eq!(inputs.len(), inst.inputs.len(), "{}: input register count", inst.name);
    for (reg, shape) in inputs.iter().zip(&inst.inputs) {
        assert_eq!(reg.len(), shape.lanes, "{}: lane count", inst.name);
        for v in reg {
            assert_eq!(v.ty(), shape.elem, "{}: element type", inst.name);
        }
    }
    let mut out = Vec::with_capacity(inst.lanes.len());
    for binding in &inst.lanes {
        let op = &inst.ops[binding.op];
        let args: Vec<Constant> = binding.args.iter().map(|r| inputs[r.input][r.lane]).collect();
        out.push(eval_operation(op, &args)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{LaneBinding, LaneRef, VecShape};
    use vegen_ir::{BinOp, CastOp};

    fn pmaddwd() -> InstSemantics {
        let p = |i| Box::new(Expr::Param(i));
        let sx = |e: Box<Expr>| Box::new(Expr::Cast { op: CastOp::SExt, to: Type::I32, arg: e });
        let madd = Operation {
            name: "madd".into(),
            params: vec![Type::I16; 4],
            ret: Type::I32,
            expr: Expr::Bin {
                op: BinOp::Add,
                lhs: Box::new(Expr::Bin { op: BinOp::Mul, lhs: sx(p(0)), rhs: sx(p(1)) }),
                rhs: Box::new(Expr::Bin { op: BinOp::Mul, lhs: sx(p(2)), rhs: sx(p(3)) }),
            },
        };
        let lr = |input, lane| LaneRef { input, lane };
        InstSemantics {
            name: "pmaddwd".into(),
            inputs: vec![VecShape { lanes: 4, elem: Type::I16 }; 2],
            out_elem: Type::I32,
            ops: vec![madd],
            lanes: vec![
                LaneBinding { op: 0, args: vec![lr(0, 0), lr(1, 0), lr(0, 1), lr(1, 1)] },
                LaneBinding { op: 0, args: vec![lr(0, 2), lr(1, 2), lr(0, 3), lr(1, 3)] },
            ],
        }
    }

    #[test]
    fn pmaddwd_matches_reference() {
        let inst = pmaddwd();
        let a: Vec<Constant> = [3, -4, 5, 6].iter().map(|&v| Constant::int(Type::I16, v)).collect();
        let b: Vec<Constant> =
            [10, 100, -1, 2].iter().map(|&v| Constant::int(Type::I16, v)).collect();
        let out = eval_inst(&inst, &[a, b]).unwrap();
        assert_eq!(out[0].as_i64(), 3 * 10 + (-4) * 100);
        assert_eq!(out[1].as_i64(), -5 + 6 * 2);
    }

    #[test]
    fn pmaddwd_widens_before_multiplying() {
        // -32768 * -32768 overflows i16 but not i32: the sext-then-mul
        // semantics must produce the wide product.
        let inst = pmaddwd();
        let a: Vec<Constant> =
            [-32768, 0, 0, 0].iter().map(|&v| Constant::int(Type::I16, v)).collect();
        let b: Vec<Constant> =
            [-32768, 0, 0, 0].iter().map(|&v| Constant::int(Type::I16, v)).collect();
        let out = eval_inst(&inst, &[a, b]).unwrap();
        assert_eq!(out[0].as_i64(), 32768 * 32768);
    }

    #[test]
    fn select_and_cmp_exprs() {
        // max(x, y) as select(cmp_sgt(x, y), x, y)
        let op = Operation {
            name: "smax".into(),
            params: vec![Type::I32; 2],
            ret: Type::I32,
            expr: Expr::Select {
                cond: Box::new(Expr::Cmp {
                    pred: vegen_ir::CmpPred::Sgt,
                    lhs: Box::new(Expr::Param(0)),
                    rhs: Box::new(Expr::Param(1)),
                }),
                on_true: Box::new(Expr::Param(0)),
                on_false: Box::new(Expr::Param(1)),
            },
        };
        let c = |v| Constant::int(Type::I32, v);
        assert_eq!(eval_operation(&op, &[c(3), c(9)]).unwrap().as_i64(), 9);
        assert_eq!(eval_operation(&op, &[c(-3), c(-9)]).unwrap().as_i64(), -3);
    }

    #[test]
    fn fneg_expr() {
        let op = Operation {
            name: "neg".into(),
            params: vec![Type::F64],
            ret: Type::F64,
            expr: Expr::FNeg(Box::new(Expr::Param(0))),
        };
        assert_eq!(eval_operation(&op, &[Constant::f64(2.5)]).unwrap().as_f64(), -2.5);
    }

    #[test]
    #[should_panic(expected = "lane count")]
    fn wrong_shape_panics() {
        let inst = pmaddwd();
        let a = vec![Constant::int(Type::I16, 0); 3];
        let b = vec![Constant::int(Type::I16, 0); 4];
        let _ = eval_inst(&inst, &[a, b]);
    }
}
