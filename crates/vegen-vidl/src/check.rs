//! Well-formedness checking for VIDL descriptions.
//!
//! Two API layers: [`check_operation`]/[`check_inst`] return the *first*
//! violation as a [`CheckError`] (the contract `translate()` and
//! `parse_inst` rely on), while [`check_operation_all`]/[`check_inst_all`]
//! return *every* violation, each tagged with the offending output lane and
//! (when a [`SourceMap`] is supplied) a byte position into the VIDL source
//! text — which is what lets an offline auditor point diagnostics into
//! printed VIDL.

use crate::ast::{Expr, InstSemantics, Operation};
use std::error::Error;
use std::fmt;
use vegen_ir::{CastOp, Type};

/// A well-formedness violation (first-error form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError(pub String);

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VIDL check failed: {}", self.0)
    }
}

impl Error for CheckError {}

/// One well-formedness violation with location payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Human-readable description.
    pub message: String,
    /// Output lane the violation is about, when one can be named.
    pub lane: Option<usize>,
    /// Byte offset into the VIDL source text, when a [`SourceMap`] was
    /// supplied.
    pub pos: Option<usize>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(p) => write!(f, "at byte {p}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

/// Byte positions of the declarations in a VIDL source text, produced by
/// the parser (for parsed descriptions) or the printer (for printed ones).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceMap {
    /// Position of the `inst` keyword.
    pub inst: usize,
    /// Position of each output-lane binding, in lane order.
    pub lanes: Vec<usize>,
    /// Position of each `op` declaration, in declaration order.
    pub ops: Vec<usize>,
}

impl SourceMap {
    fn lane_pos(&self, lane: usize) -> Option<usize> {
        self.lanes.get(lane).copied()
    }

    fn op_pos(&self, op: usize) -> Option<usize> {
        self.ops.get(op).copied()
    }
}

/// Type-check an expression, returning its type.
fn type_of(e: &Expr, params: &[Type]) -> Result<Type, CheckError> {
    match e {
        Expr::Param(i) => params
            .get(*i)
            .copied()
            .ok_or_else(|| CheckError(format!("parameter x{i} out of range"))),
        Expr::Const(c) => Ok(c.ty()),
        Expr::Bin { op, lhs, rhs } => {
            let lt = type_of(lhs, params)?;
            let rt = type_of(rhs, params)?;
            if lt != rt {
                return Err(CheckError(format!("binop {op:?} on {lt} and {rt}")));
            }
            if op.is_float() != lt.is_float() {
                return Err(CheckError(format!("binop {op:?} float/int mismatch with {lt}")));
            }
            Ok(lt)
        }
        Expr::FNeg(a) => {
            let t = type_of(a, params)?;
            if !t.is_float() {
                return Err(CheckError(format!("fneg on {t}")));
            }
            Ok(t)
        }
        Expr::Cast { op, to, arg } => {
            let from = type_of(arg, params)?;
            let ok = match op {
                CastOp::SExt | CastOp::ZExt => {
                    from.is_int() && to.is_int() && to.bits() > from.bits()
                }
                CastOp::Trunc => from.is_int() && to.is_int() && to.bits() < from.bits(),
                CastOp::FPExt => from == Type::F32 && *to == Type::F64,
                CastOp::FPTrunc => from == Type::F64 && *to == Type::F32,
                CastOp::SIToFP | CastOp::UIToFP => from.is_int() && to.is_float(),
                CastOp::FPToSI => from.is_float() && to.is_int(),
            };
            if !ok {
                return Err(CheckError(format!("invalid cast {op:?} {from} -> {to}")));
            }
            Ok(*to)
        }
        Expr::Cmp { pred, lhs, rhs } => {
            let lt = type_of(lhs, params)?;
            let rt = type_of(rhs, params)?;
            if lt != rt {
                return Err(CheckError(format!("cmp on {lt} and {rt}")));
            }
            if pred.is_float() != lt.is_float() {
                return Err(CheckError(format!("cmp {pred:?} on {lt}")));
            }
            Ok(Type::I1)
        }
        Expr::Select { cond, on_true, on_false } => {
            if type_of(cond, params)? != Type::I1 {
                return Err(CheckError("select condition must be i1".into()));
            }
            let tt = type_of(on_true, params)?;
            let et = type_of(on_false, params)?;
            if tt != et {
                return Err(CheckError(format!("select arms {tt} vs {et}")));
            }
            Ok(tt)
        }
    }
}

/// Check an operation, collecting every violation: no void parameters, the
/// body must type-check against the declared parameter types and produce
/// the declared return type.
pub fn check_operation_all(op: &Operation) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut push = |message: String| out.push(Violation { message, lane: None, pos: None });
    for t in &op.params {
        if *t == Type::Void {
            push(format!("operation {} has a void parameter", op.name));
        }
    }
    match type_of(&op.expr, &op.params) {
        Ok(t) if t != op.ret => {
            push(format!("operation {} declared {} but body has type {t}", op.name, op.ret));
        }
        Ok(_) => {}
        Err(e) => push(format!("in operation {}: {}", op.name, e.0)),
    }
    out
}

/// Check an operation: the body must type-check against the declared
/// parameter types and produce the declared return type.
///
/// # Errors
///
/// Returns the first violation found (see [`check_operation_all`] for the
/// exhaustive form).
pub fn check_operation(op: &Operation) -> Result<(), CheckError> {
    match check_operation_all(op).into_iter().next() {
        Some(v) => Err(CheckError(v.message)),
        None => Ok(()),
    }
}

/// Check an instruction description, collecting every violation:
/// operations are well formed, lane bindings reference valid
/// operations/inputs/lanes, each operation's argument types equal the
/// element types of the registers feeding it, and every output lane
/// produces `out_elem`.
///
/// With a [`SourceMap`], each violation carries a byte position pointing at
/// the offending declaration in the VIDL source the map was built from.
pub fn check_inst_all(inst: &InstSemantics, map: Option<&SourceMap>) -> Vec<Violation> {
    let mut out = Vec::new();
    let inst_pos = map.map(|m| m.inst);
    if inst.lanes.is_empty() {
        out.push(Violation {
            message: format!("instruction {} has no output lanes", inst.name),
            lane: None,
            pos: inst_pos,
        });
    }
    for (op_idx, op) in inst.ops.iter().enumerate() {
        let pos = map.and_then(|m| m.op_pos(op_idx));
        for v in check_operation_all(op) {
            out.push(Violation {
                message: format!("in instruction {}: {}", inst.name, v.message),
                lane: None,
                pos,
            });
        }
    }
    for (lane_idx, b) in inst.lanes.iter().enumerate() {
        let pos = map.and_then(|m| m.lane_pos(lane_idx));
        let mut lane_violation =
            |message: String| out.push(Violation { message, lane: Some(lane_idx), pos });
        let Some(op) = inst.ops.get(b.op) else {
            lane_violation(format!(
                "{} lane {lane_idx} references unknown operation #{}",
                inst.name, b.op
            ));
            continue;
        };
        if b.args.len() != op.params.len() {
            lane_violation(format!(
                "{} lane {lane_idx}: {} args but operation {} has {} params",
                inst.name,
                b.args.len(),
                op.name,
                op.params.len()
            ));
            continue;
        }
        if op.ret != inst.out_elem {
            lane_violation(format!(
                "{} lane {lane_idx}: operation {} returns {} but output element is {}",
                inst.name, op.name, op.ret, inst.out_elem
            ));
        }
        for (param, r) in b.args.iter().enumerate() {
            let Some(shape) = inst.inputs.get(r.input) else {
                lane_violation(format!(
                    "{} lane {lane_idx}: unknown input register x{}",
                    inst.name, r.input
                ));
                continue;
            };
            if r.lane >= shape.lanes {
                lane_violation(format!(
                    "{} lane {lane_idx}: lane index {} out of range for x{} ({} lanes)",
                    inst.name, r.lane, r.input, shape.lanes
                ));
                continue;
            }
            if shape.elem != op.params[param] {
                lane_violation(format!(
                    "{} lane {lane_idx}: x{}[{}] has element type {} but {} param {param} is {}",
                    inst.name, r.input, r.lane, shape.elem, op.name, op.params[param]
                ));
            }
        }
    }
    out
}

/// Check an instruction description: operations are well formed, lane
/// bindings reference valid operations/inputs/lanes, each operation's
/// argument types equal the element types of the registers feeding it, and
/// every output lane produces `out_elem`.
///
/// # Errors
///
/// Returns the first violation found (see [`check_inst_all`] for the
/// exhaustive form).
pub fn check_inst(inst: &InstSemantics) -> Result<(), CheckError> {
    match check_inst_all(inst, None).into_iter().next() {
        Some(v) => Err(CheckError(v.message)),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{LaneBinding, LaneRef, VecShape};
    use vegen_ir::BinOp;

    fn add_op(ty: Type) -> Operation {
        Operation {
            name: "add".into(),
            params: vec![ty; 2],
            ret: ty,
            expr: Expr::Bin {
                op: BinOp::Add,
                lhs: Box::new(Expr::Param(0)),
                rhs: Box::new(Expr::Param(1)),
            },
        }
    }

    fn simd_add() -> InstSemantics {
        let lr = |input, lane| LaneRef { input, lane };
        InstSemantics {
            name: "paddd".into(),
            inputs: vec![VecShape { lanes: 4, elem: Type::I32 }; 2],
            out_elem: Type::I32,
            ops: vec![add_op(Type::I32)],
            lanes: (0..4).map(|l| LaneBinding { op: 0, args: vec![lr(0, l), lr(1, l)] }).collect(),
        }
    }

    #[test]
    fn accepts_valid_inst() {
        assert!(check_inst(&simd_add()).is_ok());
        assert!(check_inst_all(&simd_add(), None).is_empty());
    }

    #[test]
    fn rejects_lane_out_of_range() {
        let mut i = simd_add();
        i.lanes[0].args[0].lane = 7;
        let e = check_inst(&i).unwrap_err();
        assert!(e.0.contains("out of range"));
        let all = check_inst_all(&i, None);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].lane, Some(0));
    }

    #[test]
    fn rejects_wrong_arity() {
        let mut i = simd_add();
        i.lanes[1].args.pop();
        assert!(check_inst(&i).is_err());
        assert_eq!(check_inst_all(&i, None)[0].lane, Some(1));
    }

    #[test]
    fn rejects_element_type_mismatch() {
        let mut i = simd_add();
        i.inputs[1] = VecShape { lanes: 4, elem: Type::I16 };
        let e = check_inst(&i).unwrap_err();
        assert!(e.0.contains("element type"));
        // One violation per lane, each naming its lane.
        let all = check_inst_all(&i, None);
        assert_eq!(all.len(), 4);
        for (l, v) in all.iter().enumerate() {
            assert_eq!(v.lane, Some(l));
        }
    }

    #[test]
    fn rejects_return_type_mismatch() {
        let mut i = simd_add();
        i.out_elem = Type::I64;
        assert!(check_inst(&i).is_err());
    }

    #[test]
    fn rejects_ill_typed_operation_body() {
        let bad = Operation {
            name: "bad".into(),
            params: vec![Type::I32, Type::I16],
            ret: Type::I32,
            expr: Expr::Bin {
                op: BinOp::Add,
                lhs: Box::new(Expr::Param(0)),
                rhs: Box::new(Expr::Param(1)),
            },
        };
        assert!(check_operation(&bad).is_err());
    }

    #[test]
    fn rejects_float_op_on_ints() {
        let bad = Operation {
            name: "bad".into(),
            params: vec![Type::I32; 2],
            ret: Type::I32,
            expr: Expr::Bin {
                op: BinOp::FAdd,
                lhs: Box::new(Expr::Param(0)),
                rhs: Box::new(Expr::Param(1)),
            },
        };
        assert!(check_operation(&bad).is_err());
    }

    #[test]
    fn rejects_empty_lane_list() {
        let mut i = simd_add();
        i.lanes.clear();
        assert!(check_inst(&i).is_err());
    }

    #[test]
    fn rejects_unknown_operation_index() {
        let mut i = simd_add();
        i.lanes[0].op = 3;
        assert!(check_inst(&i).is_err());
    }

    #[test]
    fn collects_multiple_independent_violations() {
        let mut i = simd_add();
        i.lanes[0].args[0].lane = 7; // lane 0: index out of range
        i.lanes[2].args.pop(); // lane 2: arity
        i.ops.push(Operation {
            name: "bad".into(),
            params: vec![Type::I32; 2],
            ret: Type::I32,
            expr: Expr::Bin {
                op: BinOp::FAdd,
                lhs: Box::new(Expr::Param(0)),
                rhs: Box::new(Expr::Param(1)),
            },
        });
        let all = check_inst_all(&i, None);
        assert_eq!(all.len(), 3, "{all:?}");
        assert!(all.iter().any(|v| v.lane == Some(0)));
        assert!(all.iter().any(|v| v.lane == Some(2)));
        assert!(all.iter().any(|v| v.lane.is_none() && v.message.contains("bad")));
    }

    #[test]
    fn source_map_attaches_positions() {
        let mut i = simd_add();
        i.lanes[1].args[0].lane = 7;
        let map = SourceMap { inst: 0, lanes: vec![10, 20, 30, 40], ops: vec![50] };
        let all = check_inst_all(&i, Some(&map));
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].pos, Some(20));
        assert!(all[0].to_string().starts_with("at byte 20:"));
    }
}
