//! Well-formedness checking for VIDL descriptions.

use crate::ast::{Expr, InstSemantics, Operation};
use std::error::Error;
use std::fmt;
use vegen_ir::{CastOp, Type};

/// A well-formedness violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError(pub String);

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VIDL check failed: {}", self.0)
    }
}

impl Error for CheckError {}

fn fail(msg: impl Into<String>) -> Result<(), CheckError> {
    Err(CheckError(msg.into()))
}

/// Type-check an expression, returning its type.
fn type_of(e: &Expr, params: &[Type]) -> Result<Type, CheckError> {
    match e {
        Expr::Param(i) => params
            .get(*i)
            .copied()
            .ok_or_else(|| CheckError(format!("parameter x{i} out of range"))),
        Expr::Const(c) => Ok(c.ty()),
        Expr::Bin { op, lhs, rhs } => {
            let lt = type_of(lhs, params)?;
            let rt = type_of(rhs, params)?;
            if lt != rt {
                return Err(CheckError(format!("binop {op:?} on {lt} and {rt}")));
            }
            if op.is_float() != lt.is_float() {
                return Err(CheckError(format!("binop {op:?} float/int mismatch with {lt}")));
            }
            Ok(lt)
        }
        Expr::FNeg(a) => {
            let t = type_of(a, params)?;
            if !t.is_float() {
                return Err(CheckError(format!("fneg on {t}")));
            }
            Ok(t)
        }
        Expr::Cast { op, to, arg } => {
            let from = type_of(arg, params)?;
            let ok = match op {
                CastOp::SExt | CastOp::ZExt => {
                    from.is_int() && to.is_int() && to.bits() > from.bits()
                }
                CastOp::Trunc => from.is_int() && to.is_int() && to.bits() < from.bits(),
                CastOp::FPExt => from == Type::F32 && *to == Type::F64,
                CastOp::FPTrunc => from == Type::F64 && *to == Type::F32,
                CastOp::SIToFP | CastOp::UIToFP => from.is_int() && to.is_float(),
                CastOp::FPToSI => from.is_float() && to.is_int(),
            };
            if !ok {
                return Err(CheckError(format!("invalid cast {op:?} {from} -> {to}")));
            }
            Ok(*to)
        }
        Expr::Cmp { pred, lhs, rhs } => {
            let lt = type_of(lhs, params)?;
            let rt = type_of(rhs, params)?;
            if lt != rt {
                return Err(CheckError(format!("cmp on {lt} and {rt}")));
            }
            if pred.is_float() != lt.is_float() {
                return Err(CheckError(format!("cmp {pred:?} on {lt}")));
            }
            Ok(Type::I1)
        }
        Expr::Select { cond, on_true, on_false } => {
            if type_of(cond, params)? != Type::I1 {
                return Err(CheckError("select condition must be i1".into()));
            }
            let tt = type_of(on_true, params)?;
            let et = type_of(on_false, params)?;
            if tt != et {
                return Err(CheckError(format!("select arms {tt} vs {et}")));
            }
            Ok(tt)
        }
    }
}

/// Check an operation: the body must type-check against the declared
/// parameter types and produce the declared return type.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_operation(op: &Operation) -> Result<(), CheckError> {
    for t in &op.params {
        if *t == Type::Void {
            return fail(format!("operation {} has a void parameter", op.name));
        }
    }
    let t = type_of(&op.expr, &op.params)?;
    if t != op.ret {
        return fail(format!("operation {} declared {} but body has type {t}", op.name, op.ret));
    }
    Ok(())
}

/// Check an instruction description: operations are well formed, lane
/// bindings reference valid operations/inputs/lanes, each operation's
/// argument types equal the element types of the registers feeding it, and
/// every output lane produces `out_elem`.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_inst(inst: &InstSemantics) -> Result<(), CheckError> {
    if inst.lanes.is_empty() {
        return fail(format!("instruction {} has no output lanes", inst.name));
    }
    for op in &inst.ops {
        check_operation(op)
            .map_err(|e| CheckError(format!("in instruction {}: {}", inst.name, e.0)))?;
    }
    for (lane_idx, b) in inst.lanes.iter().enumerate() {
        let Some(op) = inst.ops.get(b.op) else {
            return fail(format!(
                "{} lane {lane_idx} references unknown operation #{}",
                inst.name, b.op
            ));
        };
        if b.args.len() != op.params.len() {
            return fail(format!(
                "{} lane {lane_idx}: {} args but operation {} has {} params",
                inst.name,
                b.args.len(),
                op.name,
                op.params.len()
            ));
        }
        if op.ret != inst.out_elem {
            return fail(format!(
                "{} lane {lane_idx}: operation {} returns {} but output element is {}",
                inst.name, op.name, op.ret, inst.out_elem
            ));
        }
        for (param, r) in b.args.iter().enumerate() {
            let Some(shape) = inst.inputs.get(r.input) else {
                return fail(format!(
                    "{} lane {lane_idx}: unknown input register x{}",
                    inst.name, r.input
                ));
            };
            if r.lane >= shape.lanes {
                return fail(format!(
                    "{} lane {lane_idx}: lane index {} out of range for x{} ({} lanes)",
                    inst.name, r.lane, r.input, shape.lanes
                ));
            }
            if shape.elem != op.params[param] {
                return fail(format!(
                    "{} lane {lane_idx}: x{}[{}] has element type {} but {} param {param} is {}",
                    inst.name, r.input, r.lane, shape.elem, op.name, op.params[param]
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{LaneBinding, LaneRef, VecShape};
    use vegen_ir::BinOp;

    fn add_op(ty: Type) -> Operation {
        Operation {
            name: "add".into(),
            params: vec![ty; 2],
            ret: ty,
            expr: Expr::Bin {
                op: BinOp::Add,
                lhs: Box::new(Expr::Param(0)),
                rhs: Box::new(Expr::Param(1)),
            },
        }
    }

    fn simd_add() -> InstSemantics {
        let lr = |input, lane| LaneRef { input, lane };
        InstSemantics {
            name: "paddd".into(),
            inputs: vec![VecShape { lanes: 4, elem: Type::I32 }; 2],
            out_elem: Type::I32,
            ops: vec![add_op(Type::I32)],
            lanes: (0..4).map(|l| LaneBinding { op: 0, args: vec![lr(0, l), lr(1, l)] }).collect(),
        }
    }

    #[test]
    fn accepts_valid_inst() {
        assert!(check_inst(&simd_add()).is_ok());
    }

    #[test]
    fn rejects_lane_out_of_range() {
        let mut i = simd_add();
        i.lanes[0].args[0].lane = 7;
        let e = check_inst(&i).unwrap_err();
        assert!(e.0.contains("out of range"));
    }

    #[test]
    fn rejects_wrong_arity() {
        let mut i = simd_add();
        i.lanes[1].args.pop();
        assert!(check_inst(&i).is_err());
    }

    #[test]
    fn rejects_element_type_mismatch() {
        let mut i = simd_add();
        i.inputs[1] = VecShape { lanes: 4, elem: Type::I16 };
        let e = check_inst(&i).unwrap_err();
        assert!(e.0.contains("element type"));
    }

    #[test]
    fn rejects_return_type_mismatch() {
        let mut i = simd_add();
        i.out_elem = Type::I64;
        assert!(check_inst(&i).is_err());
    }

    #[test]
    fn rejects_ill_typed_operation_body() {
        let bad = Operation {
            name: "bad".into(),
            params: vec![Type::I32, Type::I16],
            ret: Type::I32,
            expr: Expr::Bin {
                op: BinOp::Add,
                lhs: Box::new(Expr::Param(0)),
                rhs: Box::new(Expr::Param(1)),
            },
        };
        assert!(check_operation(&bad).is_err());
    }

    #[test]
    fn rejects_float_op_on_ints() {
        let bad = Operation {
            name: "bad".into(),
            params: vec![Type::I32; 2],
            ret: Type::I32,
            expr: Expr::Bin {
                op: BinOp::FAdd,
                lhs: Box::new(Expr::Param(0)),
                rhs: Box::new(Expr::Param(1)),
            },
        };
        assert!(check_operation(&bad).is_err());
    }

    #[test]
    fn rejects_empty_lane_list() {
        let mut i = simd_add();
        i.lanes.clear();
        assert!(check_inst(&i).is_err());
    }

    #[test]
    fn rejects_unknown_operation_index() {
        let mut i = simd_add();
        i.lanes[0].op = 3;
        assert!(check_inst(&i).is_err());
    }
}
