#![warn(missing_docs)]

//! The Vector Instruction Description Language (VIDL) from Fig. 5 of the
//! paper.
//!
//! VIDL models a target vector instruction as a list of scalar *operations*
//! plus *lane-binding* rules saying which input lanes feed each operation:
//!
//! ```text
//! lane ::= x[i]
//! expr ::= x | lane | binop(e, e) | unop(e) | select(e, e, e)
//! opn  ::= (x1 : sz1, ..., xn : szn) -> expr
//! res  ::= opn(lane1, ..., lanek)
//! inst ::= (x1 : vl1 x sz1, ...) -> [res1, ..., resm]
//! ```
//!
//! Lane indices are constants, which is what lets VeGen *statically* derive
//! each instruction's vector operands (`operand_i(.)` in §4.4).
//!
//! This crate provides the AST ([`Operation`], [`InstSemantics`]), a
//! well-formedness checker, a concrete evaluator (the executable semantics
//! the vector VM runs on), the static lane-binding analysis
//! ([`InstSemantics::operand_bindings`]), and a textual parser/printer used
//! by the instruction database and the docs.
//!
//! # Example
//!
//! ```
//! use vegen_vidl::parse_inst;
//!
//! // pmaddwd, exactly as formalized in Fig. 4(b) of the paper.
//! let inst = parse_inst(
//!     "inst pmaddwd (a: 4 x i16, b: 4 x i16) -> i32 [
//!        madd(a[0], b[0], a[1], b[1]),
//!        madd(a[2], b[2], a[3], b[3])
//!      ] where
//!      op madd (x1: i16, x2: i16, x3: i16, x4: i16) -> i32 =
//!        add(mul(sext_i32(x1), sext_i32(x2)), mul(sext_i32(x3), sext_i32(x4)))",
//! ).unwrap();
//! assert_eq!(inst.out_lanes(), 2);
//! assert_eq!(inst.inputs.len(), 2);
//! ```

pub mod ast;
pub mod check;
pub mod eval;
pub mod parse;
pub mod print;

pub use ast::{Expr, InstSemantics, LaneBinding, LaneRef, Operation, VecShape};
pub use check::{
    check_inst, check_inst_all, check_operation, check_operation_all, CheckError, SourceMap,
    Violation,
};
pub use eval::{eval_expr, eval_inst, eval_operation};
pub use parse::{parse_inst, parse_inst_with_map, parse_operation, ParseError};
pub use print::{inst_text, inst_text_with_map, operation_text};
