//! VIDL abstract syntax (Fig. 5 of the paper).

use std::collections::BTreeMap;
use vegen_ir::{BinOp, CastOp, CmpPred, Constant, Type};

/// An expression in an operation body.
///
/// Mirrors the scalar IR deliberately ("We designed VIDL to mirror the
/// scalar IR that its vectorizer takes as input", §4.2), so deriving pattern
/// matchers from operations is a structural walk.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant and field names are the documentation
pub enum Expr {
    /// Reference to the operation's `i`'th parameter.
    Param(usize),
    /// A literal constant.
    Const(Constant),
    /// Binary operation.
    Bin { op: BinOp, lhs: Box<Expr>, rhs: Box<Expr> },
    /// Floating-point negation.
    FNeg(Box<Expr>),
    /// Conversion to `to`.
    Cast { op: CastOp, to: Type, arg: Box<Expr> },
    /// Comparison.
    Cmp { pred: CmpPred, lhs: Box<Expr>, rhs: Box<Expr> },
    /// `cond ? t : e`.
    Select { cond: Box<Expr>, on_true: Box<Expr>, on_false: Box<Expr> },
}

impl Expr {
    /// Infer the expression's type given parameter types.
    ///
    /// Returns `None` if a parameter index is out of range; other type
    /// errors are caught by [`crate::check::check_operation`].
    pub fn ty(&self, params: &[Type]) -> Option<Type> {
        match self {
            Expr::Param(i) => params.get(*i).copied(),
            Expr::Const(c) => Some(c.ty()),
            Expr::Bin { lhs, .. } => lhs.ty(params),
            Expr::FNeg(a) => a.ty(params),
            Expr::Cast { to, .. } => Some(*to),
            Expr::Cmp { .. } => Some(Type::I1),
            Expr::Select { on_true, .. } => on_true.ty(params),
        }
    }

    /// Number of expression nodes (used by cost heuristics and tests).
    pub fn size(&self) -> usize {
        1 + match self {
            Expr::Param(_) | Expr::Const(_) => 0,
            Expr::FNeg(a) => a.size(),
            Expr::Cast { arg, .. } => arg.size(),
            Expr::Bin { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => lhs.size() + rhs.size(),
            Expr::Select { cond, on_true, on_false } => {
                cond.size() + on_true.size() + on_false.size()
            }
        }
    }

    /// Collect the parameter indices used, in first-use order.
    pub fn params_used(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_params(&mut out);
        out
    }

    fn collect_params(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Param(i) => {
                if !out.contains(i) {
                    out.push(*i);
                }
            }
            Expr::Const(_) => {}
            Expr::FNeg(a) => a.collect_params(out),
            Expr::Cast { arg, .. } => arg.collect_params(out),
            Expr::Bin { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => {
                lhs.collect_params(out);
                rhs.collect_params(out);
            }
            Expr::Select { cond, on_true, on_false } => {
                cond.collect_params(out);
                on_true.collect_params(out);
                on_false.collect_params(out);
            }
        }
    }
}

/// A scalar operation: `(x1 : sz1, ..., xn : szn) -> expr`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Operation {
    /// Name (unique within an instruction set; used as the pattern id).
    pub name: String,
    /// Parameter types.
    pub params: Vec<Type>,
    /// Result type.
    pub ret: Type,
    /// Body.
    pub expr: Expr,
}

/// Shape of one vector input register: `vl x sz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VecShape {
    /// Number of lanes.
    pub lanes: usize,
    /// Element type.
    pub elem: Type,
}

impl VecShape {
    /// Total bit width of the register.
    pub fn bits(self) -> u32 {
        self.lanes as u32 * self.elem.bits()
    }
}

/// A reference to one input lane: `x[i]` with `x` the `input`'th register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LaneRef {
    /// Which input register.
    pub input: usize,
    /// Which lane of that register.
    pub lane: usize,
}

/// One output lane: which operation runs and which input lanes feed it
/// (`res ::= opn(lane1, ..., lanek)`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LaneBinding {
    /// Index into [`InstSemantics::ops`].
    pub op: usize,
    /// One [`LaneRef`] per operation parameter.
    pub args: Vec<LaneRef>,
}

/// The semantics of one vector instruction:
/// `inst ::= (x1 : vl1 x sz1, ...) -> [res1, ..., resm]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InstSemantics {
    /// Instruction name (e.g. `pmaddwd`).
    pub name: String,
    /// Input register shapes.
    pub inputs: Vec<VecShape>,
    /// Output element type (all output lanes share it).
    pub out_elem: Type,
    /// The distinct scalar operations this instruction performs.
    pub ops: Vec<Operation>,
    /// One binding per output lane, in lane order.
    pub lanes: Vec<LaneBinding>,
}

/// Where one element of `operand_i` flows: output lane `out_lane`, parameter
/// `param` of that lane's operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LaneUse {
    /// Output lane consuming this input lane.
    pub out_lane: usize,
    /// Which parameter of the lane's operation it feeds.
    pub param: usize,
}

impl InstSemantics {
    /// Number of output lanes.
    pub fn out_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// True if all lanes run the same operation with elementwise lane flow —
    /// i.e. a plain SIMD instruction under the paper's definition.
    pub fn is_simd(&self) -> bool {
        let Some(first) = self.lanes.first() else { return true };
        self.lanes
            .iter()
            .enumerate()
            .all(|(lane, b)| b.op == first.op && b.args.iter().all(|r| r.lane == lane))
    }

    /// The static lane-binding map for input register `input`: for each lane
    /// of that register, which `(out_lane, param)` positions consume it.
    ///
    /// This is the `operand_i(.)` utility of §4.4: VeGen's vectorizer uses
    /// it to assemble the vector operand an instruction needs from the
    /// live-ins of the matches packed into its lanes. Lanes with no uses are
    /// *don't-care* lanes (e.g. the even lanes of `vpmuldq`, Fig. 6).
    pub fn operand_bindings(&self, input: usize) -> Vec<Vec<LaneUse>> {
        let mut uses: BTreeMap<usize, Vec<LaneUse>> = BTreeMap::new();
        for (out_lane, binding) in self.lanes.iter().enumerate() {
            for (param, r) in binding.args.iter().enumerate() {
                if r.input == input {
                    uses.entry(r.lane).or_default().push(LaneUse { out_lane, param });
                }
            }
        }
        let lanes = self.inputs[input].lanes;
        (0..lanes).map(|l| uses.get(&l).cloned().unwrap_or_default()).collect()
    }

    /// True if input register `input` has at least one unused (don't-care)
    /// lane.
    pub fn has_dont_care_lanes(&self, input: usize) -> bool {
        self.operand_bindings(input).iter().any(|u| u.is_empty())
    }

    /// Total output register width in bits.
    pub fn out_bits(&self) -> u32 {
        self.out_elem.bits() * self.out_lanes() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-build pmaddwd semantics (Fig. 4(b)).
    pub(crate) fn pmaddwd() -> InstSemantics {
        let p = |i| Box::new(Expr::Param(i));
        let sx = |e: Box<Expr>| Box::new(Expr::Cast { op: CastOp::SExt, to: Type::I32, arg: e });
        let madd = Operation {
            name: "madd".into(),
            params: vec![Type::I16; 4],
            ret: Type::I32,
            expr: Expr::Bin {
                op: BinOp::Add,
                lhs: Box::new(Expr::Bin { op: BinOp::Mul, lhs: sx(p(0)), rhs: sx(p(1)) }),
                rhs: Box::new(Expr::Bin { op: BinOp::Mul, lhs: sx(p(2)), rhs: sx(p(3)) }),
            },
        };
        let lr = |input, lane| LaneRef { input, lane };
        InstSemantics {
            name: "pmaddwd".into(),
            inputs: vec![VecShape { lanes: 4, elem: Type::I16 }; 2],
            out_elem: Type::I32,
            ops: vec![madd],
            lanes: vec![
                LaneBinding { op: 0, args: vec![lr(0, 0), lr(1, 0), lr(0, 1), lr(1, 1)] },
                LaneBinding { op: 0, args: vec![lr(0, 2), lr(1, 2), lr(0, 3), lr(1, 3)] },
            ],
        }
    }

    #[test]
    fn pmaddwd_is_not_simd() {
        assert!(!pmaddwd().is_simd(), "pmaddwd uses cross-lane operands");
    }

    #[test]
    fn operand_bindings_match_paper() {
        // operand_1(pex) = [A[0], A[1], A[2], A[3]] — input 0's lane l feeds
        // output lane l/2 at param position 2*(l%2).
        let i = pmaddwd();
        let b = i.operand_bindings(0);
        assert_eq!(b[0], vec![LaneUse { out_lane: 0, param: 0 }]);
        assert_eq!(b[1], vec![LaneUse { out_lane: 0, param: 2 }]);
        assert_eq!(b[2], vec![LaneUse { out_lane: 1, param: 0 }]);
        assert_eq!(b[3], vec![LaneUse { out_lane: 1, param: 2 }]);
        assert!(!i.has_dont_care_lanes(0));
    }

    #[test]
    fn dont_care_lane_detection() {
        // A vpmuldq-like instruction uses only even input lanes (Fig. 6).
        let mul = Operation {
            name: "mulsx".into(),
            params: vec![Type::I32; 2],
            ret: Type::I64,
            expr: Expr::Bin {
                op: BinOp::Mul,
                lhs: Box::new(Expr::Cast {
                    op: CastOp::SExt,
                    to: Type::I64,
                    arg: Box::new(Expr::Param(0)),
                }),
                rhs: Box::new(Expr::Cast {
                    op: CastOp::SExt,
                    to: Type::I64,
                    arg: Box::new(Expr::Param(1)),
                }),
            },
        };
        let lr = |input, lane| LaneRef { input, lane };
        let i = InstSemantics {
            name: "pmuldq".into(),
            inputs: vec![VecShape { lanes: 4, elem: Type::I32 }; 2],
            out_elem: Type::I64,
            ops: vec![mul],
            lanes: vec![
                LaneBinding { op: 0, args: vec![lr(0, 0), lr(1, 0)] },
                LaneBinding { op: 0, args: vec![lr(0, 2), lr(1, 2)] },
            ],
        };
        assert!(i.has_dont_care_lanes(0));
        let b = i.operand_bindings(0);
        assert!(b[1].is_empty() && b[3].is_empty());
        assert!(!b[0].is_empty() && !b[2].is_empty());
    }

    #[test]
    fn simd_detection() {
        let addop = Operation {
            name: "add32".into(),
            params: vec![Type::I32; 2],
            ret: Type::I32,
            expr: Expr::Bin {
                op: BinOp::Add,
                lhs: Box::new(Expr::Param(0)),
                rhs: Box::new(Expr::Param(1)),
            },
        };
        let lr = |input, lane| LaneRef { input, lane };
        let i = InstSemantics {
            name: "paddd".into(),
            inputs: vec![VecShape { lanes: 4, elem: Type::I32 }; 2],
            out_elem: Type::I32,
            ops: vec![addop],
            lanes: (0..4).map(|l| LaneBinding { op: 0, args: vec![lr(0, l), lr(1, l)] }).collect(),
        };
        assert!(i.is_simd());
    }

    #[test]
    fn expr_size_and_params() {
        let i = pmaddwd();
        let e = &i.ops[0].expr;
        // add + 2 mul + 4 sext + 4 param = 11 nodes
        assert_eq!(e.size(), 11);
        assert_eq!(e.params_used(), vec![0, 1, 2, 3]);
        assert_eq!(e.ty(&i.ops[0].params), Some(Type::I32));
    }

    #[test]
    fn out_bits() {
        assert_eq!(pmaddwd().out_bits(), 64);
        assert_eq!(VecShape { lanes: 8, elem: Type::I16 }.bits(), 128);
    }
}
