//! Textual printing of VIDL descriptions (inverse of [`crate::parse`]).

use crate::ast::{Expr, InstSemantics, Operation};
use crate::check::SourceMap;
use std::fmt::Write;
use vegen_ir::Type;

fn const_text(c: vegen_ir::Constant) -> String {
    match c.ty() {
        Type::F32 => format!("{}:f32", c.as_f32()),
        Type::F64 => format!("{}:f64", c.as_f64()),
        ty => format!("{}:{}", c.as_i64(), ty),
    }
}

/// Render an expression using the parameter names `x0`, `x1`, ...
pub fn expr_text(e: &Expr) -> String {
    match e {
        Expr::Param(i) => format!("x{i}"),
        Expr::Const(c) => const_text(*c),
        Expr::Bin { op, lhs, rhs } => {
            format!("{}({}, {})", op.name(), expr_text(lhs), expr_text(rhs))
        }
        Expr::FNeg(a) => format!("fneg({})", expr_text(a)),
        Expr::Cast { op, to, arg } => format!("{}_{}({})", op.name(), to, expr_text(arg)),
        Expr::Cmp { pred, lhs, rhs } => {
            format!("cmp_{}({}, {})", pred.name(), expr_text(lhs), expr_text(rhs))
        }
        Expr::Select { cond, on_true, on_false } => {
            format!("select({}, {}, {})", expr_text(cond), expr_text(on_true), expr_text(on_false))
        }
    }
}

/// Render an operation declaration.
pub fn operation_text(op: &Operation) -> String {
    let params = op
        .params
        .iter()
        .enumerate()
        .map(|(i, t)| format!("x{i}: {t}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!("op {} ({}) -> {} = {}", op.name, params, op.ret, expr_text(&op.expr))
}

/// Render a full instruction description in the concrete syntax accepted by
/// [`crate::parse_inst`].
pub fn inst_text(inst: &InstSemantics) -> String {
    inst_text_with_map(inst).0
}

/// Like [`inst_text`], but also return a [`SourceMap`] recording the byte
/// position of each lane binding and operation declaration in the rendered
/// text — the map [`crate::check::check_inst_all`] consumes to attach
/// positions to violations.
pub fn inst_text_with_map(inst: &InstSemantics) -> (String, SourceMap) {
    let mut s = String::new();
    let mut map = SourceMap::default();
    let inputs = inst
        .inputs
        .iter()
        .enumerate()
        .map(|(i, sh)| format!("in{i}: {} x {}", sh.lanes, sh.elem))
        .collect::<Vec<_>>()
        .join(", ");
    map.inst = s.len();
    let _ = writeln!(s, "inst {} ({}) -> {} [", inst.name, inputs, inst.out_elem);
    for (i, lane) in inst.lanes.iter().enumerate() {
        let args = lane
            .args
            .iter()
            .map(|r| format!("in{}[{}]", r.input, r.lane))
            .collect::<Vec<_>>()
            .join(", ");
        let sep = if i + 1 == inst.lanes.len() { "" } else { "," };
        let opname = inst.ops.get(lane.op).map_or("<unknown-op>", |o| o.name.as_str());
        map.lanes.push(s.len() + 2); // past the two-space indent
        let _ = writeln!(s, "  {opname}({args}){sep}");
    }
    let _ = writeln!(s, "] where");
    for op in &inst.ops {
        map.ops.push(s.len());
        let _ = writeln!(s, "{}", operation_text(op));
    }
    (s, map)
}

#[cfg(test)]
mod tests {
    use crate::parse::{parse_inst, parse_operation};

    const PMADDWD: &str = "inst pmaddwd (a: 4 x i16, b: 4 x i16) -> i32 [
        madd(a[0], b[0], a[1], b[1]),
        madd(a[2], b[2], a[3], b[3])
      ] where
      op madd (x1: i16, x2: i16, x3: i16, x4: i16) -> i32 =
        add(mul(sext_i32(x1), sext_i32(x2)), mul(sext_i32(x3), sext_i32(x4)))";

    #[test]
    fn inst_roundtrips_through_text() {
        let i1 = parse_inst(PMADDWD).unwrap();
        let text = super::inst_text(&i1);
        let i2 = parse_inst(&text).unwrap();
        // Names of inputs are normalized to in0/in1, everything else equal.
        assert_eq!(i1.inputs, i2.inputs);
        assert_eq!(i1.out_elem, i2.out_elem);
        assert_eq!(i1.ops, i2.ops);
        assert_eq!(i1.lanes, i2.lanes);
    }

    #[test]
    fn operation_roundtrips() {
        let src = "op sat (x0: i32) -> i32 =
            select(cmp_sgt(x0, 32767:i32), 32767:i32,
                   select(cmp_slt(x0, -32768:i32), -32768:i32, x0))";
        let o1 = parse_operation(src).unwrap();
        let o2 = parse_operation(&super::operation_text(&o1)).unwrap();
        assert_eq!(o1, o2);
    }

    #[test]
    fn printed_map_points_at_declarations() {
        let i = parse_inst(PMADDWD).unwrap();
        let (text, map) = super::inst_text_with_map(&i);
        assert_eq!(map.lanes.len(), i.out_lanes());
        for &p in &map.lanes {
            assert!(text[p..].starts_with("madd("), "lane pos {p} points at {:?}", &text[p..p + 8]);
        }
        assert_eq!(map.ops.len(), 1);
        assert!(text[map.ops[0]..].starts_with("op madd"));
        // The printed map agrees with what re-parsing the text produces.
        let (_, reparsed) = crate::parse::parse_inst_with_map(&text).unwrap();
        assert_eq!(map.lanes, reparsed.lanes);
        assert_eq!(map.ops, reparsed.ops);
    }

    #[test]
    fn float_const_roundtrips() {
        let src = "op f (x0: f64) -> f64 = fadd(x0, 2.5:f64)";
        let o1 = parse_operation(src).unwrap();
        let o2 = parse_operation(&super::operation_text(&o1)).unwrap();
        assert_eq!(o1, o2);
    }
}
