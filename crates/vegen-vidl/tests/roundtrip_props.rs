//! Property tests: VIDL descriptions survive a print → parse round trip,
//! and the evaluator agrees before and after.

use proptest::prelude::*;
use vegen_ir::{BinOp, CmpPred, Constant, Type};
use vegen_vidl::print::{inst_text, operation_text};
use vegen_vidl::{
    check_inst, eval_inst, parse_inst, parse_operation, Expr, InstSemantics, LaneBinding,
    LaneRef, Operation, VecShape,
};

fn int_ty() -> impl Strategy<Value = Type> {
    prop_oneof![Just(Type::I8), Just(Type::I16), Just(Type::I32), Just(Type::I64)]
}

/// A well-typed expression over `n` parameters of type `ty`.
fn expr(ty: Type, n: usize, depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0..n).prop_map(Expr::Param),
        (-100i64..100).prop_map(move |v| Expr::Const(Constant::int(ty, v))),
    ]
    .boxed();
    if depth == 0 {
        return leaf;
    }
    let bin = (any::<u8>(), expr(ty, n, depth - 1), expr(ty, n, depth - 1)).prop_map(
        move |(op, l, r)| {
            let ops = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::And, BinOp::Or, BinOp::Xor];
            Expr::Bin {
                op: ops[op as usize % ops.len()],
                lhs: Box::new(l),
                rhs: Box::new(r),
            }
        },
    );
    let sel = (
        expr(ty, n, depth - 1),
        expr(ty, n, depth - 1),
        expr(ty, n, depth - 1),
        any::<bool>(),
    )
        .prop_map(move |(a, b, c, lt)| Expr::Select {
            cond: Box::new(Expr::Cmp {
                pred: if lt { CmpPred::Slt } else { CmpPred::Sgt },
                lhs: Box::new(a.clone()),
                rhs: Box::new(b.clone()),
            }),
            on_true: Box::new(a),
            on_false: Box::new(c),
        });
    prop_oneof![leaf, bin.boxed(), sel.boxed()].boxed()
}

fn operation() -> impl Strategy<Value = Operation> {
    (int_ty(), 1..4usize).prop_flat_map(|(ty, n)| {
        expr(ty, n, 2).prop_map(move |e| Operation {
            name: "op0".into(),
            params: vec![ty; n],
            ret: ty,
            expr: e,
        })
    })
}

/// A SIMD-style instruction wrapping one random operation.
fn instruction() -> impl Strategy<Value = InstSemantics> {
    (operation(), 2..9usize).prop_map(|(op, lanes)| {
        let n = op.params.len();
        let ty = op.ret;
        InstSemantics {
            name: "randinst".into(),
            inputs: vec![VecShape { lanes, elem: ty }; n],
            out_elem: ty,
            ops: vec![op],
            lanes: (0..lanes)
                .map(|l| LaneBinding {
                    op: 0,
                    args: (0..n).map(|input| LaneRef { input, lane: l }).collect(),
                })
                .collect(),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn operation_roundtrips(op in operation()) {
        let text = operation_text(&op);
        let parsed = parse_operation(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(op, parsed);
    }

    #[test]
    fn instruction_roundtrips_and_evaluates(
        inst in instruction(),
        seed in any::<u64>(),
    ) {
        prop_assert!(check_inst(&inst).is_ok());
        let text = inst_text(&inst);
        let parsed = parse_inst(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(&inst.ops, &parsed.ops);
        prop_assert_eq!(&inst.lanes, &parsed.lanes);
        prop_assert_eq!(&inst.inputs, &parsed.inputs);
        // And both evaluate identically on a random input.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state
        };
        let inputs: Vec<Vec<Constant>> = inst
            .inputs
            .iter()
            .map(|sh| {
                (0..sh.lanes)
                    .map(|_| Constant::int(sh.elem, vegen_ir::constant::sext(next(), sh.elem.bits())))
                    .collect()
            })
            .collect();
        let a = eval_inst(&inst, &inputs);
        let b = eval_inst(&parsed, &inputs);
        prop_assert_eq!(a.ok(), b.ok());
    }
}
