//! Property tests: VIDL descriptions survive a print → parse round trip,
//! and the evaluator agrees before and after.
//!
//! Random descriptions are generated with the in-tree deterministic
//! [`XorShift`] stream (the repo builds offline; see `vegen_ir::rng`).

use vegen_ir::rng::XorShift;
use vegen_ir::{BinOp, CmpPred, Constant, Type};
use vegen_vidl::print::{inst_text, operation_text};
use vegen_vidl::{
    check_inst, eval_inst, parse_inst, parse_operation, Expr, InstSemantics, LaneBinding, LaneRef,
    Operation, VecShape,
};

fn int_ty(r: &mut XorShift) -> Type {
    [Type::I8, Type::I16, Type::I32, Type::I64][r.below(4)]
}

/// A well-typed expression over `n` parameters of type `ty`.
fn expr(r: &mut XorShift, ty: Type, n: usize, depth: u32) -> Expr {
    let leaf = |r: &mut XorShift| {
        if r.bool() {
            Expr::Param(r.below(n))
        } else {
            Expr::Const(Constant::int(ty, r.range_i64(-100, 100)))
        }
    };
    if depth == 0 {
        return leaf(r);
    }
    match r.below(3) {
        0 => leaf(r),
        1 => {
            let ops = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::And, BinOp::Or, BinOp::Xor];
            let op = ops[r.below(ops.len())];
            let lhs = expr(r, ty, n, depth - 1);
            let rhs = expr(r, ty, n, depth - 1);
            Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
        }
        _ => {
            let a = expr(r, ty, n, depth - 1);
            let b = expr(r, ty, n, depth - 1);
            let c = expr(r, ty, n, depth - 1);
            let pred = if r.bool() { CmpPred::Slt } else { CmpPred::Sgt };
            Expr::Select {
                cond: Box::new(Expr::Cmp { pred, lhs: Box::new(a.clone()), rhs: Box::new(b) }),
                on_true: Box::new(a),
                on_false: Box::new(c),
            }
        }
    }
}

fn operation(r: &mut XorShift) -> Operation {
    let ty = int_ty(r);
    let n = 1 + r.below(3);
    Operation { name: "op0".into(), params: vec![ty; n], ret: ty, expr: expr(r, ty, n, 2) }
}

/// A SIMD-style instruction wrapping one random operation.
fn instruction(r: &mut XorShift) -> InstSemantics {
    let op = operation(r);
    let lanes = 2 + r.below(7);
    let n = op.params.len();
    let ty = op.ret;
    InstSemantics {
        name: "randinst".into(),
        inputs: vec![VecShape { lanes, elem: ty }; n],
        out_elem: ty,
        ops: vec![op],
        lanes: (0..lanes)
            .map(|l| LaneBinding {
                op: 0,
                args: (0..n).map(|input| LaneRef { input, lane: l }).collect(),
            })
            .collect(),
    }
}

#[test]
fn operation_roundtrips() {
    let mut r = XorShift::new(0x51D1_0001);
    for case in 0..128u32 {
        let op = operation(&mut r);
        let text = operation_text(&op);
        let parsed = parse_operation(&text)
            .unwrap_or_else(|e| panic!("case {case}: reparse failed: {e}\n{text}"));
        assert_eq!(op, parsed, "case {case}");
    }
}

#[test]
fn instruction_roundtrips_and_evaluates() {
    let mut r = XorShift::new(0x51D1_0002);
    for case in 0..128u32 {
        let inst = instruction(&mut r);
        let seed = r.next_u64();
        assert!(check_inst(&inst).is_ok(), "case {case}");
        let text = inst_text(&inst);
        let parsed = parse_inst(&text)
            .unwrap_or_else(|e| panic!("case {case}: reparse failed: {e}\n{text}"));
        assert_eq!(&inst.ops, &parsed.ops, "case {case}");
        assert_eq!(&inst.lanes, &parsed.lanes, "case {case}");
        assert_eq!(&inst.inputs, &parsed.inputs, "case {case}");
        // And both evaluate identically on a random input.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state
        };
        let inputs: Vec<Vec<Constant>> = inst
            .inputs
            .iter()
            .map(|sh| {
                (0..sh.lanes)
                    .map(|_| {
                        Constant::int(sh.elem, vegen_ir::constant::sext(next(), sh.elem.bits()))
                    })
                    .collect()
            })
            .collect();
        let a = eval_inst(&inst, &inputs);
        let b = eval_inst(&parsed, &inputs);
        assert_eq!(a.ok(), b.ok(), "case {case}");
    }
}
