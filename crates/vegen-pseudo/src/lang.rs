//! Parser for the Intel-style pseudocode documentation language.
//!
//! The Intrinsics Guide documents each intrinsic in a small imperative
//! language over fixed-length bit-vectors: `FOR`/`ENDFOR` loops with
//! constant trip counts, `IF`/`ELSE`/`FI`, assignment to bit slices
//! (`dst[i+31:i] := ...`), and a library of widening/saturating helpers
//! (`SignExtend32`, `Saturate16`, `ABS`, `MIN`, ...). This module parses a
//! faithful subset; [`crate::eval`] gives it symbolic semantics.

use std::error::Error;
use std::fmt;

/// Binary operators in pseudocode expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant and field names are the documentation
pub enum PBinOp {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

/// Comparison operators in pseudocode conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant and field names are the documentation
pub enum PCmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant and field names are the documentation
pub enum PExpr {
    /// Integer literal.
    Num(i64),
    /// A scalar variable or whole register.
    Var(String),
    /// Bit slice `base[hi:lo]` with expression bounds.
    Slice { base: String, hi: Box<PExpr>, lo: Box<PExpr> },
    /// Single bit `base[idx]` (sugar for `base[idx:idx]`).
    Bit { base: String, idx: Box<PExpr> },
    /// Binary operation.
    Bin { op: PBinOp, lhs: Box<PExpr>, rhs: Box<PExpr> },
    /// Comparison (signedness is resolved by the evaluator: Intel's
    /// language compares signed values unless a helper says otherwise).
    Cmp { op: PCmpOp, lhs: Box<PExpr>, rhs: Box<PExpr> },
    /// Unary minus.
    Neg(Box<PExpr>),
    /// Intrinsic helper call (`SignExtend32(x)`, `Saturate16(x)`, ...).
    Call { name: String, args: Vec<PExpr> },
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant and field names are the documentation
pub enum Stmt {
    /// `FOR v := from to to ... ENDFOR` (inclusive bounds).
    For { var: String, from: PExpr, to: PExpr, body: Vec<Stmt> },
    /// `IF cond ... [ELSE ...] FI`.
    If { cond: PExpr, then_body: Vec<Stmt>, else_body: Vec<Stmt> },
    /// `name := expr` — scalar temporary or whole-register assignment.
    AssignVar { name: String, value: PExpr },
    /// `name[hi:lo] := expr` — partial bit-vector update.
    AssignSlice { base: String, hi: PExpr, lo: PExpr, value: PExpr },
}

/// A parsed pseudocode program (statement list).
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Top-level statements.
    pub stmts: Vec<Stmt>,
}

/// Parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PseudoParseError {
    /// Line number (1-based).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for PseudoParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pseudocode parse error on line {}: {}", self.line, self.message)
    }
}

impl Error for PseudoParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(i64),
    Assign, // :=
    Colon,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Plus,
    Minus,
    Star,
    Shl,
    Shr,
    EqEq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Newline,
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, PseudoParseError> {
    let mut out = Vec::new();
    for (lineno, line) in src.lines().enumerate() {
        let line_no = lineno + 1;
        let b = line.as_bytes();
        let mut i = 0;
        let mut emitted = false;
        while i < b.len() {
            let c = b[i];
            match c {
                b' ' | b'\t' | b'\r' => i += 1,
                b';' | b'/' if c == b';' || (c == b'/' && b.get(i + 1) == Some(&b'/')) => break,
                b'(' => {
                    out.push((line_no, Tok::LParen));
                    i += 1;
                }
                b')' => {
                    out.push((line_no, Tok::RParen));
                    i += 1;
                }
                b'[' => {
                    out.push((line_no, Tok::LBracket));
                    i += 1;
                }
                b']' => {
                    out.push((line_no, Tok::RBracket));
                    i += 1;
                }
                b',' => {
                    out.push((line_no, Tok::Comma));
                    i += 1;
                }
                b'+' => {
                    out.push((line_no, Tok::Plus));
                    i += 1;
                }
                b'-' => {
                    out.push((line_no, Tok::Minus));
                    i += 1;
                }
                b'*' => {
                    out.push((line_no, Tok::Star));
                    i += 1;
                }
                b':' => {
                    if b.get(i + 1) == Some(&b'=') {
                        out.push((line_no, Tok::Assign));
                        i += 2;
                    } else {
                        out.push((line_no, Tok::Colon));
                        i += 1;
                    }
                }
                b'=' => {
                    if b.get(i + 1) == Some(&b'=') {
                        out.push((line_no, Tok::EqEq));
                        i += 2;
                    } else {
                        return Err(PseudoParseError {
                            line: line_no,
                            message: "single `=`; use `:=` for assignment or `==`".into(),
                        });
                    }
                }
                b'!' => {
                    if b.get(i + 1) == Some(&b'=') {
                        out.push((line_no, Tok::Ne));
                        i += 2;
                    } else {
                        return Err(PseudoParseError {
                            line: line_no,
                            message: "stray `!`".into(),
                        });
                    }
                }
                b'<' => match b.get(i + 1) {
                    Some(&b'<') => {
                        out.push((line_no, Tok::Shl));
                        i += 2;
                    }
                    Some(&b'=') => {
                        out.push((line_no, Tok::Le));
                        i += 2;
                    }
                    _ => {
                        out.push((line_no, Tok::Lt));
                        i += 1;
                    }
                },
                b'>' => match b.get(i + 1) {
                    Some(&b'>') => {
                        out.push((line_no, Tok::Shr));
                        i += 2;
                    }
                    Some(&b'=') => {
                        out.push((line_no, Tok::Ge));
                        i += 2;
                    }
                    _ => {
                        out.push((line_no, Tok::Gt));
                        i += 1;
                    }
                },
                b'0'..=b'9' => {
                    let mut j = i;
                    // Hex literals appear in some guide entries.
                    if c == b'0' && b.get(i + 1) == Some(&b'x') {
                        j = i + 2;
                        while j < b.len() && b[j].is_ascii_hexdigit() {
                            j += 1;
                        }
                        let v = i64::from_str_radix(std::str::from_utf8(&b[i + 2..j]).unwrap(), 16)
                            .map_err(|_| PseudoParseError {
                                line: line_no,
                                message: "bad hex literal".into(),
                            })?;
                        out.push((line_no, Tok::Num(v)));
                    } else {
                        while j < b.len() && b[j].is_ascii_digit() {
                            j += 1;
                        }
                        let v: i64 =
                            std::str::from_utf8(&b[i..j]).unwrap().parse().map_err(|_| {
                                PseudoParseError {
                                    line: line_no,
                                    message: "bad integer literal".into(),
                                }
                            })?;
                        out.push((line_no, Tok::Num(v)));
                    }
                    i = j;
                }
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    let mut j = i;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    out.push((
                        line_no,
                        Tok::Ident(std::str::from_utf8(&b[i..j]).unwrap().to_string()),
                    ));
                    i = j;
                }
                other => {
                    return Err(PseudoParseError {
                        line: line_no,
                        message: format!("unexpected character {:?}", other as char),
                    })
                }
            }
            emitted = true;
        }
        if emitted {
            out.push((line_no, Tok::Newline));
        }
    }
    Ok(out)
}

struct P {
    toks: Vec<(usize, Tok)>,
    idx: usize,
}

impl P {
    fn line(&self) -> usize {
        self.toks
            .get(self.idx)
            .map(|t| t.0)
            .unwrap_or_else(|| self.toks.last().map(|t| t.0).unwrap_or(0))
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, PseudoParseError> {
        Err(PseudoParseError { line: self.line(), message: message.into() })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.idx).map(|t| &t.1)
    }

    /// Peek skipping newlines (for lookahead across continuations).
    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.idx).map(|t| t.1.clone());
        if t.is_some() {
            self.idx += 1;
        }
        t
    }

    fn skip_newlines(&mut self) {
        while self.peek() == Some(&Tok::Newline) {
            self.idx += 1;
        }
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.idx += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok) -> Result<(), PseudoParseError> {
        if self.eat(&t) {
            Ok(())
        } else {
            self.err(format!("expected {t:?}, found {:?}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, PseudoParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => {
                self.idx = self.idx.saturating_sub(1);
                self.err(format!("expected identifier, found {other:?}"))
            }
        }
    }

    /// Primary expression. Newlines inside parens/args are skipped by the
    /// callers that know a token must follow.
    fn primary(&mut self) -> Result<PExpr, PseudoParseError> {
        self.skip_newlines_if_continuation();
        match self.bump() {
            Some(Tok::Num(v)) => Ok(PExpr::Num(v)),
            Some(Tok::Minus) => Ok(PExpr::Neg(Box::new(self.primary()?))),
            Some(Tok::LParen) => {
                let e = self.expr(0)?;
                self.skip_newlines_if_continuation();
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => match self.peek() {
                Some(Tok::LParen) => {
                    self.idx += 1;
                    let mut args = Vec::new();
                    self.skip_newlines_if_continuation();
                    if self.peek() != Some(&Tok::RParen) {
                        loop {
                            args.push(self.expr(0)?);
                            self.skip_newlines_if_continuation();
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.skip_newlines_if_continuation();
                    self.expect(Tok::RParen)?;
                    Ok(PExpr::Call { name, args })
                }
                Some(Tok::LBracket) => {
                    self.idx += 1;
                    let first = self.expr(0)?;
                    if self.eat(&Tok::Colon) {
                        let lo = self.expr(0)?;
                        self.expect(Tok::RBracket)?;
                        Ok(PExpr::Slice { base: name, hi: Box::new(first), lo: Box::new(lo) })
                    } else {
                        self.expect(Tok::RBracket)?;
                        Ok(PExpr::Bit { base: name, idx: Box::new(first) })
                    }
                }
                _ => Ok(PExpr::Var(name)),
            },
            other => {
                self.idx = self.idx.saturating_sub(1);
                self.err(format!("expected expression, found {other:?}"))
            }
        }
    }

    /// Skip newlines only when the previous token makes the expression
    /// syntactically incomplete (we were just called needing a token).
    fn skip_newlines_if_continuation(&mut self) {
        self.skip_newlines();
    }

    fn binop_of(tok: &Tok) -> Option<(u8, PBinOp)> {
        Some(match tok {
            Tok::Star => (7, PBinOp::Mul),
            Tok::Plus => (6, PBinOp::Add),
            Tok::Minus => (6, PBinOp::Sub),
            Tok::Shl => (5, PBinOp::Shl),
            Tok::Shr => (5, PBinOp::Shr),
            _ => return None,
        })
    }

    fn cmpop_of(tok: &Tok) -> Option<PCmpOp> {
        Some(match tok {
            Tok::EqEq => PCmpOp::Eq,
            Tok::Ne => PCmpOp::Ne,
            Tok::Lt => PCmpOp::Lt,
            Tok::Le => PCmpOp::Le,
            Tok::Gt => PCmpOp::Gt,
            Tok::Ge => PCmpOp::Ge,
            _ => return None,
        })
    }

    /// Word operators: AND/OR/XOR as identifiers.
    fn word_binop(tok: &Tok) -> Option<(u8, PBinOp)> {
        if let Tok::Ident(s) = tok {
            return Some(match s.as_str() {
                "AND" => (4, PBinOp::And),
                "XOR" => (3, PBinOp::Xor),
                "OR" => (2, PBinOp::Or),
                _ => return None,
            });
        }
        None
    }

    /// Precedence-climbing expression parser. A newline ends the expression
    /// unless it occurs where the grammar demands more input (after an
    /// operator, inside parentheses) — matching how the Intrinsics Guide
    /// wraps long formulas.
    fn expr(&mut self, min_prec: u8) -> Result<PExpr, PseudoParseError> {
        let mut lhs = self.primary()?;
        loop {
            // A newline here may be a continuation if an operator follows.
            let save = self.idx;
            let mut saw_newline = false;
            while self.peek() == Some(&Tok::Newline) {
                saw_newline = true;
                self.idx += 1;
            }
            let Some(tok) = self.peek().cloned() else {
                if saw_newline {
                    self.idx = save;
                }
                break;
            };
            if let Some((prec, op)) = Self::binop_of(&tok).or_else(|| Self::word_binop(&tok)) {
                if prec < min_prec {
                    self.idx = save;
                    break;
                }
                self.idx += 1;
                let rhs = self.expr(prec + 1)?;
                lhs = PExpr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
                continue;
            }
            if let Some(op) = Self::cmpop_of(&tok) {
                if min_prec > 1 {
                    self.idx = save;
                    break;
                }
                self.idx += 1;
                let rhs = self.expr(2)?;
                lhs = PExpr::Cmp { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
                continue;
            }
            // Not an operator: if we crossed newlines, restore them (they
            // terminate the statement).
            self.idx = save;
            break;
        }
        Ok(lhs)
    }

    fn block(&mut self, terminators: &[&str]) -> Result<(Vec<Stmt>, String), PseudoParseError> {
        let mut stmts = Vec::new();
        loop {
            self.skip_newlines();
            let Some(tok) = self.peek().cloned() else {
                if terminators.is_empty() {
                    return Ok((stmts, String::new()));
                }
                return self.err(format!("expected one of {terminators:?} before end of input"));
            };
            if let Tok::Ident(word) = &tok {
                if terminators.contains(&word.as_str()) {
                    let w = word.clone();
                    self.idx += 1;
                    return Ok((stmts, w));
                }
                match word.as_str() {
                    "FOR" => {
                        self.idx += 1;
                        let var = self.ident()?;
                        self.expect(Tok::Assign)?;
                        let from = self.expr(0)?;
                        let kw = self.ident()?;
                        if kw != "to" {
                            return self.err("expected `to` in FOR header");
                        }
                        let to = self.expr(0)?;
                        let (body, _) = self.block(&["ENDFOR"])?;
                        stmts.push(Stmt::For { var, from, to, body });
                        continue;
                    }
                    "IF" => {
                        self.idx += 1;
                        let cond = self.expr(0)?;
                        let (then_body, term) = self.block(&["ELSE", "FI"])?;
                        let else_body = if term == "ELSE" {
                            let (e, _) = self.block(&["FI"])?;
                            e
                        } else {
                            Vec::new()
                        };
                        stmts.push(Stmt::If { cond, then_body, else_body });
                        continue;
                    }
                    _ => {}
                }
                // Assignment: name := e, name[hi:lo] := e, or name[i] := e.
                let name = word.clone();
                self.idx += 1;
                if self.eat(&Tok::LBracket) {
                    let hi = self.expr(0)?;
                    let lo = if self.eat(&Tok::Colon) { Some(self.expr(0)?) } else { None };
                    self.expect(Tok::RBracket)?;
                    self.expect(Tok::Assign)?;
                    let value = self.expr(0)?;
                    let (hi2, lo2) = match lo {
                        Some(lo) => (hi, lo),
                        None => (hi.clone(), hi),
                    };
                    stmts.push(Stmt::AssignSlice { base: name, hi: hi2, lo: lo2, value });
                } else {
                    self.expect(Tok::Assign)?;
                    let value = self.expr(0)?;
                    stmts.push(Stmt::AssignVar { name, value });
                }
                continue;
            }
            return self.err(format!("expected statement, found {tok:?}"));
        }
    }
}

/// Parse a pseudocode program.
///
/// # Errors
///
/// Returns a [`PseudoParseError`] with the offending line number.
pub fn parse_program(src: &str) -> Result<Program, PseudoParseError> {
    let toks = lex(src)?;
    let mut p = P { toks, idx: 0 };
    let (stmts, _) = p.block(&[])?;
    p.skip_newlines();
    if p.peek().is_some() {
        return p.err("trailing input");
    }
    Ok(Program { stmts })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_pmaddwd_pseudocode() {
        let src = r#"
            FOR j := 0 to 3
                i := j*32
                dst[i+31:i] := SignExtend32(a[i+31:i+16]*b[i+31:i+16]) +
                               SignExtend32(a[i+15:i]*b[i+15:i])
            ENDFOR
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.stmts.len(), 1);
        let Stmt::For { var, body, .. } = &p.stmts[0] else { panic!() };
        assert_eq!(var, "j");
        assert_eq!(body.len(), 2);
        // The continuation line folded into one expression.
        let Stmt::AssignSlice { value, .. } = &body[1] else { panic!() };
        assert!(matches!(value, PExpr::Bin { op: PBinOp::Add, .. }));
    }

    #[test]
    fn parses_if_else() {
        let src = r#"
            IF ctrl[1:0] == 1
                dst[7:0] := 0
            ELSE
                dst[7:0] := a[7:0]
            FI
        "#;
        let p = parse_program(src).unwrap();
        let Stmt::If { cond, then_body, else_body } = &p.stmts[0] else { panic!() };
        assert!(matches!(cond, PExpr::Cmp { op: PCmpOp::Eq, .. }));
        assert_eq!(then_body.len(), 1);
        assert_eq!(else_body.len(), 1);
    }

    #[test]
    fn parses_if_without_else() {
        let src = "IF x > 0\n dst[7:0] := 1\nFI";
        let p = parse_program(src).unwrap();
        let Stmt::If { else_body, .. } = &p.stmts[0] else { panic!() };
        assert!(else_body.is_empty());
    }

    #[test]
    fn parses_single_bit_index() {
        let src = "dst[0] := a[5]";
        let p = parse_program(src).unwrap();
        let Stmt::AssignSlice { hi, lo, value, .. } = &p.stmts[0] else { panic!() };
        assert_eq!(hi, lo);
        assert!(matches!(value, PExpr::Bit { .. }));
    }

    #[test]
    fn precedence_mul_over_add() {
        let src = "x := 1 + 2*3";
        let p = parse_program(src).unwrap();
        let Stmt::AssignVar { value, .. } = &p.stmts[0] else { panic!() };
        let PExpr::Bin { op: PBinOp::Add, rhs, .. } = value else { panic!("{value:?}") };
        assert!(matches!(**rhs, PExpr::Bin { op: PBinOp::Mul, .. }));
    }

    #[test]
    fn word_operators() {
        let src = "x := a AND b OR c";
        let p = parse_program(src).unwrap();
        let Stmt::AssignVar { value, .. } = &p.stmts[0] else { panic!() };
        // AND binds tighter than OR.
        let PExpr::Bin { op: PBinOp::Or, lhs, .. } = value else { panic!("{value:?}") };
        assert!(matches!(**lhs, PExpr::Bin { op: PBinOp::And, .. }));
    }

    #[test]
    fn nested_loops() {
        let src = r#"
            FOR i := 0 to 1
                FOR j := 0 to 1
                    dst[0] := a[0]
                ENDFOR
            ENDFOR
        "#;
        let p = parse_program(src).unwrap();
        let Stmt::For { body, .. } = &p.stmts[0] else { panic!() };
        assert!(matches!(body[0], Stmt::For { .. }));
    }

    #[test]
    fn comments_and_blank_lines() {
        let src = "; header comment\n\nx := 1 // trailing\n";
        let p = parse_program(src).unwrap();
        assert_eq!(p.stmts.len(), 1);
    }

    #[test]
    fn unterminated_for_is_an_error() {
        let e = parse_program("FOR i := 0 to 3\n x := 1\n").unwrap_err();
        assert!(e.message.contains("ENDFOR"));
    }

    #[test]
    fn hex_literals() {
        let src = "x := 0xFF";
        let p = parse_program(src).unwrap();
        let Stmt::AssignVar { value, .. } = &p.stmts[0] else { panic!() };
        assert_eq!(*value, PExpr::Num(255));
    }

    #[test]
    fn error_reports_line() {
        let e = parse_program("x := 1\ny = 2\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn newline_ends_statement_without_operator() {
        let src = "x := 1\ny := 2";
        let p = parse_program(src).unwrap();
        assert_eq!(p.stmts.len(), 2);
    }
}
