//! Symbolic evaluation of pseudocode programs to bit-vector formulas.
//!
//! Reproduces the special cases §6.1 of the paper describes:
//!
//! * **Assignment** to a sub-bit-vector becomes a pure expression — the new
//!   register value is the concatenation of the unaffected sub-vectors and
//!   the updated one.
//! * **Function calls** (the guide's helpers such as `SignExtend32`,
//!   `Saturate16`, `ABS`, `MIN`) are inlined.
//! * **Loops** are fully unrolled (all trip counts are constants).
//! * **If-statements** are if-converted: the predicate becomes the
//!   condition of an `Ite` wrapped around the mutated sub-vector.
//!
//! Loop counters and slice bounds evaluate concretely; everything touching
//! input registers stays symbolic.

use crate::bv::{Bv, BvBinOp, BvError, FpBinOp};
use crate::lang::{PBinOp, PCmpOp, PExpr, Program, Stmt};
use std::collections::HashMap;
use vegen_ir::CmpPred;

/// Whether the pseudocode's overloaded arithmetic means integer or IEEE
/// float operations (the Intrinsics Guide disambiguates by the intrinsic's
/// element type; we pass it explicitly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpMode {
    /// `+`, `*`, `MIN`, comparisons, ... are integer (signed where it
    /// matters).
    Int,
    /// Arithmetic on 32/64-bit values is IEEE float.
    Float,
}

#[derive(Debug, Clone)]
enum Val {
    /// Concrete machine integer (loop counters, slice bounds).
    Int(i64),
    /// Symbolic bit-vector.
    Sym(Bv),
}

#[derive(Debug, Clone, Default)]
struct Env {
    scalars: HashMap<String, i64>,
    regs: HashMap<String, Bv>,
}

fn bv_const(width: u32, v: i64) -> Bv {
    Bv::Const { width, bits: (v as u64) & vegen_ir::constant::mask(width) }
}

struct Evaluator {
    fp: FpMode,
}

impl Evaluator {
    fn err<T>(&self, m: impl Into<String>) -> Result<T, BvError> {
        Err(BvError(m.into()))
    }

    fn eval_expr(&self, e: &PExpr, env: &Env) -> Result<Val, BvError> {
        match e {
            PExpr::Num(v) => Ok(Val::Int(*v)),
            PExpr::Var(name) => {
                if let Some(v) = env.scalars.get(name) {
                    Ok(Val::Int(*v))
                } else if let Some(b) = env.regs.get(name) {
                    Ok(Val::Sym(b.clone()))
                } else {
                    self.err(format!("unbound variable `{name}`"))
                }
            }
            PExpr::Slice { base, hi, lo } => {
                let hi = self.concrete(hi, env)?;
                let lo = self.concrete(lo, env)?;
                if hi < lo || lo < 0 {
                    return self.err(format!("bad slice bounds [{hi}:{lo}]"));
                }
                let reg = env
                    .regs
                    .get(base)
                    .ok_or_else(|| BvError(format!("unbound register `{base}`")))?;
                let w = reg.width();
                if hi as u32 >= w {
                    return self
                        .err(format!("slice [{hi}:{lo}] out of range for `{base}` ({w} bits)"));
                }
                Ok(Val::Sym(extract(reg.clone(), hi as u32, lo as u32)))
            }
            PExpr::Bit { base, idx } => {
                let i = self.concrete(idx, env)?;
                self.eval_expr(
                    &PExpr::Slice {
                        base: base.clone(),
                        hi: Box::new(PExpr::Num(i)),
                        lo: Box::new(PExpr::Num(i)),
                    },
                    env,
                )
            }
            PExpr::Neg(a) => match self.eval_expr(a, env)? {
                Val::Int(v) => Ok(Val::Int(-v)),
                Val::Sym(b) => {
                    if self.fp == FpMode::Float {
                        Ok(Val::Sym(Bv::FNeg(Box::new(b))))
                    } else {
                        let w = b.width();
                        Ok(Val::Sym(Bv::Bin {
                            op: BvBinOp::Sub,
                            lhs: Box::new(bv_const(w, 0)),
                            rhs: Box::new(b),
                        }))
                    }
                }
            },
            PExpr::Bin { op, lhs, rhs } => {
                let l = self.eval_expr(lhs, env)?;
                let r = self.eval_expr(rhs, env)?;
                self.apply_bin(*op, l, r)
            }
            PExpr::Cmp { op, lhs, rhs } => {
                let l = self.eval_expr(lhs, env)?;
                let r = self.eval_expr(rhs, env)?;
                self.apply_cmp(*op, l, r)
            }
            PExpr::Call { name, args } => self.apply_call(name, args, env),
        }
    }

    fn concrete(&self, e: &PExpr, env: &Env) -> Result<i64, BvError> {
        match self.eval_expr(e, env)? {
            Val::Int(v) => Ok(v),
            Val::Sym(b) => self.err(format!("expected a constant, got symbolic value {b}")),
        }
    }

    fn coerce_pair(&self, l: Val, r: Val) -> Result<(Bv, Bv), BvError> {
        match (l, r) {
            (Val::Sym(a), Val::Sym(b)) => {
                if a.width() != b.width() {
                    return self.err(format!(
                        "width mismatch: {} vs {} ({a} vs {b})",
                        a.width(),
                        b.width()
                    ));
                }
                Ok((a, b))
            }
            (Val::Sym(a), Val::Int(v)) => {
                let w = a.width();
                Ok((a, bv_const(w, v)))
            }
            (Val::Int(v), Val::Sym(b)) => {
                let w = b.width();
                Ok((bv_const(w, v), b))
            }
            (Val::Int(_), Val::Int(_)) => unreachable!("handled by caller"),
        }
    }

    fn apply_bin(&self, op: PBinOp, l: Val, r: Val) -> Result<Val, BvError> {
        if let (Val::Int(a), Val::Int(b)) = (&l, &r) {
            let v = match op {
                PBinOp::Add => a + b,
                PBinOp::Sub => a - b,
                PBinOp::Mul => a * b,
                PBinOp::And => a & b,
                PBinOp::Or => a | b,
                PBinOp::Xor => a ^ b,
                PBinOp::Shl => a << b,
                PBinOp::Shr => a >> b,
            };
            return Ok(Val::Int(v));
        }
        let (a, b) = self.coerce_pair(l, r)?;
        let w = a.width();
        let float = self.fp == FpMode::Float && (w == 32 || w == 64);
        let bv = if float {
            let fop = match op {
                PBinOp::Add => FpBinOp::Add,
                PBinOp::Sub => FpBinOp::Sub,
                PBinOp::Mul => FpBinOp::Mul,
                _ => return self.err(format!("float mode does not support {op:?}")),
            };
            Bv::FBin { op: fop, lhs: Box::new(a), rhs: Box::new(b) }
        } else {
            let iop = match op {
                PBinOp::Add => BvBinOp::Add,
                PBinOp::Sub => BvBinOp::Sub,
                PBinOp::Mul => BvBinOp::Mul,
                PBinOp::And => BvBinOp::And,
                PBinOp::Or => BvBinOp::Or,
                PBinOp::Xor => BvBinOp::Xor,
                PBinOp::Shl => BvBinOp::Shl,
                PBinOp::Shr => BvBinOp::AShr,
            };
            Bv::Bin { op: iop, lhs: Box::new(a), rhs: Box::new(b) }
        };
        Ok(Val::Sym(bv))
    }

    fn apply_cmp(&self, op: PCmpOp, l: Val, r: Val) -> Result<Val, BvError> {
        if let (Val::Int(a), Val::Int(b)) = (&l, &r) {
            let v = match op {
                PCmpOp::Eq => a == b,
                PCmpOp::Ne => a != b,
                PCmpOp::Lt => a < b,
                PCmpOp::Le => a <= b,
                PCmpOp::Gt => a > b,
                PCmpOp::Ge => a >= b,
            };
            return Ok(Val::Int(v as i64));
        }
        let (a, b) = self.coerce_pair(l, r)?;
        let w = a.width();
        let float = self.fp == FpMode::Float && (w == 32 || w == 64);
        let pred = match (op, float) {
            (PCmpOp::Eq, false) => CmpPred::Eq,
            (PCmpOp::Ne, false) => CmpPred::Ne,
            (PCmpOp::Lt, false) => CmpPred::Slt,
            (PCmpOp::Le, false) => CmpPred::Sle,
            (PCmpOp::Gt, false) => CmpPred::Sgt,
            (PCmpOp::Ge, false) => CmpPred::Sge,
            (PCmpOp::Eq, true) => CmpPred::Feq,
            (PCmpOp::Ne, true) => CmpPred::Fne,
            (PCmpOp::Lt, true) => CmpPred::Flt,
            (PCmpOp::Le, true) => CmpPred::Fle,
            (PCmpOp::Gt, true) => CmpPred::Fgt,
            (PCmpOp::Ge, true) => CmpPred::Fge,
        };
        Ok(Val::Sym(Bv::Cmp { pred, lhs: Box::new(a), rhs: Box::new(b) }))
    }

    fn sym(&self, v: Val) -> Result<Bv, BvError> {
        match v {
            Val::Sym(b) => Ok(b),
            Val::Int(_) => self.err("expected a symbolic value"),
        }
    }

    fn apply_call(&self, name: &str, args: &[PExpr], env: &Env) -> Result<Val, BvError> {
        let arity = |n: usize| -> Result<(), BvError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(BvError(format!("`{name}` takes {n} argument(s), got {}", args.len())))
            }
        };
        // Width-suffixed extensions.
        for (prefix, signed) in [("SignExtend", true), ("ZeroExtend", false)] {
            if let Some(suffix) = name.strip_prefix(prefix) {
                if let Ok(to) = suffix.parse::<u32>() {
                    arity(1)?;
                    let a = self.sym(self.eval_expr(&args[0], env)?)?;
                    if a.width() >= to {
                        return self.err(format!("{name} of width {} value", a.width()));
                    }
                    return Ok(Val::Sym(if signed {
                        Bv::SExt { width: to, arg: Box::new(a) }
                    } else {
                        Bv::ZExt { width: to, arg: Box::new(a) }
                    }));
                }
            }
        }
        if let Some(suffix) = name.strip_prefix("Truncate") {
            if let Ok(to) = suffix.parse::<u32>() {
                arity(1)?;
                let a = self.sym(self.eval_expr(&args[0], env)?)?;
                if a.width() <= to {
                    return self.err(format!("{name} of width {} value", a.width()));
                }
                return Ok(Val::Sym(extract(a, to - 1, 0)));
            }
        }
        // Saturations: clamp a (signed) wide value into the target range,
        // then truncate. `SaturateU*` clamps into the unsigned range — note
        // the input is still interpreted as signed, which is exactly the
        // psubus subtlety §6.1 describes.
        let saturate = |to: u32, lo: i64, hi: i64| -> Result<Val, BvError> {
            arity(1)?;
            let a = self.sym(self.eval_expr(&args[0], env)?)?;
            let w = a.width();
            if w <= to {
                return Err(BvError(format!("{name} of width {w} value")));
            }
            let narrow = extract(a.clone(), to - 1, 0);
            // The documentation's (deliberately non-strict) phrasing:
            // "if the value is greater than or equal to 0x8000, saturate".
            // Canonicalizing the generated patterns rewrites these to the
            // strict comparisons front ends emit — the rewrite §6 calls
            // "crucial for recognizing integer saturations", and exactly
            // what the Fig. 11 canonicalization ablation switches off.
            let hi_c = bv_const(w, hi + 1);
            let lo_c = bv_const(w, lo - 1);
            let too_big =
                Bv::Cmp { pred: CmpPred::Sge, lhs: Box::new(a.clone()), rhs: Box::new(hi_c) };
            let too_small = Bv::Cmp { pred: CmpPred::Sle, lhs: Box::new(a), rhs: Box::new(lo_c) };
            Ok(Val::Sym(Bv::Ite {
                cond: Box::new(too_big),
                on_true: Box::new(bv_const(to, hi)),
                on_false: Box::new(Bv::Ite {
                    cond: Box::new(too_small),
                    on_true: Box::new(bv_const(to, lo)),
                    on_false: Box::new(narrow),
                }),
            }))
        };
        match name {
            "Saturate8" => saturate(8, i8::MIN as i64, i8::MAX as i64),
            "Saturate16" => saturate(16, i16::MIN as i64, i16::MAX as i64),
            "Saturate32" => saturate(32, i32::MIN as i64, i32::MAX as i64),
            "SaturateU8" => saturate(8, 0, u8::MAX as i64),
            "SaturateU16" => saturate(16, 0, u16::MAX as i64),
            "ABS" => {
                arity(1)?;
                let a = self.sym(self.eval_expr(&args[0], env)?)?;
                let w = a.width();
                if self.fp == FpMode::Float {
                    // The guide's ABS on floats clears the sign bit; VeGen
                    // deliberately does NOT understand this trick (§7.1), and
                    // neither do we: it surfaces as a masking formula the
                    // lifter cannot express as an IR pattern.
                    return Ok(Val::Sym(Bv::Bin {
                        op: BvBinOp::And,
                        lhs: Box::new(a),
                        rhs: Box::new(Bv::Const {
                            width: w,
                            bits: vegen_ir::constant::mask(w - 1),
                        }),
                    }));
                }
                let neg = Bv::Bin {
                    op: BvBinOp::Sub,
                    lhs: Box::new(bv_const(w, 0)),
                    rhs: Box::new(a.clone()),
                };
                let is_neg = Bv::Cmp {
                    pred: CmpPred::Slt,
                    lhs: Box::new(a.clone()),
                    rhs: Box::new(bv_const(w, 0)),
                };
                Ok(Val::Sym(Bv::Ite {
                    cond: Box::new(is_neg),
                    on_true: Box::new(neg),
                    on_false: Box::new(a),
                }))
            }
            "MIN" | "MAX" | "MINU" | "MAXU" => {
                arity(2)?;
                let l = self.eval_expr(&args[0], env)?;
                let r = self.eval_expr(&args[1], env)?;
                let (a, b) = self.coerce_pair(l, r)?;
                let w = a.width();
                let float = self.fp == FpMode::Float && (w == 32 || w == 64);
                if float {
                    let op = if name == "MIN" { FpBinOp::Min } else { FpBinOp::Max };
                    return Ok(Val::Sym(Bv::FBin { op, lhs: Box::new(a), rhs: Box::new(b) }));
                }
                let pred = match name {
                    "MIN" => CmpPred::Slt,
                    "MAX" => CmpPred::Sgt,
                    "MINU" => CmpPred::Ult,
                    _ => CmpPred::Ugt,
                };
                let c = Bv::Cmp { pred, lhs: Box::new(a.clone()), rhs: Box::new(b.clone()) };
                Ok(Val::Sym(Bv::Ite {
                    cond: Box::new(c),
                    on_true: Box::new(a),
                    on_false: Box::new(b),
                }))
            }
            _ => self.err(format!("unknown helper `{name}`")),
        }
    }

    fn run_block(&self, stmts: &[Stmt], env: &mut Env) -> Result<(), BvError> {
        for s in stmts {
            self.run_stmt(s, env)?;
        }
        Ok(())
    }

    fn run_stmt(&self, s: &Stmt, env: &mut Env) -> Result<(), BvError> {
        match s {
            Stmt::AssignVar { name, value } => {
                match self.eval_expr(value, env)? {
                    Val::Int(v) => {
                        env.scalars.insert(name.clone(), v);
                        env.regs.remove(name);
                    }
                    Val::Sym(b) => {
                        env.regs.insert(name.clone(), b);
                        env.scalars.remove(name);
                    }
                }
                Ok(())
            }
            Stmt::AssignSlice { base, hi, lo, value } => {
                let hi = self.concrete(hi, env)? as u32;
                let lo_i = self.concrete(lo, env)?;
                if lo_i < 0 || hi < lo_i as u32 {
                    return self.err(format!("bad assignment bounds [{hi}:{lo_i}]"));
                }
                let lo = lo_i as u32;
                let new = match self.eval_expr(value, env)? {
                    Val::Int(v) => bv_const(hi - lo + 1, v),
                    Val::Sym(b) => {
                        let want = hi - lo + 1;
                        let got = b.width();
                        if got == want {
                            b
                        } else if got > want {
                            // The guide implicitly truncates on store.
                            extract(b, want - 1, 0)
                        } else {
                            return self
                                .err(format!("assigning {got} bits to [{hi}:{lo}] ({want} bits)"));
                        }
                    }
                };
                let old = env.regs.get(base).cloned().unwrap_or({
                    // First write creates the register, zero-filled up to hi.
                    Bv::Const { width: 0, bits: 0 }
                });
                let updated = write_slice(old, hi, lo, new);
                env.regs.insert(base.clone(), updated);
                Ok(())
            }
            Stmt::For { var, from, to, body } => {
                let from = self.concrete(from, env)?;
                let to = self.concrete(to, env)?;
                if to < from {
                    return Ok(()); // empty loop
                }
                if (to - from) > 4096 {
                    return self.err(format!("loop trip count {} too large", to - from + 1));
                }
                for i in from..=to {
                    env.scalars.insert(var.clone(), i);
                    self.run_block(body, env)?;
                }
                Ok(())
            }
            Stmt::If { cond, then_body, else_body } => {
                match self.eval_expr(cond, env)? {
                    Val::Int(c) => {
                        if c != 0 {
                            self.run_block(then_body, env)
                        } else {
                            self.run_block(else_body, env)
                        }
                    }
                    Val::Sym(c) => {
                        if c.width() != 1 {
                            // Treat "IF x" with wide x as x != 0.
                            return self.err("symbolic IF condition must be a comparison");
                        }
                        let mut then_env = env.clone();
                        let mut else_env = env.clone();
                        self.run_block(then_body, &mut then_env)?;
                        self.run_block(else_body, &mut else_env)?;
                        // Merge: registers touched by either branch become
                        // Ite(cond, then, else) — the paper's if-conversion.
                        let mut names: Vec<String> =
                            then_env.regs.keys().chain(else_env.regs.keys()).cloned().collect();
                        names.sort();
                        names.dedup();
                        for name in names {
                            let t = then_env.regs.get(&name);
                            let e = else_env.regs.get(&name);
                            match (t, e) {
                                (Some(t), Some(e)) if t == e => {
                                    env.regs.insert(name, t.clone());
                                }
                                (Some(t), Some(e)) => {
                                    if t.width() != e.width() {
                                        return self.err(format!(
                                            "`{name}` has different widths across IF branches"
                                        ));
                                    }
                                    env.regs.insert(
                                        name,
                                        Bv::Ite {
                                            cond: Box::new(c.clone()),
                                            on_true: Box::new(t.clone()),
                                            on_false: Box::new(e.clone()),
                                        },
                                    );
                                }
                                _ => {
                                    return self
                                        .err(format!("`{name}` assigned in only one IF branch"))
                                }
                            }
                        }
                        // Scalars must not diverge under a symbolic predicate.
                        if then_env.scalars != else_env.scalars {
                            return self
                                .err("scalar variable diverges under symbolic IF condition");
                        }
                        env.scalars = then_env.scalars;
                        Ok(())
                    }
                }
            }
        }
    }
}

fn extract(b: Bv, hi: u32, lo: u32) -> Bv {
    if lo == 0 && hi + 1 == b.width() {
        return b;
    }
    Bv::Extract { hi, lo, arg: Box::new(b) }
}

/// Pure partial update: `old` with bits `[hi:lo]` replaced by `new`,
/// extending with zeros if `hi` is past the current width.
fn write_slice(old: Bv, hi: u32, lo: u32, new: Bv) -> Bv {
    let old_w = old.width();
    let mut parts: Vec<Bv> = Vec::new();
    if lo > 0 {
        if old_w >= lo {
            parts.push(extract(old.clone(), lo - 1, 0));
        } else {
            if old_w > 0 {
                parts.push(old.clone());
            }
            parts.push(Bv::Const { width: lo - old_w, bits: 0 });
        }
    }
    parts.push(new);
    if old_w > hi + 1 {
        parts.push(extract(old, old_w - 1, hi + 1));
    }
    if parts.len() == 1 {
        parts.pop().unwrap()
    } else {
        Bv::Concat(parts)
    }
}

/// Symbolically evaluate `program` and return the final formula for `dst`.
///
/// `inputs` binds each input register name to its width; `dst` must end up
/// exactly `dst_bits` wide.
///
/// # Errors
///
/// Returns [`BvError`] on unsupported constructs, width violations, or if
/// the program never fully defines `dst`.
pub fn eval_program(
    program: &Program,
    inputs: &[(&str, u32)],
    dst_bits: u32,
    fp: FpMode,
) -> Result<Bv, BvError> {
    let mut env = Env::default();
    for (name, width) in inputs {
        env.regs
            .insert(name.to_string(), Bv::Input { name: name.to_string(), hi: width - 1, lo: 0 });
    }
    let ev = Evaluator { fp };
    ev.run_block(&program.stmts, &mut env)?;
    let dst = env.regs.get("dst").ok_or_else(|| BvError("program never assigned dst".into()))?;
    if dst.width() != dst_bits {
        return Err(BvError(format!("dst is {} bits, expected {dst_bits}", dst.width())));
    }
    Ok(dst.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bv::{eval_concrete, BigBits};
    use crate::lang::parse_program;
    use std::collections::HashMap;

    fn run_concrete(
        src: &str,
        inputs: &[(&str, u32)],
        dst_bits: u32,
        fp: FpMode,
        bindings: &[(&str, BigBits)],
    ) -> BigBits {
        let p = parse_program(src).unwrap();
        let formula = eval_program(&p, inputs, dst_bits, fp).unwrap();
        let env: HashMap<String, BigBits> =
            bindings.iter().map(|(n, v)| (n.to_string(), v.clone())).collect();
        eval_concrete(&formula, &env).unwrap()
    }

    #[test]
    fn simple_simd_add() {
        let src = r#"
            FOR j := 0 to 3
                i := j*32
                dst[i+31:i] := a[i+31:i] + b[i+31:i]
            ENDFOR
        "#;
        let a = BigBits::from_elems(32, &[1, 2, 3, 4]);
        let b = BigBits::from_elems(32, &[10, 20, 30, 40]);
        let out =
            run_concrete(src, &[("a", 128), ("b", 128)], 128, FpMode::Int, &[("a", a), ("b", b)]);
        assert_eq!(out.to_elems(32), vec![11, 22, 33, 44]);
    }

    #[test]
    fn pmaddwd_semantics() {
        let src = r#"
            FOR j := 0 to 1
                i := j*32
                dst[i+31:i] := SignExtend32(a[i+31:i+16]*b[i+31:i+16]) +
                               SignExtend32(a[i+15:i]*b[i+15:i])
            ENDFOR
        "#;
        let enc = |v: i64| (v as u64) & 0xffff;
        let a = BigBits::from_elems(16, &[enc(3), enc(-4), enc(5), enc(6)]);
        let b = BigBits::from_elems(16, &[enc(10), enc(100), enc(-1), enc(2)]);
        let out =
            run_concrete(src, &[("a", 64), ("b", 64)], 64, FpMode::Int, &[("a", a), ("b", b)]);
        let lanes = out.to_elems(32);
        assert_eq!(vegen_ir::constant::sext(lanes[0], 32), 3 * 10 + (-4) * 100);
        assert_eq!(vegen_ir::constant::sext(lanes[1], 32), -5 + 6 * 2);
    }

    #[test]
    fn note_pmaddwd_widens_inside_mul() {
        // Intel's doc multiplies 16-bit values then sign-extends the 32-bit
        // product: a[i+31:i+16]*b[...] is a 16x16 multiply whose result the
        // doc treats as 32-bit. Our language is strict: the multiply is
        // 16-bit, so SignExtend32 of it loses the high product bits. The DB
        // therefore writes the widening explicitly — this test pins the
        // strict behaviour so the DB convention stays necessary.
        let src = r#"
            dst[31:0] := SignExtend32(a[15:0]) * SignExtend32(b[15:0])
        "#;
        let enc = |v: i64| (v as u64) & 0xffff;
        let a = BigBits::from_elems(16, &[enc(-300)]);
        let b = BigBits::from_elems(16, &[enc(300)]);
        let out =
            run_concrete(src, &[("a", 16), ("b", 16)], 32, FpMode::Int, &[("a", a), ("b", b)]);
        assert_eq!(vegen_ir::constant::sext(out.to_u64(), 32), -90000);
    }

    #[test]
    fn float_mode_addsub() {
        let src = r#"
            dst[63:0] := a[63:0] - b[63:0]
            dst[127:64] := a[127:64] + b[127:64]
        "#;
        let a = BigBits::from_elems(64, &[1.5f64.to_bits(), 2.0f64.to_bits()]);
        let b = BigBits::from_elems(64, &[0.25f64.to_bits(), 0.5f64.to_bits()]);
        let out =
            run_concrete(src, &[("a", 128), ("b", 128)], 128, FpMode::Float, &[("a", a), ("b", b)]);
        let lanes = out.to_elems(64);
        assert_eq!(f64::from_bits(lanes[0]), 1.25);
        assert_eq!(f64::from_bits(lanes[1]), 2.5);
    }

    #[test]
    fn saturate16_clamps() {
        let src = r#"
            dst[15:0] := Saturate16(SignExtend32(a[15:0]) + SignExtend32(b[15:0]))
        "#;
        let run = |x: i64, y: i64| -> i64 {
            let a = BigBits::from_u64(16, (x as u64) & 0xffff);
            let b = BigBits::from_u64(16, (y as u64) & 0xffff);
            let out =
                run_concrete(src, &[("a", 16), ("b", 16)], 16, FpMode::Int, &[("a", a), ("b", b)]);
            vegen_ir::constant::sext(out.to_u64(), 16)
        };
        assert_eq!(run(30000, 10000), 32767);
        assert_eq!(run(-30000, -10000), -32768);
        assert_eq!(run(100, 200), 300);
    }

    #[test]
    fn saturate_unsigned_is_signed_clamp() {
        // The psubus trap from §6.1: unsigned subtract saturates as signed —
        // a negative difference clamps to 0.
        let src = r#"
            dst[7:0] := SaturateU8(ZeroExtend16(a[7:0]) - ZeroExtend16(b[7:0]))
        "#;
        let run = |x: u64, y: u64| -> u64 {
            let a = BigBits::from_u64(8, x);
            let b = BigBits::from_u64(8, y);
            run_concrete(src, &[("a", 8), ("b", 8)], 8, FpMode::Int, &[("a", a), ("b", b)]).to_u64()
        };
        assert_eq!(run(10, 3), 7);
        assert_eq!(run(3, 10), 0, "negative difference saturates to zero");
        assert_eq!(run(255, 0), 255);
    }

    #[test]
    fn symbolic_if_becomes_ite() {
        let src = r#"
            IF a[0] == 1
                dst[7:0] := b[7:0]
            ELSE
                dst[7:0] := b[15:8]
            FI
        "#;
        let run = |abit: u64| -> u64 {
            let a = BigBits::from_u64(8, abit);
            let b = BigBits::from_u64(16, 0xbbaa);
            run_concrete(src, &[("a", 8), ("b", 16)], 8, FpMode::Int, &[("a", a), ("b", b)])
                .to_u64()
        };
        assert_eq!(run(1), 0xaa);
        assert_eq!(run(0), 0xbb);
    }

    #[test]
    fn partial_update_keeps_other_bits() {
        let src = r#"
            dst[15:0] := a[15:0]
            dst[7:0] := 0
        "#;
        let a = BigBits::from_u64(16, 0xabcd);
        let out = run_concrete(src, &[("a", 16)], 16, FpMode::Int, &[("a", a)]);
        assert_eq!(out.to_u64(), 0xab00);
    }

    #[test]
    fn min_max_abs_helpers() {
        let src = r#"
            dst[7:0] := MIN(a[7:0], b[7:0])
            dst[15:8] := MAX(a[7:0], b[7:0])
            dst[23:16] := ABS(a[7:0])
        "#;
        let enc = |v: i64| (v as u64) & 0xff;
        let a = BigBits::from_u64(8, enc(-5));
        let b = BigBits::from_u64(8, enc(3));
        let out = run_concrete(src, &[("a", 8), ("b", 8)], 24, FpMode::Int, &[("a", a), ("b", b)]);
        let lanes = out.to_elems(8);
        assert_eq!(vegen_ir::constant::sext(lanes[0], 8), -5);
        assert_eq!(vegen_ir::constant::sext(lanes[1], 8), 3);
        assert_eq!(lanes[2], 5);
    }

    #[test]
    fn wrong_dst_width_is_error() {
        let p = parse_program("dst[7:0] := a[7:0]").unwrap();
        assert!(eval_program(&p, &[("a", 8)], 16, FpMode::Int).is_err());
    }

    #[test]
    fn scalar_divergence_under_symbolic_if_rejected() {
        let src = r#"
            IF a[0] == 1
                k := 1
            ELSE
                k := 2
            FI
            dst[7:0] := a[7:0]
        "#;
        let p = parse_program(src).unwrap();
        assert!(eval_program(&p, &[("a", 8)], 8, FpMode::Int).is_err());
    }

    #[test]
    fn unsigned_min_helper() {
        let src = "dst[7:0] := MINU(a[7:0], b[7:0])";
        let a = BigBits::from_u64(8, 0xff); // 255 unsigned
        let b = BigBits::from_u64(8, 1);
        let out = run_concrete(src, &[("a", 8), ("b", 8)], 8, FpMode::Int, &[("a", a), ("b", b)]);
        assert_eq!(out.to_u64(), 1);
    }
}
