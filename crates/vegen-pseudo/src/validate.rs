//! Random-testing validation of lifted descriptions against pseudocode
//! semantics.
//!
//! §6.1: "We validated the SMT formulas by random testing. Testing revealed
//! incorrect semantics resulting from ambiguous or simply incorrect
//! documentation." Here the same harness cross-checks two *independent*
//! evaluators — the concrete bit-vector evaluator running the pseudocode
//! formula, and the VIDL evaluator running the lifted description — so a
//! lifting bug (or an ambiguous helper semantics) shows up as a divergence.

use crate::bv::{eval_concrete, BigBits, Bv};
use std::collections::HashMap;
use vegen_ir::{Constant, Type};
use vegen_vidl::{eval_inst, InstSemantics};

/// Deterministic xorshift for reproducible test vectors.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0 = self.0.wrapping_mul(0x2545f4914f6cdd1d).wrapping_add(0x9e3779b9);
        self.0
    }
}

fn constant_from_bits(ty: Type, bits: u64) -> Constant {
    match ty {
        Type::F32 => Constant::f32(f32::from_bits(bits as u32)),
        Type::F64 => Constant::f64(f64::from_bits(bits)),
        _ => Constant::int(ty, vegen_ir::constant::sext(bits, ty.bits())),
    }
}

fn bits_from_constant(c: Constant) -> u64 {
    c.raw_bits()
}

/// Draw an element value biased toward interesting cases (saturation
/// boundaries, sign flips, small floats).
fn draw_elem(rng: &mut Rng, ty: Type) -> u64 {
    let r = rng.next();
    match ty {
        Type::F32 => {
            let v = ((r % 4096) as f32 - 2048.0) / 32.0;
            v.to_bits() as u64
        }
        Type::F64 => {
            let v = ((r % 4096) as f64 - 2048.0) / 32.0;
            v.to_bits()
        }
        _ => {
            let bits = ty.bits();
            match r % 8 {
                // Extremes exercise saturation and overflow paths.
                0 => vegen_ir::constant::mask(bits), // all ones (-1)
                1 => vegen_ir::constant::mask(bits) >> 1, // max positive
                2 => 1u64 << (bits - 1),             // min negative
                3 => 0,
                _ => r & vegen_ir::constant::mask(bits),
            }
        }
    }
}

/// Run `iters` random trials comparing the pseudocode formula against the
/// lifted description.
///
/// # Errors
///
/// Returns a human-readable description of the first divergence (including
/// the failing input vectors).
pub fn validate_description(
    formula: &Bv,
    inputs: &[(&str, u32)],
    desc: &InstSemantics,
    iters: usize,
) -> Result<(), String> {
    // A malformed description is a typed error, not a panic: the offline
    // auditor feeds deliberately corrupted descriptions through here and
    // must get a report back.
    if desc.inputs.len() != inputs.len() {
        return Err(format!(
            "description {} has {} inputs but the spec declares {}",
            desc.name,
            desc.inputs.len(),
            inputs.len()
        ));
    }
    let mut rng = Rng(0x5eed_0001);
    for trial in 0..iters {
        // Draw concrete input registers.
        let mut reg_env: HashMap<String, BigBits> = HashMap::new();
        let mut vidl_inputs: Vec<Vec<Constant>> = Vec::new();
        for (idx, (name, total)) in inputs.iter().enumerate() {
            let shape = desc.inputs[idx];
            if shape.bits() != *total {
                return Err(format!(
                    "shape mismatch for input {name}: description has {} bits but the spec \
                     declares {total}",
                    shape.bits()
                ));
            }
            let elems: Vec<u64> =
                (0..shape.lanes).map(|_| draw_elem(&mut rng, shape.elem)).collect();
            reg_env.insert(name.to_string(), BigBits::from_elems(shape.elem.bits(), &elems));
            vidl_inputs.push(elems.iter().map(|&b| constant_from_bits(shape.elem, b)).collect());
        }
        // Pseudocode side.
        let expected = eval_concrete(formula, &reg_env)
            .map_err(|e| format!("trial {trial}: formula evaluation failed: {e}"))?;
        // VIDL side.
        let got = eval_inst(desc, &vidl_inputs)
            .map_err(|e| format!("trial {trial}: VIDL evaluation failed: {e}"))?;
        let got_bits = BigBits::from_elems(
            desc.out_elem.bits(),
            &got.iter().map(|c| bits_from_constant(*c)).collect::<Vec<_>>(),
        );
        if expected != got_bits {
            return Err(format!(
                "trial {trial}: divergence on {}\n  inputs: {:?}\n  pseudocode: {:?}\n  VIDL: {:?}",
                desc.name,
                vidl_inputs,
                expected.to_elems(desc.out_elem.bits()),
                got_bits.to_elems(desc.out_elem.bits()),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_program, FpMode};
    use crate::lang::parse_program;
    use crate::lift::lift_to_vidl;
    use crate::simplify::simplify;

    fn lifted(
        name: &str,
        inputs: &[(&str, u32)],
        dst_bits: u32,
        out_elem: u32,
        fp: FpMode,
        src: &str,
    ) -> (Bv, InstSemantics) {
        let p = parse_program(src).unwrap();
        let f = eval_program(&p, inputs, dst_bits, fp).unwrap();
        let f = simplify(&f);
        let d = lift_to_vidl(name, inputs, out_elem, fp, &f).unwrap();
        (f, d)
    }

    #[test]
    fn pmaddwd_validates() {
        let inputs = [("a", 64), ("b", 64)];
        let (f, d) = lifted(
            "pmaddwd",
            &inputs,
            64,
            32,
            FpMode::Int,
            "FOR j := 0 to 1\n i := j*32\n dst[i+31:i] := SignExtend32(a[i+31:i+16])*SignExtend32(b[i+31:i+16]) + SignExtend32(a[i+15:i])*SignExtend32(b[i+15:i])\nENDFOR",
        );
        validate_description(&f, &inputs, &d, 200).unwrap();
    }

    #[test]
    fn saturating_sub_validates() {
        // The psubus family — the paper's §6.1 motivating example for
        // random-testing documentation semantics.
        let inputs = [("a", 32), ("b", 32)];
        let (f, d) = lifted(
            "psubusb_4",
            &inputs,
            32,
            8,
            FpMode::Int,
            "FOR j := 0 to 3\n i := j*8\n dst[i+7:i] := SaturateU8(ZeroExtend16(a[i+7:i]) - ZeroExtend16(b[i+7:i]))\nENDFOR",
        );
        validate_description(&f, &inputs, &d, 400).unwrap();
    }

    #[test]
    fn float_addsub_validates() {
        let inputs = [("a", 128), ("b", 128)];
        let (f, d) = lifted(
            "addsubpd",
            &inputs,
            128,
            64,
            FpMode::Float,
            "dst[63:0] := a[63:0] - b[63:0]\ndst[127:64] := a[127:64] + b[127:64]",
        );
        validate_description(&f, &inputs, &d, 200).unwrap();
    }

    #[test]
    fn detects_injected_divergence() {
        let inputs = [("a", 64), ("b", 64)];
        let (f, mut d) = lifted(
            "paddd2",
            &inputs,
            64,
            32,
            FpMode::Int,
            "FOR j := 0 to 1\n i := j*32\n dst[i+31:i] := a[i+31:i] + b[i+31:i]\nENDFOR",
        );
        // Sabotage the description: swap lane 1's operands to a[0].
        d.lanes[1].args[0].lane = 0;
        let r = validate_description(&f, &inputs, &d, 200);
        assert!(r.is_err(), "validation must catch the sabotaged binding");
    }

    #[test]
    fn malformed_shapes_are_typed_errors_not_panics() {
        let inputs = [("a", 64), ("b", 64)];
        let (f, d) = lifted(
            "paddd2",
            &inputs,
            64,
            32,
            FpMode::Int,
            "FOR j := 0 to 1\n i := j*32\n dst[i+31:i] := a[i+31:i] + b[i+31:i]\nENDFOR",
        );
        // Fewer description inputs than the spec declares.
        let mut short = d.clone();
        short.inputs.pop();
        let e = validate_description(&f, &inputs, &short, 4).unwrap_err();
        assert!(e.contains("2"), "{e}");
        // Width disagreement between description shape and spec.
        let mut wide = d;
        wide.inputs[0].lanes = 4;
        let e = validate_description(&f, &inputs, &wide, 4).unwrap_err();
        assert!(e.contains("shape mismatch"), "{e}");
    }
}
