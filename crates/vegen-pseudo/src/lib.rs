#![warn(missing_docs)]

//! The offline phase of VeGen: from vendor pseudocode to VIDL.
//!
//! The paper (§6.1) translates Intel's Intrinsics Guide pseudocode into SMT
//! bit-vector formulas with a symbolic evaluator built on z3, simplifies the
//! formulas with z3's simplifier, lifts them to VIDL, and validates the
//! result by random testing. Neither the Intrinsics Guide XML nor z3 is
//! available here, so this crate rebuilds that pipeline from scratch:
//!
//! * [`lang`] — a parser for the Intel-style pseudocode language
//!   (`FOR`/`ENDFOR`, `IF`/`ELSE`/`FI`, bit-slice assignment,
//!   `SignExtend32`, `Saturate16`, ...), faithful to the constructs §6.1
//!   enumerates.
//! * [`bv`] — symbolic bit-vector expressions with concrete big-bit-vector
//!   evaluation (the z3 AST stand-in).
//! * [`eval`] — the symbolic evaluator: loop unrolling, function inlining,
//!   if-conversion of predicated sub-vector assignment, and partial
//!   bit-vector update via extract/concat — exactly the special cases the
//!   paper lists.
//! * [`simplify`] — a rewriting simplifier standing in for z3's `simplify`,
//!   which reduces the naive extract/concat/ite nests into per-lane
//!   expressions that "reflect the high-level intent of the original
//!   documentation".
//! * [`lift`] — slicing the output register into lanes and abstracting each
//!   lane's formula into a VIDL operation plus lane bindings.
//! * [`validate`] — random testing of pseudocode semantics against the
//!   lifted VIDL description (how the paper caught the `psubus` signedness
//!   documentation bug).
//!
//! # Example
//!
//! ```
//! use vegen_pseudo::translate;
//!
//! let desc = translate(
//!     "pmaddwd",
//!     &[("a", 64), ("b", 64)],
//!     64,
//!     32,
//!     vegen_pseudo::FpMode::Int,
//!     r#"
//!     FOR j := 0 to 1
//!         i := j*32
//!         dst[i+31:i] := SignExtend32(a[i+31:i+16]*b[i+31:i+16]) +
//!                        SignExtend32(a[i+15:i]*b[i+15:i])
//!     ENDFOR
//!     "#,
//! )
//! .unwrap();
//! assert_eq!(desc.out_lanes(), 2);
//! assert!(!desc.is_simd());
//! ```

pub mod bv;
pub mod eval;
pub mod lang;
pub mod lift;
pub mod simplify;
pub mod validate;

pub use bv::{BigBits, Bv, BvError};
pub use eval::{eval_program, FpMode};
pub use lang::{parse_program, Program};
pub use lift::{lift_to_vidl, LiftError};
pub use validate::validate_description;

use vegen_vidl::InstSemantics;

/// Error from the end-to-end [`translate`] pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum TranslateError {
    /// Pseudocode failed to parse.
    Parse(String),
    /// Symbolic evaluation failed (unsupported construct, width error).
    Eval(String),
    /// The simplified formula could not be lifted to VIDL.
    Lift(String),
    /// Random-testing validation found a divergence.
    Validate(String),
}

impl std::fmt::Display for TranslateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranslateError::Parse(m) => write!(f, "pseudocode parse error: {m}"),
            TranslateError::Eval(m) => write!(f, "symbolic evaluation error: {m}"),
            TranslateError::Lift(m) => write!(f, "lifting error: {m}"),
            TranslateError::Validate(m) => write!(f, "validation error: {m}"),
        }
    }
}

impl std::error::Error for TranslateError {}

/// Run the whole offline pipeline for one instruction: parse the pseudocode,
/// symbolically evaluate it to a bit-vector formula, simplify, lift to VIDL,
/// check, and validate by random testing.
///
/// * `inputs` — `(name, total bit width)` per input register, in operand
///   order.
/// * `dst_bits` — output register width in bits.
/// * `out_elem_bits` — output element width in bits.
/// * `fp` — whether arithmetic in the pseudocode is integer or IEEE float
///   (Intel's language overloads `+`/`*`; the guide disambiguates by the
///   intrinsic's type, which we pass explicitly).
///
/// # Errors
///
/// Returns the stage-specific [`TranslateError`] on failure.
pub fn translate(
    name: &str,
    inputs: &[(&str, u32)],
    dst_bits: u32,
    out_elem_bits: u32,
    fp: FpMode,
    pseudocode: &str,
) -> Result<InstSemantics, TranslateError> {
    let program = parse_program(pseudocode).map_err(|e| TranslateError::Parse(e.to_string()))?;
    let formula = eval_program(&program, inputs, dst_bits, fp)
        .map_err(|e| TranslateError::Eval(e.to_string()))?;
    let formula = simplify::simplify(&formula);
    let desc = lift_to_vidl(name, inputs, out_elem_bits, fp, &formula)
        .map_err(|e| TranslateError::Lift(e.to_string()))?;
    vegen_vidl::check_inst(&desc).map_err(|e| TranslateError::Lift(e.to_string()))?;
    validate_description(&formula, inputs, &desc, 64).map_err(TranslateError::Validate)?;
    Ok(desc)
}
