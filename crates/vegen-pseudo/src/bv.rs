//! Symbolic bit-vector expressions (the z3 AST stand-in) and concrete
//! big-bit-vector evaluation.
//!
//! A [`Bv`] is a formula over named input registers. Registers can be wide
//! (up to 512 bits: only `Extract`/`Concat` operate at full register
//! width), while arithmetic is restricted to widths of at most 64 bits —
//! matching Intel's documentation language, which always narrows to an
//! element, widens it ("to avoid implicit overflow"), computes, and writes
//! an element-sized result back.

use std::fmt;
use vegen_ir::constant::{mask, sext};
use vegen_ir::CmpPred;

/// Integer binary operators available in formulas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant and field names are the documentation
pub enum BvBinOp {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl,
    LShr,
    AShr,
}

impl BvBinOp {
    /// Mnemonic for display.
    pub fn name(self) -> &'static str {
        match self {
            BvBinOp::Add => "bvadd",
            BvBinOp::Sub => "bvsub",
            BvBinOp::Mul => "bvmul",
            BvBinOp::And => "bvand",
            BvBinOp::Or => "bvor",
            BvBinOp::Xor => "bvxor",
            BvBinOp::Shl => "bvshl",
            BvBinOp::LShr => "bvlshr",
            BvBinOp::AShr => "bvashr",
        }
    }
}

/// Floating-point binary operators (width 32 or 64).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant and field names are the documentation
pub enum FpBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
}

impl FpBinOp {
    /// Mnemonic for display.
    pub fn name(self) -> &'static str {
        match self {
            FpBinOp::Add => "fpadd",
            FpBinOp::Sub => "fpsub",
            FpBinOp::Mul => "fpmul",
            FpBinOp::Div => "fpdiv",
            FpBinOp::Min => "fpmin",
            FpBinOp::Max => "fpmax",
        }
    }
}

/// A symbolic bit-vector expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant and field names are the documentation
pub enum Bv {
    /// Constant of the given width (`width <= 64`).
    Const { width: u32, bits: u64 },
    /// A slice `name[hi:lo]` (inclusive) of an input register.
    Input { name: String, hi: u32, lo: u32 },
    /// Integer binary op; both sides share the result width.
    Bin { op: BvBinOp, lhs: Box<Bv>, rhs: Box<Bv> },
    /// Floating-point binary op (width 32 or 64).
    FBin { op: FpBinOp, lhs: Box<Bv>, rhs: Box<Bv> },
    /// Floating-point negation.
    FNeg(Box<Bv>),
    /// Sign-extension to `width`.
    SExt { width: u32, arg: Box<Bv> },
    /// Zero-extension to `width`.
    ZExt { width: u32, arg: Box<Bv> },
    /// Bit slice `[hi:lo]` (inclusive) of a sub-expression.
    Extract { hi: u32, lo: u32, arg: Box<Bv> },
    /// Concatenation, least-significant part first.
    Concat(Vec<Bv>),
    /// If-then-else; `cond` has width 1.
    Ite { cond: Box<Bv>, on_true: Box<Bv>, on_false: Box<Bv> },
    /// Comparison producing a width-1 value.
    Cmp { pred: CmpPred, lhs: Box<Bv>, rhs: Box<Bv> },
}

impl Bv {
    /// Width of the expression in bits.
    pub fn width(&self) -> u32 {
        match self {
            Bv::Const { width, .. } => *width,
            Bv::Input { hi, lo, .. } => hi - lo + 1,
            Bv::Bin { lhs, .. } => lhs.width(),
            Bv::FBin { lhs, .. } => lhs.width(),
            Bv::FNeg(a) => a.width(),
            Bv::SExt { width, .. } | Bv::ZExt { width, .. } => *width,
            Bv::Extract { hi, lo, .. } => hi - lo + 1,
            Bv::Concat(parts) => parts.iter().map(|p| p.width()).sum(),
            Bv::Ite { on_true, .. } => on_true.width(),
            Bv::Cmp { .. } => 1,
        }
    }

    /// Number of nodes (used to bound simplifier work in tests).
    pub fn size(&self) -> usize {
        1 + match self {
            Bv::Const { .. } | Bv::Input { .. } => 0,
            Bv::Bin { lhs, rhs, .. } | Bv::FBin { lhs, rhs, .. } | Bv::Cmp { lhs, rhs, .. } => {
                lhs.size() + rhs.size()
            }
            Bv::FNeg(a) => a.size(),
            Bv::SExt { arg, .. } | Bv::ZExt { arg, .. } | Bv::Extract { arg, .. } => arg.size(),
            Bv::Concat(parts) => parts.iter().map(|p| p.size()).sum(),
            Bv::Ite { cond, on_true, on_false } => cond.size() + on_true.size() + on_false.size(),
        }
    }
}

impl fmt::Display for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bv::Const { width, bits } => write!(f, "{bits}#{width}"),
            Bv::Input { name, hi, lo } => write!(f, "{name}[{hi}:{lo}]"),
            Bv::Bin { op, lhs, rhs } => write!(f, "({} {lhs} {rhs})", op.name()),
            Bv::FBin { op, lhs, rhs } => write!(f, "({} {lhs} {rhs})", op.name()),
            Bv::FNeg(a) => write!(f, "(fpneg {a})"),
            Bv::SExt { width, arg } => write!(f, "(sext{width} {arg})"),
            Bv::ZExt { width, arg } => write!(f, "(zext{width} {arg})"),
            Bv::Extract { hi, lo, arg } => write!(f, "(extract[{hi}:{lo}] {arg})"),
            Bv::Concat(parts) => {
                write!(f, "(concat")?;
                for p in parts {
                    write!(f, " {p}")?;
                }
                write!(f, ")")
            }
            Bv::Ite { cond, on_true, on_false } => {
                write!(f, "(ite {cond} {on_true} {on_false})")
            }
            Bv::Cmp { pred, lhs, rhs } => write!(f, "(bv{} {lhs} {rhs})", pred.name()),
        }
    }
}

/// Evaluation / construction errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BvError(pub String);

impl fmt::Display for BvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bit-vector error: {}", self.0)
    }
}

impl std::error::Error for BvError {}

/// A concrete bit-vector of arbitrary width (LSB-first 64-bit words).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BigBits {
    width: u32,
    words: Vec<u64>,
}

impl BigBits {
    /// A zero value of the given width.
    pub fn zero(width: u32) -> BigBits {
        BigBits { width, words: vec![0; width.div_ceil(64).max(1) as usize] }
    }

    /// Build from a `u64` (width at most 64); excess bits are masked off.
    pub fn from_u64(width: u32, bits: u64) -> BigBits {
        assert!(width <= 64 && width > 0);
        BigBits { width, words: vec![bits & mask(width)] }
    }

    /// Width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The value as a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if the width exceeds 64.
    pub fn to_u64(&self) -> u64 {
        assert!(self.width <= 64, "to_u64 on width {}", self.width);
        self.words[0] & mask(self.width)
    }

    /// Read a single bit.
    pub fn bit(&self, i: u32) -> bool {
        assert!(i < self.width);
        self.words[(i / 64) as usize] >> (i % 64) & 1 != 0
    }

    /// Set a single bit (used by builders and tests).
    pub fn set_bit(&mut self, i: u32, v: bool) {
        assert!(i < self.width);
        let w = (i / 64) as usize;
        if v {
            self.words[w] |= 1 << (i % 64);
        } else {
            self.words[w] &= !(1 << (i % 64));
        }
    }

    /// Extract bits `[hi:lo]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn extract(&self, hi: u32, lo: u32) -> BigBits {
        assert!(hi >= lo && hi < self.width, "extract [{hi}:{lo}] of width {}", self.width);
        let w = hi - lo + 1;
        let mut out = BigBits::zero(w);
        for i in 0..w {
            out.set_bit(i, self.bit(lo + i));
        }
        out
    }

    /// Concatenate with `high` above `self` (self stays least significant).
    pub fn concat_above(&self, high: &BigBits) -> BigBits {
        let w = self.width + high.width;
        let mut out = BigBits::zero(w);
        for i in 0..self.width {
            out.set_bit(i, self.bit(i));
        }
        for i in 0..high.width {
            out.set_bit(self.width + i, high.bit(i));
        }
        out
    }

    /// Build a register image from element values (element 0 least
    /// significant), each `elem_bits` wide.
    pub fn from_elems(elem_bits: u32, elems: &[u64]) -> BigBits {
        let mut out = BigBits::zero(elem_bits * elems.len() as u32);
        for (i, &e) in elems.iter().enumerate() {
            for b in 0..elem_bits {
                out.set_bit(i as u32 * elem_bits + b, (e >> b) & 1 != 0);
            }
        }
        out
    }

    /// Split into `elem_bits`-wide element values, least significant first.
    ///
    /// # Panics
    ///
    /// Panics if the width is not a multiple of `elem_bits` or an element
    /// exceeds 64 bits.
    pub fn to_elems(&self, elem_bits: u32) -> Vec<u64> {
        assert!(elem_bits <= 64 && self.width.is_multiple_of(elem_bits));
        (0..self.width / elem_bits)
            .map(|i| self.extract((i + 1) * elem_bits - 1, i * elem_bits).to_u64())
            .collect()
    }
}

/// Evaluate a formula concretely with inputs bound by name.
///
/// # Errors
///
/// Returns [`BvError`] if a referenced input is missing, widths are
/// inconsistent, or arithmetic is attempted at width above 64.
pub fn eval_concrete(
    e: &Bv,
    env: &std::collections::HashMap<String, BigBits>,
) -> Result<BigBits, BvError> {
    match e {
        Bv::Const { width, bits } => Ok(BigBits::from_u64(*width, *bits)),
        Bv::Input { name, hi, lo } => {
            let reg = env.get(name).ok_or_else(|| BvError(format!("unbound input `{name}`")))?;
            if *hi >= reg.width() {
                return Err(BvError(format!(
                    "slice {name}[{hi}:{lo}] out of range for width {}",
                    reg.width()
                )));
            }
            Ok(reg.extract(*hi, *lo))
        }
        Bv::Bin { op, lhs, rhs } => {
            let a = eval_concrete(lhs, env)?;
            let b = eval_concrete(rhs, env)?;
            let w = a.width();
            if b.width() != w {
                return Err(BvError(format!("width mismatch {w} vs {}", b.width())));
            }
            if w > 64 {
                return Err(BvError(format!("arithmetic at width {w} > 64")));
            }
            let x = a.to_u64();
            let y = b.to_u64();
            let sx = sext(x, w);
            let r = match op {
                BvBinOp::Add => x.wrapping_add(y),
                BvBinOp::Sub => x.wrapping_sub(y),
                BvBinOp::Mul => x.wrapping_mul(y),
                BvBinOp::And => x & y,
                BvBinOp::Or => x | y,
                BvBinOp::Xor => x ^ y,
                BvBinOp::Shl => {
                    if y >= w as u64 {
                        0
                    } else {
                        x << y
                    }
                }
                BvBinOp::LShr => {
                    if y >= w as u64 {
                        0
                    } else {
                        x >> y
                    }
                }
                BvBinOp::AShr => {
                    if y >= w as u64 {
                        if sx < 0 {
                            u64::MAX
                        } else {
                            0
                        }
                    } else {
                        (sx >> y) as u64
                    }
                }
            };
            Ok(BigBits::from_u64(w, r))
        }
        Bv::FBin { op, lhs, rhs } => {
            let a = eval_concrete(lhs, env)?;
            let b = eval_concrete(rhs, env)?;
            let w = a.width();
            if w != b.width() || (w != 32 && w != 64) {
                return Err(BvError(format!("fp op at widths {w}/{}", b.width())));
            }
            let compute = |x: f64, y: f64| -> f64 {
                match op {
                    FpBinOp::Add => x + y,
                    FpBinOp::Sub => x - y,
                    FpBinOp::Mul => x * y,
                    FpBinOp::Div => x / y,
                    // IEEE-style: min/max as the comparison-select form used
                    // by the x86 MINPD/MAXPD family (second operand returned
                    // on ties/NaN is not modelled; inputs in tests avoid NaN).
                    FpBinOp::Min => {
                        if x < y {
                            x
                        } else {
                            y
                        }
                    }
                    FpBinOp::Max => {
                        if x > y {
                            x
                        } else {
                            y
                        }
                    }
                }
            };
            Ok(if w == 32 {
                let r = compute(
                    f32::from_bits(a.to_u64() as u32) as f64,
                    f32::from_bits(b.to_u64() as u32) as f64,
                ) as f32;
                BigBits::from_u64(32, r.to_bits() as u64)
            } else {
                let r = compute(f64::from_bits(a.to_u64()), f64::from_bits(b.to_u64()));
                BigBits::from_u64(64, r.to_bits())
            })
        }
        Bv::FNeg(a) => {
            let v = eval_concrete(a, env)?;
            Ok(match v.width() {
                32 => BigBits::from_u64(32, (-f32::from_bits(v.to_u64() as u32)).to_bits() as u64),
                64 => BigBits::from_u64(64, (-f64::from_bits(v.to_u64())).to_bits()),
                w => return Err(BvError(format!("fpneg at width {w}"))),
            })
        }
        Bv::SExt { width, arg } => {
            let v = eval_concrete(arg, env)?;
            if v.width() > 64 || *width > 64 || *width <= v.width() {
                return Err(BvError("bad sext".into()));
            }
            Ok(BigBits::from_u64(*width, sext(v.to_u64(), v.width()) as u64))
        }
        Bv::ZExt { width, arg } => {
            let v = eval_concrete(arg, env)?;
            if v.width() > 64 || *width > 64 || *width <= v.width() {
                return Err(BvError("bad zext".into()));
            }
            Ok(BigBits::from_u64(*width, v.to_u64()))
        }
        Bv::Extract { hi, lo, arg } => {
            let v = eval_concrete(arg, env)?;
            if *hi >= v.width() || hi < lo {
                return Err(BvError(format!("extract [{hi}:{lo}] of width {}", v.width())));
            }
            Ok(v.extract(*hi, *lo))
        }
        Bv::Concat(parts) => {
            let mut acc: Option<BigBits> = None;
            for p in parts {
                let v = eval_concrete(p, env)?;
                acc = Some(match acc {
                    None => v,
                    Some(lo) => lo.concat_above(&v),
                });
            }
            acc.ok_or_else(|| BvError("empty concat".into()))
        }
        Bv::Ite { cond, on_true, on_false } => {
            let c = eval_concrete(cond, env)?;
            if c.width() != 1 {
                return Err(BvError("ite condition must have width 1".into()));
            }
            if c.to_u64() != 0 {
                eval_concrete(on_true, env)
            } else {
                eval_concrete(on_false, env)
            }
        }
        Bv::Cmp { pred, lhs, rhs } => {
            let a = eval_concrete(lhs, env)?;
            let b = eval_concrete(rhs, env)?;
            let w = a.width();
            if w != b.width() || w > 64 {
                return Err(BvError("bad cmp widths".into()));
            }
            use CmpPred::*;
            let x = a.to_u64();
            let y = b.to_u64();
            let r = if pred.is_float() {
                let (fx, fy) = if w == 32 {
                    (f32::from_bits(x as u32) as f64, f32::from_bits(y as u32) as f64)
                } else {
                    (f64::from_bits(x), f64::from_bits(y))
                };
                match pred {
                    Feq => fx == fy,
                    Fne => fx != fy,
                    Flt => fx < fy,
                    Fle => fx <= fy,
                    Fgt => fx > fy,
                    Fge => fx >= fy,
                    _ => unreachable!(),
                }
            } else {
                let (sx, sy) = (sext(x, w), sext(y, w));
                match pred {
                    Eq => x == y,
                    Ne => x != y,
                    Slt => sx < sy,
                    Sle => sx <= sy,
                    Sgt => sx > sy,
                    Sge => sx >= sy,
                    Ult => x < y,
                    Ule => x <= y,
                    Ugt => x > y,
                    Uge => x >= y,
                    _ => unreachable!(),
                }
            };
            Ok(BigBits::from_u64(1, r as u64))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn env1(name: &str, v: BigBits) -> HashMap<String, BigBits> {
        let mut m = HashMap::new();
        m.insert(name.to_string(), v);
        m
    }

    #[test]
    fn bigbits_roundtrip() {
        let v = BigBits::from_elems(16, &[1, 2, 3, 4]);
        assert_eq!(v.width(), 64);
        assert_eq!(v.to_elems(16), vec![1, 2, 3, 4]);
    }

    #[test]
    fn bigbits_wide_extract() {
        let v = BigBits::from_elems(32, &[0xdead_beef, 0x1234_5678, 0, 0xffff_ffff]);
        assert_eq!(v.width(), 128);
        assert_eq!(v.extract(31, 0).to_u64(), 0xdead_beef);
        assert_eq!(v.extract(63, 32).to_u64(), 0x1234_5678);
        assert_eq!(v.extract(127, 96).to_u64(), 0xffff_ffff);
        assert_eq!(v.extract(39, 24).to_u64(), 0x78de);
    }

    #[test]
    fn concat_order_is_lsb_first() {
        let lo = BigBits::from_u64(8, 0xaa);
        let hi = BigBits::from_u64(8, 0xbb);
        let v = lo.concat_above(&hi);
        assert_eq!(v.to_u64(), 0xbbaa);
    }

    #[test]
    fn eval_add_wraps() {
        let e = Bv::Bin {
            op: BvBinOp::Add,
            lhs: Box::new(Bv::Const { width: 8, bits: 0xff }),
            rhs: Box::new(Bv::Const { width: 8, bits: 2 }),
        };
        let v = eval_concrete(&e, &HashMap::new()).unwrap();
        assert_eq!(v.to_u64(), 1);
    }

    #[test]
    fn eval_input_slice() {
        let e = Bv::Input { name: "a".into(), hi: 15, lo: 8 };
        let v = eval_concrete(&e, &env1("a", BigBits::from_u64(16, 0xab12))).unwrap();
        assert_eq!(v.to_u64(), 0xab);
    }

    #[test]
    fn eval_sext_and_mul() {
        // SignExtend32(a[15:0]) * SignExtend32(b...) with a = -3
        let a =
            Bv::SExt { width: 32, arg: Box::new(Bv::Input { name: "a".into(), hi: 15, lo: 0 }) };
        let e = Bv::Bin {
            op: BvBinOp::Mul,
            lhs: Box::new(a),
            rhs: Box::new(Bv::Const { width: 32, bits: 100 }),
        };
        let v =
            eval_concrete(&e, &env1("a", BigBits::from_u64(16, (-3i64 as u64) & 0xffff))).unwrap();
        assert_eq!(sext(v.to_u64(), 32), -300);
    }

    #[test]
    fn eval_fp() {
        let e = Bv::FBin {
            op: FpBinOp::Mul,
            lhs: Box::new(Bv::Const { width: 64, bits: 2.5f64.to_bits() }),
            rhs: Box::new(Bv::Const { width: 64, bits: 4.0f64.to_bits() }),
        };
        let v = eval_concrete(&e, &HashMap::new()).unwrap();
        assert_eq!(f64::from_bits(v.to_u64()), 10.0);
    }

    #[test]
    fn eval_ite_and_cmp() {
        let cmp = Bv::Cmp {
            pred: CmpPred::Sgt,
            lhs: Box::new(Bv::Const { width: 16, bits: (-5i64 as u64) & 0xffff }),
            rhs: Box::new(Bv::Const { width: 16, bits: 3 }),
        };
        let e = Bv::Ite {
            cond: Box::new(cmp),
            on_true: Box::new(Bv::Const { width: 8, bits: 1 }),
            on_false: Box::new(Bv::Const { width: 8, bits: 0 }),
        };
        assert_eq!(eval_concrete(&e, &HashMap::new()).unwrap().to_u64(), 0);
    }

    #[test]
    fn arithmetic_above_64_bits_is_rejected() {
        let wide =
            Bv::Concat(vec![Bv::Const { width: 64, bits: 1 }, Bv::Const { width: 64, bits: 2 }]);
        let e = Bv::Bin { op: BvBinOp::Add, lhs: Box::new(wide.clone()), rhs: Box::new(wide) };
        assert!(eval_concrete(&e, &HashMap::new()).is_err());
    }

    #[test]
    fn width_computation() {
        let e = Bv::Concat(vec![
            Bv::Const { width: 16, bits: 0 },
            Bv::Const { width: 16, bits: 0 },
            Bv::Const { width: 32, bits: 0 },
        ]);
        assert_eq!(e.width(), 64);
        let x = Bv::Extract { hi: 31, lo: 16, arg: Box::new(e) };
        assert_eq!(x.width(), 16);
        let c = Bv::Cmp {
            pred: CmpPred::Eq,
            lhs: Box::new(Bv::Const { width: 8, bits: 0 }),
            rhs: Box::new(Bv::Const { width: 8, bits: 0 }),
        };
        assert_eq!(c.width(), 1);
    }

    #[test]
    fn display_is_sexpr() {
        let e = Bv::Bin {
            op: BvBinOp::Add,
            lhs: Box::new(Bv::Input { name: "a".into(), hi: 7, lo: 0 }),
            rhs: Box::new(Bv::Const { width: 8, bits: 1 }),
        };
        assert_eq!(e.to_string(), "(bvadd a[7:0] 1#8)");
    }
}
