//! A rewriting simplifier for bit-vector formulas — the stand-in for z3's
//! `simplify`.
//!
//! §6.1: "Our symbolic evaluator returns SMT formulas that are unnecessarily
//! complicated in some cases because of the naive implementation of partial
//! bit-vector updates and predicated updates. We use z3's simplifier to
//! reduce the formula complexity." The partial-update encoding produces
//! towers of `Extract`/`Concat`; these rules collapse them so each output
//! lane becomes a clean per-lane expression the lifter can abstract.

use crate::bv::{eval_concrete, Bv};
use std::collections::HashMap;

/// Simplify a formula to a fixpoint (bounded; the rules terminate because
/// every rewrite reduces a well-founded measure, but we cap iterations
/// defensively).
pub fn simplify(e: &Bv) -> Bv {
    let mut cur = e.clone();
    for _ in 0..32 {
        let next = walk(&cur);
        if next == cur {
            return next;
        }
        cur = next;
    }
    cur
}

/// One bottom-up pass.
fn walk(e: &Bv) -> Bv {
    let node = match e {
        Bv::Const { .. } | Bv::Input { .. } => e.clone(),
        Bv::Bin { op, lhs, rhs } => {
            Bv::Bin { op: *op, lhs: Box::new(walk(lhs)), rhs: Box::new(walk(rhs)) }
        }
        Bv::FBin { op, lhs, rhs } => {
            Bv::FBin { op: *op, lhs: Box::new(walk(lhs)), rhs: Box::new(walk(rhs)) }
        }
        Bv::FNeg(a) => Bv::FNeg(Box::new(walk(a))),
        Bv::SExt { width, arg } => Bv::SExt { width: *width, arg: Box::new(walk(arg)) },
        Bv::ZExt { width, arg } => Bv::ZExt { width: *width, arg: Box::new(walk(arg)) },
        Bv::Extract { hi, lo, arg } => Bv::Extract { hi: *hi, lo: *lo, arg: Box::new(walk(arg)) },
        Bv::Concat(parts) => Bv::Concat(parts.iter().map(walk).collect()),
        Bv::Ite { cond, on_true, on_false } => Bv::Ite {
            cond: Box::new(walk(cond)),
            on_true: Box::new(walk(on_true)),
            on_false: Box::new(walk(on_false)),
        },
        Bv::Cmp { pred, lhs, rhs } => {
            Bv::Cmp { pred: *pred, lhs: Box::new(walk(lhs)), rhs: Box::new(walk(rhs)) }
        }
    };
    rewrite(node)
}

/// Rewrite one node whose children are already simplified.
fn rewrite(e: Bv) -> Bv {
    // Constant folding: any arithmetic node with all-constant leaves and
    // width <= 64 evaluates directly.
    if is_foldable(&e) && e.width() <= 64 && !matches!(e, Bv::Const { .. }) {
        if let Ok(v) = eval_concrete(&e, &HashMap::new()) {
            return Bv::Const { width: v.width(), bits: v.to_u64() };
        }
    }
    match e {
        Bv::Extract { hi, lo, arg } => rewrite_extract(hi, lo, *arg),
        Bv::Concat(parts) => rewrite_concat(parts),
        Bv::Ite { cond, on_true, on_false } => {
            if let Bv::Const { bits, .. } = &*cond {
                return if *bits != 0 { *on_true } else { *on_false };
            }
            if on_true == on_false {
                return *on_true;
            }
            Bv::Ite { cond, on_true, on_false }
        }
        other => other,
    }
}

fn is_foldable(e: &Bv) -> bool {
    match e {
        Bv::Const { .. } => true,
        Bv::Input { .. } => false,
        Bv::Bin { lhs, rhs, .. } | Bv::FBin { lhs, rhs, .. } | Bv::Cmp { lhs, rhs, .. } => {
            is_foldable(lhs) && is_foldable(rhs)
        }
        Bv::FNeg(a) => is_foldable(a),
        Bv::SExt { arg, .. } | Bv::ZExt { arg, .. } | Bv::Extract { arg, .. } => is_foldable(arg),
        Bv::Concat(parts) => parts.iter().all(is_foldable),
        Bv::Ite { cond, on_true, on_false } => {
            is_foldable(cond) && is_foldable(on_true) && is_foldable(on_false)
        }
    }
}

fn rewrite_extract(hi: u32, lo: u32, arg: Bv) -> Bv {
    let w = arg.width();
    // Identity.
    if lo == 0 && hi + 1 == w {
        return arg;
    }
    match arg {
        // extract of extract composes.
        Bv::Extract { hi: _ihi, lo: ilo, arg: inner } => {
            Bv::Extract { hi: ilo + hi, lo: ilo + lo, arg: inner }
        }
        // extract of input slice narrows the slice.
        Bv::Input { name, hi: _ihi, lo: ilo } => Bv::Input { name, hi: ilo + hi, lo: ilo + lo },
        // extract of concat: resolve into the parts it covers.
        Bv::Concat(parts) => {
            let mut pieces: Vec<Bv> = Vec::new();
            let mut base = 0u32; // low bit of current part
            for p in parts {
                let pw = p.width();
                let p_lo = base;
                let p_hi = base + pw - 1;
                base += pw;
                if p_hi < lo || p_lo > hi {
                    continue; // no overlap
                }
                let take_lo = lo.max(p_lo) - p_lo;
                let take_hi = hi.min(p_hi) - p_lo;
                pieces.push(if take_lo == 0 && take_hi + 1 == pw {
                    p
                } else {
                    Bv::Extract { hi: take_hi, lo: take_lo, arg: Box::new(p) }
                });
            }
            if pieces.len() == 1 {
                // Re-simplify: the piece may itself be an extract chain.
                rewrite(pieces.pop().unwrap())
            } else {
                rewrite_concat(pieces)
            }
        }
        // extract of zext/sext: inside the original width it's an extract of
        // the argument; the all-above-original zext region is zero.
        Bv::ZExt { width: _zw, arg: inner } => {
            let iw = inner.width();
            if hi < iw {
                rewrite(Bv::Extract { hi, lo, arg: inner })
            } else if lo >= iw {
                Bv::Const { width: hi - lo + 1, bits: 0 }
            } else {
                // Straddles: keep low part + zero top.
                let low = rewrite(Bv::Extract { hi: iw - 1, lo, arg: inner });
                let zeros = Bv::Const { width: hi - iw + 1, bits: 0 };
                rewrite_concat(vec![low, zeros])
            }
        }
        Bv::SExt { width: sw, arg: inner } => {
            let iw = inner.width();
            if hi < iw {
                rewrite(Bv::Extract { hi, lo, arg: inner })
            } else if lo == 0 {
                // Truncating a sign-extension from the bottom is a narrower
                // sign-extension (or the value itself).
                if hi + 1 == iw {
                    *inner
                } else {
                    Bv::SExt { width: hi + 1, arg: inner }
                }
            } else {
                Bv::Extract { hi, lo, arg: Box::new(Bv::SExt { width: sw, arg: inner }) }
            }
        }
        // Push extraction into ite arms: predicated partial updates nest
        // lane values under Ite, and the lifter wants per-lane formulas.
        Bv::Ite { cond, on_true, on_false } => {
            let t = rewrite(Bv::Extract { hi, lo, arg: on_true });
            let f = rewrite(Bv::Extract { hi, lo, arg: on_false });
            rewrite(Bv::Ite { cond, on_true: Box::new(t), on_false: Box::new(f) })
        }
        Bv::Const { bits, .. } => {
            // Caught by folding when <= 64; handle wide constants (only
            // zero constants are wide in practice).
            let ww = hi - lo + 1;
            if ww <= 64 && hi < 64 {
                Bv::Const { width: ww, bits: (bits >> lo) & vegen_ir::constant::mask(ww) }
            } else {
                Bv::Extract { hi, lo, arg: Box::new(Bv::Const { width: w, bits }) }
            }
        }
        other => Bv::Extract { hi, lo, arg: Box::new(other) },
    }
}

fn rewrite_concat(parts: Vec<Bv>) -> Bv {
    // Flatten nested concats, drop zero-width parts.
    let mut flat: Vec<Bv> = Vec::new();
    for p in parts {
        if p.width() == 0 {
            continue;
        }
        match p {
            Bv::Concat(inner) => flat.extend(inner.into_iter().filter(|q| q.width() > 0)),
            other => flat.push(other),
        }
    }
    // Merge adjacent pieces: consecutive extracts/input-slices of the same
    // source with touching ranges, and adjacent constants.
    let mut merged: Vec<Bv> = Vec::new();
    for p in flat {
        if let Some(last) = merged.last_mut() {
            if let Some(m) = merge_adjacent(last, &p) {
                *last = m;
                continue;
            }
        }
        merged.push(p);
    }
    match merged.len() {
        0 => Bv::Const { width: 0, bits: 0 },
        1 => merged.pop().unwrap(),
        _ => Bv::Concat(merged),
    }
}

/// Try to merge `low` (less significant) and `high` into one node.
fn merge_adjacent(low: &Bv, high: &Bv) -> Option<Bv> {
    match (low, high) {
        (Bv::Input { name: n1, hi: h1, lo: l1 }, Bv::Input { name: n2, hi: h2, lo: l2 })
            if n1 == n2 && *l2 == h1 + 1 =>
        {
            Some(Bv::Input { name: n1.clone(), hi: *h2, lo: *l1 })
        }
        (Bv::Const { width: w1, bits: b1 }, Bv::Const { width: w2, bits: b2 }) if w1 + w2 <= 64 => {
            Some(Bv::Const { width: w1 + w2, bits: b1 | (b2 << w1) })
        }
        (Bv::Extract { hi: h1, lo: l1, arg: a1 }, Bv::Extract { hi: h2, lo: l2, arg: a2 })
            if a1 == a2 && *l2 == h1 + 1 =>
        {
            let hi = *h2;
            let lo = *l1;
            Some(if lo == 0 && hi + 1 == a1.width() {
                (**a1).clone()
            } else {
                Bv::Extract { hi, lo, arg: a1.clone() }
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bv::{BigBits, BvBinOp};
    use std::collections::HashMap;
    use vegen_ir::CmpPred;

    fn inp(name: &str, hi: u32, lo: u32) -> Bv {
        Bv::Input { name: name.into(), hi, lo }
    }

    #[test]
    fn extract_of_concat_selects_part() {
        let c = Bv::Concat(vec![inp("a", 15, 0), inp("b", 15, 0)]);
        let e = Bv::Extract { hi: 31, lo: 16, arg: Box::new(c) };
        assert_eq!(simplify(&e), inp("b", 15, 0));
    }

    #[test]
    fn extract_across_concat_parts() {
        let c = Bv::Concat(vec![inp("a", 7, 0), inp("b", 7, 0)]);
        let e = Bv::Extract { hi: 11, lo: 4, arg: Box::new(c) };
        let s = simplify(&e);
        assert_eq!(s, Bv::Concat(vec![inp("a", 7, 4), inp("b", 3, 0)]));
    }

    #[test]
    fn extract_of_extract_composes() {
        let e = Bv::Extract {
            hi: 7,
            lo: 0,
            arg: Box::new(Bv::Extract { hi: 31, lo: 16, arg: Box::new(inp("a", 63, 0)) }),
        };
        assert_eq!(simplify(&e), inp("a", 23, 16));
    }

    #[test]
    fn full_width_extract_is_identity() {
        let e = Bv::Extract { hi: 15, lo: 0, arg: Box::new(inp("a", 15, 0)) };
        assert_eq!(simplify(&e), inp("a", 15, 0));
    }

    #[test]
    fn adjacent_input_slices_merge() {
        let c = Bv::Concat(vec![inp("a", 15, 0), inp("a", 31, 16)]);
        assert_eq!(simplify(&c), inp("a", 31, 0));
    }

    #[test]
    fn adjacent_constants_merge() {
        let c = Bv::Concat(vec![
            Bv::Const { width: 8, bits: 0xaa },
            Bv::Const { width: 8, bits: 0xbb },
        ]);
        assert_eq!(simplify(&c), Bv::Const { width: 16, bits: 0xbbaa });
    }

    #[test]
    fn constant_folding() {
        let e = Bv::Bin {
            op: BvBinOp::Add,
            lhs: Box::new(Bv::Const { width: 8, bits: 200 }),
            rhs: Box::new(Bv::Const { width: 8, bits: 100 }),
        };
        assert_eq!(simplify(&e), Bv::Const { width: 8, bits: 44 });
    }

    #[test]
    fn ite_constant_condition() {
        let e = Bv::Ite {
            cond: Box::new(Bv::Const { width: 1, bits: 1 }),
            on_true: Box::new(inp("a", 7, 0)),
            on_false: Box::new(inp("b", 7, 0)),
        };
        assert_eq!(simplify(&e), inp("a", 7, 0));
    }

    #[test]
    fn ite_same_arms_collapses() {
        let e = Bv::Ite {
            cond: Box::new(Bv::Cmp {
                pred: CmpPred::Eq,
                lhs: Box::new(inp("a", 7, 0)),
                rhs: Box::new(Bv::Const { width: 8, bits: 0 }),
            }),
            on_true: Box::new(inp("b", 7, 0)),
            on_false: Box::new(inp("b", 7, 0)),
        };
        assert_eq!(simplify(&e), inp("b", 7, 0));
    }

    #[test]
    fn extract_pushes_through_ite() {
        let ite = Bv::Ite {
            cond: Box::new(Bv::Cmp {
                pred: CmpPred::Slt,
                lhs: Box::new(inp("a", 7, 0)),
                rhs: Box::new(Bv::Const { width: 8, bits: 0 }),
            }),
            on_true: Box::new(Bv::Concat(vec![inp("b", 7, 0), inp("c", 7, 0)])),
            on_false: Box::new(Bv::Concat(vec![inp("c", 7, 0), inp("b", 7, 0)])),
        };
        let e = Bv::Extract { hi: 7, lo: 0, arg: Box::new(ite) };
        let s = simplify(&e);
        let Bv::Ite { on_true, on_false, .. } = s else { panic!("{s}") };
        assert_eq!(*on_true, inp("b", 7, 0));
        assert_eq!(*on_false, inp("c", 7, 0));
    }

    #[test]
    fn extract_of_zext_regions() {
        let z = Bv::ZExt { width: 32, arg: Box::new(inp("a", 15, 0)) };
        let low = Bv::Extract { hi: 15, lo: 0, arg: Box::new(z.clone()) };
        assert_eq!(simplify(&low), inp("a", 15, 0));
        let high = Bv::Extract { hi: 31, lo: 16, arg: Box::new(z) };
        assert_eq!(simplify(&high), Bv::Const { width: 16, bits: 0 });
    }

    #[test]
    fn extract_of_sext_bottom_is_narrower_sext() {
        let s = Bv::SExt { width: 64, arg: Box::new(inp("a", 15, 0)) };
        let e = Bv::Extract { hi: 31, lo: 0, arg: Box::new(s) };
        assert_eq!(simplify(&e), Bv::SExt { width: 32, arg: Box::new(inp("a", 15, 0)) });
    }

    #[test]
    fn partial_update_tower_collapses() {
        // Emulate what eval's write_slice produces for two lane writes, then
        // check lanes read back clean.
        let lane0 = Bv::Bin {
            op: BvBinOp::Add,
            lhs: Box::new(inp("a", 31, 0)),
            rhs: Box::new(inp("b", 31, 0)),
        };
        let lane1 = Bv::Bin {
            op: BvBinOp::Add,
            lhs: Box::new(inp("a", 63, 32)),
            rhs: Box::new(inp("b", 63, 32)),
        };
        let reg = Bv::Concat(vec![lane0.clone(), lane1.clone()]);
        let read0 = Bv::Extract { hi: 31, lo: 0, arg: Box::new(reg.clone()) };
        let read1 = Bv::Extract { hi: 63, lo: 32, arg: Box::new(reg) };
        assert_eq!(simplify(&read0), lane0);
        assert_eq!(simplify(&read1), lane1);
    }

    #[test]
    fn simplification_preserves_semantics() {
        // Random formulas: simplified and original evaluate identically.
        let formula = Bv::Extract {
            hi: 23,
            lo: 8,
            arg: Box::new(Bv::Concat(vec![
                inp("a", 15, 0),
                Bv::Ite {
                    cond: Box::new(Bv::Cmp {
                        pred: CmpPred::Slt,
                        lhs: Box::new(inp("a", 15, 0)),
                        rhs: Box::new(Bv::Const { width: 16, bits: 0 }),
                    }),
                    on_true: Box::new(inp("b", 15, 0)),
                    on_false: Box::new(Bv::Const { width: 16, bits: 0xffff }),
                },
            ])),
        };
        let simplified = simplify(&formula);
        let mut state = 7u64;
        for _ in 0..100 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut env = HashMap::new();
            env.insert("a".to_string(), BigBits::from_u64(16, state & 0xffff));
            env.insert("b".to_string(), BigBits::from_u64(16, (state >> 16) & 0xffff));
            assert_eq!(
                eval_concrete(&formula, &env).unwrap(),
                eval_concrete(&simplified, &env).unwrap()
            );
        }
    }
}
