//! Lifting simplified bit-vector formulas to VIDL.
//!
//! §6.1: "VEGEN then lifts the SMT formulas to VIDL. Lifting the SMT
//! formulas to VIDL is straightforward because we designed VIDL to closely
//! match the semantics of SMT bit-vector operations." The lifter slices the
//! output register into lanes, abstracts each lane's formula into a scalar
//! operation (input-element leaves become operation parameters), deduplicates
//! structurally identical operations, and records the lane bindings.

use crate::bv::{Bv, BvBinOp, FpBinOp};
use crate::eval::FpMode;
use crate::simplify::simplify;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use vegen_ir::{BinOp, CastOp, CmpPred, Constant, Type};
use vegen_vidl::{Expr, InstSemantics, LaneBinding, LaneRef, Operation, VecShape};

/// A formula that cannot be expressed as a VIDL description.
///
/// This is a *feature*, not only an error path: the paper's system also
/// refuses instructions whose semantics fall outside VIDL (e.g. the
/// sign-bit-masking float `ABS`, which is why VeGen loses the `abs_pd`
/// tests in Fig. 10).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiftError(pub String);

impl fmt::Display for LiftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot lift to VIDL: {}", self.0)
    }
}

impl Error for LiftError {}

fn err<T>(m: impl Into<String>) -> Result<T, LiftError> {
    Err(LiftError(m.into()))
}

/// Value kind expected from context while converting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Int,
    Float,
}

fn type_for(kind: Kind, bits: u32) -> Result<Type, LiftError> {
    match kind {
        Kind::Int => Type::int_with_bits(bits)
            .ok_or_else(|| LiftError(format!("no integer type of {bits} bits"))),
        Kind::Float => Type::float_with_bits(bits)
            .ok_or_else(|| LiftError(format!("no float type of {bits} bits"))),
    }
}

/// Per-lane abstraction state.
struct Abstraction<'a> {
    input_order: &'a [String],
    elem_bits: &'a HashMap<String, u32>,
    /// Parameters discovered so far: (lane ref, type).
    params: Vec<(LaneRef, Type)>,
}

impl<'a> Abstraction<'a> {
    fn param_for(&mut self, name: &str, hi: u32, lo: u32, kind: Kind) -> Result<Expr, LiftError> {
        let Some(input) = self.input_order.iter().position(|n| n == name) else {
            return err(format!("unknown input register `{name}`"));
        };
        let eb = self.elem_bits[name];
        // The slice must lie within a single element of the grid; narrower
        // reads (e.g. the truncating arm of a saturation) become
        // trunc/lshr of the element parameter.
        if lo / eb != hi / eb {
            return err(format!("slice {name}[{hi}:{lo}] straddles the {eb}-bit element grid"));
        }
        let ty = type_for(kind, eb)?;
        let lane = LaneRef { input, lane: (lo / eb) as usize };
        // Re-use an existing parameter for a repeated lane read.
        let idx = match self.params.iter().position(|(r, t)| *r == lane && *t == ty) {
            Some(i) => i,
            None => {
                if self.params.iter().any(|(r, _)| *r == lane) {
                    return err(format!("lane {name}[{hi}:{lo}] used at conflicting types"));
                }
                self.params.push((lane, ty));
                self.params.len() - 1
            }
        };
        let param = Expr::Param(idx);
        let offset = lo - (lo / eb) * eb;
        let width = hi - lo + 1;
        if offset == 0 && width == eb {
            return Ok(param);
        }
        if kind == Kind::Float {
            return err(format!("sub-element float slice {name}[{hi}:{lo}]"));
        }
        let to = type_for(Kind::Int, width)?;
        let shifted = if offset == 0 {
            param
        } else {
            Expr::Bin {
                op: BinOp::LShr,
                lhs: Box::new(param),
                rhs: Box::new(Expr::Const(Constant::int(ty, offset as i64))),
            }
        };
        Ok(Expr::Cast { op: CastOp::Trunc, to, arg: Box::new(shifted) })
    }

    fn convert(&mut self, e: &Bv, kind: Kind) -> Result<Expr, LiftError> {
        match e {
            Bv::Input { name, hi, lo } => self.param_for(name, *hi, *lo, kind),
            Bv::Const { width, bits } => {
                let ty = type_for(kind, *width)?;
                Ok(Expr::Const(match ty {
                    Type::F32 => Constant::f32(f32::from_bits(*bits as u32)),
                    Type::F64 => Constant::f64(f64::from_bits(*bits)),
                    _ => Constant::int(ty, vegen_ir::constant::sext(*bits, *width)),
                }))
            }
            Bv::Bin { op, lhs, rhs } => {
                if kind == Kind::Float {
                    return err(format!("integer op {} in float context", op.name()));
                }
                let bop = match op {
                    BvBinOp::Add => BinOp::Add,
                    BvBinOp::Sub => BinOp::Sub,
                    BvBinOp::Mul => BinOp::Mul,
                    BvBinOp::And => BinOp::And,
                    BvBinOp::Or => BinOp::Or,
                    BvBinOp::Xor => BinOp::Xor,
                    BvBinOp::Shl => BinOp::Shl,
                    BvBinOp::LShr => BinOp::LShr,
                    BvBinOp::AShr => BinOp::AShr,
                };
                Ok(Expr::Bin {
                    op: bop,
                    lhs: Box::new(self.convert(lhs, Kind::Int)?),
                    rhs: Box::new(self.convert(rhs, Kind::Int)?),
                })
            }
            Bv::FBin { op, lhs, rhs } => {
                if kind == Kind::Int {
                    return err(format!("float op {} in integer context", op.name()));
                }
                let l = self.convert(lhs, Kind::Float)?;
                let r = self.convert(rhs, Kind::Float)?;
                match op {
                    FpBinOp::Add | FpBinOp::Sub | FpBinOp::Mul | FpBinOp::Div => {
                        let bop = match op {
                            FpBinOp::Add => BinOp::FAdd,
                            FpBinOp::Sub => BinOp::FSub,
                            FpBinOp::Mul => BinOp::FMul,
                            _ => BinOp::FDiv,
                        };
                        Ok(Expr::Bin { op: bop, lhs: Box::new(l), rhs: Box::new(r) })
                    }
                    // IR has no fmin/fmax: lift to the select(cmp) shape the
                    // scalar code actually exhibits.
                    FpBinOp::Min | FpBinOp::Max => {
                        let pred = if *op == FpBinOp::Min { CmpPred::Flt } else { CmpPred::Fgt };
                        Ok(Expr::Select {
                            cond: Box::new(Expr::Cmp {
                                pred,
                                lhs: Box::new(l.clone()),
                                rhs: Box::new(r.clone()),
                            }),
                            on_true: Box::new(l),
                            on_false: Box::new(r),
                        })
                    }
                }
            }
            Bv::FNeg(a) => {
                if kind == Kind::Int {
                    return err("fneg in integer context");
                }
                Ok(Expr::FNeg(Box::new(self.convert(a, Kind::Float)?)))
            }
            Bv::SExt { width, arg } => {
                let to = type_for(Kind::Int, *width)?;
                Ok(Expr::Cast {
                    op: CastOp::SExt,
                    to,
                    arg: Box::new(self.convert(arg, Kind::Int)?),
                })
            }
            Bv::ZExt { width, arg } => {
                let to = type_for(Kind::Int, *width)?;
                Ok(Expr::Cast {
                    op: CastOp::ZExt,
                    to,
                    arg: Box::new(self.convert(arg, Kind::Int)?),
                })
            }
            Bv::Extract { hi, lo, arg } => {
                // A low extract is a truncation; a high extract is a
                // truncation of a logical shift (how pmulhw-style "take the
                // high half" semantics surface in IR).
                let to = type_for(Kind::Int, hi - lo + 1)?;
                let src_w = arg.width();
                let src = self.convert(arg, Kind::Int)?;
                let shifted = if *lo == 0 {
                    src
                } else {
                    let src_ty = type_for(Kind::Int, src_w)?;
                    Expr::Bin {
                        op: BinOp::LShr,
                        lhs: Box::new(src),
                        rhs: Box::new(Expr::Const(Constant::int(src_ty, *lo as i64))),
                    }
                };
                Ok(Expr::Cast { op: CastOp::Trunc, to, arg: Box::new(shifted) })
            }
            Bv::Concat(_) => err("concat inside a lane formula"),
            Bv::Ite { cond, on_true, on_false } => Ok(Expr::Select {
                cond: Box::new(self.convert(cond, Kind::Int)?),
                on_true: Box::new(self.convert(on_true, kind)?),
                on_false: Box::new(self.convert(on_false, kind)?),
            }),
            Bv::Cmp { pred, lhs, rhs } => {
                let k = if pred.is_float() { Kind::Float } else { Kind::Int };
                Ok(Expr::Cmp {
                    pred: *pred,
                    lhs: Box::new(self.convert(lhs, k)?),
                    rhs: Box::new(self.convert(rhs, k)?),
                })
            }
        }
    }
}

/// Rewrite parameter indices through `remap`.
fn remap_params(e: &Expr, remap: &[usize]) -> Expr {
    match e {
        Expr::Param(i) => Expr::Param(remap[*i]),
        Expr::Const(c) => Expr::Const(*c),
        Expr::Bin { op, lhs, rhs } => Expr::Bin {
            op: *op,
            lhs: Box::new(remap_params(lhs, remap)),
            rhs: Box::new(remap_params(rhs, remap)),
        },
        Expr::FNeg(a) => Expr::FNeg(Box::new(remap_params(a, remap))),
        Expr::Cast { op, to, arg } => {
            Expr::Cast { op: *op, to: *to, arg: Box::new(remap_params(arg, remap)) }
        }
        Expr::Cmp { pred, lhs, rhs } => Expr::Cmp {
            pred: *pred,
            lhs: Box::new(remap_params(lhs, remap)),
            rhs: Box::new(remap_params(rhs, remap)),
        },
        Expr::Select { cond, on_true, on_false } => Expr::Select {
            cond: Box::new(remap_params(cond, remap)),
            on_true: Box::new(remap_params(on_true, remap)),
            on_false: Box::new(remap_params(on_false, remap)),
        },
    }
}

/// Collect each input register's element width: the unique width of the
/// aligned slices referencing it.
fn infer_elem_bits(
    formula: &Bv,
    inputs: &[(&str, u32)],
    default_bits: u32,
) -> Result<HashMap<String, u32>, LiftError> {
    fn visit(e: &Bv, m: &mut HashMap<String, Vec<(u32, u32)>>) {
        match e {
            Bv::Input { name, hi, lo } => m.entry(name.clone()).or_default().push((*hi, *lo)),
            Bv::Const { .. } => {}
            Bv::Bin { lhs, rhs, .. } | Bv::FBin { lhs, rhs, .. } | Bv::Cmp { lhs, rhs, .. } => {
                visit(lhs, m);
                visit(rhs, m);
            }
            Bv::FNeg(a) => visit(a, m),
            Bv::SExt { arg, .. } | Bv::ZExt { arg, .. } | Bv::Extract { arg, .. } => visit(arg, m),
            Bv::Concat(parts) => parts.iter().for_each(|p| visit(p, m)),
            Bv::Ite { cond, on_true, on_false } => {
                visit(cond, m);
                visit(on_true, m);
                visit(on_false, m);
            }
        }
    }
    let mut slices: HashMap<String, Vec<(u32, u32)>> = HashMap::new();
    visit(formula, &mut slices);
    let mut out = HashMap::new();
    for (name, total) in inputs {
        let Some(ss) = slices.get(*name) else {
            out.insert(name.to_string(), default_bits);
            continue;
        };
        // Element width = the widest slice; it must be grid-aligned, and
        // every other slice must lie within a single element of that grid
        // (narrower reads lower to trunc/lshr of the element parameter).
        let w = ss.iter().map(|(hi, lo)| hi - lo + 1).max().unwrap();
        if total % w != 0 {
            return err(format!("input `{name}` width {total} not divisible by element {w}"));
        }
        for (hi, lo) in ss {
            if lo / w != hi / w || (hi - lo + 1 == w && lo % w != 0) {
                return err(format!(
                    "input `{name}` slice [{hi}:{lo}] is off the {w}-bit element grid"
                ));
            }
        }
        out.insert(name.to_string(), w);
    }
    Ok(out)
}

/// Lift a (simplified) output formula to a checked VIDL description.
///
/// # Errors
///
/// Returns [`LiftError`] if the formula cannot be expressed in VIDL —
/// unaligned slices, mixed element widths, sub-element bit twiddling, or
/// float/int kind conflicts.
pub fn lift_to_vidl(
    name: &str,
    inputs: &[(&str, u32)],
    out_elem_bits: u32,
    fp: FpMode,
    formula: &Bv,
) -> Result<InstSemantics, LiftError> {
    let dst_bits = formula.width();
    if !dst_bits.is_multiple_of(out_elem_bits) {
        return err(format!("dst width {dst_bits} not divisible by element {out_elem_bits}"));
    }
    let n_lanes = (dst_bits / out_elem_bits) as usize;
    let lane_kind = match fp {
        FpMode::Int => Kind::Int,
        FpMode::Float => Kind::Float,
    };
    let out_elem = type_for(lane_kind, out_elem_bits)?;

    let elem_bits = infer_elem_bits(formula, inputs, out_elem_bits)?;
    let input_order: Vec<String> = inputs.iter().map(|(n, _)| n.to_string()).collect();

    // Infer each input's element kind from the lanes' use contexts; in
    // float mode inputs are floats, in int mode ints. (Mixed-kind
    // instructions like cvt* are out of scope, as in the paper's evaluation.)
    let in_kind = lane_kind;

    let mut ops: Vec<Operation> = Vec::new();
    let mut lanes: Vec<LaneBinding> = Vec::new();
    for lane_idx in 0..n_lanes {
        let hi = (lane_idx as u32 + 1) * out_elem_bits - 1;
        let lo = lane_idx as u32 * out_elem_bits;
        let lane_formula = simplify(&Bv::Extract { hi, lo, arg: Box::new(formula.clone()) });
        let mut abs =
            Abstraction { input_order: &input_order, elem_bits: &elem_bits, params: Vec::new() };
        let expr = abs.convert(&lane_formula, lane_kind)?;
        // Canonical parameter order: by (input register, lane) rather than
        // first use. This keeps the generated patterns' operand vectors in
        // ascending-lane order, so e.g. haddpd's operand is the contiguous
        // [a0, a1] instead of the reversed [a1, a0].
        let mut perm: Vec<usize> = (0..abs.params.len()).collect();
        perm.sort_by_key(|&i| abs.params[i].0);
        let mut remap = vec![0usize; abs.params.len()];
        for (new_idx, &old_idx) in perm.iter().enumerate() {
            remap[old_idx] = new_idx;
        }
        let expr = remap_params(&expr, &remap);
        let params: Vec<Type> = perm.iter().map(|&i| abs.params[i].1).collect();
        let args: Vec<LaneRef> = perm.iter().map(|&i| abs.params[i].0).collect();
        // Deduplicate operations structurally.
        let op_idx = match ops
            .iter()
            .position(|o| o.expr == expr && o.params == params && o.ret == out_elem)
        {
            Some(i) => i,
            None => {
                ops.push(Operation {
                    name: format!("{name}_op{}", ops.len()),
                    params,
                    ret: out_elem,
                    expr,
                });
                ops.len() - 1
            }
        };
        lanes.push(LaneBinding { op: op_idx, args });
    }

    let shapes: Vec<VecShape> = inputs
        .iter()
        .map(|(n, total)| -> Result<VecShape, LiftError> {
            let eb = elem_bits[*n];
            Ok(VecShape { lanes: (*total / eb) as usize, elem: type_for(in_kind, eb)? })
        })
        .collect::<Result<_, _>>()?;

    Ok(InstSemantics { name: name.to_string(), inputs: shapes, out_elem, ops, lanes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_program;
    use crate::lang::parse_program;

    fn pipeline(
        name: &str,
        inputs: &[(&str, u32)],
        dst_bits: u32,
        out_elem: u32,
        fp: FpMode,
        src: &str,
    ) -> Result<InstSemantics, LiftError> {
        let p = parse_program(src).unwrap();
        let f = eval_program(&p, inputs, dst_bits, fp).unwrap();
        let f = simplify(&f);
        let d = lift_to_vidl(name, inputs, out_elem, fp, &f)?;
        vegen_vidl::check_inst(&d).map_err(|e| LiftError(e.0))?;
        Ok(d)
    }

    #[test]
    fn lifts_simd_add() {
        let d = pipeline(
            "paddd",
            &[("a", 128), ("b", 128)],
            128,
            32,
            FpMode::Int,
            "FOR j := 0 to 3\n i := j*32\n dst[i+31:i] := a[i+31:i] + b[i+31:i]\nENDFOR",
        )
        .unwrap();
        assert_eq!(d.out_lanes(), 4);
        assert_eq!(d.ops.len(), 1, "one shared operation across lanes");
        assert!(d.is_simd());
    }

    #[test]
    fn lifts_pmaddwd_with_cross_lane_bindings() {
        let d = pipeline(
            "pmaddwd",
            &[("a", 64), ("b", 64)],
            64,
            32,
            FpMode::Int,
            "FOR j := 0 to 1\n i := j*32\n dst[i+31:i] := SignExtend32(a[i+31:i+16])*SignExtend32(b[i+31:i+16]) + SignExtend32(a[i+15:i])*SignExtend32(b[i+15:i])\nENDFOR",
        )
        .unwrap();
        assert_eq!(d.out_lanes(), 2);
        assert_eq!(d.ops.len(), 1);
        assert!(!d.is_simd());
        assert_eq!(d.inputs[0], VecShape { lanes: 4, elem: Type::I16 });
        // Lane 1 reads a[3],a[2],b[3],b[2].
        let lane1 = &d.lanes[1];
        let touched: Vec<usize> = lane1.args.iter().map(|r| r.lane).collect();
        assert!(touched.iter().all(|&l| l >= 2));
    }

    #[test]
    fn lifts_addsub_with_two_ops() {
        let d = pipeline(
            "addsubpd",
            &[("a", 128), ("b", 128)],
            128,
            64,
            FpMode::Float,
            "dst[63:0] := a[63:0] - b[63:0]\ndst[127:64] := a[127:64] + b[127:64]",
        )
        .unwrap();
        assert_eq!(d.ops.len(), 2, "sub and add are distinct operations");
        assert!(!d.is_simd());
        assert_eq!(d.out_elem, Type::F64);
    }

    #[test]
    fn lifts_hadd_cross_lane() {
        let d = pipeline(
            "haddpd",
            &[("a", 128), ("b", 128)],
            128,
            64,
            FpMode::Float,
            "dst[63:0] := a[127:64] + a[63:0]\ndst[127:64] := b[127:64] + b[63:0]",
        )
        .unwrap();
        assert_eq!(d.ops.len(), 1);
        assert!(!d.is_simd());
        // Lane 0 reads both lanes of input 0.
        let inputs_used: Vec<usize> = d.lanes[0].args.iter().map(|r| r.input).collect();
        assert_eq!(inputs_used, vec![0, 0]);
    }

    #[test]
    fn lifts_saturation_to_select_chain() {
        let d = pipeline(
            "packssdw_lane",
            &[("a", 32)],
            16,
            16,
            FpMode::Int,
            "dst[15:0] := Saturate16(a[31:0])",
        )
        .unwrap();
        assert!(matches!(d.ops[0].expr, Expr::Select { .. }));
    }

    #[test]
    fn dont_care_lanes_from_pmuldq_shape() {
        // vpmuldq reads only even lanes (Fig. 6).
        let d = pipeline(
            "pmuldq",
            &[("a", 128), ("b", 128)],
            128,
            64,
            FpMode::Int,
            "dst[63:0] := SignExtend64(a[31:0]) * SignExtend64(b[31:0])\n\
             dst[127:64] := SignExtend64(a[95:64]) * SignExtend64(b[95:64])",
        )
        .unwrap();
        assert!(d.has_dont_care_lanes(0));
        assert!(d.has_dont_care_lanes(1));
        assert_eq!(d.inputs[0].lanes, 4);
    }

    #[test]
    fn float_abs_mask_fails_to_lift() {
        // The sign-bit trick is not an IR pattern: VeGen cannot (and should
        // not) describe it — reproduces the Fig. 10 abs_pd/abs_ps failures.
        let r = pipeline(
            "abs_pd",
            &[("a", 128)],
            128,
            64,
            FpMode::Float,
            "dst[63:0] := ABS(a[63:0])\ndst[127:64] := ABS(a[127:64])",
        );
        assert!(r.is_err());
    }

    #[test]
    fn integer_abs_lifts() {
        let d = pipeline(
            "pabsd",
            &[("a", 64)],
            64,
            32,
            FpMode::Int,
            "FOR j := 0 to 1\n i := j*32\n dst[i+31:i] := ABS(a[i+31:i])\nENDFOR",
        )
        .unwrap();
        assert!(matches!(d.ops[0].expr, Expr::Select { .. }));
        assert!(d.is_simd());
    }

    #[test]
    fn straddling_slice_fails() {
        // a[23:8] crosses the 16-bit element boundary: not expressible as a
        // lane-level pattern.
        let r = pipeline(
            "weird",
            &[("a", 32)],
            16,
            16,
            FpMode::Int,
            "dst[15:0] := a[23:8] AND a[15:0]",
        );
        assert!(r.is_err());
    }

    #[test]
    fn high_half_extract_lifts_to_shift_trunc() {
        // pmulhw-style: the high 16 bits of a 32-bit product.
        let d = pipeline(
            "pmulhw_lane",
            &[("a", 16), ("b", 16)],
            16,
            16,
            FpMode::Int,
            "tmp[31:0] := SignExtend32(a[15:0]) * SignExtend32(b[15:0])\ndst[15:0] := tmp[31:16]",
        )
        .unwrap();
        // trunc(lshr(mul, 16))
        let Expr::Cast { op: CastOp::Trunc, arg, .. } = &d.ops[0].expr else {
            panic!("{:?}", d.ops[0].expr)
        };
        assert!(matches!(**arg, Expr::Bin { op: BinOp::LShr, .. }));
    }

    #[test]
    fn min_lifts_to_select_cmp() {
        let d = pipeline(
            "pminsd_lane",
            &[("a", 32), ("b", 32)],
            32,
            32,
            FpMode::Int,
            "dst[31:0] := MIN(a[31:0], b[31:0])",
        )
        .unwrap();
        let Expr::Select { cond, .. } = &d.ops[0].expr else { panic!() };
        assert!(matches!(**cond, Expr::Cmp { pred: CmpPred::Slt, .. }));
    }

    #[test]
    fn float_min_uses_float_predicate() {
        let d = pipeline(
            "minpd_lane",
            &[("a", 64), ("b", 64)],
            64,
            64,
            FpMode::Float,
            "dst[63:0] := MIN(a[63:0], b[63:0])",
        )
        .unwrap();
        let Expr::Select { cond, .. } = &d.ops[0].expr else { panic!() };
        assert!(matches!(**cond, Expr::Cmp { pred: CmpPred::Flt, .. }));
    }

    #[test]
    fn repeated_lane_read_shares_parameter() {
        let d =
            pipeline("square", &[("a", 32)], 32, 32, FpMode::Int, "dst[31:0] := a[31:0] * a[31:0]")
                .unwrap();
        assert_eq!(d.ops[0].params.len(), 1, "a[0] appears once as a parameter");
        assert_eq!(d.lanes[0].args.len(), 1);
    }
}
