//! Property tests: the formula simplifier (the z3 stand-in) preserves
//! concrete semantics on arbitrary well-formed bit-vector formulas.

use proptest::prelude::*;
use std::collections::HashMap;
use vegen_pseudo::bv::{eval_concrete, BigBits, Bv, BvBinOp};
use vegen_pseudo::simplify::simplify;

/// Generate formulas over two 64-bit inputs. Widths are tracked so every
/// generated tree is well-formed; arithmetic stays at width <= 64.
fn leaf(width: u32) -> BoxedStrategy<Bv> {
    prop_oneof![
        (0..u64::MAX).prop_map(move |bits| Bv::Const {
            width,
            bits: bits & vegen_ir::constant::mask(width)
        }),
        (0..2usize, 0..(64 - width + 1)).prop_map(move |(var, lo)| {
            let name = if var == 0 { "a" } else { "b" };
            Bv::Input { name: name.into(), hi: lo + width - 1, lo }
        }),
    ]
    .boxed()
}

fn formula(width: u32, depth: u32) -> BoxedStrategy<Bv> {
    if depth == 0 {
        return leaf(width);
    }
    let bin = (any::<u8>(), formula(width, depth - 1), formula(width, depth - 1)).prop_map(
        move |(op, l, r)| {
            let ops = [
                BvBinOp::Add,
                BvBinOp::Sub,
                BvBinOp::Mul,
                BvBinOp::And,
                BvBinOp::Or,
                BvBinOp::Xor,
            ];
            Bv::Bin {
                op: ops[op as usize % ops.len()],
                lhs: Box::new(l),
                rhs: Box::new(r),
            }
        },
    );
    let mut options: Vec<BoxedStrategy<Bv>> = vec![leaf(width), bin.boxed()];
    // Extension of a narrower sub-formula.
    if width > 8 {
        let narrow = width / 2;
        options.push(
            (any::<bool>(), formula(narrow, depth - 1))
                .prop_map(move |(signed, a)| {
                    if signed {
                        Bv::SExt { width, arg: Box::new(a) }
                    } else {
                        Bv::ZExt { width, arg: Box::new(a) }
                    }
                })
                .boxed(),
        );
    }
    // Extraction from a wider sub-formula.
    if width < 64 {
        let wide = width * 2;
        options.push(
            (0..(wide - width + 1), formula(wide, depth - 1))
                .prop_map(move |(lo, a)| Bv::Extract {
                    hi: lo + width - 1,
                    lo,
                    arg: Box::new(a),
                })
                .boxed(),
        );
    }
    // Concat of two halves (keeps total width).
    if width.is_multiple_of(2) && width >= 4 {
        let half = width / 2;
        options.push(
            (formula(half, depth - 1), formula(half, depth - 1))
                .prop_map(|(lo, hi)| Bv::Concat(vec![lo, hi]))
                .boxed(),
        );
    }
    // Ite on a comparison.
    options.push(
        (
            formula(width, depth - 1),
            formula(width, depth - 1),
            formula(width.min(32), depth - 1),
        )
            .prop_map(move |(t, e, c)| Bv::Ite {
                cond: Box::new(Bv::Cmp {
                    pred: vegen_ir::CmpPred::Slt,
                    lhs: Box::new(c.clone()),
                    rhs: Box::new(c),
                }),
                on_true: Box::new(t),
                on_false: Box::new(e),
            })
            .boxed(),
    );
    proptest::strategy::Union::new(options).boxed()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn simplify_preserves_semantics(
        e in formula(32, 3),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let s = simplify(&e);
        prop_assert_eq!(s.width(), e.width(), "width must be preserved");
        let mut env = HashMap::new();
        env.insert("a".to_string(), BigBits::from_u64(64, a));
        env.insert("b".to_string(), BigBits::from_u64(64, b));
        let before = eval_concrete(&e, &env);
        let after = eval_concrete(&s, &env);
        prop_assert_eq!(before.ok(), after.ok(), "simplify changed semantics:\n{}\nvs\n{}", e, s);
    }

    #[test]
    fn simplify_is_idempotent(e in formula(32, 3)) {
        let once = simplify(&e);
        let twice = simplify(&once);
        prop_assert_eq!(&once, &twice, "not a fixpoint: {} vs {}", once, twice);
    }

    #[test]
    fn simplify_never_grows(e in formula(16, 3)) {
        let s = simplify(&e);
        prop_assert!(s.size() <= e.size() + 2, "simplifier grew {} -> {}", e.size(), s.size());
    }
}
