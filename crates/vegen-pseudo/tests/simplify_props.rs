//! Property tests: the formula simplifier (the z3 stand-in) preserves
//! concrete semantics on arbitrary well-formed bit-vector formulas.
//!
//! Formulas are generated with the in-tree deterministic [`XorShift`]
//! stream (the repo builds offline; see `vegen_ir::rng`).

use std::collections::HashMap;
use vegen_ir::rng::XorShift;
use vegen_pseudo::bv::{eval_concrete, BigBits, Bv, BvBinOp};
use vegen_pseudo::simplify::simplify;

/// Generate formulas over two 64-bit inputs. Widths are tracked so every
/// generated tree is well-formed; arithmetic stays at width <= 64.
fn leaf(r: &mut XorShift, width: u32) -> Bv {
    if r.bool() {
        Bv::Const { width, bits: r.next_u64() & vegen_ir::constant::mask(width) }
    } else {
        let name = if r.below(2) == 0 { "a" } else { "b" };
        let lo = r.below((64 - width + 1) as usize) as u32;
        Bv::Input { name: name.into(), hi: lo + width - 1, lo }
    }
}

fn formula(r: &mut XorShift, width: u32, depth: u32) -> Bv {
    if depth == 0 {
        return leaf(r, width);
    }
    // The option set mirrors the old proptest union: leaf, binary op, and —
    // where the width permits — extension, extraction, concat, and ite.
    let mut options: Vec<u8> = vec![0, 1];
    if width > 8 {
        options.push(2);
    }
    if width < 64 {
        options.push(3);
    }
    if width.is_multiple_of(2) && width >= 4 {
        options.push(4);
    }
    options.push(5);
    match options[r.below(options.len())] {
        0 => leaf(r, width),
        1 => {
            let ops =
                [BvBinOp::Add, BvBinOp::Sub, BvBinOp::Mul, BvBinOp::And, BvBinOp::Or, BvBinOp::Xor];
            let op = ops[r.below(ops.len())];
            let lhs = formula(r, width, depth - 1);
            let rhs = formula(r, width, depth - 1);
            Bv::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
        }
        2 => {
            // Extension of a narrower sub-formula.
            let narrow = width / 2;
            let a = formula(r, narrow, depth - 1);
            if r.bool() {
                Bv::SExt { width, arg: Box::new(a) }
            } else {
                Bv::ZExt { width, arg: Box::new(a) }
            }
        }
        3 => {
            // Extraction from a wider sub-formula.
            let wide = width * 2;
            let lo = r.below((wide - width + 1) as usize) as u32;
            let a = formula(r, wide, depth - 1);
            Bv::Extract { hi: lo + width - 1, lo, arg: Box::new(a) }
        }
        4 => {
            // Concat of two halves (keeps total width).
            let half = width / 2;
            let lo = formula(r, half, depth - 1);
            let hi = formula(r, half, depth - 1);
            Bv::Concat(vec![lo, hi])
        }
        _ => {
            // Ite on a comparison.
            let t = formula(r, width, depth - 1);
            let e = formula(r, width, depth - 1);
            let c = formula(r, width.min(32), depth - 1);
            Bv::Ite {
                cond: Box::new(Bv::Cmp {
                    pred: vegen_ir::CmpPred::Slt,
                    lhs: Box::new(c.clone()),
                    rhs: Box::new(c),
                }),
                on_true: Box::new(t),
                on_false: Box::new(e),
            }
        }
    }
}

#[test]
fn simplify_preserves_semantics() {
    let mut r = XorShift::new(0x51F1_0001);
    for case in 0..256u32 {
        let e = formula(&mut r, 32, 3);
        let a = r.next_u64();
        let b = r.next_u64();
        let s = simplify(&e);
        assert_eq!(s.width(), e.width(), "case {case}: width must be preserved");
        let mut env = HashMap::new();
        env.insert("a".to_string(), BigBits::from_u64(64, a));
        env.insert("b".to_string(), BigBits::from_u64(64, b));
        let before = eval_concrete(&e, &env);
        let after = eval_concrete(&s, &env);
        assert_eq!(
            before.ok(),
            after.ok(),
            "case {case}: simplify changed semantics:\n{e}\nvs\n{s}"
        );
    }
}

#[test]
fn simplify_is_idempotent() {
    let mut r = XorShift::new(0x51F1_0002);
    for case in 0..256u32 {
        let e = formula(&mut r, 32, 3);
        let once = simplify(&e);
        let twice = simplify(&once);
        assert_eq!(once, twice, "case {case}: not a fixpoint: {once} vs {twice}");
    }
}

#[test]
fn simplify_never_grows() {
    let mut r = XorShift::new(0x51F1_0003);
    for case in 0..256u32 {
        let e = formula(&mut r, 16, 3);
        let s = simplify(&e);
        assert!(
            s.size() <= e.size() + 2,
            "case {case}: simplifier grew {} -> {}",
            e.size(),
            s.size()
        );
    }
}
