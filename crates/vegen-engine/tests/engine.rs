//! Engine integration tests: determinism across runs and engines, cache
//! behavior on warm batches, and serial/parallel agreement.

use std::sync::Arc;
use vegen::driver::PipelineConfig;
use vegen_core::BeamConfig;
use vegen_engine::{Engine, EngineConfig, Job};
use vegen_isa::TargetIsa;
use vegen_vm::listing;

/// A cheap but non-trivial batch: the OpenCV dot products plus a few isel
/// tests, at a small beam width so debug-mode CI stays fast.
fn batch() -> Vec<Job> {
    // idct4/chroma are the saturating kernels whose clamp constants once
    // exposed HashSet-ordered (nondeterministic) canonicalization.
    let names = [
        "int8x32", "uint8x32", "int32x8", "int16x16", "pmaddwd", "hadd_i16", "max_pd", "idct4",
        "chroma",
    ];
    let pipeline = PipelineConfig {
        target: TargetIsa::avx2(),
        beam: BeamConfig::with_width(4),
        canonicalize_patterns: true,
    };
    names
        .iter()
        .map(|n| {
            let k = vegen_kernels::find(n).unwrap_or_else(|| panic!("kernel {n} must exist"));
            Job::new(k.name, (k.build)(), pipeline.clone())
        })
        .collect()
}

fn engine(threads: usize) -> Engine {
    Engine::new(EngineConfig { threads, verify_trials: 4, ..EngineConfig::default() })
}

/// All three program listings of a result set, for byte-exact comparison.
fn listings(results: &[vegen_engine::JobResult]) -> Vec<(String, String, String)> {
    results
        .iter()
        .map(|r| {
            let k = r.kernel.as_deref().expect("job produced a kernel");
            (listing(&k.scalar), listing(&k.baseline), listing(&k.vegen))
        })
        .collect()
}

/// The kernel `Arc` of a result that must have one.
fn arc(r: &vegen_engine::JobResult) -> &Arc<vegen::driver::CompiledKernel> {
    r.kernel.as_ref().expect("job produced a kernel")
}

#[test]
fn warm_run_is_all_hits_and_identical() {
    let jobs = batch();
    let engine = engine(4);
    let cold = engine.compile_batch(&jobs);
    assert!(cold.iter().all(|r| !r.cache_hit), "first run must miss everywhere");
    assert!(cold.iter().all(|r| r.verify_error.is_none()));

    let warm = engine.compile_batch(&jobs);
    assert!(warm.iter().all(|r| r.cache_hit), "second run must be 100% cache hits");
    assert_eq!(listings(&cold), listings(&warm), "programs must be byte-identical");
    // Hits share the cold run's Arc — one compilation per content address.
    for (c, w) in cold.iter().zip(&warm) {
        assert!(Arc::ptr_eq(arc(c), arc(w)), "{}", c.name);
        assert_eq!(c.hash, w.hash);
    }
    let stats = engine.cache_stats();
    assert_eq!(stats.hits as usize, jobs.len());
    assert_eq!(stats.misses as usize, jobs.len());
    assert_eq!(engine.counters().compilations as usize, jobs.len());
}

#[test]
fn independent_engines_agree_byte_for_byte() {
    let jobs = batch();
    let a = engine(2).compile_batch(&jobs);
    let b = engine(7).compile_batch(&jobs);
    assert_eq!(listings(&a), listings(&b), "fresh engines must produce identical programs");
    // Content addresses are stable across engines too (FNV, not SipHash).
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(ra.hash, rb.hash, "{}", ra.name);
    }
}

#[test]
fn parallel_compilation_matches_serial() {
    let jobs = batch();
    let serial = engine(1).compile_batch(&jobs);
    for threads in [2, 4, 8] {
        let parallel = engine(threads).compile_batch(&jobs);
        assert_eq!(
            serial.iter().map(|r| &r.name).collect::<Vec<_>>(),
            parallel.iter().map(|r| &r.name).collect::<Vec<_>>(),
            "results must be input-ordered at {threads} threads"
        );
        assert_eq!(
            listings(&serial),
            listings(&parallel),
            "thread count must not change generated code ({threads} threads)"
        );
    }
}

#[test]
fn identical_functions_share_one_compilation() {
    // Same body under different names: the cache is content-addressed, so
    // only one compilation happens and both jobs get the same Arc.
    let k = vegen_kernels::find("pmaddwd").unwrap();
    let pipeline = PipelineConfig {
        target: TargetIsa::avx2(),
        beam: BeamConfig::with_width(4),
        canonicalize_patterns: true,
    };
    let jobs = vec![
        Job::new("first", (k.build)(), pipeline.clone()),
        Job::new("second", (k.build)(), pipeline),
    ];
    let engine = engine(1);
    let results = engine.compile_batch(&jobs);
    assert_eq!(results[0].hash, results[1].hash);
    assert!(Arc::ptr_eq(arc(&results[0]), arc(&results[1])));
    assert_eq!(engine.counters().compilations, 1);
    assert_eq!(engine.cache_stats().hits, 1);
}
