//! Durability tests for the persistent on-disk compile cache: restart
//! replay, corrupt-entry rejection, stale-entry invalidation, concurrent
//! writers sharing one directory, and byte-identical entry files from
//! independent engines.

use std::path::PathBuf;
use vegen::driver::PipelineConfig;
use vegen_core::BeamConfig;
use vegen_engine::diskcache::ENTRY_SCHEMA;
use vegen_engine::{Engine, EngineConfig, Job, Rung};
use vegen_isa::TargetIsa;
use vegen_vm::listing;

const NAMES: [&str; 4] = ["pmaddwd", "int32x8", "hadd_i16", "max_pd"];

fn pipeline(width: usize) -> PipelineConfig {
    PipelineConfig {
        target: TargetIsa::avx2(),
        beam: BeamConfig::with_width(width),
        canonicalize_patterns: true,
    }
}

fn jobs() -> Vec<Job> {
    NAMES
        .iter()
        .map(|n| {
            let k = vegen_kernels::find(n).unwrap_or_else(|| panic!("kernel {n} must exist"));
            Job::new(k.name, (k.build)(), pipeline(4))
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vegen-diskcache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn engine_with(dir: &std::path::Path) -> Engine {
    let engine = Engine::new(EngineConfig {
        threads: 2,
        verify_trials: 4,
        cache_dir: Some(dir.to_path_buf()),
        ..Default::default()
    });
    assert_eq!(engine.disk_open_error(), None, "cache dir must open");
    engine
}

fn entry_files(dir: &std::path::Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .flatten()
        .map(|f| f.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    files
}

#[test]
fn restart_replays_entirely_from_disk_with_identical_programs() {
    let dir = temp_dir("restart");

    // Cold engine: all misses, all written through.
    let first = engine_with(&dir);
    let cold = first.compile_batch(&jobs());
    assert!(cold.iter().all(|r| r.rung == Rung::Primary && !r.cache_hit));
    assert_eq!(first.counters().disk_stores, NAMES.len() as u64);
    assert_eq!(first.counters().cache_io_errors, 0);
    let stats = first.disk_stats().expect("disk cache is configured");
    assert_eq!(stats.entries, NAMES.len());
    assert_eq!(stats.stores, NAMES.len() as u64);
    drop(first);

    // "Restarted" engine over the same directory: zero cold compiles,
    // every job a disk hit, with zero verification time (entries were
    // verified when written).
    let second = engine_with(&dir);
    let warm = second.compile_batch(&jobs());
    for (c, w) in cold.iter().zip(&warm) {
        assert!(w.cache_hit && w.disk_hit, "{} must be a disk hit", w.name);
        assert_eq!(w.cache_source(), "disk");
        assert_eq!(w.rung, Rung::Primary);
        assert!(w.faults.is_empty(), "{:?}", w.faults);
        assert_eq!(w.verify_time, std::time::Duration::ZERO);
        assert_eq!(c.hash, w.hash, "{}: same content address", w.name);
        // The decoded programs are byte-identical to the cold compile's.
        let (ck, wk) = (c.kernel.as_deref().unwrap(), w.kernel.as_deref().unwrap());
        assert_eq!(listing(&ck.vegen), listing(&wk.vegen), "{}", w.name);
        assert_eq!(listing(&ck.scalar), listing(&wk.scalar), "{}", w.name);
        assert_eq!(listing(&ck.baseline), listing(&wk.baseline), "{}", w.name);
        // And still pass dynamic verification.
        wk.verify(8).unwrap_or_else(|e| panic!("{}: decoded kernel must verify: {e}", w.name));
    }
    let counters = second.counters();
    assert_eq!(counters.compilations, 0, "restart must not compile anything");
    assert_eq!(counters.disk_hits, NAMES.len() as u64);
    assert_eq!(counters.cache_io_errors, 0);

    // A third batch on the same engine is now pure memory hits.
    let memory = second.compile_batch(&jobs());
    assert!(memory.iter().all(|r| r.cache_hit && !r.disk_hit));
    assert!(memory.iter().all(|r| r.cache_source() == "memory"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn warm_start_preloads_the_memory_cache() {
    let dir = temp_dir("warmstart");
    engine_with(&dir).compile_batch(&jobs());

    let engine = engine_with(&dir);
    assert_eq!(engine.warm_start(), NAMES.len());
    let results = engine.compile_batch(&jobs());
    // Warm start loads into the *memory* cache, so jobs don't even touch
    // disk.
    assert!(results.iter().all(|r| r.cache_hit && !r.disk_hit));
    assert_eq!(engine.counters().compilations, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_entries_are_rejected_deleted_and_recompiled() {
    let dir = temp_dir("corrupt");
    engine_with(&dir).compile_batch(&jobs());
    let files = entry_files(&dir);
    assert_eq!(files.len(), NAMES.len());

    // Truncate one entry mid-document and scribble over another: both are
    // corrupt, not stale.
    let text = std::fs::read_to_string(&files[0]).unwrap();
    std::fs::write(&files[0], &text[..text.len() / 2]).unwrap();
    std::fs::write(&files[1], "{\"schema\": 42}").unwrap();

    let engine = engine_with(&dir);
    let results = engine.compile_batch(&jobs());
    // Every job still succeeds at the primary rung; the two corrupt jobs
    // recompiled with a typed cache_io fault each.
    assert!(results.iter().all(|r| r.rung == Rung::Primary));
    let faulted: Vec<&vegen_engine::JobResult> =
        results.iter().filter(|r| !r.faults.is_empty()).collect();
    assert_eq!(faulted.len(), 2, "{results:?}");
    for r in &faulted {
        assert!(!r.cache_hit, "{} recompiled", r.name);
        assert_eq!(r.faults.len(), 1);
        assert_eq!(r.faults[0].cause.tag(), "cache_io");
        assert_eq!(r.faults[0].stage.name(), "cache");
    }
    let counters = engine.counters();
    assert_eq!(counters.cache_io_errors, 2);
    assert_eq!(counters.compilations, 2);
    assert_eq!(counters.disk_hits, (NAMES.len() - 2) as u64);
    // Corrupt jobs are not compile failures.
    assert_eq!(counters.failures, 0);
    let stats = engine.disk_stats().unwrap();
    assert_eq!(stats.corrupt, 2);
    // The rejected entries were deleted and rewritten by the recompile.
    assert_eq!(stats.entries, NAMES.len());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stale_schema_or_fingerprint_invalidates_silently() {
    let dir = temp_dir("stale");
    engine_with(&dir).compile_batch(&jobs());
    let files = entry_files(&dir);

    // An entry from a hypothetical older build: well-formed, wrong
    // version header.
    let old =
        std::fs::read_to_string(&files[0]).unwrap().replace(ENTRY_SCHEMA, "vegen-cache-entry/v0");
    assert_ne!(old, std::fs::read_to_string(&files[0]).unwrap());
    std::fs::write(&files[0], old).unwrap();
    // An entry whose instruction database has since changed.
    let other = std::fs::read_to_string(&files[1]).unwrap();
    let marker = "\"fingerprint\":\"";
    let fp_start = other.find(marker).unwrap() + marker.len();
    let mut swapped = other.clone();
    swapped.replace_range(fp_start..fp_start + 32, &"0".repeat(32));
    std::fs::write(&files[1], swapped).unwrap();

    let engine = engine_with(&dir);
    let results = engine.compile_batch(&jobs());
    // Stale entries recompile silently: no faults, no cache_io errors.
    assert!(results.iter().all(|r| r.rung == Rung::Primary && r.faults.is_empty()));
    let counters = engine.counters();
    assert_eq!(counters.cache_io_errors, 0);
    assert_eq!(counters.compilations, 2);
    assert_eq!(counters.disk_hits, (NAMES.len() - 2) as u64);
    let stats = engine.disk_stats().unwrap();
    assert_eq!(stats.invalidated, 2);
    assert_eq!(stats.corrupt, 0);
    assert_eq!(stats.entries, NAMES.len(), "stale entries were replaced");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_engines_share_one_directory_safely() {
    let dir = temp_dir("concurrent");
    // Two engines, two threads each, racing over the same directory and
    // the same job set: atomic writes mean nobody ever reads a torn
    // entry, and the survivors are valid.
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let dir = dir.clone();
            scope.spawn(move || {
                let engine = engine_with(&dir);
                let results = engine.compile_batch(&jobs());
                assert!(results.iter().all(|r| r.rung == Rung::Primary));
                assert!(results.iter().all(|r| r.faults.is_empty()), "{results:?}");
            });
        }
    });
    // Whatever interleaving happened, a fresh engine replays fully from
    // the surviving entries.
    let reader = engine_with(&dir);
    let results = reader.compile_batch(&jobs());
    assert!(results.iter().all(|r| r.disk_hit), "{results:?}");
    assert_eq!(reader.counters().compilations, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn independent_engines_write_byte_identical_kernels() {
    let (dir_a, dir_b) = (temp_dir("bytes-a"), temp_dir("bytes-b"));
    engine_with(&dir_a).compile_batch(&jobs());
    engine_with(&dir_b).compile_batch(&jobs());
    let (files_a, files_b) = (entry_files(&dir_a), entry_files(&dir_b));
    assert_eq!(files_a.len(), NAMES.len());
    assert_eq!(
        files_a.iter().map(|p| p.file_name().unwrap().to_owned()).collect::<Vec<_>>(),
        files_b.iter().map(|p| p.file_name().unwrap().to_owned()).collect::<Vec<_>>(),
        "deterministic pipeline, same content addresses"
    );
    // Whole files differ only in measurements (stage times and the
    // beam's wall counter); with those normalized, the serialized
    // compilation must render byte-for-byte the same.
    use vegen_engine::json::Json;
    fn zero_field(doc: &mut Json, path: &[&str]) {
        let Json::Obj(pairs) = doc else { return };
        let Some((_, v)) = pairs.iter_mut().find(|(k, _)| k == path[0]) else { return };
        if path.len() == 1 {
            *v = Json::int(0);
        } else {
            zero_field(v, &path[1..]);
        }
    }
    for (a, b) in files_a.iter().zip(&files_b) {
        let kernel = |p: &PathBuf| {
            let doc = Json::parse(&std::fs::read_to_string(p).unwrap())
                .unwrap_or_else(|e| panic!("{}: {e}", p.display()));
            let mut kernel = doc.get("kernel").expect("entry has a kernel").clone();
            for wall in ["beam_wall_ns", "merge_wall_ns", "freeze_wall_ns"] {
                zero_field(&mut kernel, &["selection", "stats", wall]);
            }
            kernel.render()
        };
        assert_eq!(
            kernel(a),
            kernel(b),
            "{}: kernel bytes must be engine-independent",
            a.display()
        );
    }
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}
