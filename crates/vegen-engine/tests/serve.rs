//! Protocol tests for `vegen-engine serve`, driven through
//! [`vegen_engine::serve::serve_lines`] — the exact code path `--stdio`
//! runs, minus the process boundary.

use std::io::{Cursor, Write};
use std::sync::{Arc, Mutex};
use vegen_engine::json::Json;
use vegen_engine::serve::{serve_lines, ServeConfig};
use vegen_engine::{Engine, EngineConfig};

/// A clonable `Write` the daemon can own while the test keeps a handle.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl SharedBuf {
    /// Every response line, parsed.
    fn responses(&self) -> Vec<Json> {
        let bytes = self.0.lock().unwrap();
        let text = String::from_utf8(bytes.clone()).expect("responses are UTF-8");
        text.lines()
            .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad response line {l:?}: {e}")))
            .collect()
    }
}

fn engine() -> Engine {
    Engine::new(EngineConfig { threads: 2, verify_trials: 4, ..Default::default() })
}

/// Run a request script through the daemon; returns (responses, summary).
fn drive(
    engine: &Engine,
    cfg: &ServeConfig,
    lines: &str,
) -> (Vec<Json>, vegen_engine::serve::ServeSummary) {
    let out = SharedBuf::default();
    let summary = serve_lines(engine, cfg, Cursor::new(lines.to_string()), out.clone());
    (out.responses(), summary)
}

/// The response whose `id` is the given integer (requests and responses
/// interleave nondeterministically across the reader and dispatcher).
fn by_id(responses: &[Json], id: i64) -> &Json {
    responses
        .iter()
        .find(|r| r.get("id").and_then(Json::as_f64) == Some(id as f64))
        .unwrap_or_else(|| panic!("no response with id {id}: {responses:?}"))
}

fn ok(r: &Json) -> &Json {
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r:?}");
    r.get("result").expect("ok response has a result")
}

fn err(r: &Json) -> &Json {
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false), "{r:?}");
    r.get("error").expect("error response has an error")
}

#[test]
fn round_trip_over_stdio_covers_every_op() {
    let engine = engine();
    // An inline function request: serialize a real kernel's IR through
    // the serdes wire format.
    let dot = vegen_kernels::find("pmaddwd").unwrap();
    let inline = vegen_engine::serdes::function_to_json(&(dot.build)()).render();
    let script = format!(
        "{}\n{}\n{}\n{}\n{}\n",
        r#"{"op":"ping","id":1}"#,
        r#"{"op":"kernels","id":2}"#,
        r#"{"op":"compile","id":3,"kernel":"int32x8","beam":4}"#,
        format_args!(r#"{{"op":"compile","id":4,"function":{inline},"beam":4}}"#),
        r#"{"op":"metrics","id":5}"#,
    );
    let (responses, summary) = drive(&engine, &ServeConfig::default(), &script);
    assert_eq!(responses.len(), 5, "{responses:?}");
    assert_eq!(summary.requests, 5);
    assert_eq!(summary.compiles, 2);
    assert_eq!(summary.protocol_errors, 0);

    assert_eq!(ok(by_id(&responses, 1)).get("pong").and_then(Json::as_bool), Some(true));

    let kernels = ok(by_id(&responses, 2)).get("kernels").unwrap().as_arr().unwrap();
    assert_eq!(kernels.len(), vegen_kernels::all().len());
    assert!(kernels.iter().any(|k| k.as_str() == Some("pmaddwd")));

    for id in [3, 4] {
        let result = ok(by_id(&responses, id));
        assert_eq!(result.get("failed").and_then(Json::as_bool), Some(false), "{result:?}");
        assert_eq!(result.get("rung").and_then(Json::as_str), Some("primary"));
        assert!(result.get("faults").unwrap().as_arr().unwrap().is_empty());
        assert_eq!(result.get("verify_error"), Some(&Json::Null));
        let cycles = result.get("cycles").expect("successful compile reports cycles");
        assert!(cycles.get("vegen").unwrap().as_f64().unwrap() > 0.0);
        assert!(result.get("speedup_scalar").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(result.get("hash").unwrap().as_str().map(str::len), Some(32));
    }
    assert_eq!(ok(by_id(&responses, 3)).get("name").and_then(Json::as_str), Some("int32x8"));
    assert_eq!(ok(by_id(&responses, 4)).get("name").and_then(Json::as_str), Some("pmaddwd"));

    // The metrics snapshot is read *after* both compiles were admitted
    // but maybe before they ran; the lifetime counters on the shared
    // engine must still be coherent by the time the daemon has drained.
    let metrics = ok(by_id(&responses, 5));
    assert!(metrics.get("counters").unwrap().get("compilations").is_some());
    let queue = metrics.get("queue").unwrap();
    assert_eq!(queue.get("capacity").and_then(Json::as_f64), Some(64.0));
    assert_eq!(metrics.get("disk"), Some(&Json::Null), "no cache dir configured");
    assert_eq!(engine.counters().compilations, 2);
}

#[test]
fn protocol_errors_are_typed_and_do_not_kill_the_daemon() {
    let engine = engine();
    let script = concat!(
        "this is not json\n",
        r#"{"op":"frobnicate","id":1}"#,
        "\n",
        r#"{"op":"compile","id":2}"#,
        "\n",
        r#"{"op":"compile","id":3,"kernel":"no-such-kernel"}"#,
        "\n",
        r#"{"op":"compile","id":4,"kernel":"pmaddwd","target":"Z80"}"#,
        "\n",
        r#"{"op":"ping","id":5}"#,
        "\n",
    );
    let (responses, summary) = drive(&engine, &ServeConfig::default(), script);
    assert_eq!(responses.len(), 6);
    assert_eq!(summary.protocol_errors, 5);
    assert_eq!(summary.compiles, 0);

    // The unparseable line still gets an answer, with a null id.
    let unparseable = responses
        .iter()
        .find(|r| r.get("id") == Some(&Json::Null))
        .expect("unparseable line is answered");
    assert!(err(unparseable).get("message").unwrap().as_str().unwrap().contains("unparseable"));

    for (id, needle) in
        [(1, "unknown op"), (2, "exactly one of"), (3, "unknown kernel"), (4, "unknown target")]
    {
        let e = err(by_id(&responses, id));
        assert_eq!(e.get("stage").and_then(Json::as_str), Some("admission"));
        assert_eq!(e.get("tag").and_then(Json::as_str), Some("protocol"));
        assert!(e.get("message").unwrap().as_str().unwrap().contains(needle), "id {id}: {e:?}");
    }
    // And the daemon kept serving afterwards.
    ok(by_id(&responses, 5));
}

#[test]
fn zero_deadline_expires_in_the_queue_with_a_typed_error() {
    let engine = engine();
    let script = r#"{"op":"compile","id":1,"kernel":"pmaddwd","deadline_ms":0}"#.to_string() + "\n";
    let (responses, summary) = drive(&engine, &ServeConfig::default(), &script);
    assert_eq!(responses.len(), 1);
    assert_eq!(summary.expired, 1);
    assert_eq!(summary.compiles, 0);
    let e = err(&responses[0]);
    assert_eq!(e.get("stage").and_then(Json::as_str), Some("admission"));
    assert_eq!(e.get("tag").and_then(Json::as_str), Some("deadline"));
    // Nothing reached the engine.
    assert_eq!(engine.counters().compilations, 0);
}

#[test]
fn full_queue_sheds_with_a_typed_overloaded_error() {
    let engine = engine();
    let cfg = ServeConfig { queue_capacity: 1, ..Default::default() };
    // The first compile occupies the dispatcher; with capacity 1, at most
    // one more can wait — the rest of the burst must shed.
    let burst: String = (1..=8)
        .map(|i| format!("{{\"op\":\"compile\",\"id\":{i},\"kernel\":\"pmaddwd\",\"beam\":4}}\n"))
        .collect();
    let (responses, summary) = drive(&engine, &cfg, &burst);
    assert_eq!(responses.len(), 8, "every request is answered: {responses:?}");
    assert_eq!(summary.compiles + summary.shed, 8);
    assert!(summary.shed >= 1, "a 1-deep queue cannot absorb an 8-burst: {summary:?}");
    let shed: Vec<&Json> =
        responses.iter().filter(|r| r.get("ok").and_then(Json::as_bool) == Some(false)).collect();
    assert_eq!(shed.len() as u64, summary.shed);
    for r in shed {
        let e = err(r);
        assert_eq!(e.get("stage").and_then(Json::as_str), Some("admission"));
        assert_eq!(e.get("tag").and_then(Json::as_str), Some("overloaded"));
        assert!(e.get("message").unwrap().as_str().unwrap().contains("queue full"));
    }
}

#[test]
fn shutdown_drains_every_admitted_job_before_exiting() {
    let engine = engine();
    let names = ["pmaddwd", "int32x8", "hadd_i16", "max_pd"];
    let mut script: String = names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            format!("{{\"op\":\"compile\",\"id\":{},\"kernel\":\"{n}\",\"beam\":4}}\n", i + 1)
        })
        .collect();
    script.push_str(r#"{"op":"shutdown","id":99}"#);
    script.push('\n');
    // Anything after shutdown on the same stream is never read.
    script.push_str(r#"{"op":"ping","id":100}"#);
    script.push('\n');

    let (responses, summary) = drive(&engine, &ServeConfig::default(), &script);
    assert_eq!(summary.compiles, names.len() as u64, "drain answers every admitted job");
    assert_eq!(summary.shed, 0);
    // shutdown ack + one response per compile; the post-shutdown ping is
    // unanswered.
    assert_eq!(responses.len(), names.len() + 1);
    assert!(responses.iter().all(|r| r.get("id").and_then(Json::as_f64) != Some(100.0)));
    assert_eq!(ok(by_id(&responses, 99)).get("draining").and_then(Json::as_bool), Some(true));
    for (i, n) in names.iter().enumerate() {
        let result = ok(by_id(&responses, (i + 1) as i64));
        assert_eq!(result.get("name").and_then(Json::as_str), Some(*n));
        assert_eq!(result.get("failed").and_then(Json::as_bool), Some(false));
    }
}

#[test]
fn serve_sessions_share_the_engine_cache() {
    let engine = engine();
    let script = r#"{"op":"compile","id":1,"kernel":"pmaddwd","beam":4}"#.to_string() + "\n";
    let (first, _) = drive(&engine, &ServeConfig::default(), &script);
    assert_eq!(ok(&first[0]).get("cache").and_then(Json::as_str), Some("miss"));
    let compiled = engine.counters().compilations;
    assert!(compiled >= 1);

    // A second daemon session over the same engine is served from the
    // in-memory cache without recompiling.
    let (second, _) = drive(&engine, &ServeConfig::default(), &script);
    assert_eq!(ok(&second[0]).get("cache").and_then(Json::as_str), Some("memory"));
    assert_eq!(engine.counters().compilations, compiled);
}

#[test]
fn unix_socket_serves_multiple_connections_and_drains_on_shutdown() {
    use std::io::{BufRead, BufReader};
    use std::os::unix::net::UnixStream;

    let engine = engine();
    let path = std::env::temp_dir().join(format!("vegen-serve-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);

    std::thread::scope(|scope| {
        let daemon = {
            let (engine, path) = (&engine, path.clone());
            scope.spawn(move || {
                vegen_engine::serve::serve_socket(engine, &ServeConfig::default(), &path)
            })
        };
        // Wait for the socket to come up.
        let connect = || {
            for _ in 0..200 {
                if let Ok(s) = UnixStream::connect(&path) {
                    return s;
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            panic!("daemon never bound {}", path.display());
        };

        // First client: a compile it waits out.
        let mut a = connect();
        writeln!(a, r#"{{"op":"compile","id":1,"kernel":"pmaddwd","beam":4}}"#).unwrap();
        let mut a_reader = BufReader::new(a.try_clone().unwrap());
        let mut line = String::new();
        a_reader.read_line(&mut line).unwrap();
        let r = Json::parse(&line).unwrap();
        assert_eq!(ok(&r).get("name").and_then(Json::as_str), Some("pmaddwd"));

        // Second client asks for shutdown; the daemon acks, drains, and
        // exits, unblocking the first client's reader with EOF.
        let mut b = connect();
        writeln!(b, r#"{{"op":"shutdown","id":2}}"#).unwrap();
        let mut b_reader = BufReader::new(b);
        line.clear();
        b_reader.read_line(&mut line).unwrap();
        assert_eq!(
            ok(&Json::parse(&line).unwrap()).get("draining").and_then(Json::as_bool),
            Some(true)
        );

        let summary = daemon.join().expect("daemon must not panic").expect("bind must succeed");
        assert_eq!(summary.requests, 2);
        assert_eq!(summary.compiles, 1);
    });
    assert!(!path.exists(), "socket file is removed on exit");
}

#[test]
fn stdio_binary_smoke_round_trip() {
    use std::process::{Command, Stdio};
    let mut child = Command::new(env!("CARGO_BIN_EXE_vegen-engine"))
        .args(["serve", "--stdio", "--beam", "4", "--no-verify"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary must run");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(
            concat!(
                r#"{"op":"ping","id":1}"#,
                "\n",
                r#"{"op":"compile","id":2,"kernel":"pmaddwd"}"#,
                "\n",
                r#"{"op":"shutdown","id":3}"#,
                "\n",
            )
            .as_bytes(),
        )
        .unwrap();
    let output = child.wait_with_output().unwrap();
    assert_eq!(output.status.code(), Some(0), "{}", String::from_utf8_lossy(&output.stderr));
    let stdout = String::from_utf8(output.stdout).unwrap();
    let lines: Vec<Json> = stdout.lines().map(|l| Json::parse(l).unwrap()).collect();
    assert_eq!(lines.len(), 3, "{stdout}");
    assert!(lines.iter().any(|r| r
        .get("result")
        .and_then(|x| x.get("name"))
        .and_then(Json::as_str)
        == Some("pmaddwd")));
    assert!(String::from_utf8_lossy(&output.stderr).contains("drained"));
}
