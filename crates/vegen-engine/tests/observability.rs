//! Observability integration tests: verification-failure reporting, the
//! v4 report round-trip, trace capture across the engine's layers, the
//! decision log, and the `diff`/`explain`/`lint` subcommands (library and
//! binary).

use std::sync::Arc;
use vegen::driver::{compile, PipelineConfig};
use vegen_core::BeamConfig;
use vegen_engine::cli::{diff_reports, failing_kernels, main_with_args, DiffConfig};
use vegen_engine::json::Json;
use vegen_engine::report::EngineReport;
use vegen_engine::{Engine, EngineConfig, Job};
use vegen_isa::TargetIsa;
use vegen_vm::listing;

fn pipeline(width: usize) -> PipelineConfig {
    PipelineConfig {
        target: TargetIsa::avx2(),
        beam: BeamConfig::with_width(width),
        canonicalize_patterns: true,
    }
}

fn jobs_for(names: &[&str], pipeline: &PipelineConfig) -> Vec<Job> {
    names
        .iter()
        .map(|n| {
            let k = vegen_kernels::find(n).unwrap_or_else(|| panic!("kernel {n} must exist"));
            Job::new(k.name, (k.build)(), pipeline.clone())
        })
        .collect()
}

fn small_report(decisions: bool) -> EngineReport {
    let engine = Engine::new(EngineConfig { threads: 2, verify_trials: 4, ..Default::default() });
    let mut pipeline = pipeline(4);
    pipeline.beam.log_decisions = decisions;
    let jobs = jobs_for(&["pmaddwd", "int32x8", "hadd_i16"], &pipeline);
    let t0 = std::time::Instant::now();
    let results = engine.compile_batch(&jobs);
    EngineReport {
        target: "avx2".to_string(),
        beam_width: 4,
        threads: 2,
        beam_threads: 0,
        verify_trials: 4,
        runs: vec![vegen_engine::report::RunReport::new("cold", t0.elapsed(), &results)],
        cache: engine.cache_stats(),
        disk: engine.disk_stats(),
        counters: engine.counters(),
        trace: Default::default(),
        match_table: Default::default(),
        soak: None,
    }
}

/// Two functions with identical buffer layouts but different semantics
/// (lane-wise add vs mul), so grafting one's program onto the other is a
/// genuine, runnable wrong answer.
fn lanewise(name: &str, mul: bool) -> vegen_ir::Function {
    let mut b = vegen_ir::FunctionBuilder::new(name);
    let a = b.param("A", vegen_ir::Type::I32, 8);
    let bb = b.param("B", vegen_ir::Type::I32, 8);
    let c = b.param("C", vegen_ir::Type::I32, 8);
    for i in 0..8i64 {
        let x = b.load(a, i);
        let y = b.load(bb, i);
        let r = if mul { b.mul(x, y) } else { b.add(x, y) };
        b.store(c, i, r);
    }
    b.finish()
}

#[test]
fn verification_failure_is_surfaced_with_kernel_name() {
    // A genuine failure: graft the mul kernel's vectorized program onto
    // the add kernel — equivalence checking must catch the divergence.
    let mut ck_add = compile(&lanewise("vadd", false), &pipeline(4));
    let ck_mul = compile(&lanewise("vmul", true), &pipeline(4));
    assert!(ck_add.verify(8).is_ok());
    ck_add.vegen = ck_mul.vegen;
    let err = ck_add.verify(8).expect_err("foreign program must fail verification");
    assert!(err.contains("vegen"), "failure must name the diverging program: {err}");

    // The engine surfaces failures per job; `failing_kernels` is the list
    // the suite prints to stderr (exiting nonzero) — check it selects
    // exactly the failed job, by name.
    let engine = Engine::new(EngineConfig { threads: 1, verify_trials: 4, ..Default::default() });
    let results = engine.compile_batch(&jobs_for(&["pmaddwd", "int32x8"], &pipeline(4)));
    assert!(failing_kernels(&results).is_empty());
    let mut results = results;
    results[1].verify_error = Some(err);
    assert_eq!(failing_kernels(&results), vec!["int32x8".to_string()]);
}

#[test]
fn engine_report_v6_round_trips_through_the_parser() {
    let report = small_report(true);
    let doc = report.to_json();
    // Render pretty, hand-parse, and walk the fields back out.
    let parsed = Json::parse(&doc.render_pretty()).expect("report must be valid JSON");
    assert_eq!(parsed, doc, "render → parse must be lossless");
    assert_eq!(parsed.get("schema").unwrap().as_str(), Some("vegen-engine-report/v10"));
    // The v10 soak block: absent (null) in a plain suite report.
    assert_eq!(parsed.get("soak"), Some(&Json::Null));
    // The v8 metrics-registry block: the process-wide registry snapshot.
    let metrics = parsed.get("metrics").expect("v8 report embeds the metrics registry");
    assert!(metrics.get("histograms").is_some() && metrics.get("counters").is_some());
    // The v9 match-table block: structural statistics of the audited table.
    let table = parsed.get("match_table").expect("v9 report embeds match-table stats");
    assert!(table.get("rules").is_some() && table.get("max_overlap_class").is_some());
    let trace = parsed.get("trace").expect("report has trace metadata");
    assert_eq!(trace.get("enabled").unwrap().as_bool(), Some(false));
    assert_eq!(trace.get("file"), Some(&Json::Null));
    let run = &parsed.get("runs").unwrap().as_arr().unwrap()[0];
    let kernel = &run.get("kernels").unwrap().as_arr().unwrap()[0];
    assert_eq!(kernel.get("name").unwrap().as_str(), Some("pmaddwd"));
    assert!(kernel.get("vegen_cycles").unwrap().as_f64().unwrap() > 0.0);
    let decisions = kernel.get("decisions").expect("log_decisions run has summaries");
    assert!(decisions.get("iterations").unwrap().as_f64().unwrap() >= 1.0);
    assert!(!decisions.get("committed_packs").unwrap().as_arr().unwrap().is_empty());
    // The v4 static-validation block: clean suite kernels prove all lanes.
    let analysis = kernel.get("analysis").expect("v4 has an analysis block");
    assert_eq!(analysis.get("errors").unwrap().as_f64(), Some(0.0));
    assert!(analysis.get("lanes_proved").unwrap().as_f64().unwrap() > 0.0);
    // The v5 fault-tolerance fields: a clean run is all primary-rung,
    // fault-free, with zeroed failure counters.
    assert_eq!(kernel.get("rung").unwrap().as_str(), Some("primary"));
    assert_eq!(kernel.get("failed").unwrap().as_bool(), Some(false));
    assert!(kernel.get("faults").unwrap().as_arr().unwrap().is_empty());
    let counters = parsed.get("counters").unwrap();
    assert!(counters.get("analyses").unwrap().as_f64().unwrap() >= 3.0);
    assert_eq!(counters.get("analysis_errors").unwrap().as_f64(), Some(0.0));
    for c in ["failures", "retries", "degradations", "deadline_hits"] {
        assert_eq!(counters.get(c).unwrap().as_f64(), Some(0.0), "{c}");
    }
    // The v6 persistent-cache fields: no --cache-dir here, so every kernel
    // is a memory-or-miss compile, the run counts zero disk hits, and the
    // disk block is null.
    assert_eq!(kernel.get("cache").unwrap().as_str(), Some("miss"));
    assert_eq!(run.get("disk_hits").unwrap().as_f64(), Some(0.0));
    for c in ["disk_hits", "disk_stores", "cache_io_errors"] {
        assert_eq!(counters.get(c).unwrap().as_f64(), Some(0.0), "{c}");
    }
    assert_eq!(parsed.get("disk"), Some(&Json::Null));
    let stage = kernel.get("stage_times").unwrap();
    assert!(stage.get("analysis_us").unwrap().as_f64().unwrap() >= 0.0);
    // And the compact rendering parses to the same tree.
    assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
}

#[test]
fn decision_summaries_are_absent_without_the_flag() {
    let report = small_report(false);
    let doc = report.to_json();
    let run = &doc.get("runs").unwrap().as_arr().unwrap()[0];
    for kernel in run.get("kernels").unwrap().as_arr().unwrap() {
        assert_eq!(kernel.get("decisions"), Some(&Json::Null));
    }
}

#[test]
fn diff_of_identical_reports_is_clean_and_regressions_are_caught() {
    let doc = small_report(false).to_json();
    let (regressions, _) = diff_reports(&doc, &doc, &DiffConfig::default()).unwrap();
    assert!(regressions.is_empty(), "a report must not regress against itself: {regressions:?}");

    // Worsen one kernel's cycles by 10% — past the 2% default threshold.
    let mut worse = doc.clone();
    bump_first_kernel_field(&mut worse, "vegen_cycles", 1.10);
    let (regressions, _) = diff_reports(&doc, &worse, &DiffConfig::default()).unwrap();
    assert_eq!(regressions.len(), 1, "{regressions:?}");
    assert!(regressions[0].what.contains("vegen_cycles"));

    // The same delta passes under a looser threshold.
    let cfg = DiffConfig { max_regress_pct: 15.0, ..Default::default() };
    let (regressions, _) = diff_reports(&doc, &worse, &cfg).unwrap();
    assert!(regressions.is_empty());

    // Counter growth is informational by default, gating under strict.
    let mut churn = doc.clone();
    bump_first_kernel_field(&mut churn, "states_expanded", 3.0);
    let (regressions, info) = diff_reports(&doc, &churn, &DiffConfig::default()).unwrap();
    assert!(regressions.is_empty());
    assert!(info.iter().any(|l| l.contains("states_expanded")), "{info:?}");
    let strict = DiffConfig { strict_counters: true, ..Default::default() };
    let (regressions, _) = diff_reports(&doc, &churn, &strict).unwrap();
    assert!(!regressions.is_empty());

    // A kernel disappearing is always a regression.
    let mut missing = doc.clone();
    drop_first_kernel(&mut missing);
    let (regressions, _) = diff_reports(&doc, &missing, &DiffConfig::default()).unwrap();
    assert!(regressions.iter().any(|r| r.what.contains("missing")), "{regressions:?}");
}

fn with_first_kernel(doc: &mut Json, f: impl FnOnce(&mut Vec<Json>)) {
    let Json::Obj(top) = doc else { panic!("report is an object") };
    let runs = &mut top.iter_mut().find(|(k, _)| k == "runs").unwrap().1;
    let Json::Arr(runs) = runs else { panic!() };
    let Json::Obj(run) = &mut runs[0] else { panic!() };
    let kernels = &mut run.iter_mut().find(|(k, _)| k == "kernels").unwrap().1;
    let Json::Arr(kernels) = kernels else { panic!() };
    f(kernels);
}

fn bump_first_kernel_field(doc: &mut Json, field: &str, factor: f64) {
    with_first_kernel(doc, |kernels| {
        let Json::Obj(kernel) = &mut kernels[0] else { panic!() };
        let v = &mut kernel.iter_mut().find(|(k, _)| k == field).unwrap().1;
        let Json::Num(n) = v else { panic!() };
        *n *= factor;
    });
}

fn drop_first_kernel(doc: &mut Json) {
    with_first_kernel(doc, |kernels| {
        kernels.remove(0);
    });
}

#[test]
fn trace_session_captures_all_three_layers_without_perturbing_codegen() {
    let batch_names = ["pmaddwd", "int32x8", "hadd_i16", "max_pd"];
    // Reference run, tracing off.
    let plain = Engine::new(EngineConfig { threads: 2, verify_trials: 4, ..Default::default() })
        .compile_batch(&jobs_for(&batch_names, &pipeline(4)));

    vegen_trace::enable(vegen_trace::DEFAULT_CAPACITY);
    let traced = Engine::new(EngineConfig { threads: 2, verify_trials: 4, ..Default::default() })
        .compile_batch(&jobs_for(&batch_names, &pipeline(4)));
    let data = vegen_trace::drain();
    vegen_trace::disable();

    // Observation only: identical programs with tracing on.
    for (p, t) in plain.iter().zip(&traced) {
        let (pk, tk) = (p.kernel.as_deref().unwrap(), t.kernel.as_deref().unwrap());
        assert_eq!(listing(&pk.vegen), listing(&tk.vegen), "{}", p.name);
        assert_eq!(p.hash, t.hash);
    }

    // All three instrumented layers show up.
    let events: Vec<_> = data.threads.iter().flat_map(|t| &t.events).collect();
    let has = |cat: &str, name: &str| events.iter().any(|e| e.cat == cat && e.name == name);
    assert!(has("driver", "selection") && has("driver", "lowering"), "driver stage spans");
    assert!(has("engine", "cache_miss") && has("engine", "verify"), "engine cache/verify events");
    assert!(has("pool", "job"), "pool job spans");
    assert!(has("beam", "select_packs") && has("beam", "frontier"), "beam spans + counters");

    // Both exports are well-formed.
    let chrome = vegen_trace::export::chrome_trace(&data);
    let reparsed = Json::parse(&chrome.render()).unwrap();
    assert!(!reparsed.get("traceEvents").unwrap().as_arr().unwrap().is_empty());
    let folded = vegen_trace::export::folded_stacks(&data);
    assert!(
        folded.lines().any(|l| l.contains("select_packs")),
        "folded stacks must contain beam frames:\n{folded}"
    );
}

#[test]
fn explain_subcommand_exits_clean_and_rejects_unknown_kernels() {
    let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
    assert_eq!(main_with_args(&args(&["explain", "pmaddwd", "--beam", "4"])), 0);
    assert_eq!(main_with_args(&args(&["explain", "no-such-kernel"])), 2);
    assert_eq!(main_with_args(&args(&["explain"])), 2);
}

#[test]
fn check_specs_subcommand_gates_on_corruption() {
    let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
    // The in-tree chain audits clean; a corrupted database gates with
    // exit 1; a bogus corruption kind is a usage error.
    assert_eq!(main_with_args(&args(&["check-specs", "--target", "sse4"])), 0);
    assert_eq!(
        main_with_args(&args(&["check-specs", "--target", "sse4", "--corrupt", "neg-cost"])),
        1
    );
    assert_eq!(main_with_args(&args(&["check-specs", "--corrupt", "bogus"])), 2);
}

#[test]
fn diff_binary_reports_exit_codes() {
    let dir = std::env::temp_dir().join(format!("vegen-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let doc = small_report(false).to_json();
    let old = dir.join("old.json");
    std::fs::write(&old, doc.render_pretty()).unwrap();
    let mut worse_doc = doc.clone();
    bump_first_kernel_field(&mut worse_doc, "vegen_cycles", 1.5);
    let worse = dir.join("worse.json");
    std::fs::write(&worse, worse_doc.render_pretty()).unwrap();

    let run = |a: &std::path::Path, b: &std::path::Path| {
        std::process::Command::new(env!("CARGO_BIN_EXE_vegen-engine"))
            .args(["diff", a.to_str().unwrap(), b.to_str().unwrap()])
            .output()
            .expect("binary must run")
    };
    let same = run(&old, &old);
    assert_eq!(same.status.code(), Some(0), "{}", String::from_utf8_lossy(&same.stdout));
    assert!(String::from_utf8_lossy(&same.stdout).contains("no regressions"));

    let regressed = run(&old, &worse);
    assert_eq!(regressed.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&regressed.stdout).contains("REGRESSION"));

    let bad = run(&old, &dir.join("does-not-exist.json"));
    assert_eq!(bad.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shared_cache_arc_survives_decision_logging() {
    // log_decisions is part of the content hash (it rides in BeamConfig's
    // Debug form), so logged and unlogged runs must not collide in the
    // cache.
    let engine = Engine::new(EngineConfig { threads: 1, verify_trials: 0, ..Default::default() });
    let mut logged = pipeline(4);
    logged.beam.log_decisions = true;
    let a = engine.compile_batch(&jobs_for(&["pmaddwd"], &pipeline(4)));
    let b = engine.compile_batch(&jobs_for(&["pmaddwd"], &logged));
    assert_ne!(a[0].hash, b[0].hash, "configs differ, addresses must differ");
    assert!(!Arc::ptr_eq(a[0].kernel.as_ref().unwrap(), b[0].kernel.as_ref().unwrap()));
    let (ak, bk) = (a[0].kernel.as_deref().unwrap(), b[0].kernel.as_deref().unwrap());
    assert!(bk.selection.decisions.is_some());
    assert!(ak.selection.decisions.is_none());
    // Identical generated code either way.
    assert_eq!(listing(&ak.vegen), listing(&bk.vegen));
}

#[test]
fn lint_subcommand_gates_and_writes_artifact() {
    let dir = std::env::temp_dir().join(format!("vegen-lint-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("lint.json");
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_vegen-engine"))
        .args(["lint", "--beam", "4", "--out", out.to_str().unwrap()])
        .output()
        .expect("binary must run");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert_eq!(output.status.code(), Some(0), "lint must pass on the suite:\n{stdout}");
    assert!(stdout.contains("0 error(s)"), "{stdout}");
    let doc = Json::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
    assert_eq!(doc.get("schema").unwrap().as_str(), Some("vegen-engine-lint/v1"));
    assert_eq!(doc.get("errors").unwrap().as_f64(), Some(0.0));
    let kernels = doc.get("kernels").unwrap().as_arr().unwrap();
    assert_eq!(kernels.len(), vegen_kernels::all().len());
    for k in kernels {
        assert_eq!(k.get("errors").unwrap().as_f64(), Some(0.0), "{k:?}");
    }
    // Bad usage still exits 2.
    let bad = std::process::Command::new(env!("CARGO_BIN_EXE_vegen-engine"))
        .args(["lint", "--bogus"])
        .output()
        .unwrap();
    assert_eq!(bad.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}
