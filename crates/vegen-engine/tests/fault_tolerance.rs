//! Fault-injection tests of the engine's degradation ladder: injected
//! panics, errors, and deadline-tripping delays must degrade single jobs
//! — never abort a batch, never reorder it, never change the programs of
//! non-faulted kernels.

use std::sync::Mutex;
use std::time::Duration;
use vegen::driver::PipelineConfig;
use vegen::error::Stage;
use vegen::fault::{self, FaultKind, FaultPlan, FaultSpec};
use vegen_core::BeamConfig;
use vegen_engine::{Engine, EngineConfig, Job, Rung};
use vegen_isa::TargetIsa;
use vegen_vm::listing;

/// Fault plans are process-global, so every test that installs one must
/// hold this gate (tests in one binary run on parallel threads).
static FAULT_GATE: Mutex<()> = Mutex::new(());

/// Install `plan`, run `body`, and always clear the plan afterwards.
fn with_plan<R>(plan: FaultPlan, body: impl FnOnce() -> R) -> R {
    let _gate = FAULT_GATE.lock().unwrap_or_else(|e| e.into_inner());
    fault::install(plan);
    let result = body();
    fault::clear();
    result
}

const BATCH: [&str; 4] = ["pmaddwd", "int32x8", "hadd_i16", "max_pd"];

fn jobs() -> Vec<Job> {
    let pipeline = PipelineConfig {
        target: TargetIsa::avx2(),
        beam: BeamConfig::with_width(4),
        canonicalize_patterns: true,
    };
    BATCH
        .iter()
        .map(|name| {
            let k = vegen_kernels::find(name).unwrap();
            Job::new(k.name, (k.build)(), pipeline.clone())
        })
        .collect()
}

fn engine(cfg: EngineConfig) -> Engine {
    Engine::new(EngineConfig { verify_trials: 4, ..cfg })
}

#[test]
fn panic_mid_selection_degrades_to_width1_without_losing_siblings() {
    let plan = FaultPlan::parse("int32x8:selection:panic").unwrap();
    let results = with_plan(plan, || engine(EngineConfig::default()).compile_batch(&jobs()));

    // Input order and completeness survive the panic.
    assert_eq!(results.iter().map(|r| r.name.as_str()).collect::<Vec<_>>(), BATCH);
    for r in &results {
        assert!(r.kernel.is_some(), "{}: every job still produces a program", r.name);
        assert!(r.verify_error.is_none(), "{}", r.name);
        if r.name == "int32x8" {
            // The panic fired once; the width-1 retry succeeded.
            assert_eq!(r.rung, Rung::Width1, "one-shot fault must stop at the retry rung");
            assert_eq!(r.faults.len(), 1);
            let fault = r.faults[0].to_string();
            assert!(fault.contains("injected fault"), "typed fault carries the message: {fault}");
            assert!(fault.contains("selection"), "fault names the stage: {fault}");
        } else {
            assert_eq!(r.rung, Rung::Primary, "{}: siblings stay on the primary rung", r.name);
            assert!(r.faults.is_empty(), "{}", r.name);
        }
    }
}

#[test]
fn persistent_fault_falls_all_the_way_to_scalar() {
    // `!` = fire on every attempt: both search rungs fail, the scalar
    // fallback (which never runs selection) completes and verifies.
    let plan = FaultPlan::parse("hadd_i16:selection:error!").unwrap();
    let eng = engine(EngineConfig::default());
    let results = with_plan(plan, || eng.compile_batch(&jobs()));

    let r = results.iter().find(|r| r.name == "hadd_i16").unwrap();
    assert_eq!(r.rung, Rung::Scalar);
    assert_eq!(r.faults.len(), 2, "one typed fault per failed search rung: {:?}", r.faults);
    let ck = r.kernel.as_deref().unwrap();
    assert_eq!(listing(&ck.vegen), listing(&ck.scalar), "scalar rung serves scalar code");
    assert!(r.verify_error.is_none(), "the fallback still verifies");

    let c = eng.counters();
    assert!(c.failures >= 2, "counters: {c:?}");
    assert!(c.retries >= 1, "counters: {c:?}");
    assert!(c.degradations >= 1, "counters: {c:?}");
}

#[test]
fn deadline_exceeded_beam_degrades_to_width1() {
    // A one-shot 1s delay inside the selection stage burns the whole
    // 250ms job window, so the primary beam trips its wall budget; the
    // retry gets a fresh window (and no second delay) and succeeds.
    // Warm the target-description cache first: a cold offline-phase build
    // would eat the window at the stage boundary *before* the fault ever
    // fired, and the one-shot delay would hit the retry rung instead.
    let _ = vegen::driver::target_desc(&TargetIsa::avx2(), true);
    let plan = FaultPlan::new(vec![FaultSpec {
        kernel: "pmaddwd".to_string(),
        stage: Stage::Selection,
        kind: FaultKind::Delay(Duration::from_millis(1000)),
        once: true,
    }]);
    let eng = engine(EngineConfig {
        deadline: Some(Duration::from_millis(250)),
        // Single-threaded so the slow job cannot starve siblings of CPU
        // and push *them* over their own deadlines on a loaded machine.
        threads: 1,
        ..EngineConfig::default()
    });
    let results = with_plan(plan, || eng.compile_batch(&jobs()));

    let r = results.iter().find(|r| r.name == "pmaddwd").unwrap();
    assert_eq!(r.rung, Rung::Width1, "faults: {:?}", r.faults);
    assert!(r.faults[0].cause.is_timeout(), "the recorded fault is a timeout: {:?}", r.faults);
    assert!(eng.counters().deadline_hits >= 1);
    assert!(r.verify_error.is_none());
}

#[test]
fn non_faulted_kernels_are_byte_identical_to_a_fault_free_run() {
    let reference = {
        let _gate = FAULT_GATE.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!fault::active(), "no stale plan may leak into the reference run");
        engine(EngineConfig::default()).compile_batch(&jobs())
    };
    let plan = FaultPlan::parse("int32x8:selection:panic,max_pd:lowering:error").unwrap();
    let faulted = with_plan(plan, || engine(EngineConfig::default()).compile_batch(&jobs()));

    for (a, b) in reference.iter().zip(&faulted) {
        if a.name == "int32x8" || a.name == "max_pd" {
            continue;
        }
        let (ka, kb) = (a.kernel.as_deref().unwrap(), b.kernel.as_deref().unwrap());
        assert_eq!(b.rung, Rung::Primary, "{}", b.name);
        assert_eq!(listing(&ka.vegen), listing(&kb.vegen), "{}", a.name);
        assert_eq!(listing(&ka.baseline), listing(&kb.baseline), "{}", a.name);
        assert_eq!(listing(&ka.scalar), listing(&kb.scalar), "{}", a.name);
        assert_eq!(a.hash, b.hash, "{}", a.name);
    }
}

#[test]
fn seeded_plan_over_the_full_suite_completes_input_ordered() {
    let pipeline = PipelineConfig {
        target: TargetIsa::avx2(),
        beam: BeamConfig::with_width(4),
        canonicalize_patterns: true,
    };
    let jobs: Vec<Job> = vegen_kernels::all()
        .into_iter()
        .map(|k| Job::new(k.name, (k.build)(), pipeline.clone()))
        .collect();
    let names: Vec<&str> = jobs.iter().map(|j| j.name.as_str()).collect();
    let plan = FaultPlan::seeded(&names, 42, 3);
    let faulted: Vec<String> = plan.specs().map(|s| s.kernel.clone()).collect();
    assert_eq!(faulted.len(), 3);

    let eng = engine(EngineConfig::default());
    let results = with_plan(plan, || eng.compile_batch(&jobs));

    assert_eq!(
        results.iter().map(|r| r.name.as_str()).collect::<Vec<_>>(),
        names,
        "a seeded fault run must stay input-ordered"
    );
    for r in &results {
        assert!(r.kernel.is_some(), "{}: degraded, never lost", r.name);
        assert!(r.verify_error.is_none(), "{}", r.name);
        if !faulted.contains(&r.name) {
            assert_eq!(r.rung, Rung::Primary, "{}", r.name);
        }
    }
    // The panic spec (seed slot 0) must actually have knocked its kernel
    // off the primary rung; delay-without-deadline and one-shot specs may
    // legitimately still complete primary.
    assert!(
        results.iter().any(|r| r.rung != Rung::Primary),
        "at least one seeded fault must degrade its kernel"
    );
}

#[test]
fn fail_fast_skips_later_jobs_after_a_degradation() {
    // Persistent selection faults on the first kernel; with fail-fast on
    // and one worker, everything after the first sub-primary result is
    // skipped, not compiled.
    let plan = FaultPlan::parse("pmaddwd:selection:error!").unwrap();
    let eng = engine(EngineConfig { fail_fast: true, threads: 1, ..EngineConfig::default() });
    let results = with_plan(plan, || eng.compile_batch(&jobs()));

    assert_eq!(results[0].name, "pmaddwd");
    assert_eq!(results[0].rung, Rung::Scalar);
    assert!(
        results[1..].iter().all(|r| r.rung == Rung::Skipped && r.kernel.is_none()),
        "rungs: {:?}",
        results.iter().map(|r| r.rung).collect::<Vec<_>>()
    );
}
