//! Service-telemetry integration tests: the metrics registry across a
//! two-pass serve session (spawned binary over a Unix socket), Prometheus
//! text exposition, the structured job event log's lifecycle chains, and
//! the fault flight recorder.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;
use vegen::driver::PipelineConfig;
use vegen_core::BeamConfig;
use vegen_engine::json::Json;
use vegen_engine::{Engine, EngineConfig, Job};
use vegen_isa::TargetIsa;

fn pipeline(width: usize) -> PipelineConfig {
    PipelineConfig {
        target: TargetIsa::avx2(),
        beam: BeamConfig::with_width(width),
        canonicalize_patterns: true,
    }
}

fn jobs_for(names: &[&str], pipeline: &PipelineConfig) -> Vec<Job> {
    names
        .iter()
        .map(|n| {
            let k = vegen_kernels::find(n).unwrap_or_else(|| panic!("kernel {n} must exist"));
            Job::new(k.name, (k.build)(), pipeline.clone())
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vegen-telemetry-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// ---------------------------------------------------------------------------
// Serve daemon over a Unix socket: `stats` scraping, monotone counters,
// two-pass cache behavior, Prometheus exposition.
// ---------------------------------------------------------------------------

/// A running serve daemon (spawned binary) with one client connection.
struct Daemon {
    child: Child,
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Daemon {
    fn spawn(socket: &Path, extra_args: &[&str]) -> Daemon {
        let mut args = vec![
            "serve",
            "--socket",
            socket.to_str().unwrap(),
            "--beam",
            "4",
            "--no-verify",
            "--threads",
            "1",
        ];
        args.extend_from_slice(extra_args);
        let child = Command::new(env!("CARGO_BIN_EXE_vegen-engine"))
            .args(&args)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("binary must run");
        let stream = (0..400)
            .find_map(|_| {
                UnixStream::connect(socket).ok().or_else(|| {
                    std::thread::sleep(Duration::from_millis(5));
                    None
                })
            })
            .unwrap_or_else(|| panic!("daemon never bound {}", socket.display()));
        let reader = BufReader::new(stream.try_clone().unwrap());
        Daemon { child, reader, writer: stream }
    }

    /// Send one request line, read one response line, assert `ok`, return
    /// the result body.
    fn request(&mut self, line: &str) -> Json {
        writeln!(self.writer, "{line}").unwrap();
        let mut response = String::new();
        self.reader.read_line(&mut response).unwrap();
        let doc =
            Json::parse(&response).unwrap_or_else(|e| panic!("bad response {response:?}: {e}"));
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true), "{doc:?}");
        doc.get("result").expect("ok response has a result").clone()
    }

    fn shutdown(mut self) {
        let _ = writeln!(self.writer, r#"{{"op":"shutdown","id":"bye"}}"#);
        let mut ack = String::new();
        let _ = self.reader.read_line(&mut ack);
        let status = self.child.wait().expect("daemon must exit");
        assert!(status.success(), "daemon exit: {status:?}");
    }
}

fn counter(snapshot: &Json, name: &str) -> f64 {
    snapshot.get("counters").and_then(|c| c.get(name)).and_then(Json::as_f64).unwrap_or(0.0)
}

fn gauge(snapshot: &Json, name: &str) -> Option<f64> {
    snapshot.get("gauges").and_then(|g| g.get(name)).and_then(Json::as_f64)
}

fn histogram<'j>(snapshot: &'j Json, name: &str) -> Option<&'j Json> {
    snapshot.get("histograms").and_then(|h| h.get(name))
}

#[test]
fn two_pass_serve_session_exposes_latency_histograms_and_cache_ratio() {
    let dir = temp_dir("serve-stats");
    let socket = dir.join("daemon.sock");
    let cache = dir.join("cache");
    let cache_arg = cache.to_str().unwrap().to_string();

    // Pass one: cold — populate the disk cache.
    let mut daemon = Daemon::spawn(&socket, &["--cache-dir", &cache_arg]);
    for (i, kernel) in ["pmaddwd", "int32x8"].iter().enumerate() {
        let r = daemon.request(&format!(r#"{{"op":"compile","id":{i},"kernel":"{kernel}"}}"#));
        assert_eq!(r.get("cache").and_then(Json::as_str), Some("miss"), "{r:?}");
        // Every serve response carries the correlation id that threads
        // the event log and trace spans.
        let corr = r.get("corr").and_then(Json::as_str).expect("response has corr");
        assert!(corr.starts_with('c'), "{corr}");
    }
    let first = daemon.request(r#"{"op":"stats","id":"s1"}"#);
    let h = histogram(&first, "engine_compile_latency_us").expect("latency histogram exists");
    let field = |k: &str| h.get(k).and_then(Json::as_f64).unwrap();
    assert!(field("count") >= 2.0, "{h:?}");
    assert!(field("p50") > 0.0, "compiles are not instant: {h:?}");
    assert!(field("p50") <= field("p90") && field("p90") <= field("p99"), "{h:?}");
    assert!(field("p99") <= field("max"), "{h:?}");
    assert_eq!(counter(&first, "engine_cache_memory_hits_total"), 0.0);
    daemon.shutdown();

    // Pass two: a fresh process against the same cache dir — every job is
    // a disk hit, so the lifetime hit ratio reads 100%.
    let mut daemon = Daemon::spawn(&socket, &["--cache-dir", &cache_arg]);
    for (i, kernel) in ["pmaddwd", "int32x8"].iter().enumerate() {
        let r = daemon.request(&format!(r#"{{"op":"compile","id":{i},"kernel":"{kernel}"}}"#));
        assert_eq!(r.get("cache").and_then(Json::as_str), Some("disk"), "{r:?}");
    }
    let second = daemon.request(r#"{"op":"stats","id":"s2"}"#);
    assert_eq!(counter(&second, "engine_jobs_total"), 2.0);
    assert_eq!(counter(&second, "engine_cache_disk_hits_total"), 2.0);
    assert_eq!(gauge(&second, "engine_cache_hit_ratio"), Some(1.0), "{second:?}");
    assert_eq!(gauge(&second, "trace_dropped_events"), Some(0.0), "no ring drops");

    // Scraping twice: counters are monotone, and more work moves them.
    let r = daemon.request(r#"{"op":"compile","id":"again","kernel":"pmaddwd"}"#);
    assert_eq!(r.get("cache").and_then(Json::as_str), Some("memory"));
    let third = daemon.request(r#"{"op":"stats","id":"s3"}"#);
    for name in ["engine_jobs_total", "engine_cache_disk_hits_total"] {
        assert!(counter(&third, name) >= counter(&second, name), "{name} must be monotone");
    }
    assert_eq!(counter(&third, "engine_jobs_total"), 3.0);
    assert_eq!(counter(&third, "engine_cache_memory_hits_total"), 1.0);

    // The `metrics` op embeds the same registry beside the engine blocks.
    let metrics = daemon.request(r#"{"op":"metrics","id":"m"}"#);
    let registry = metrics.get("registry").expect("metrics op has a registry block");
    assert!(counter(registry, "engine_jobs_total") >= 3.0);
    daemon.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Parse one Prometheus text-format sample line into (name, value).
fn parse_sample(line: &str) -> (String, f64) {
    let (name_part, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("bad sample {line:?}"));
    let name = name_part.split('{').next().unwrap().to_string();
    let value = if value == "+Inf" {
        f64::INFINITY
    } else {
        value.parse().unwrap_or_else(|e| panic!("bad value in {line:?}: {e}"))
    };
    (name, value)
}

#[test]
fn prometheus_exposition_is_well_formed_line_by_line() {
    let dir = temp_dir("serve-prom");
    let socket = dir.join("daemon.sock");
    let mut daemon = Daemon::spawn(&socket, &[]);
    daemon.request(r#"{"op":"compile","id":1,"kernel":"pmaddwd"}"#);
    let result = daemon.request(r#"{"op":"stats","id":2,"format":"prometheus"}"#);
    let text = result.get("prometheus").and_then(Json::as_str).expect("prometheus text");

    let mut typed: Vec<String> = Vec::new();
    let mut samples: Vec<(String, f64)> = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().expect("TYPE has a name");
            let kind = parts.next().expect("TYPE has a kind");
            assert!(name.starts_with("vegen_"), "{line}");
            assert!(["counter", "gauge", "histogram"].contains(&kind), "{line}");
            typed.push(name.to_string());
        } else {
            assert!(!line.starts_with('#'), "only TYPE comments are emitted: {line}");
            let (name, value) = parse_sample(line);
            assert!(name.starts_with("vegen_"), "{line}");
            assert!(!value.is_nan(), "{line}");
            samples.push((name, value));
        }
    }
    assert!(!typed.is_empty() && !samples.is_empty());
    // Every sample's base name traces back to a TYPE declaration.
    for (name, _) in &samples {
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(name);
        assert!(
            typed.iter().any(|t| t == base || t == name),
            "sample {name} has no TYPE declaration"
        );
    }
    // Histogram buckets are cumulative and end at +Inf == _count.
    let latency = "vegen_engine_compile_latency_us";
    let buckets: Vec<f64> = samples
        .iter()
        .filter(|(n, _)| n == &format!("{latency}_bucket"))
        .map(|(_, v)| *v)
        .collect();
    assert!(!buckets.is_empty(), "latency histogram must have buckets");
    assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "buckets are cumulative: {buckets:?}");
    let count = samples
        .iter()
        .find(|(n, _)| n == &format!("{latency}_count"))
        .map(|(_, v)| *v)
        .expect("histogram has _count");
    assert_eq!(*buckets.last().unwrap(), count, "+Inf bucket equals count");
    assert!(count >= 1.0);
    daemon.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_cli_subcommand_scrapes_a_live_daemon() {
    let dir = temp_dir("stats-cli");
    let socket = dir.join("daemon.sock");
    let mut daemon = Daemon::spawn(&socket, &[]);
    daemon.request(r#"{"op":"compile","id":1,"kernel":"pmaddwd"}"#);

    let run = |args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_vegen-engine"))
            .arg("stats")
            .args(args)
            .output()
            .expect("binary must run")
    };
    let table = run(&["--socket", socket.to_str().unwrap()]);
    assert_eq!(table.status.code(), Some(0), "{}", String::from_utf8_lossy(&table.stderr));
    let stdout = String::from_utf8_lossy(&table.stdout);
    assert!(stdout.contains("engine_compile_latency_us"), "{stdout}");
    assert!(stdout.contains("p99"), "{stdout}");

    let prom = run(&["--socket", socket.to_str().unwrap(), "--prometheus"]);
    assert_eq!(prom.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&prom.stdout).contains("# TYPE vegen_"));

    let json = run(&["--socket", socket.to_str().unwrap(), "--json"]);
    assert_eq!(json.status.code(), Some(0));
    let doc = Json::parse(&String::from_utf8_lossy(&json.stdout)).expect("valid JSON");
    assert!(doc.get("histograms").is_some());

    // Usage and connect errors exit 2.
    assert_eq!(run(&[]).status.code(), Some(2));
    assert_eq!(run(&["--socket", "/nonexistent/nope.sock"]).status.code(), Some(2));
    daemon.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Structured job event log.
// ---------------------------------------------------------------------------

/// Read an NDJSON event log back as parsed lines.
fn read_events(path: &Path) -> Vec<Json> {
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
        .lines()
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad event line {l:?}: {e}")))
        .collect()
}

fn field<'j>(e: &'j Json, key: &str) -> &'j str {
    e.get(key).and_then(Json::as_str).unwrap_or_else(|| panic!("event missing {key}: {e:?}"))
}

#[test]
fn event_log_threads_complete_lifecycle_chains_by_correlation_id() {
    let dir = temp_dir("events");
    let log_path = dir.join("events.ndjson");
    let engine = Engine::new(EngineConfig {
        threads: 2,
        verify_trials: 0,
        event_log: Some(log_path.clone()),
        ..Default::default()
    });
    assert!(engine.event_open_error().is_none());
    let names = ["pmaddwd", "int32x8", "hadd_i16"];
    let cold = engine.compile_batch(&jobs_for(&names, &pipeline(4)));
    let warm = engine.compile_batch(&jobs_for(&names, &pipeline(4)));

    let events = read_events(&log_path);
    // Every event carries the standard prefix with a monotone-ish clock.
    for e in &events {
        assert!(e.get("ts_us").and_then(Json::as_f64).unwrap() >= 0.0);
        assert!(field(e, "corr").starts_with('c'));
        assert!(!field(e, "job").is_empty());
    }

    // Each batch result's corr has a complete admitted → … → completed
    // chain, in that order.
    for r in cold.iter().chain(&warm) {
        let chain: Vec<&Json> = events.iter().filter(|e| field(e, "corr") == r.corr).collect();
        assert!(!chain.is_empty(), "corr {} has events", r.corr);
        assert_eq!(field(chain[0], "event"), "admitted", "{:?}", chain[0]);
        let last = chain.last().unwrap();
        assert_eq!(field(last, "event"), "completed");
        assert_eq!(field(last, "rung"), "primary");
        assert!(last.get("wall_us").and_then(Json::as_f64).is_some());
        assert!(chain.iter().any(|e| field(e, "event") == "started"));
    }

    // Cold compiles report per-stage completions; warm cache hits do not.
    let cold_corr = &cold[0].corr;
    let stages: Vec<&str> = events
        .iter()
        .filter(|e| field(e, "corr") == cold_corr && field(e, "event") == "stage_done")
        .map(|e| field(e, "stage"))
        .collect();
    assert!(stages.contains(&"selection") && stages.contains(&"lowering"), "{stages:?}");
    let warm_corr = &warm[0].corr;
    assert_eq!(warm[0].cache_source(), "memory");
    assert!(
        !events.iter().any(|e| field(e, "corr") == warm_corr && field(e, "event") == "stage_done"),
        "cache hits have no stage work"
    );
    let warm_completed = events
        .iter()
        .find(|e| field(e, "corr") == warm_corr && field(e, "event") == "completed")
        .unwrap();
    assert_eq!(field(warm_completed, "cache"), "memory");

    // Cold and warm runs of the same kernel have distinct correlation ids.
    assert_ne!(cold[0].corr, warm[0].corr);
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Flight recorder: an injected panic dumps the recent trace window with
// the faulted job's correlation id in it.
// ---------------------------------------------------------------------------

#[test]
fn injected_panic_produces_a_flight_dump_naming_the_faulted_corr() {
    // The flight recorder owns the process-global trace session; this is
    // the only test in this binary that enables tracing, so parallel
    // tests cannot reset it.
    let dir = temp_dir("flight");
    let flight_dir = dir.join("flight");
    let log_path = dir.join("events.ndjson");
    let engine = Engine::new(EngineConfig {
        threads: 1,
        verify_trials: 0,
        event_log: Some(log_path.clone()),
        flight_dir: Some(flight_dir.clone()),
        ..Default::default()
    });
    assert!(engine.flight_open_error().is_none());

    // Panic on every search attempt: both search rungs crash (caught by
    // the ladder), the scalar fallback recovers the job — and the caught
    // panics must still trigger a flight dump.
    vegen::fault::install(vegen::fault::FaultPlan::parse("pmaddwd:selection:panic!").unwrap());
    let results = engine.compile_batch(&jobs_for(&["pmaddwd"], &pipeline(4)));
    vegen::fault::clear();
    let corr = results[0].corr.clone();
    assert_eq!(results[0].rung.name(), "scalar", "faults: {:?}", results[0].faults);
    assert!(
        results[0].faults.iter().any(|f| f.cause.tag() == "panic"),
        "panics are typed faults: {:?}",
        results[0].faults
    );

    let dumps: Vec<PathBuf> = std::fs::read_dir(&flight_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.file_name().unwrap().to_str().unwrap().starts_with("flight-"))
        .collect();
    assert!(!dumps.is_empty(), "a failed job must dump");
    let mut corr_named = false;
    for dump in &dumps {
        let doc = Json::parse(&std::fs::read_to_string(dump).unwrap())
            .unwrap_or_else(|e| panic!("{}: {e}", dump.display()));
        assert!(doc.get("traceEvents").is_some(), "dump is a Chrome trace");
        assert!(doc.get("reason").and_then(Json::as_str).is_some());
        let spans_have_corr =
            doc.get("traceEvents").and_then(Json::as_arr).unwrap().iter().any(|e| {
                e.get("name")
                    .and_then(Json::as_str)
                    .is_some_and(|n| n.contains(&format!("#{corr}")))
            });
        let events_have_corr = doc.get("jobEvents").and_then(Json::as_arr).is_some_and(|tail| {
            tail.iter().any(|e| e.get("corr").and_then(Json::as_str) == Some(corr.as_str()))
        });
        corr_named |= spans_have_corr && events_have_corr;
    }
    assert!(corr_named, "some dump must carry the faulted job's corr {corr} in spans and events");

    // The panic also shows in the event log as a faulted → completed
    // (rung failed) chain.
    let events = read_events(&log_path);
    let faulted = events
        .iter()
        .find(|e| field(e, "corr") == corr && field(e, "event") == "faulted")
        .expect("panic emits a faulted event");
    assert_eq!(field(faulted, "tag"), "panic");
    vegen_trace::disable();
    std::fs::remove_dir_all(&dir).ok();
}
