//! Regression-seed corpus discipline: every seed file committed under
//! `tests/soak_seeds/` is replayed on every `cargo test` — regenerated
//! from its `(corpus_seed, index)` pair, compiled through the full
//! pipeline, differential-checked against the scalar interpreter, and
//! provenance-audited. A past soak failure that was fixed and committed
//! here can never regress silently.

use std::path::PathBuf;
use vegen::driver::PipelineConfig;
use vegen_core::BeamConfig;
use vegen_engine::json::Json;
use vegen_engine::{Engine, EngineConfig};
use vegen_isa::TargetIsa;
use vegen_kernels::gen;

fn seeds_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/soak_seeds")
}

struct Seed {
    file: String,
    corpus_seed: u64,
    index: u64,
    kernel: String,
    shape: String,
    trials: u64,
}

fn load_seeds() -> Vec<Seed> {
    let mut seeds = Vec::new();
    for entry in std::fs::read_dir(seeds_dir()).expect("tests/soak_seeds must exist") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let file = path.file_name().unwrap().to_string_lossy().to_string();
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = Json::parse(&text).unwrap_or_else(|e| panic!("{file}: unparseable: {e}"));
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("vegen-soak-seed/v1"),
            "{file}: wrong schema"
        );
        let int = |key: &str| {
            doc.get(key).and_then(Json::as_f64).unwrap_or_else(|| panic!("{file}: missing {key}"))
                as u64
        };
        let string = |key: &str| {
            doc.get(key)
                .and_then(Json::as_str)
                .unwrap_or_else(|| panic!("{file}: missing {key}"))
                .to_string()
        };
        seeds.push(Seed {
            corpus_seed: int("corpus_seed"),
            index: int("index"),
            kernel: string("kernel"),
            shape: string("shape"),
            trials: int("trials").max(4),
            file,
        });
    }
    seeds.sort_by_key(|s| (s.corpus_seed, s.index));
    seeds
}

#[test]
fn every_committed_seed_replays_clean() {
    let seeds = load_seeds();
    assert!(!seeds.is_empty(), "the committed seed corpus must not be empty");

    let engine = Engine::new(EngineConfig { threads: 1, verify_trials: 0, ..Default::default() });
    let pipeline = PipelineConfig {
        target: TargetIsa::avx2(),
        beam: BeamConfig::with_width(16),
        canonicalize_patterns: true,
    };
    for seed in &seeds {
        // The two integers fully reproduce the kernel.
        let g = gen::generate(seed.corpus_seed, seed.index);
        assert_eq!(g.function.name, seed.kernel, "{}: name drifted", seed.file);
        assert_eq!(
            g.shape.name(),
            seed.shape,
            "{}: shape drifted — the generator changed",
            seed.file
        );
        assert!(
            vegen_ir::verify::verify_all(&g.function).is_empty(),
            "{}: regenerated kernel no longer verifies",
            seed.file
        );

        let r = engine.compile_one(&g.function.name, &g.function, &pipeline);
        let k = r.kernel.unwrap_or_else(|| panic!("{}: compile aborted", seed.file));
        k.verify(seed.trials)
            .unwrap_or_else(|e| panic!("{}: differential check failed: {e}", seed.file));
        assert_eq!(
            k.analysis.error_count(),
            0,
            "{}: provenance audit failed: {}",
            seed.file,
            k.analysis.verdict()
        );
    }
}

#[test]
fn committed_seeds_cover_every_shape() {
    let seeds = load_seeds();
    for want in vegen_kernels::gen::Shape::ALL {
        assert!(
            seeds.iter().any(|s| s.shape == want.name()),
            "no committed seed for shape {}",
            want.name()
        );
    }
}
