//! Persistent on-disk spill of the content-addressed compile cache.
//!
//! One file per entry, named by the two-lane 128-bit content hash
//! (`{hash:032x}.json`), holding a versioned JSON document:
//!
//! ```json
//! {
//!   "schema": "vegen-cache-entry/v2",
//!   "fingerprint": "<32 hex chars>",
//!   "hash": "<32 hex chars>",
//!   "target": "AVX2",
//!   "canon": true,
//!   "stages": { ... },
//!   "kernel": { ... }
//! }
//! ```
//!
//! Invalidation rules (in check order):
//!
//! 1. a file that fails to parse or decode — truncated, torn, or
//!    hand-edited — is **corrupt**: deleted, counted, and surfaced to the
//!    engine as a typed [`ErrorCause::CacheIo`] fault (the job recompiles
//!    and succeeds anyway);
//! 2. a well-formed entry whose `schema` string or ISA `fingerprint`
//!    differs from this build's is **stale**: silently deleted and counted
//!    as invalidated — this is the normal path after the entry format or
//!    the instruction database changes;
//! 3. a well-formed entry whose embedded `hash` disagrees with its file
//!    name is corrupt (rule 1), since the content address is the lookup
//!    key.
//!
//! The ISA fingerprint hashes the *spec sources* of every instruction
//! visible on the entry's target (name, mnemonic, extension, widths,
//! throughput, pseudocode) plus the entry-schema version and the
//! canonicalization flag — so editing any instruction's semantics or cost
//! invalidates exactly the entries whose compilation could have seen it,
//! without running the offline pipeline just to probe the cache.
//! Algorithmic changes to selection or lowering must bump
//! [`ENTRY_SCHEMA`]; that is the rule that keeps stale-but-parseable
//! results out of a new build.
//!
//! Writes are atomic (unique temp file + `rename`), so concurrent engines
//! sharing one directory never observe torn entries, and every store
//! self-checks by decoding its own rendering and re-encoding it
//! byte-for-byte before the write is published.
//!
//! [`ErrorCause::CacheIo`]: vegen::error::ErrorCause::CacheIo

use crate::cache::{fnv128, CachedCompile, ContentHash};
use crate::json::Json;
use crate::serdes;
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use vegen::driver::{CompiledKernel, StageTimes};
use vegen_isa::TargetIsa;

/// Version string of the on-disk entry format. Bump on any change to the
/// serialization layout *or* to the selection/lowering algorithms whose
/// outputs the entries embalm.
pub const ENTRY_SCHEMA: &str = "vegen-cache-entry/v2";

/// Fingerprint of everything target-side that can change a compilation
/// result: the entry-schema version, the target name, the
/// canonicalization flag, and the full spec source (name, mnemonic,
/// extension, widths, inverse throughput, inputs, pseudocode) of every
/// instruction visible on `target`. Memoized per `(target, canon)` —
/// hashing spec text is cheap, but warm-start probes it in a loop.
pub fn isa_fingerprint(target: &TargetIsa, canon: bool) -> String {
    static MEMO: OnceLock<Mutex<HashMap<(String, bool), String>>> = OnceLock::new();
    let memo = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    let key = (target.name.clone(), canon);
    if let Some(fp) = memo.lock().unwrap_or_else(|e| e.into_inner()).get(&key) {
        return fp.clone();
    }
    let mut text = String::new();
    text.push_str(ENTRY_SCHEMA);
    text.push('\u{1f}');
    text.push_str(&target.name);
    text.push('\u{1f}');
    text.push_str(if canon { "canon" } else { "raw" });
    for spec in vegen_isa::specs::all_specs() {
        if !target.has(spec.ext) || spec.bits > target.max_bits {
            continue;
        }
        text.push('\u{1f}');
        text.push_str(&format!(
            "{}|{}|{:?}|{}|{}|{:?}|{}|{:?}|{}",
            spec.name,
            spec.asm,
            spec.ext,
            spec.bits,
            spec.out_elem_bits,
            spec.fp,
            spec.inv_throughput,
            spec.inputs,
            spec.pseudocode
        ));
    }
    let fp = fnv128(text.as_bytes()).hex();
    memo.lock().unwrap_or_else(|e| e.into_inner()).insert(key, fp.clone());
    fp
}

/// Resolve a target name as stored in a cache entry back to its
/// [`TargetIsa`] (used by warm-start, where the entry is the only record
/// of which target it was compiled for).
pub fn target_by_name(name: &str) -> Option<TargetIsa> {
    match name {
        "AVX2" => Some(TargetIsa::avx2()),
        "AVX512-VNNI" => Some(TargetIsa::avx512vnni()),
        "SSE4" => Some(TargetIsa::sse4()),
        _ => None,
    }
}

/// Point-in-time counters of a [`DiskCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskCacheStats {
    /// Entries currently on disk.
    pub entries: usize,
    /// Lookups served from disk.
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Entries written (write-through after a clean compile).
    pub stores: u64,
    /// Stale entries deleted (schema or fingerprint mismatch).
    pub invalidated: u64,
    /// Corrupt entries rejected and deleted.
    pub corrupt: u64,
    /// I/O failures (reads or writes that errored outright).
    pub io_errors: u64,
    /// Entries deleted by the size bound (oldest first).
    pub evicted: u64,
}

/// A directory of content-addressed compilation results, shareable
/// between processes and across restarts.
pub struct DiskCache {
    dir: PathBuf,
    max_bytes: Option<u64>,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    invalidated: AtomicU64,
    corrupt: AtomicU64,
    io_errors: AtomicU64,
    evicted: AtomicU64,
    seq: AtomicU64,
}

/// A disk lookup that found a valid entry.
pub struct DiskHit {
    /// The decoded compilation (kernel + original stage times).
    pub value: CachedCompile,
    /// The target name recorded in the entry.
    pub target: String,
    /// The canonicalization flag recorded in the entry.
    pub canon: bool,
}

impl DiskCache {
    /// Open (creating if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// Returns a message when the directory cannot be created or is not
    /// writable.
    pub fn open(dir: impl Into<PathBuf>) -> Result<DiskCache, String> {
        DiskCache::open_bounded(dir, None)
    }

    /// Like [`open`](DiskCache::open), but with an optional total-size
    /// bound in bytes. After every store, if the directory's entries
    /// exceed the bound, the oldest entries (by modification time, file
    /// name as tiebreak) are deleted until it fits — so unbounded soak
    /// runs against a `--cache-dir` cannot grow the cache without limit.
    ///
    /// # Errors
    ///
    /// Returns a message when the directory cannot be created or is not
    /// writable.
    pub fn open_bounded(
        dir: impl Into<PathBuf>,
        max_bytes: Option<u64>,
    ) -> Result<DiskCache, String> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create cache dir {}: {e}", dir.display()))?;
        Ok(DiskCache {
            dir,
            max_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            seq: AtomicU64::new(0),
        })
    }

    /// The directory entries live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, hash: ContentHash) -> PathBuf {
        self.dir.join(format!("{}.json", hash.hex()))
    }

    /// Delete `path` best-effort and return `outcome` (shared tail of the
    /// corrupt/stale rejection paths — a rejected entry must not be
    /// re-rejected on every later lookup).
    fn reject<T>(&self, path: &Path, counter: &AtomicU64, outcome: T) -> T {
        counter.fetch_add(1, Ordering::Relaxed);
        let _ = fs::remove_file(path);
        outcome
    }

    /// Look up a content hash, validating against `fingerprint` (this
    /// build's [`isa_fingerprint`] for the entry's target).
    ///
    /// * `Ok(Some(hit))` — valid entry;
    /// * `Ok(None)` — no entry, or a stale one (deleted silently);
    /// * `Err(detail)` — corrupt entry or I/O failure; the entry is
    ///   deleted and the caller should record a typed `CacheIo` fault and
    ///   recompile.
    ///
    /// # Errors
    ///
    /// See above — `Err` is always recoverable by recompiling.
    pub fn load(&self, hash: ContentHash, fingerprint: &str) -> Result<Option<DiskHit>, String> {
        let path = self.entry_path(hash);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return Ok(None);
            }
            Err(e) => {
                self.io_errors.fetch_add(1, Ordering::Relaxed);
                return Err(format!("reading {}: {e}", path.display()));
            }
        };
        match self.decode_entry(&path, &text, Some(hash), fingerprint) {
            Ok(Some(hit)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Ok(Some(hit))
            }
            other => other,
        }
    }

    /// Validate + decode one entry document. `want_hash` is the hash the
    /// caller looked up (`None` to trust the embedded one, e.g. during a
    /// directory scan where the file name supplies it).
    fn decode_entry(
        &self,
        path: &Path,
        text: &str,
        want_hash: Option<ContentHash>,
        fingerprint: &str,
    ) -> Result<Option<DiskHit>, String> {
        let corrupt = |detail: String| {
            self.reject(path, &self.corrupt, Err(format!("{}: {detail}", path.display())))
        };
        let doc = match Json::parse(text) {
            Ok(doc) => doc,
            Err(e) => return corrupt(format!("unparseable entry: {e}")),
        };
        let header = |key: &str| {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("missing header field {key:?}"))
        };
        let schema = match header("schema") {
            Ok(s) => s,
            Err(e) => return corrupt(e),
        };
        if schema != ENTRY_SCHEMA {
            // A different (older or newer) format version: stale, not
            // corrupt — delete silently and recompile.
            return Ok(self.reject(path, &self.invalidated, None));
        }
        let fp = match header("fingerprint") {
            Ok(s) => s,
            Err(e) => return corrupt(e),
        };
        if fp != fingerprint {
            return Ok(self.reject(path, &self.invalidated, None));
        }
        let embedded = match header("hash") {
            Ok(s) => s,
            Err(e) => return corrupt(e),
        };
        if let Some(want) = want_hash {
            if embedded != want.hex() {
                return corrupt(format!("entry hash {embedded} disagrees with address"));
            }
        }
        let target = match header("target") {
            Ok(s) => s,
            Err(e) => return corrupt(e),
        };
        let canon = match doc.get("canon").and_then(Json::as_bool) {
            Some(c) => c,
            None => return corrupt("missing header field \"canon\"".into()),
        };
        let stages = match doc.get("stages").ok_or("missing field \"stages\"".to_string()) {
            Ok(j) => match serdes::stage_times_from_json(j) {
                Ok(s) => s,
                Err(e) => return corrupt(e),
            },
            Err(e) => return corrupt(e),
        };
        let kernel = match doc.get("kernel").ok_or("missing field \"kernel\"".to_string()) {
            Ok(j) => match serdes::kernel_from_json(j) {
                Ok(k) => k,
                Err(e) => return corrupt(e),
            },
            Err(e) => return corrupt(e),
        };
        Ok(Some(DiskHit {
            value: CachedCompile { kernel: Arc::new(kernel), stages },
            target,
            canon,
        }))
    }

    fn encode_entry(
        hash: ContentHash,
        fingerprint: &str,
        target: &str,
        canon: bool,
        kernel: &CompiledKernel,
        stages: &StageTimes,
    ) -> Json {
        Json::obj([
            ("schema", Json::str(ENTRY_SCHEMA)),
            ("fingerprint", Json::str(fingerprint)),
            ("hash", Json::str(hash.hex())),
            ("target", Json::str(target)),
            ("canon", Json::Bool(canon)),
            ("stages", serdes::stage_times_to_json(stages)),
            ("kernel", serdes::kernel_to_json(kernel)),
        ])
    }

    /// Write one entry atomically: render, self-check that the rendering
    /// decodes back to a byte-identical re-rendering, write a unique temp
    /// file, `rename` it into place. Concurrent engines writing the same
    /// address both succeed (last rename wins; the content is identical by
    /// construction — same address, same deterministic pipeline).
    ///
    /// # Errors
    ///
    /// Returns a message on any I/O failure or self-check mismatch; the
    /// caller records a typed `CacheIo` fault and moves on.
    pub fn store(
        &self,
        hash: ContentHash,
        fingerprint: &str,
        target: &str,
        canon: bool,
        kernel: &CompiledKernel,
        stages: &StageTimes,
    ) -> Result<(), String> {
        let doc = DiskCache::encode_entry(hash, fingerprint, target, canon, kernel, stages);
        let mut text = doc.render();
        text.push('\n');
        // Round-trip self-check: a document we cannot read back exactly
        // must never be published.
        let reread = Json::parse(&text).map_err(|e| format!("self-check parse: {e}"))?;
        let kernel2 =
            serdes::kernel_from_json(reread.get("kernel").ok_or("self-check: kernel field lost")?)
                .map_err(|e| format!("self-check decode: {e}"))?;
        let stages2 = serdes::stage_times_from_json(
            reread.get("stages").ok_or("self-check: stages field lost")?,
        )
        .map_err(|e| format!("self-check decode: {e}"))?;
        let mut text2 =
            DiskCache::encode_entry(hash, fingerprint, target, canon, &kernel2, &stages2).render();
        text2.push('\n');
        if text != text2 {
            self.io_errors.fetch_add(1, Ordering::Relaxed);
            return Err(format!("entry {} failed round-trip self-check", hash.hex()));
        }
        let tmp = self.dir.join(format!(
            ".{}.{}.{}.tmp",
            hash.hex(),
            std::process::id(),
            self.seq.fetch_add(1, Ordering::Relaxed)
        ));
        let publish = fs::write(&tmp, &text)
            .map_err(|e| format!("writing {}: {e}", tmp.display()))
            .and_then(|()| {
                fs::rename(&tmp, self.entry_path(hash))
                    .map_err(|e| format!("publishing {}: {e}", tmp.display()))
            });
        match publish {
            Ok(()) => {
                self.stores.fetch_add(1, Ordering::Relaxed);
                self.enforce_bound();
                Ok(())
            }
            Err(e) => {
                self.io_errors.fetch_add(1, Ordering::Relaxed);
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Delete oldest entries until the directory fits `max_bytes`.
    /// Best-effort: unreadable metadata is ignored, and a concurrent
    /// engine deleting the same file is not an error.
    fn enforce_bound(&self) {
        let Some(max) = self.max_bytes else { return };
        let Ok(dir) = fs::read_dir(&self.dir) else { return };
        let mut entries: Vec<(std::time::SystemTime, PathBuf, u64)> = dir
            .flatten()
            .filter(|f| entry_hash(&f.path()).is_some())
            .filter_map(|f| {
                let meta = f.metadata().ok()?;
                let mtime = meta.modified().ok()?;
                Some((mtime, f.path(), meta.len()))
            })
            .collect();
        let mut total: u64 = entries.iter().map(|(_, _, len)| len).sum();
        if total <= max {
            return;
        }
        entries.sort();
        for (_, path, len) in entries {
            if total <= max {
                break;
            }
            if fs::remove_file(&path).is_ok() {
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
            total = total.saturating_sub(len);
        }
    }

    /// Scan the directory and decode every entry that is valid for this
    /// build (each entry's own target/canon header decides its expected
    /// fingerprint). Stale and corrupt entries are deleted and counted as
    /// usual; entries for unknown targets are left untouched. Used by the
    /// engine's warm start.
    pub fn load_all(&self) -> Vec<(ContentHash, CachedCompile)> {
        let mut out = Vec::new();
        let Ok(dir) = fs::read_dir(&self.dir) else {
            self.io_errors.fetch_add(1, Ordering::Relaxed);
            return out;
        };
        for file in dir.flatten() {
            let path = file.path();
            let Some(hash) = entry_hash(&path) else { continue };
            let Ok(text) = fs::read_to_string(&path) else {
                self.io_errors.fetch_add(1, Ordering::Relaxed);
                continue;
            };
            // Peek the target/canon header to compute the fingerprint this
            // entry must match. A header too broken to peek is corrupt.
            let expected = Json::parse(&text).ok().and_then(|doc| {
                let target = doc.get("target")?.as_str()?.to_string();
                let canon = doc.get("canon")?.as_bool()?;
                Some((target, canon))
            });
            let Some((target_name, canon)) = expected else {
                self.reject(&path, &self.corrupt, ());
                continue;
            };
            let Some(target) = target_by_name(&target_name) else { continue };
            let fp = isa_fingerprint(&target, canon);
            if let Ok(Some(hit)) = self.decode_entry(&path, &text, Some(hash), &fp) {
                out.push((hash, hit.value));
            }
        }
        out.sort_by_key(|(hash, _)| *hash);
        out
    }

    /// Current counters (entries counted live from the directory).
    pub fn stats(&self) -> DiskCacheStats {
        let entries = fs::read_dir(&self.dir)
            .map(|dir| dir.flatten().filter(|f| entry_hash(&f.path()).is_some()).count())
            .unwrap_or(0);
        DiskCacheStats {
            entries,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
        }
    }
}

/// Parse `{032x}.json` back to its content hash; `None` for temp files
/// and foreign droppings.
fn entry_hash(path: &Path) -> Option<ContentHash> {
    let name = path.file_name()?.to_str()?;
    let hex = name.strip_suffix(".json")?;
    if hex.len() != 32 {
        return None;
    }
    u128::from_str_radix(hex, 16).ok().map(ContentHash)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_target_sensitive() {
        let a = isa_fingerprint(&TargetIsa::avx2(), true);
        assert_eq!(a, isa_fingerprint(&TargetIsa::avx2(), true), "memo must be stable");
        assert_ne!(a, isa_fingerprint(&TargetIsa::avx2(), false), "canon flag is part of it");
        assert_ne!(
            a,
            isa_fingerprint(&TargetIsa::avx512vnni(), true),
            "target extensions are part of it"
        );
        assert_eq!(a.len(), 32, "fingerprint is the 128-bit hash in hex");
    }

    #[test]
    fn entry_names_round_trip() {
        let dir = std::env::temp_dir();
        let h = ContentHash(0x0123_4567_89ab_cdef_0123_4567_89ab_cdef);
        assert_eq!(entry_hash(&dir.join(format!("{}.json", h.hex()))), Some(h));
        assert_eq!(entry_hash(&dir.join("short.json")), None);
        assert_eq!(entry_hash(&dir.join(format!(".{}.1.0.tmp", h.hex()))), None);
    }

    #[test]
    fn size_bound_evicts_oldest_first() {
        let dir = std::env::temp_dir().join(format!("vegen-evict-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        // Three 100-byte fake entries with strictly increasing mtimes.
        let cache = DiskCache::open_bounded(&dir, Some(250)).unwrap();
        let names: Vec<String> = (0u128..3).map(|i| format!("{:032x}.json", 0x1000 + i)).collect();
        for name in &names {
            fs::write(dir.join(name), "x".repeat(100)).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        cache.enforce_bound();
        assert!(!dir.join(&names[0]).exists(), "oldest entry should be evicted");
        assert!(dir.join(&names[1]).exists());
        assert!(dir.join(&names[2]).exists(), "newest entry must survive");
        assert_eq!(cache.stats().evicted, 1);

        // Unbounded cache never evicts.
        let unbounded = DiskCache::open(&dir).unwrap();
        unbounded.enforce_bound();
        assert_eq!(unbounded.stats().evicted, 0);
        assert_eq!(cache.stats().entries, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn target_names_resolve() {
        for t in [TargetIsa::avx2(), TargetIsa::avx512vnni(), TargetIsa::sse4()] {
            assert_eq!(target_by_name(&t.name).as_ref().map(|x| &x.name), Some(&t.name));
        }
        assert!(target_by_name("Z80").is_none());
    }
}
