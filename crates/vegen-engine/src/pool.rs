//! A dependency-free work-stealing batch executor on `std` scoped threads.
//!
//! Kernels vary wildly in compile cost (a beam-128 `fft8` is orders of
//! magnitude slower than a two-lane add), so static chunking strands
//! workers; instead each worker owns a deque of job indices, pops from its
//! own front, and steals from the *back* of the busiest victim when it runs
//! dry. Results land in their input slot, so the returned vector is always
//! in input order no matter how execution interleaved.
//!
//! ## Panic isolation
//!
//! Every job runs under `catch_unwind`, so one poisoned job can never take
//! down the worker (and with it, every job still queued on that worker's
//! deque). [`run_batch`] preserves the historical contract — the first
//! panic resurfaces on the caller *after* the whole batch completes —
//! while [`run_batch_recover`] maps each panic through a recovery closure
//! into an ordinary result, which is how the engine turns a crashed
//! compilation into a `Failed` job instead of an aborted batch.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Instant;
use vegen_trace::metrics;

/// Number of workers to use for `n` jobs: the available parallelism,
/// clamped to the job count (spawning more threads than jobs is waste).
pub fn default_threads(n: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(4, |p| p.get());
    hw.min(n).max(1)
}

/// Run every job, catching panics; slot `i` holds job `i`'s outcome.
fn run_core<T, R, F>(threads: usize, items: &[T], work: F) -> Vec<std::thread::Result<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    // `pool_job_us` is recorded in the guard so both the single-thread
    // fast path and the worker loop feed the same histogram.
    let guarded = |i: usize| {
        let t = Instant::now();
        let r = catch_unwind(AssertUnwindSafe(|| work(i, &items[i])));
        metrics::histogram("pool_job_us").record_duration(t.elapsed());
        r
    };
    if threads == 1 {
        return (0..n).map(guarded).collect();
    }

    // Deal job indices round-robin so each deque starts with a spread of
    // cheap and expensive jobs rather than a contiguous (and possibly
    // uniformly expensive) range.
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..threads).map(|w| Mutex::new((w..n).step_by(threads).collect())).collect();
    let slots: Vec<Mutex<Option<std::thread::Result<R>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for me in 0..threads {
            let queues = &queues;
            let slots = &slots;
            let guarded = &guarded;
            scope.spawn(move || loop {
                let t_wait = Instant::now();
                let job = {
                    let _wait = vegen_trace::span("pool", "queue_wait");
                    // Own queue first (front: LIFO-ish locality is
                    // irrelevant here, FIFO keeps input order roughly
                    // preserved)…
                    let job = queues[me].lock().unwrap_or_else(|e| e.into_inner()).pop_front();
                    match job {
                        Some(j) => Some(j),
                        // …then steal from the back of the fullest victim.
                        None => {
                            let victim = (0..threads).filter(|&v| v != me).max_by_key(|&v| {
                                queues[v].lock().unwrap_or_else(|e| e.into_inner()).len()
                            });
                            let stolen = victim.and_then(|v| {
                                queues[v].lock().unwrap_or_else(|e| e.into_inner()).pop_back()
                            });
                            if stolen.is_some() {
                                vegen_trace::instant("pool", "steal");
                                metrics::counter("pool_steals_total").inc();
                            }
                            stolen
                        }
                    }
                };
                if job.is_some() {
                    metrics::histogram("pool_queue_wait_us").record_duration(t_wait.elapsed());
                }
                match job {
                    Some(i) => {
                        let r = {
                            let _sp = vegen_trace::span("pool", "job");
                            guarded(i)
                        };
                        if r.is_err() {
                            vegen_trace::instant("pool", "job_panicked");
                        }
                        *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
                    }
                    None => break,
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every job ran exactly once")
        })
        .collect()
}

/// Run `work(index, &item)` over every item on `threads` workers and
/// return the results in input order.
///
/// `work` runs exactly once per item. A panicking job does **not** abort
/// the batch — every remaining job still runs — but the first panic (in
/// input order) resurfaces on the caller once the batch completes. Use
/// [`run_batch_recover`] to convert panics into results instead.
pub fn run_batch<T, R, F>(threads: usize, items: &[T], work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    for r in run_core(threads, items, work) {
        match r {
            Ok(v) => out.push(v),
            Err(payload) => resume_unwind(payload),
        }
    }
    out
}

/// Like [`run_batch`], but a panicking job is mapped through
/// `recover(index, &item, panic_message)` into an ordinary result, so the
/// returned vector is always complete and input-ordered no matter how
/// many jobs crashed.
pub fn run_batch_recover<T, R, F, G>(threads: usize, items: &[T], work: F, recover: G) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    G: Fn(usize, &T, String) -> R,
{
    run_core(threads, items, work)
        .into_iter()
        .enumerate()
        .map(|(i, r)| match r {
            Ok(v) => v,
            Err(payload) => recover(i, &items[i], vegen::error::panic_message(payload.as_ref())),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_input_ordered_and_complete() {
        let items: Vec<usize> = (0..137).collect();
        for threads in [1, 2, 7, 32] {
            let out = run_batch(threads, &items, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        run_batch(8, &(0..64).collect::<Vec<usize>>(), |_, &x| {
            counters[x].fetch_add(1, Ordering::SeqCst);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn uneven_jobs_still_finish() {
        // One expensive job at the front exercises the stealing path.
        let items: Vec<u64> = (0..24).map(|i| if i == 0 { 2_000_000 } else { 10 }).collect();
        let out = run_batch(4, &items, |_, &spins| {
            let mut acc = 0u64;
            for i in 0..spins {
                acc = acc.wrapping_add(i);
            }
            std::hint::black_box(acc);
            spins
        });
        assert_eq!(out, items);
    }

    #[test]
    fn empty_batch_is_fine() {
        let out: Vec<()> = run_batch(8, &Vec::<u8>::new(), |_, _| ());
        assert!(out.is_empty());
    }

    #[test]
    fn panicking_job_does_not_lose_siblings() {
        // Every non-faulted job completes; the recover closure sees the
        // panic message; order is preserved.
        let items: Vec<usize> = (0..40).collect();
        for threads in [1, 3, 8] {
            let ran: Vec<AtomicUsize> = (0..items.len()).map(|_| AtomicUsize::new(0)).collect();
            let out = run_batch_recover(
                threads,
                &items,
                |_, &x| {
                    ran[x].fetch_add(1, Ordering::SeqCst);
                    if x % 7 == 3 {
                        panic!("boom at {x}");
                    }
                    x as i64
                },
                |i, &x, msg| {
                    assert_eq!(i, x);
                    assert!(msg.contains(&format!("boom at {x}")), "payload preserved: {msg}");
                    -(x as i64)
                },
            );
            let want: Vec<i64> =
                items.iter().map(|&x| if x % 7 == 3 { -(x as i64) } else { x as i64 }).collect();
            assert_eq!(out, want, "threads={threads}");
            assert!(ran.iter().all(|c| c.load(Ordering::SeqCst) == 1), "threads={threads}");
        }
    }

    #[test]
    fn run_batch_still_propagates_the_first_panic_after_completion() {
        let ran = AtomicUsize::new(0);
        let items: Vec<usize> = (0..16).collect();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_batch(4, &items, |_, &x| {
                ran.fetch_add(1, Ordering::SeqCst);
                if x == 5 {
                    panic!("legacy contract");
                }
                x
            })
        }));
        assert!(caught.is_err(), "panic must resurface");
        assert_eq!(ran.load(Ordering::SeqCst), 16, "but only after every job ran");
    }
}
