//! A dependency-free work-stealing batch executor on `std` scoped threads.
//!
//! Kernels vary wildly in compile cost (a beam-128 `fft8` is orders of
//! magnitude slower than a two-lane add), so static chunking strands
//! workers; instead each worker owns a deque of job indices, pops from its
//! own front, and steals from the *back* of the busiest victim when it runs
//! dry. Results land in their input slot, so the returned vector is always
//! in input order no matter how execution interleaved.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Number of workers to use for `n` jobs: the available parallelism,
/// clamped to the job count (spawning more threads than jobs is waste).
pub fn default_threads(n: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(4, |p| p.get());
    hw.min(n).max(1)
}

/// Run `work(index, &item)` over every item on `threads` workers and
/// return the results in input order.
///
/// `work` runs exactly once per item. Panics in `work` propagate: the
/// scope joins all workers, then the panic resurfaces on the caller.
pub fn run_batch<T, R, F>(threads: usize, items: &[T], work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return items.iter().enumerate().map(|(i, item)| work(i, item)).collect();
    }

    // Deal job indices round-robin so each deque starts with a spread of
    // cheap and expensive jobs rather than a contiguous (and possibly
    // uniformly expensive) range.
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..threads).map(|w| Mutex::new((w..n).step_by(threads).collect())).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for me in 0..threads {
            let queues = &queues;
            let slots = &slots;
            let work = &work;
            scope.spawn(move || loop {
                let job = {
                    let _wait = vegen_trace::span("pool", "queue_wait");
                    // Own queue first (front: LIFO-ish locality is
                    // irrelevant here, FIFO keeps input order roughly
                    // preserved)…
                    let job = queues[me].lock().unwrap().pop_front();
                    match job {
                        Some(j) => Some(j),
                        // …then steal from the back of the fullest victim.
                        None => {
                            let victim = (0..threads)
                                .filter(|&v| v != me)
                                .max_by_key(|&v| queues[v].lock().unwrap().len());
                            let stolen = victim.and_then(|v| queues[v].lock().unwrap().pop_back());
                            if stolen.is_some() {
                                vegen_trace::instant("pool", "steal");
                            }
                            stolen
                        }
                    }
                };
                match job {
                    Some(i) => {
                        let r = {
                            let _sp = vegen_trace::span("pool", "job");
                            work(i, &items[i])
                        };
                        *slots[i].lock().unwrap() = Some(r);
                    }
                    None => break,
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("every job ran exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_input_ordered_and_complete() {
        let items: Vec<usize> = (0..137).collect();
        for threads in [1, 2, 7, 32] {
            let out = run_batch(threads, &items, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        run_batch(8, &(0..64).collect::<Vec<usize>>(), |_, &x| {
            counters[x].fetch_add(1, Ordering::SeqCst);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn uneven_jobs_still_finish() {
        // One expensive job at the front exercises the stealing path.
        let items: Vec<u64> = (0..24).map(|i| if i == 0 { 2_000_000 } else { 10 }).collect();
        let out = run_batch(4, &items, |_, &spins| {
            let mut acc = 0u64;
            for i in 0..spins {
                acc = acc.wrapping_add(i);
            }
            std::hint::black_box(acc);
            spins
        });
        assert_eq!(out, items);
    }

    #[test]
    fn empty_batch_is_fine() {
        let out: Vec<()> = run_batch(8, &Vec::<u8>::new(), |_, _| ());
        assert!(out.is_empty());
    }
}
