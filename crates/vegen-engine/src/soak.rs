//! Soak harness: stream a generated-kernel corpus through the full
//! compile pipeline with differential checking, provenance auditing,
//! seeded fault injection, and automatic failure minimization.
//!
//! The corpus is defined by two integers: a corpus seed and a count.
//! Kernel `i` is [`vegen_kernels::gen::generate`]`(seed, i)` — fully
//! deterministic, so any failure replays from `(seed, index)` alone.
//! For each kernel the harness runs:
//!
//! 1. **compile** through the engine's full degradation ladder (cache,
//!    deadline, panic isolation, width-1 retry, scalar fallback);
//! 2. **differential check** — VM execution of all three produced
//!    programs (scalar / vegen / baseline) against the scalar
//!    interpreter on `trials` seeded random memory images;
//! 3. **provenance audit** — the [`vegen_analysis`] report embedded in
//!    the compiled kernel must have zero error-severity findings.
//!
//! With `--fault-every K`, every Kth job gets a seeded fault (panic,
//! delay, or typed error at a pipeline stage) installed via the
//! process-wide [`FaultPlan`], continuously exercising the ladder:
//! faulted jobs may *degrade* but must never abort. With `--shard i/n`,
//! only indices `≡ i (mod n)` are run, so CI splits one corpus across
//! jobs with disjoint, deterministic coverage.
//!
//! Any differential or provenance failure is minimized on the spot by
//! [`vegen_ir::reduce::minimize`] — the reduction predicate recompiles
//! each candidate and re-runs the exact failing check — and written as a
//! replayable seed file. The ordered result list contains no timing, so
//! identical `(seed, count, shard)` arguments produce a byte-identical
//! list at any `--beam-threads` (thread count never changes selected
//! packs).
//!
//! The planted-miscompile flag (`corrupt_vegen`, CLI
//! `--inject-miscompile`) is **test-only**: it deterministically corrupts
//! the compiled vegen program (drops one seeded store) before the
//! differential check, proving end-to-end that the check catches real
//! miscompiles and that the minimizer shrinks them.

use crate::cache::CacheStats;
use crate::diskcache::DiskCacheStats;
use crate::json::Json;
use crate::{Engine, EngineConfig, EngineCounters, Rung};
use std::collections::{BTreeMap, HashSet};
use std::path::PathBuf;
use std::time::{Duration, Instant};
use vegen::driver::{CompiledKernel, PipelineConfig};
use vegen::error::Stage;
use vegen::fault::{FaultKind, FaultPlan, FaultSpec};
use vegen_core::BeamConfig;
use vegen_ir::rng::XorShift;
use vegen_ir::Function;
use vegen_isa::TargetIsa;
use vegen_kernels::gen;
use vegen_trace::metrics;
use vegen_vm::{VmInst, VmProgram};

/// Soak-run parameters.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Corpus seed: kernel `i` is `gen::generate(seed, i)`.
    pub seed: u64,
    /// Corpus size (indices `0..count`, before sharding).
    pub count: u64,
    /// This job's shard (`--shard i/n`): only indices `≡ i (mod n)` run.
    pub shard_index: u64,
    /// Total shards (`≥ 1`).
    pub shard_count: u64,
    /// Seeded random-memory trials per differential check.
    pub trials: u64,
    /// Inject a seeded fault on every Kth job of this shard (`0` = off).
    pub fault_every: u64,
    /// Target ISA to compile against.
    pub target: TargetIsa,
    /// Beam width.
    pub beam: usize,
    /// Intra-kernel beam-search threads (`0` = auto); never changes the
    /// selected packs, only the wall time.
    pub beam_threads: usize,
    /// Per-job compile deadline.
    pub deadline: Option<Duration>,
    /// Persistent compile cache directory.
    pub cache_dir: Option<PathBuf>,
    /// Size bound for the disk cache (oldest-entry eviction).
    pub cache_max_bytes: Option<u64>,
    /// Minimize failing kernels to a minimal reproducer.
    pub minimize: bool,
    /// Candidate budget per minimization.
    pub minimize_budget: u64,
    /// Directory for replayable seed files of (minimized) failures.
    pub seeds_out: Option<PathBuf>,
    /// **Test-only**: seed for a deliberately planted miscompile — the
    /// compiled vegen program is deterministically corrupted before the
    /// differential check, which must then catch it.
    pub corrupt_vegen: Option<u64>,
}

impl Default for SoakConfig {
    fn default() -> SoakConfig {
        SoakConfig {
            seed: 42,
            count: 100,
            shard_index: 0,
            shard_count: 1,
            trials: 8,
            fault_every: 0,
            target: TargetIsa::avx2(),
            beam: 16,
            beam_threads: 0,
            deadline: None,
            cache_dir: None,
            cache_max_bytes: None,
            minimize: true,
            minimize_budget: 600,
            seeds_out: None,
            corrupt_vegen: None,
        }
    }
}

/// Outcome class of one soak job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SoakStatus {
    /// Primary rung, all checks passed.
    Passed,
    /// Below primary rung without an injected fault; checks passed.
    /// Allowed (degrade-and-continue is the production posture) but
    /// counted separately.
    Degraded,
    /// Below primary rung *because of* an injected fault; checks passed.
    /// The expected outcome of fault injection.
    Faulted,
    /// The differential check caught a divergence. Unexplained failure.
    DiffFailed,
    /// The provenance audit found error-severity findings. Unexplained
    /// failure.
    ProvenanceFailed,
    /// No program was produced at all. Unexplained failure — injected
    /// faults must degrade, never abort.
    Aborted,
}

impl SoakStatus {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            SoakStatus::Passed => "passed",
            SoakStatus::Degraded => "degraded",
            SoakStatus::Faulted => "faulted",
            SoakStatus::DiffFailed => "diff_failed",
            SoakStatus::ProvenanceFailed => "provenance_failed",
            SoakStatus::Aborted => "aborted",
        }
    }

    /// Whether this outcome counts against the run.
    pub fn is_failure(self) -> bool {
        matches!(self, SoakStatus::DiffFailed | SoakStatus::ProvenanceFailed | SoakStatus::Aborted)
    }
}

/// A minimized reproducer for a failing kernel.
#[derive(Debug, Clone)]
pub struct Minimized {
    /// Instructions in the original generated kernel.
    pub from_insts: usize,
    /// Instructions after minimization.
    pub insts: usize,
    /// Printed form of the minimal reproducer.
    pub listing: String,
    /// Seed file the reproducer was written to, if any.
    pub seed_file: Option<String>,
}

/// One kernel's soak outcome. Contains no timing, so the ordered result
/// list is byte-identical across hosts and thread counts.
#[derive(Debug, Clone)]
pub struct SoakResult {
    /// Corpus index (the second replay integer).
    pub index: u64,
    /// Kernel name (`gen_<seed>_<index>`).
    pub name: String,
    /// Shape family of the generated kernel.
    pub shape: &'static str,
    /// Output element type.
    pub out_ty: String,
    /// Instruction count of the generated kernel.
    pub insts: usize,
    /// Ladder rung the compile ended on.
    pub rung: &'static str,
    /// Outcome class.
    pub status: SoakStatus,
    /// Whether the vegen program uses at least one vector op.
    pub vectorized: bool,
    /// Whether this job had an injected fault.
    pub faulted: bool,
    /// Failure or degradation detail (empty when passed).
    pub detail: String,
    /// Minimized reproducer, for failing kernels when minimization ran.
    pub minimized: Option<Minimized>,
}

impl SoakResult {
    /// Stable JSON row (no timing).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("index", Json::int(self.index)),
            ("name", Json::str(&self.name)),
            ("shape", Json::str(self.shape)),
            ("out_ty", Json::str(&self.out_ty)),
            ("insts", Json::int(self.insts as u64)),
            ("rung", Json::str(self.rung)),
            ("status", Json::str(self.status.name())),
            ("vectorized", Json::Bool(self.vectorized)),
            ("faulted", Json::Bool(self.faulted)),
            ("detail", Json::str(&self.detail)),
            (
                "minimized_insts",
                self.minimized.as_ref().map_or(Json::Null, |m| Json::int(m.insts as u64)),
            ),
        ])
    }
}

/// The full outcome of a soak run.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// The configuration the run used.
    pub config: SoakConfig,
    /// Per-kernel outcomes, in corpus-index order.
    pub results: Vec<SoakResult>,
    /// Wall time of the whole run.
    pub wall: Duration,
    /// In-memory cache counters at the end of the run.
    pub cache: CacheStats,
    /// Disk cache counters (when a cache directory was configured).
    pub disk: Option<DiskCacheStats>,
    /// Engine pipeline counters.
    pub counters: EngineCounters,
}

impl SoakReport {
    fn count(&self, s: SoakStatus) -> u64 {
        self.results.iter().filter(|r| r.status == s).count() as u64
    }

    /// Failures the run cannot explain: differential divergences,
    /// provenance errors, and aborts (faulted jobs must degrade, never
    /// abort). Zero means the soak is clean.
    pub fn unexplained_failures(&self) -> u64 {
        self.results.iter().filter(|r| r.status.is_failure()).count() as u64
    }

    /// Fraction of kernels whose vegen program uses at least one vector
    /// op (NaN-free: `0.0` for an empty run).
    pub fn vectorization_rate(&self) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        self.results.iter().filter(|r| r.vectorized).count() as f64 / self.results.len() as f64
    }

    /// The ordered result list as JSON — byte-identical for identical
    /// `(seed, count, shard)` arguments at any thread count.
    pub fn results_json(&self) -> Json {
        Json::Arr(self.results.iter().map(SoakResult::to_json).collect())
    }

    /// The report's `soak` block (schema v10).
    pub fn soak_json(&self) -> Json {
        let mut shapes: BTreeMap<&str, u64> = BTreeMap::new();
        let mut widths: BTreeMap<String, u64> = BTreeMap::new();
        for r in &self.results {
            *shapes.entry(r.shape).or_insert(0) += 1;
            *widths.entry(r.out_ty.clone()).or_insert(0) += 1;
        }
        let minimized = self.results.iter().filter(|r| r.minimized.is_some()).count() as u64;
        Json::obj([
            ("seed", Json::int(self.config.seed)),
            ("count", Json::int(self.config.count)),
            ("shard_index", Json::int(self.config.shard_index)),
            ("shard_count", Json::int(self.config.shard_count)),
            ("trials", Json::int(self.config.trials)),
            ("fault_every", Json::int(self.config.fault_every)),
            ("kernels", Json::int(self.results.len() as u64)),
            ("passed", Json::int(self.count(SoakStatus::Passed))),
            ("degraded", Json::int(self.count(SoakStatus::Degraded))),
            ("faulted", Json::int(self.count(SoakStatus::Faulted))),
            ("diff_failures", Json::int(self.count(SoakStatus::DiffFailed))),
            ("provenance_failures", Json::int(self.count(SoakStatus::ProvenanceFailed))),
            ("aborted", Json::int(self.count(SoakStatus::Aborted))),
            ("unexplained_failures", Json::int(self.unexplained_failures())),
            ("minimized", Json::int(minimized)),
            ("vectorization_rate", Json::Num(self.vectorization_rate())),
            (
                "shapes",
                Json::Obj(shapes.into_iter().map(|(k, v)| (k.to_string(), Json::int(v))).collect()),
            ),
            ("widths", Json::Obj(widths.into_iter().map(|(k, v)| (k, Json::int(v))).collect())),
            ("results", self.results_json()),
        ])
    }
}

/// Which original check a minimization must keep failing.
#[derive(Clone, Copy, PartialEq, Eq)]
enum FailCheck {
    Diff,
    Provenance,
}

/// Deterministically corrupt a compiled program: drop one store, chosen
/// by the seeded stream. A program with no stores is left untouched.
fn corrupt_program(prog: &mut VmProgram, seed: u64) {
    let stores: Vec<usize> = prog
        .insts
        .iter()
        .enumerate()
        .filter(|(_, i)| matches!(i, VmInst::StoreScalar { .. } | VmInst::VecStore { .. }))
        .map(|(i, _)| i)
        .collect();
    if stores.is_empty() {
        return;
    }
    let mut rng = XorShift::new(seed);
    prog.insts.remove(stores[rng.below(stores.len())]);
}

/// The differential check for one compiled kernel: all three programs
/// against the scalar interpreter, or — under the planted-miscompile
/// flag — the corrupted vegen program, which *must* be caught.
fn diff_check(
    kernel: &CompiledKernel,
    trials: u64,
    corrupt: Option<u64>,
    index: u64,
) -> Result<(), String> {
    match corrupt {
        None => kernel.verify(trials),
        Some(seed) => {
            let mut prog = kernel.vegen.clone();
            corrupt_program(&mut prog, seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            match vegen::codegen::check_equivalence(&kernel.function, &prog, trials) {
                Err(e) => Err(format!("planted miscompile caught: {e}")),
                Ok(()) => Err("planted miscompile was NOT caught".to_string()),
            }
        }
    }
}

fn provenance_check(kernel: &CompiledKernel) -> Result<(), String> {
    if kernel.analysis.error_count() == 0 {
        Ok(())
    } else {
        Err(format!("provenance audit: {}", kernel.analysis.verdict()))
    }
}

/// Build the seeded fault plan for this shard: every Kth job (1-based
/// within the shard) gets one fault, kind and stage cycling through a
/// stream seeded from the corpus seed. Returns the plan plus the set of
/// targeted kernel names.
fn fault_plan(cfg: &SoakConfig, indices: &[u64]) -> (Vec<FaultSpec>, HashSet<String>) {
    let mut specs = Vec::new();
    let mut names = HashSet::new();
    if cfg.fault_every == 0 {
        return (specs, names);
    }
    let mut rng = XorShift::new(cfg.seed ^ 0x5eed_fa17_5eed_fa17);
    for (ord, &index) in indices.iter().enumerate() {
        if !(ord as u64 + 1).is_multiple_of(cfg.fault_every) {
            continue;
        }
        let name = gen::kernel_name(cfg.seed, index);
        let (stage, kind) = match rng.below(3) {
            0 => (Stage::Selection, FaultKind::Panic),
            1 => (Stage::Selection, FaultKind::Delay(Duration::from_millis(10))),
            _ => (Stage::Lowering, FaultKind::Error),
        };
        names.insert(name.clone());
        specs.push(FaultSpec { kernel: name, stage, kind, once: true });
    }
    (specs, names)
}

/// Write a replayable seed file for a (minimized) failure. The two
/// integers `corpus_seed`/`index` fully reproduce the original kernel;
/// the minimized listing is included for humans.
fn write_seed_file(
    dir: &std::path::Path,
    cfg: &SoakConfig,
    r: &SoakResult,
    listing: &str,
    from_insts: usize,
    insts: usize,
) -> Result<String, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let path = dir.join(format!("{}.json", r.name));
    let doc = Json::obj([
        ("schema", Json::str("vegen-soak-seed/v1")),
        ("corpus_seed", Json::int(cfg.seed)),
        ("index", Json::int(r.index)),
        ("kernel", Json::str(&r.name)),
        ("shape", Json::str(r.shape)),
        ("trials", Json::int(cfg.trials)),
        ("reason", Json::str(r.status.name())),
        ("detail", Json::str(&r.detail)),
        ("original_insts", Json::int(from_insts as u64)),
        ("minimized_insts", Json::int(insts as u64)),
        ("minimized", Json::str(listing)),
    ]);
    std::fs::write(&path, doc.render_pretty() + "\n")
        .map_err(|e| format!("writing {}: {e}", path.display()))?;
    Ok(path.display().to_string())
}

/// Run the soak.
///
/// # Errors
///
/// Returns a message on invalid configuration (bad shard spec, zero
/// trials with checks enabled). Per-kernel failures are *results*, not
/// errors — inspect [`SoakReport::unexplained_failures`].
pub fn run_soak(cfg: &SoakConfig) -> Result<SoakReport, String> {
    if cfg.shard_count == 0 {
        return Err("shard count must be at least 1".into());
    }
    if cfg.shard_index >= cfg.shard_count {
        return Err(format!(
            "shard index {} out of range for {} shard(s)",
            cfg.shard_index, cfg.shard_count
        ));
    }
    if cfg.trials == 0 {
        return Err("soak needs at least one differential trial".into());
    }
    let t0 = Instant::now();
    let indices: Vec<u64> =
        (0..cfg.count).filter(|i| i % cfg.shard_count == cfg.shard_index).collect();

    let (specs, faulted_names) = fault_plan(cfg, &indices);
    metrics::counter("soak_faults_injected").add(specs.len() as u64);
    if !specs.is_empty() {
        vegen::fault::install(FaultPlan::new(specs));
    }

    let engine = Engine::new(EngineConfig {
        threads: 1,
        // The soak owns verification: the engine's own check would run
        // before the (test-only) corruption and double every diff.
        verify_trials: 0,
        deadline: cfg.deadline,
        cache_dir: cfg.cache_dir.clone(),
        cache_max_bytes: cfg.cache_max_bytes,
        beam_threads: cfg.beam_threads,
        ..EngineConfig::default()
    });
    let pipeline = PipelineConfig {
        target: cfg.target.clone(),
        beam: BeamConfig::with_width(cfg.beam),
        canonicalize_patterns: true,
    };
    // Candidate compiles during minimization go through a separate
    // memory-only engine so reducer candidates never pollute the disk
    // cache or the fault ladder's counters.
    let min_engine = Engine::new(EngineConfig {
        threads: 1,
        verify_trials: 0,
        beam_threads: cfg.beam_threads,
        ..EngineConfig::default()
    });

    let mut results = Vec::with_capacity(indices.len());
    for &index in &indices {
        let g = gen::generate(cfg.seed, index);
        metrics::counter("soak_kernels_total").inc();
        let insts = g.function.insts.len();
        let r = engine.compile_one(&g.function.name, &g.function, &pipeline);
        let faulted = faulted_names.contains(&g.function.name);
        let mut detail = String::new();
        let mut vectorized = false;
        let mut failing: Option<FailCheck> = None;
        let status = match &r.kernel {
            None => {
                detail = r.faults.iter().map(|e| e.to_string()).collect::<Vec<_>>().join("; ");
                SoakStatus::Aborted
            }
            Some(k) => {
                vectorized = k.vegen.vector_op_count() > 0;
                if let Err(e) = diff_check(k, cfg.trials, cfg.corrupt_vegen, index) {
                    detail = e;
                    failing = Some(FailCheck::Diff);
                    SoakStatus::DiffFailed
                } else if let Err(e) = provenance_check(k) {
                    detail = e;
                    failing = Some(FailCheck::Provenance);
                    SoakStatus::ProvenanceFailed
                } else if r.rung == Rung::Primary {
                    SoakStatus::Passed
                } else {
                    detail = r.faults.first().map(|e| e.to_string()).unwrap_or_default();
                    if faulted {
                        SoakStatus::Faulted
                    } else {
                        SoakStatus::Degraded
                    }
                }
            }
        };
        match status {
            SoakStatus::DiffFailed => metrics::counter("soak_diff_failures").inc(),
            SoakStatus::ProvenanceFailed => metrics::counter("soak_provenance_failures").inc(),
            SoakStatus::Aborted => metrics::counter("soak_aborted").inc(),
            _ => {}
        }
        let mut result = SoakResult {
            index,
            name: g.function.name.clone(),
            shape: g.shape.name(),
            out_ty: g.out_ty.to_string(),
            insts,
            rung: r.rung.name(),
            status,
            vectorized,
            faulted,
            detail,
            minimized: None,
        };
        if let Some(check) = failing {
            if cfg.minimize {
                let trials = cfg.trials;
                let corrupt = cfg.corrupt_vegen;
                let still_fails = |f: &Function| -> bool {
                    let cr = min_engine.compile_one(&f.name, f, &pipeline);
                    match &cr.kernel {
                        // A candidate that no longer compiles is a
                        // *different* failure; reject the reduction.
                        None => false,
                        Some(k) => match check {
                            FailCheck::Diff => diff_check(k, trials, corrupt, index).is_err(),
                            FailCheck::Provenance => provenance_check(k).is_err(),
                        },
                    }
                };
                let (small, _stats) =
                    vegen_ir::reduce::minimize(&g.function, still_fails, cfg.minimize_budget);
                // The reducer guarantees its result still fails; assert
                // the contract before publishing a reproducer.
                debug_assert!(still_fails(&small));
                metrics::counter("soak_minimized").inc();
                let listing = small.to_string();
                let seed_file = match &cfg.seeds_out {
                    Some(dir) => {
                        match write_seed_file(dir, cfg, &result, &listing, insts, small.insts.len())
                        {
                            Ok(path) => Some(path),
                            Err(e) => {
                                eprintln!("vegen-engine: soak: {e}");
                                None
                            }
                        }
                    }
                    None => None,
                };
                result.minimized = Some(Minimized {
                    from_insts: insts,
                    insts: small.insts.len(),
                    listing,
                    seed_file,
                });
            }
        }
        results.push(result);
    }
    vegen::fault::clear();

    let report = SoakReport {
        config: cfg.clone(),
        results,
        wall: t0.elapsed(),
        cache: engine.cache_stats(),
        disk: engine.disk_stats(),
        counters: engine.counters(),
    };
    metrics::gauge("soak_vectorization_rate").set(report.vectorization_rate());
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(count: u64) -> SoakConfig {
        SoakConfig { count, trials: 4, beam: 8, ..SoakConfig::default() }
    }

    #[test]
    fn clean_soak_has_no_unexplained_failures() {
        let report = run_soak(&quick_cfg(40)).unwrap();
        assert_eq!(report.results.len(), 40);
        assert_eq!(report.unexplained_failures(), 0, "{}", report.results_json().render());
        assert!(
            report.results.iter().any(|r| r.vectorized),
            "a vectorizable-biased corpus should vectorize something"
        );
        for r in &report.results {
            assert!(!r.faulted, "no faults were configured");
        }
    }

    #[test]
    fn result_list_is_identical_across_beam_threads() {
        let one = run_soak(&SoakConfig { beam_threads: 1, ..quick_cfg(24) }).unwrap();
        let four = run_soak(&SoakConfig { beam_threads: 4, ..quick_cfg(24) }).unwrap();
        assert_eq!(
            one.results_json().render(),
            four.results_json().render(),
            "soak results must not depend on beam thread count"
        );
    }

    #[test]
    fn shards_partition_the_corpus() {
        let a = run_soak(&SoakConfig { shard_index: 0, shard_count: 2, ..quick_cfg(21) }).unwrap();
        let b = run_soak(&SoakConfig { shard_index: 1, shard_count: 2, ..quick_cfg(21) }).unwrap();
        let mut all: Vec<u64> = a.results.iter().chain(&b.results).map(|r| r.index).collect();
        all.sort_unstable();
        assert_eq!(all, (0..21).collect::<Vec<u64>>(), "shards must partition exactly");
        assert_eq!(a.results.len(), 11);
        assert_eq!(b.results.len(), 10);
    }

    #[test]
    fn injected_faults_degrade_but_never_abort() {
        let report = run_soak(&SoakConfig { fault_every: 5, ..quick_cfg(30) }).unwrap();
        assert_eq!(report.unexplained_failures(), 0, "{}", report.results_json().render());
        let faulted = report.results.iter().filter(|r| r.faulted).count();
        assert_eq!(faulted, 6, "every 5th of 30 jobs is fault-targeted");
        assert_eq!(report.count(SoakStatus::Aborted), 0);
        // At least the panic/error faults must knock jobs off the
        // primary rung (delay faults without a deadline are harmless).
        assert!(report.count(SoakStatus::Faulted) > 0, "{}", report.results_json().render());
    }

    #[test]
    fn planted_miscompile_is_caught_and_minimized() {
        let dir = std::env::temp_dir().join(format!("vegen-soak-seeds-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = run_soak(&SoakConfig {
            corrupt_vegen: Some(7),
            seeds_out: Some(dir.clone()),
            ..quick_cfg(3)
        })
        .unwrap();
        assert_eq!(report.results.len(), 3);
        for r in &report.results {
            assert_eq!(r.status, SoakStatus::DiffFailed, "{}: {}", r.name, r.detail);
            assert!(r.detail.contains("planted"), "{}", r.detail);
            let m = r.minimized.as_ref().expect("failure must be minimized");
            assert!(
                m.insts <= 8,
                "{} minimized to {} insts, want <= 8:\n{}",
                r.name,
                m.insts,
                m.listing
            );
            assert!(m.insts < m.from_insts);
            let path = m.seed_file.as_ref().expect("seed file must be written");
            let text = std::fs::read_to_string(path).unwrap();
            let doc = Json::parse(&text).unwrap();
            assert_eq!(doc.get("schema").unwrap().as_str(), Some("vegen-soak-seed/v1"));
            assert_eq!(doc.get("corpus_seed").unwrap().as_f64(), Some(42.0));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_shard_spec_is_rejected() {
        assert!(run_soak(&SoakConfig { shard_count: 0, ..quick_cfg(1) }).is_err());
        assert!(run_soak(&SoakConfig { shard_index: 2, shard_count: 2, ..quick_cfg(1) }).is_err());
        assert!(run_soak(&SoakConfig { trials: 0, ..quick_cfg(1) }).is_err());
    }
}
