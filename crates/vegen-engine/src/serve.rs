//! `vegen-engine serve` — a resident compile service over the engine.
//!
//! The daemon reads newline-delimited JSON requests (one object per
//! line) from a Unix socket or stdio and answers each with one JSON
//! line. Protocol grammar (see DESIGN §13 for the full spec):
//!
//! ```text
//! request  := compile | metrics | stats | ping | kernels | shutdown
//! compile  := {"op":"compile", "id":<any>,
//!              "kernel":<suite name> | "function":<serdes Function>,
//!              ["target":<name>] ["beam":<width>]
//!              ["deadline_ms":<n>] ["decisions":<bool>]}
//! metrics  := {"op":"metrics", "id":<any>}
//! stats    := {"op":"stats", "id":<any>, ["format":"prometheus"]}
//! ping     := {"op":"ping", "id":<any>}
//! kernels  := {"op":"kernels", "id":<any>}
//! shutdown := {"op":"shutdown", "id":<any>}
//!
//! response := {"id":<echoed>, "ok":true,  "result":{...}}
//!           | {"id":<echoed>, "ok":false, "error":{"stage","tag","message"}}
//! ```
//!
//! `metrics` answers with engine counters, cache/disk stats, queue depth,
//! and (since report schema v8) the full metrics registry snapshot under
//! `registry` — latency histograms with exact p50/p90/p99. `stats` is the
//! exposition-only subset: just the registry, or the Prometheus text
//! format when `"format":"prometheus"` is given (the text lands in the
//! response as `{"prometheus": "<text>"}` so the framing stays NDJSON).
//!
//! Admission control: compile requests land in a bounded queue. A full
//! queue sheds the request immediately with a typed
//! [`ErrorCause::Overloaded`] error instead of blocking the client or
//! aborting the daemon. A dispatcher thread drains the queue in
//! micro-batches onto [`Engine::compile_batch`] — the same work-stealing
//! pool batch jobs use — so concurrent clients share the machine fairly.
//! A request that spends its whole `deadline_ms` waiting in the queue is
//! dropped with a typed `Deadline` error at [`Stage::Admission`]; one
//! that gets dispatched runs with its deadline as the compile window.
//!
//! Shutdown is graceful: the `shutdown` op (or EOF on stdio) stops
//! admission, the dispatcher drains every queued job to a response, and
//! only then does the daemon exit. In socket mode, compile requests
//! arriving on *other* connections during the drain are rejected with
//! tag `"draining"`.

use crate::json::Json;
use crate::{report, serdes, Engine, Job, JobResult};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use vegen::error::{CompileError, ErrorCause, Stage};
use vegen_isa::TargetIsa;

/// Service construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bound on the admission queue; a full queue sheds with a typed
    /// `Overloaded` response.
    pub queue_capacity: usize,
    /// Target for requests that don't name one.
    pub target: TargetIsa,
    /// Beam width for requests that don't name one.
    pub beam_width: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig { queue_capacity: 64, target: TargetIsa::avx2(), beam_width: 16 }
    }
}

/// What one daemon run did (for logs and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests parsed (any op).
    pub requests: u64,
    /// Compile jobs that ran through the engine to a response.
    pub compiles: u64,
    /// Compile requests shed by the full queue.
    pub shed: u64,
    /// Compile requests dropped after expiring in the queue.
    pub expired: u64,
    /// Compile requests rejected during the shutdown drain.
    pub rejected_draining: u64,
    /// Lines that were not a well-formed request.
    pub protocol_errors: u64,
}

/// A client output stream: one response line per call, best-effort (a
/// client that hung up mid-drain just loses its responses).
type Sink = Arc<Mutex<dyn Write + Send>>;

fn send_line(sink: &Sink, doc: &Json) {
    let mut w = sink.lock().unwrap_or_else(|e| e.into_inner());
    let _ = writeln!(w, "{}", doc.render());
    let _ = w.flush();
}

fn ok_response(id: &Json, result: Json) -> Json {
    Json::obj([("id", id.clone()), ("ok", Json::Bool(true)), ("result", result)])
}

fn error_response(id: &Json, e: &CompileError) -> Json {
    Json::obj([
        ("id", id.clone()),
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::obj([
                ("stage", Json::str(e.stage.name())),
                ("tag", Json::str(e.cause.tag())),
                ("message", Json::str(e.to_string())),
            ]),
        ),
    ])
}

fn protocol_error(id: &Json, message: impl Into<String>) -> Json {
    Json::obj([
        ("id", id.clone()),
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::obj([
                ("stage", Json::str(Stage::Admission.name())),
                ("tag", Json::str("protocol")),
                ("message", Json::str(message.into())),
            ]),
        ),
    ])
}

/// Per-kernel compile response body.
fn result_json(r: &JobResult) -> Json {
    let mut pairs: Vec<(&'static str, Json)> = vec![
        ("name", Json::str(&r.name)),
        ("corr", Json::str(&r.corr)),
        ("rung", Json::str(r.rung.name())),
        ("cache", Json::str(r.cache_source())),
        ("hash", r.hash.map_or(Json::Null, |h| Json::str(h.hex()))),
        ("failed", Json::Bool(r.failed())),
        (
            "faults",
            Json::Arr(
                r.faults
                    .iter()
                    .map(|f| {
                        Json::obj([
                            ("stage", Json::str(f.stage.name())),
                            ("tag", Json::str(f.cause.tag())),
                            ("message", Json::str(f.cause.to_string())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("wall_us", Json::int(r.wall.as_micros() as u64)),
        ("verify_error", r.verify_error.as_deref().map_or(Json::Null, Json::str)),
    ];
    if let Some(kernel) = &r.kernel {
        let (scalar, baseline, vegen) = kernel.cycles();
        pairs.push((
            "cycles",
            Json::obj([
                ("scalar", Json::Num(scalar)),
                ("baseline", Json::Num(baseline)),
                ("vegen", Json::Num(vegen)),
            ]),
        ));
        pairs.push(("speedup_baseline", Json::Num(kernel.speedup_vs_baseline())));
        pairs.push(("speedup_scalar", Json::Num(kernel.speedup_vs_scalar())));
    }
    Json::obj(pairs)
}

fn parse_target(name: &str) -> Option<TargetIsa> {
    match name.to_ascii_lowercase().as_str() {
        "avx2" => Some(TargetIsa::avx2()),
        "avx512vnni" | "avx512-vnni" | "vnni" => Some(TargetIsa::avx512vnni()),
        "sse4" => Some(TargetIsa::sse4()),
        _ => None,
    }
}

/// One admitted compile request.
struct QueuedJob {
    id: Json,
    job: Job,
    enqueued: Instant,
    sink: Sink,
}

#[derive(Default)]
struct QueueState {
    items: VecDeque<QueuedJob>,
    draining: bool,
}

/// Everything the reader and dispatcher threads share.
struct ServeState<'e> {
    engine: &'e Engine,
    cfg: ServeConfig,
    queue: Mutex<QueueState>,
    cond: Condvar,
    requests: AtomicU64,
    compiles: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    rejected_draining: AtomicU64,
    protocol_errors: AtomicU64,
}

impl<'e> ServeState<'e> {
    fn new(engine: &'e Engine, cfg: ServeConfig) -> ServeState<'e> {
        ServeState {
            engine,
            cfg,
            queue: Mutex::new(QueueState::default()),
            cond: Condvar::new(),
            requests: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            rejected_draining: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
        }
    }

    fn summary(&self) -> ServeSummary {
        ServeSummary {
            requests: self.requests.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            rejected_draining: self.rejected_draining.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
        }
    }

    /// Stop admission and wake the dispatcher for its final drain.
    fn start_drain(&self) {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).draining = true;
        self.cond.notify_all();
    }

    fn metrics_json(&self) -> Json {
        let q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        let depth = q.items.len();
        let draining = q.draining;
        drop(q);
        Json::obj([
            ("counters", report::counters_json(&self.engine.counters())),
            ("cache", report::cache_json(&self.engine.cache_stats())),
            ("disk", self.engine.disk_stats().as_ref().map_or(Json::Null, report::disk_json)),
            (
                "queue",
                Json::obj([
                    ("depth", Json::int(depth as u64)),
                    ("capacity", Json::int(self.cfg.queue_capacity as u64)),
                ]),
            ),
            ("draining", Json::Bool(draining)),
            ("registry", report::metrics_registry_json()),
        ])
    }

    /// Build the [`Job`] a compile request describes.
    fn parse_compile(&self, req: &Json) -> Result<Job, String> {
        let function = match (req.get("kernel"), req.get("function")) {
            (Some(k), None) => {
                let name = k.as_str().ok_or("\"kernel\" must be a string")?;
                let kernel = vegen_kernels::find(name).ok_or(format!("unknown kernel {name:?}"))?;
                (kernel.build)()
            }
            (None, Some(f)) => {
                serdes::function_from_json(f).map_err(|e| format!("function: {e}"))?
            }
            _ => return Err("need exactly one of \"kernel\" or \"function\"".into()),
        };
        let target = match req.get("target") {
            Some(t) => {
                let name = t.as_str().ok_or("\"target\" must be a string")?;
                parse_target(name).ok_or(format!("unknown target {name:?}"))?
            }
            None => self.cfg.target.clone(),
        };
        let width = match req.get("beam") {
            Some(b) => {
                let v = b.as_f64().filter(|v| *v >= 1.0 && v.trunc() == *v);
                v.ok_or("\"beam\" must be a positive integer")? as usize
            }
            None => self.cfg.beam_width,
        };
        let deadline = match req.get("deadline_ms") {
            Some(d) => {
                let v = d.as_f64().filter(|v| *v >= 0.0 && v.trunc() == *v);
                Some(Duration::from_millis(v.ok_or("\"deadline_ms\" must be an integer")? as u64))
            }
            None => None,
        };
        let mut pipeline = vegen::driver::PipelineConfig::new(target, width);
        if let Some(Json::Bool(true)) = req.get("decisions") {
            pipeline.beam.log_decisions = true;
        }
        let name = function.name.clone();
        Ok(Job::new(name, function, pipeline).with_deadline(deadline))
    }

    /// Admit a compile job or shed it. The response for shed/draining is
    /// sent here; admitted jobs are answered by the dispatcher.
    fn enqueue(&self, id: Json, mut job: Job, sink: &Sink) {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        if q.draining {
            self.rejected_draining.fetch_add(1, Ordering::Relaxed);
            drop(q);
            send_line(sink, &protocol_error(&id, "daemon is draining; request rejected"));
            return;
        }
        if q.items.len() >= self.cfg.queue_capacity {
            self.shed.fetch_add(1, Ordering::Relaxed);
            let e = CompileError::new(
                Stage::Admission,
                &job.name,
                ErrorCause::Overloaded { capacity: self.cfg.queue_capacity },
            );
            drop(q);
            vegen_trace::instant("serve", "shed");
            vegen_trace::metrics::counter("serve_shed_total").inc();
            send_line(sink, &error_response(&id, &e));
            return;
        }
        // Serve jobs are admitted here, at the queue boundary — the event
        // goes out now (with the queue depth at admission) and the flag
        // stops `compile_batch` from emitting a second `admitted` at
        // dispatch time.
        if let Some(log) = self.engine.event_log() {
            log.emit(
                "admitted",
                &job.corr,
                &job.name,
                vec![("queue_depth", Json::int(q.items.len() as u64))],
            );
        }
        job.pre_admitted = true;
        q.items.push_back(QueuedJob { id, job, enqueued: Instant::now(), sink: sink.clone() });
        vegen_trace::metrics::gauge("serve_queue_depth").set(q.items.len() as f64);
        drop(q);
        self.cond.notify_all();
    }

    /// Handle one request line from a client. Returns `true` when the
    /// request asked the daemon to shut down.
    fn handle_line(&self, line: &str, sink: &Sink) -> bool {
        let line = line.trim();
        if line.is_empty() {
            return false;
        }
        let req = match Json::parse(line) {
            Ok(req) => req,
            Err(e) => {
                self.protocol_errors.fetch_add(1, Ordering::Relaxed);
                send_line(sink, &protocol_error(&Json::Null, format!("unparseable request: {e}")));
                return false;
            }
        };
        let id = req.get("id").cloned().unwrap_or(Json::Null);
        let op = req.get("op").and_then(Json::as_str).unwrap_or("");
        self.requests.fetch_add(1, Ordering::Relaxed);
        let _sp =
            vegen_trace::enabled().then(|| vegen_trace::span_owned("serve", format!("op:{op}")));
        match op {
            "ping" => send_line(sink, &ok_response(&id, Json::obj([("pong", Json::Bool(true))]))),
            "metrics" => send_line(sink, &ok_response(&id, self.metrics_json())),
            "stats" => {
                let body = match req.get("format").and_then(Json::as_str) {
                    Some("prometheus") => {
                        Json::obj([("prometheus", Json::str(report::metrics_prometheus()))])
                    }
                    Some(other) => {
                        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        send_line(sink, &protocol_error(&id, format!("unknown format {other:?}")));
                        return false;
                    }
                    None => report::metrics_registry_json(),
                };
                send_line(sink, &ok_response(&id, body));
            }
            "kernels" => {
                let names = vegen_kernels::all().into_iter().map(|k| Json::str(k.name)).collect();
                send_line(sink, &ok_response(&id, Json::obj([("kernels", Json::Arr(names))])));
            }
            "shutdown" => {
                send_line(sink, &ok_response(&id, Json::obj([("draining", Json::Bool(true))])));
                return true;
            }
            "compile" => match self.parse_compile(&req) {
                Ok(job) => self.enqueue(id, job, sink),
                Err(message) => {
                    self.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    send_line(sink, &protocol_error(&id, message));
                }
            },
            other => {
                self.protocol_errors.fetch_add(1, Ordering::Relaxed);
                send_line(sink, &protocol_error(&id, format!("unknown op {other:?}")));
            }
        }
        false
    }

    /// Read a client stream to EOF (or shutdown). Returns `true` on
    /// shutdown.
    fn read_client<R: BufRead>(&self, input: R, sink: &Sink) -> bool {
        for line in input.lines() {
            let Ok(line) = line else { break };
            if self.handle_line(&line, sink) {
                return true;
            }
        }
        false
    }

    /// The dispatcher: drain whatever is queued as one micro-batch onto
    /// the engine's work-stealing pool, respond per job, repeat; exit
    /// once the queue is empty *and* the daemon is draining.
    fn dispatch(&self) {
        loop {
            let batch = {
                let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if !q.items.is_empty() {
                        let items = std::mem::take(&mut q.items);
                        vegen_trace::metrics::gauge("serve_queue_depth").set(0.0);
                        break items;
                    }
                    if q.draining {
                        return;
                    }
                    q = self.cond.wait(q).unwrap_or_else(|e| e.into_inner());
                }
            };
            // Requests that spent their whole deadline waiting are
            // answered without burning pool time on them.
            let mut live = Vec::with_capacity(batch.len());
            for qj in batch {
                match qj.job.deadline {
                    Some(limit) if qj.enqueued.elapsed() >= limit => {
                        self.expired.fetch_add(1, Ordering::Relaxed);
                        let e = CompileError::new(
                            Stage::Admission,
                            &qj.job.name,
                            ErrorCause::Deadline { limit },
                        );
                        vegen_trace::instant("serve", "expired_in_queue");
                        vegen_trace::metrics::counter("serve_expired_total").inc();
                        if let Some(log) = self.engine.event_log() {
                            log.emit(
                                "faulted",
                                &qj.job.corr,
                                &qj.job.name,
                                vec![
                                    ("stage", Json::str(Stage::Admission.name())),
                                    ("tag", Json::str(e.cause.tag())),
                                    ("message", Json::str(e.cause.to_string())),
                                ],
                            );
                            log.emit(
                                "completed",
                                &qj.job.corr,
                                &qj.job.name,
                                vec![("rung", Json::str("failed")), ("cache", Json::str("miss"))],
                            );
                        }
                        send_line(&qj.sink, &error_response(&qj.id, &e));
                    }
                    _ => live.push(qj),
                }
            }
            if live.is_empty() {
                continue;
            }
            let jobs: Vec<Job> = live.iter().map(|qj| qj.job.clone()).collect();
            let results = self.engine.compile_batch(&jobs);
            for (qj, result) in live.iter().zip(&results) {
                self.compiles.fetch_add(1, Ordering::Relaxed);
                send_line(&qj.sink, &ok_response(&qj.id, result_json(result)));
            }
        }
    }
}

/// One final flight dump when a daemon run ends, so a post-mortem has
/// the tail of the last window even on a clean exit.
fn shutdown_dump(engine: &Engine) {
    if let Some(flight) = engine.flight_recorder() {
        let tail = engine.event_log().map(|log| log.tail()).unwrap_or_default();
        if let Err(e) = flight.dump("shutdown", &tail) {
            vegen_trace::instant_owned("flight", format!("dump_error: {e}"));
        }
    }
}

/// Run the line protocol over one input/output pair (the `--stdio` mode;
/// also the in-process harness the protocol tests drive). Returns after
/// EOF or a `shutdown` op, with every admitted job drained to a
/// response.
pub fn serve_lines<R, W>(engine: &Engine, cfg: &ServeConfig, input: R, output: W) -> ServeSummary
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let state = ServeState::new(engine, cfg.clone());
    let sink: Sink = Arc::new(Mutex::new(output));
    std::thread::scope(|scope| {
        let dispatcher = scope.spawn(|| state.dispatch());
        state.read_client(input, &sink);
        state.start_drain();
        let _ = dispatcher.join();
    });
    shutdown_dump(engine);
    state.summary()
}

/// Bind `path` and serve until a client sends `shutdown`. Each
/// connection gets its own reader thread; all share one admission queue
/// and one dispatcher. Returns after the drain completes.
///
/// # Errors
///
/// Returns a message when the socket cannot be bound.
pub fn serve_socket(
    engine: &Engine,
    cfg: &ServeConfig,
    path: &Path,
) -> Result<ServeSummary, String> {
    // A leftover socket file from a dead daemon would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path).map_err(|e| format!("bind {}: {e}", path.display()))?;
    let state = ServeState::new(engine, cfg.clone());
    let shutdown = AtomicBool::new(false);
    // Read-half clones of every live connection, so shutdown can unblock
    // their readers with an EOF.
    let clients: Mutex<Vec<UnixStream>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        let dispatcher = scope.spawn(|| state.dispatch());
        let mut readers = Vec::new();
        for stream in listener.incoming() {
            if shutdown.load(Ordering::Relaxed) {
                break;
            }
            let Ok(stream) = stream else { break };
            if let Ok(clone) = stream.try_clone() {
                clients.lock().unwrap_or_else(|e| e.into_inner()).push(clone);
            }
            let write_half = match stream.try_clone() {
                Ok(w) => w,
                Err(_) => continue,
            };
            let state = &state;
            let shutdown = &shutdown;
            let clients = &clients;
            readers.push(scope.spawn(move || {
                let sink: Sink = Arc::new(Mutex::new(write_half));
                if state.read_client(BufReader::new(stream), &sink) {
                    // This client asked for shutdown: stop admission,
                    // unblock the accept loop and every other reader.
                    shutdown.store(true, Ordering::Relaxed);
                    state.start_drain();
                    for c in clients.lock().unwrap_or_else(|e| e.into_inner()).iter() {
                        let _ = c.shutdown(std::net::Shutdown::Read);
                    }
                    let _ = UnixStream::connect(path);
                }
            }));
        }
        state.start_drain();
        for r in readers {
            let _ = r.join();
        }
        let _ = dispatcher.join();
    });
    let _ = std::fs::remove_file(path);
    shutdown_dump(engine);
    Ok(state.summary())
}
