//! JSON serialization of compiled kernels for the persistent disk cache.
//!
//! The workspace builds fully offline (no serde), so every shape that
//! crosses the process boundary is encoded by hand through the in-tree
//! [`Json`] writer/parser. The encoding is designed for *byte stability*:
//! `encode(decode(encode(x))) == encode(x)` byte-for-byte, which is what
//! lets the disk cache self-check entries at store time and lets restart
//! tests compare golden packs across engine processes.
//!
//! Conventions:
//!
//! * 64-bit bit patterns ([`Constant::raw_bits`]) are lower-case hex
//!   strings — `Json::Num` is `f64` and loses integers above 2⁵³;
//! * durations are integer nanoseconds;
//! * costs stay `f64`: Rust's shortest-roundtrip `Display` guarantees
//!   render → parse → render stability;
//! * [`InstSemantics`] are embedded as VIDL concrete syntax
//!   ([`vegen::vidl::print::inst_text`] / [`vegen::vidl::parse_inst`]),
//!   so cached programs are self-contained — decoding never consults the
//!   instruction database;
//! * enums are tagged objects (`{"k": "bin", ...}`) with the IR printer's
//!   stable mnemonics.
//!
//! Decoding is total: every malformed document comes back as `Err(String)`
//! naming the offending field, never a panic — the disk cache treats any
//! decode error as a corrupt entry, rejects it, and recompiles.

use crate::json::Json;
use std::time::Duration;
use vegen::analysis::{AnalysisReport, Diagnostic, Location, Severity};
use vegen::driver::{CompiledKernel, StageTimes};
use vegen_core::beam::{
    BeamStats, CandidateLog, CommittedPack, DecisionLog, IterationLog, SelectionResult,
};
use vegen_core::pack::{Pack, PackSet, PackedMatch};
use vegen_ir::{
    BinOp, CastOp, CmpPred, Constant, Function, Inst, InstKind, MemLoc, Param, Type, ValueId,
};
use vegen_vm::{LaneSrc, Reg, ScalarOp, VmInst, VmProgram};

// ---------------------------------------------------------------------------
// Decode helpers
// ---------------------------------------------------------------------------

fn field<'a>(j: &'a Json, key: &str) -> Result<&'a Json, String> {
    j.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn num(j: &Json, key: &str) -> Result<f64, String> {
    field(j, key)?.as_f64().ok_or_else(|| format!("field {key:?} is not a number"))
}

fn uint(j: &Json, key: &str) -> Result<u64, String> {
    let v = num(j, key)?;
    if v < 0.0 || v != v.trunc() {
        return Err(format!("field {key:?} is not a non-negative integer: {v}"));
    }
    Ok(v as u64)
}

fn int(j: &Json, key: &str) -> Result<i64, String> {
    let v = num(j, key)?;
    if v != v.trunc() {
        return Err(format!("field {key:?} is not an integer: {v}"));
    }
    Ok(v as i64)
}

fn string<'a>(j: &'a Json, key: &str) -> Result<&'a str, String> {
    field(j, key)?.as_str().ok_or_else(|| format!("field {key:?} is not a string"))
}

fn arr<'a>(j: &'a Json, key: &str) -> Result<&'a [Json], String> {
    field(j, key)?.as_arr().ok_or_else(|| format!("field {key:?} is not an array"))
}

fn boolean(j: &Json, key: &str) -> Result<bool, String> {
    field(j, key)?.as_bool().ok_or_else(|| format!("field {key:?} is not a boolean"))
}

fn hex_u64(j: &Json, key: &str) -> Result<u64, String> {
    let s = string(j, key)?;
    u64::from_str_radix(s, 16).map_err(|e| format!("field {key:?} is not hex: {e}"))
}

fn nanos(j: &Json, key: &str) -> Result<Duration, String> {
    Ok(Duration::from_nanos(uint(j, key)?))
}

fn duration_json(d: Duration) -> Json {
    Json::int(d.as_nanos() as u64)
}

// ---------------------------------------------------------------------------
// IR scalars
// ---------------------------------------------------------------------------

fn type_name(ty: Type) -> &'static str {
    match ty {
        Type::I1 => "i1",
        Type::I8 => "i8",
        Type::I16 => "i16",
        Type::I32 => "i32",
        Type::I64 => "i64",
        Type::F32 => "f32",
        Type::F64 => "f64",
        Type::Void => "void",
    }
}

fn parse_type(s: &str) -> Result<Type, String> {
    match s {
        "i1" => Ok(Type::I1),
        "i8" => Ok(Type::I8),
        "i16" => Ok(Type::I16),
        "i32" => Ok(Type::I32),
        "i64" => Ok(Type::I64),
        "f32" => Ok(Type::F32),
        "f64" => Ok(Type::F64),
        "void" => Ok(Type::Void),
        other => Err(format!("unknown type {other:?}")),
    }
}

fn ty_of(j: &Json, key: &str) -> Result<Type, String> {
    parse_type(string(j, key)?)
}

fn parse_binop(s: &str) -> Result<BinOp, String> {
    use BinOp::*;
    let all = [
        Add, Sub, Mul, SDiv, UDiv, SRem, URem, And, Or, Xor, Shl, LShr, AShr, FAdd, FSub, FMul,
        FDiv,
    ];
    all.into_iter().find(|op| op.name() == s).ok_or_else(|| format!("unknown binop {s:?}"))
}

fn parse_castop(s: &str) -> Result<CastOp, String> {
    use CastOp::*;
    let all = [SExt, ZExt, Trunc, FPExt, FPTrunc, SIToFP, UIToFP, FPToSI];
    all.into_iter().find(|op| op.name() == s).ok_or_else(|| format!("unknown cast op {s:?}"))
}

fn parse_cmppred(s: &str) -> Result<CmpPred, String> {
    use CmpPred::*;
    let all = [Eq, Ne, Slt, Sle, Sgt, Sge, Ult, Ule, Ugt, Uge, Feq, Fne, Flt, Fle, Fgt, Fge];
    all.into_iter().find(|p| p.name() == s).ok_or_else(|| format!("unknown predicate {s:?}"))
}

fn constant_json(c: Constant) -> Json {
    Json::obj([
        ("ty", Json::str(type_name(c.ty()))),
        ("bits", Json::str(format!("{:x}", c.raw_bits()))),
    ])
}

fn constant_from(j: &Json) -> Result<Constant, String> {
    let ty = ty_of(j, "ty")?;
    let bits = hex_u64(j, "bits")?;
    Ok(match ty {
        Type::I1 => Constant::bool(bits & 1 == 1),
        Type::F32 => Constant::f32(f32::from_bits(bits as u32)),
        Type::F64 => Constant::f64(f64::from_bits(bits)),
        // `Constant::int` masks to the type width, so the raw bit pattern
        // round-trips exactly for every integer type.
        _ => Constant::int(ty, bits as i64),
    })
}

fn value_json(v: ValueId) -> Json {
    Json::int(v.index() as u64)
}

fn value_from(j: &Json) -> Result<ValueId, String> {
    let v = j.as_f64().ok_or("value id is not a number")?;
    if v < 0.0 || v != v.trunc() {
        return Err(format!("bad value id {v}"));
    }
    Ok(ValueId::from_raw(v as u32))
}

fn opt_value_json(v: Option<ValueId>) -> Json {
    v.map_or(Json::Null, value_json)
}

fn opt_value_from(j: &Json) -> Result<Option<ValueId>, String> {
    match j {
        Json::Null => Ok(None),
        other => value_from(other).map(Some),
    }
}

// ---------------------------------------------------------------------------
// Function
// ---------------------------------------------------------------------------

fn param_json(p: &Param) -> Json {
    Json::obj([
        ("name", Json::str(&p.name)),
        ("ty", Json::str(type_name(p.elem_ty))),
        ("len", Json::int(p.len as u64)),
    ])
}

fn param_from(j: &Json) -> Result<Param, String> {
    Ok(Param {
        name: string(j, "name")?.to_string(),
        elem_ty: ty_of(j, "ty")?,
        len: uint(j, "len")? as usize,
    })
}

fn inst_json(inst: &Inst) -> Json {
    let mut pairs: Vec<(&'static str, Json)> = vec![("ty", Json::str(type_name(inst.ty)))];
    match &inst.kind {
        InstKind::Const(c) => {
            pairs.push(("k", Json::str("const")));
            pairs.push(("c", constant_json(*c)));
        }
        InstKind::Bin { op, lhs, rhs } => {
            pairs.push(("k", Json::str("bin")));
            pairs.push(("op", Json::str(op.name())));
            pairs.push(("lhs", value_json(*lhs)));
            pairs.push(("rhs", value_json(*rhs)));
        }
        InstKind::FNeg { arg } => {
            pairs.push(("k", Json::str("fneg")));
            pairs.push(("arg", value_json(*arg)));
        }
        InstKind::Cast { op, arg } => {
            pairs.push(("k", Json::str("cast")));
            pairs.push(("op", Json::str(op.name())));
            pairs.push(("arg", value_json(*arg)));
        }
        InstKind::Cmp { pred, lhs, rhs } => {
            pairs.push(("k", Json::str("cmp")));
            pairs.push(("pred", Json::str(pred.name())));
            pairs.push(("lhs", value_json(*lhs)));
            pairs.push(("rhs", value_json(*rhs)));
        }
        InstKind::Select { cond, on_true, on_false } => {
            pairs.push(("k", Json::str("select")));
            pairs.push(("cond", value_json(*cond)));
            pairs.push(("t", value_json(*on_true)));
            pairs.push(("f", value_json(*on_false)));
        }
        InstKind::Load { loc } => {
            pairs.push(("k", Json::str("load")));
            pairs.push(("base", Json::int(loc.base as u64)));
            pairs.push(("offset", Json::Num(loc.offset as f64)));
        }
        InstKind::Store { loc, value } => {
            pairs.push(("k", Json::str("store")));
            pairs.push(("base", Json::int(loc.base as u64)));
            pairs.push(("offset", Json::Num(loc.offset as f64)));
            pairs.push(("value", value_json(*value)));
        }
    }
    Json::obj(pairs)
}

fn inst_from(j: &Json) -> Result<Inst, String> {
    let ty = ty_of(j, "ty")?;
    let value_of = |key: &str| field(j, key).and_then(value_from);
    let kind = match string(j, "k")? {
        "const" => InstKind::Const(constant_from(field(j, "c")?)?),
        "bin" => InstKind::Bin {
            op: parse_binop(string(j, "op")?)?,
            lhs: value_of("lhs")?,
            rhs: value_of("rhs")?,
        },
        "fneg" => InstKind::FNeg { arg: value_of("arg")? },
        "cast" => InstKind::Cast { op: parse_castop(string(j, "op")?)?, arg: value_of("arg")? },
        "cmp" => InstKind::Cmp {
            pred: parse_cmppred(string(j, "pred")?)?,
            lhs: value_of("lhs")?,
            rhs: value_of("rhs")?,
        },
        "select" => InstKind::Select {
            cond: value_of("cond")?,
            on_true: value_of("t")?,
            on_false: value_of("f")?,
        },
        "load" => InstKind::Load {
            loc: MemLoc { base: uint(j, "base")? as usize, offset: int(j, "offset")? },
        },
        "store" => InstKind::Store {
            loc: MemLoc { base: uint(j, "base")? as usize, offset: int(j, "offset")? },
            value: value_of("value")?,
        },
        other => return Err(format!("unknown inst kind {other:?}")),
    };
    Ok(Inst { kind, ty })
}

/// Encode a scalar IR function.
pub fn function_to_json(f: &Function) -> Json {
    Json::obj([
        ("name", Json::str(&f.name)),
        ("params", Json::Arr(f.params.iter().map(param_json).collect())),
        ("insts", Json::Arr(f.insts.iter().map(inst_json).collect())),
    ])
}

/// Decode a scalar IR function.
///
/// # Errors
///
/// Returns a message naming the malformed field.
pub fn function_from_json(j: &Json) -> Result<Function, String> {
    Ok(Function {
        name: string(j, "name")?.to_string(),
        params: arr(j, "params")?.iter().map(param_from).collect::<Result<_, _>>()?,
        insts: arr(j, "insts")?.iter().map(inst_from).collect::<Result<_, _>>()?,
    })
}

// ---------------------------------------------------------------------------
// VM programs
// ---------------------------------------------------------------------------

fn reg_json(r: Reg) -> Json {
    Json::int(r.0 as u64)
}

fn reg_of(j: &Json, key: &str) -> Result<Reg, String> {
    Ok(Reg(uint(j, key)? as u32))
}

fn scalar_op_json(op: &ScalarOp) -> Json {
    match op {
        ScalarOp::Const(c) => Json::obj([("k", Json::str("const")), ("c", constant_json(*c))]),
        ScalarOp::Bin { op, lhs, rhs } => Json::obj([
            ("k", Json::str("bin")),
            ("op", Json::str(op.name())),
            ("lhs", reg_json(*lhs)),
            ("rhs", reg_json(*rhs)),
        ]),
        ScalarOp::FNeg { arg } => Json::obj([("k", Json::str("fneg")), ("arg", reg_json(*arg))]),
        ScalarOp::Cast { op, to, arg } => Json::obj([
            ("k", Json::str("cast")),
            ("op", Json::str(op.name())),
            ("to", Json::str(type_name(*to))),
            ("arg", reg_json(*arg)),
        ]),
        ScalarOp::Cmp { pred, lhs, rhs } => Json::obj([
            ("k", Json::str("cmp")),
            ("pred", Json::str(pred.name())),
            ("lhs", reg_json(*lhs)),
            ("rhs", reg_json(*rhs)),
        ]),
        ScalarOp::Select { cond, on_true, on_false } => Json::obj([
            ("k", Json::str("select")),
            ("cond", reg_json(*cond)),
            ("t", reg_json(*on_true)),
            ("f", reg_json(*on_false)),
        ]),
    }
}

fn scalar_op_from(j: &Json) -> Result<ScalarOp, String> {
    Ok(match string(j, "k")? {
        "const" => ScalarOp::Const(constant_from(field(j, "c")?)?),
        "bin" => ScalarOp::Bin {
            op: parse_binop(string(j, "op")?)?,
            lhs: reg_of(j, "lhs")?,
            rhs: reg_of(j, "rhs")?,
        },
        "fneg" => ScalarOp::FNeg { arg: reg_of(j, "arg")? },
        "cast" => ScalarOp::Cast {
            op: parse_castop(string(j, "op")?)?,
            to: ty_of(j, "to")?,
            arg: reg_of(j, "arg")?,
        },
        "cmp" => ScalarOp::Cmp {
            pred: parse_cmppred(string(j, "pred")?)?,
            lhs: reg_of(j, "lhs")?,
            rhs: reg_of(j, "rhs")?,
        },
        "select" => ScalarOp::Select {
            cond: reg_of(j, "cond")?,
            on_true: reg_of(j, "t")?,
            on_false: reg_of(j, "f")?,
        },
        other => return Err(format!("unknown scalar op {other:?}")),
    })
}

fn lane_src_json(l: &LaneSrc) -> Json {
    match l {
        LaneSrc::FromVec { src, lane } => Json::obj([
            ("k", Json::str("vec")),
            ("src", reg_json(*src)),
            ("lane", Json::int(*lane as u64)),
        ]),
        LaneSrc::FromScalar(r) => Json::obj([("k", Json::str("scalar")), ("reg", reg_json(*r))]),
        LaneSrc::Const(c) => Json::obj([("k", Json::str("const")), ("c", constant_json(*c))]),
        LaneSrc::Undef => Json::obj([("k", Json::str("undef"))]),
    }
}

fn lane_src_from(j: &Json) -> Result<LaneSrc, String> {
    Ok(match string(j, "k")? {
        "vec" => LaneSrc::FromVec { src: reg_of(j, "src")?, lane: uint(j, "lane")? as usize },
        "scalar" => LaneSrc::FromScalar(reg_of(j, "reg")?),
        "const" => LaneSrc::Const(constant_from(field(j, "c")?)?),
        "undef" => LaneSrc::Undef,
        other => return Err(format!("unknown lane source {other:?}")),
    })
}

fn vm_inst_json(i: &VmInst) -> Json {
    match i {
        VmInst::Scalar { dst, op } => Json::obj([
            ("k", Json::str("scalar")),
            ("dst", reg_json(*dst)),
            ("op", scalar_op_json(op)),
        ]),
        VmInst::LoadScalar { dst, base, offset } => Json::obj([
            ("k", Json::str("load_scalar")),
            ("dst", reg_json(*dst)),
            ("base", Json::int(*base as u64)),
            ("offset", Json::Num(*offset as f64)),
        ]),
        VmInst::StoreScalar { base, offset, src } => Json::obj([
            ("k", Json::str("store_scalar")),
            ("base", Json::int(*base as u64)),
            ("offset", Json::Num(*offset as f64)),
            ("src", reg_json(*src)),
        ]),
        VmInst::VecLoad { dst, base, start, lanes, elem } => Json::obj([
            ("k", Json::str("vec_load")),
            ("dst", reg_json(*dst)),
            ("base", Json::int(*base as u64)),
            ("start", Json::Num(*start as f64)),
            ("lanes", Json::int(*lanes as u64)),
            ("elem", Json::str(type_name(*elem))),
        ]),
        VmInst::VecStore { base, start, src } => Json::obj([
            ("k", Json::str("vec_store")),
            ("base", Json::int(*base as u64)),
            ("start", Json::Num(*start as f64)),
            ("src", reg_json(*src)),
        ]),
        VmInst::VecOp { dst, sem, args } => Json::obj([
            ("k", Json::str("vec_op")),
            ("dst", reg_json(*dst)),
            ("sem", Json::int(*sem as u64)),
            ("args", Json::Arr(args.iter().map(|r| reg_json(*r)).collect())),
        ]),
        VmInst::Build { dst, elem, lanes } => Json::obj([
            ("k", Json::str("build")),
            ("dst", reg_json(*dst)),
            ("elem", Json::str(type_name(*elem))),
            ("lanes", Json::Arr(lanes.iter().map(lane_src_json).collect())),
        ]),
        VmInst::Extract { dst, src, lane } => Json::obj([
            ("k", Json::str("extract")),
            ("dst", reg_json(*dst)),
            ("src", reg_json(*src)),
            ("lane", Json::int(*lane as u64)),
        ]),
    }
}

fn vm_inst_from(j: &Json) -> Result<VmInst, String> {
    Ok(match string(j, "k")? {
        "scalar" => VmInst::Scalar { dst: reg_of(j, "dst")?, op: scalar_op_from(field(j, "op")?)? },
        "load_scalar" => VmInst::LoadScalar {
            dst: reg_of(j, "dst")?,
            base: uint(j, "base")? as usize,
            offset: int(j, "offset")?,
        },
        "store_scalar" => VmInst::StoreScalar {
            base: uint(j, "base")? as usize,
            offset: int(j, "offset")?,
            src: reg_of(j, "src")?,
        },
        "vec_load" => VmInst::VecLoad {
            dst: reg_of(j, "dst")?,
            base: uint(j, "base")? as usize,
            start: int(j, "start")?,
            lanes: uint(j, "lanes")? as usize,
            elem: ty_of(j, "elem")?,
        },
        "vec_store" => VmInst::VecStore {
            base: uint(j, "base")? as usize,
            start: int(j, "start")?,
            src: reg_of(j, "src")?,
        },
        "vec_op" => VmInst::VecOp {
            dst: reg_of(j, "dst")?,
            sem: uint(j, "sem")? as usize,
            args: arr(j, "args")?
                .iter()
                .map(|r| value_from(r).map(|v| Reg(v.index() as u32)))
                .collect::<Result<_, _>>()?,
        },
        "build" => VmInst::Build {
            dst: reg_of(j, "dst")?,
            elem: ty_of(j, "elem")?,
            lanes: arr(j, "lanes")?.iter().map(lane_src_from).collect::<Result<_, _>>()?,
        },
        "extract" => VmInst::Extract {
            dst: reg_of(j, "dst")?,
            src: reg_of(j, "src")?,
            lane: uint(j, "lane")? as usize,
        },
        other => return Err(format!("unknown vm inst {other:?}")),
    })
}

/// Encode a VM program. Vector-instruction semantics are embedded as VIDL
/// concrete syntax so the program decodes without an instruction database.
pub fn program_to_json(p: &VmProgram) -> Json {
    Json::obj([
        ("name", Json::str(&p.name)),
        ("params", Json::Arr(p.params.iter().map(param_json).collect())),
        (
            "sems",
            Json::Arr(p.sems.iter().map(|s| Json::str(vegen::vidl::print::inst_text(s))).collect()),
        ),
        ("sem_asm", Json::Arr(p.sem_asm.iter().map(Json::str).collect())),
        ("sem_cost", Json::Arr(p.sem_cost.iter().map(|c| Json::Num(*c)).collect())),
        ("insts", Json::Arr(p.insts.iter().map(vm_inst_json).collect())),
        ("n_regs", Json::int(p.n_regs as u64)),
    ])
}

/// Decode a VM program.
///
/// # Errors
///
/// Returns a message naming the malformed field (VIDL parse errors
/// included).
pub fn program_from_json(j: &Json) -> Result<VmProgram, String> {
    let sems = arr(j, "sems")?
        .iter()
        .map(|s| {
            let text = s.as_str().ok_or("sem is not a string")?;
            vegen::vidl::parse_inst(text).map_err(|e| format!("sem: {e}"))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(VmProgram {
        name: string(j, "name")?.to_string(),
        params: arr(j, "params")?.iter().map(param_from).collect::<Result<_, _>>()?,
        sems,
        sem_asm: arr(j, "sem_asm")?
            .iter()
            .map(|s| s.as_str().map(str::to_string).ok_or("sem_asm is not a string".to_string()))
            .collect::<Result<_, _>>()?,
        sem_cost: arr(j, "sem_cost")?
            .iter()
            .map(|c| c.as_f64().ok_or("sem_cost is not a number".to_string()))
            .collect::<Result<_, _>>()?,
        insts: arr(j, "insts")?.iter().map(vm_inst_from).collect::<Result<_, _>>()?,
        n_regs: uint(j, "n_regs")? as usize,
    })
}

// ---------------------------------------------------------------------------
// Selection (packs + stats + decision log)
// ---------------------------------------------------------------------------

fn packed_match_json(m: &PackedMatch) -> Json {
    Json::obj([
        ("op", Json::int(m.op.0 as u64)),
        ("root", value_json(m.root)),
        ("live_ins", Json::Arr(m.live_ins.iter().map(|v| opt_value_json(*v)).collect())),
        ("covered", Json::Arr(m.covered.iter().map(|v| value_json(*v)).collect())),
    ])
}

fn packed_match_from(j: &Json) -> Result<PackedMatch, String> {
    Ok(PackedMatch {
        op: vegen::matcher::OpId(uint(j, "op")? as usize),
        root: field(j, "root").and_then(value_from)?,
        live_ins: arr(j, "live_ins")?.iter().map(opt_value_from).collect::<Result<_, _>>()?,
        covered: arr(j, "covered")?.iter().map(value_from).collect::<Result<_, _>>()?,
    })
}

fn pack_json(p: &Pack) -> Json {
    match p {
        Pack::Compute { inst, matches } => Json::obj([
            ("k", Json::str("compute")),
            ("inst", Json::int(*inst as u64)),
            (
                "matches",
                Json::Arr(
                    matches
                        .iter()
                        .map(|m| m.as_ref().map_or(Json::Null, packed_match_json))
                        .collect(),
                ),
            ),
        ]),
        Pack::Load { base, start, loads, elem } => Json::obj([
            ("k", Json::str("load")),
            ("base", Json::int(*base as u64)),
            ("start", Json::Num(*start as f64)),
            ("loads", Json::Arr(loads.iter().map(|v| opt_value_json(*v)).collect())),
            ("elem", Json::str(type_name(*elem))),
        ]),
        Pack::Store { base, start, stores, values, elem } => Json::obj([
            ("k", Json::str("store")),
            ("base", Json::int(*base as u64)),
            ("start", Json::Num(*start as f64)),
            ("stores", Json::Arr(stores.iter().map(|v| value_json(*v)).collect())),
            ("values", Json::Arr(values.iter().map(|v| value_json(*v)).collect())),
            ("elem", Json::str(type_name(*elem))),
        ]),
    }
}

fn pack_from(j: &Json) -> Result<Pack, String> {
    Ok(match string(j, "k")? {
        "compute" => Pack::Compute {
            inst: uint(j, "inst")? as usize,
            matches: arr(j, "matches")?
                .iter()
                .map(|m| match m {
                    Json::Null => Ok(None),
                    other => packed_match_from(other).map(Some),
                })
                .collect::<Result<_, String>>()?,
        },
        "load" => Pack::Load {
            base: uint(j, "base")? as usize,
            start: int(j, "start")?,
            loads: arr(j, "loads")?.iter().map(opt_value_from).collect::<Result<_, _>>()?,
            elem: ty_of(j, "elem")?,
        },
        "store" => Pack::Store {
            base: uint(j, "base")? as usize,
            start: int(j, "start")?,
            stores: arr(j, "stores")?.iter().map(value_from).collect::<Result<_, _>>()?,
            values: arr(j, "values")?.iter().map(value_from).collect::<Result<_, _>>()?,
            elem: ty_of(j, "elem")?,
        },
        other => return Err(format!("unknown pack kind {other:?}")),
    })
}

fn beam_stats_json(s: &BeamStats) -> Json {
    Json::obj([
        ("states_expanded", Json::int(s.states_expanded as u64)),
        ("transitions", Json::int(s.transitions)),
        ("dedup_hits", Json::int(s.dedup_hits)),
        ("hash_collisions", Json::int(s.hash_collisions)),
        ("producer_cache_hits", Json::int(s.producer_cache_hits)),
        ("producer_cache_misses", Json::int(s.producer_cache_misses)),
        ("interned_operands", Json::int(s.interned_operands as u64)),
        ("interned_packs", Json::int(s.interned_packs as u64)),
        ("beam_wall_ns", duration_json(s.beam_wall)),
        ("workers", Json::int(s.workers as u64)),
        ("fanouts", Json::int(s.fanouts)),
        ("tt_hits", Json::int(s.tt_hits)),
        ("tt_misses", Json::int(s.tt_misses)),
        ("merge_wall_ns", duration_json(s.merge_wall)),
        ("freeze_wall_ns", duration_json(s.freeze_wall)),
        ("frozen_reused", Json::Bool(s.frozen_reused)),
    ])
}

fn beam_stats_from(j: &Json) -> Result<BeamStats, String> {
    Ok(BeamStats {
        states_expanded: uint(j, "states_expanded")? as usize,
        transitions: uint(j, "transitions")?,
        dedup_hits: uint(j, "dedup_hits")?,
        hash_collisions: uint(j, "hash_collisions")?,
        producer_cache_hits: uint(j, "producer_cache_hits")?,
        producer_cache_misses: uint(j, "producer_cache_misses")?,
        interned_operands: uint(j, "interned_operands")? as usize,
        interned_packs: uint(j, "interned_packs")? as usize,
        beam_wall: nanos(j, "beam_wall_ns")?,
        workers: uint(j, "workers")? as usize,
        fanouts: uint(j, "fanouts")?,
        tt_hits: uint(j, "tt_hits")?,
        tt_misses: uint(j, "tt_misses")?,
        merge_wall: nanos(j, "merge_wall_ns")?,
        freeze_wall: nanos(j, "freeze_wall_ns")?,
        frozen_reused: boolean(j, "frozen_reused")?,
    })
}

fn decision_log_json(log: &DecisionLog) -> Json {
    let iteration = |it: &IterationLog| {
        Json::obj([
            ("index", Json::int(it.index as u64)),
            ("beam_in", Json::int(it.beam_in as u64)),
            ("pool", Json::int(it.pool as u64)),
            ("deduped", Json::int(it.deduped as u64)),
            ("kept", Json::int(it.kept as u64)),
            (
                "candidates",
                Json::Arr(
                    it.candidates
                        .iter()
                        .map(|c| {
                            Json::obj([
                                ("action", Json::str(&c.action)),
                                ("g", Json::Num(c.g)),
                                ("est", Json::Num(c.est)),
                                ("score", Json::Num(c.score)),
                                ("packs", Json::int(c.packs as u64)),
                                ("kept", Json::Bool(c.kept)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    };
    Json::obj([
        ("iterations", Json::Arr(log.iterations.iter().map(iteration).collect())),
        (
            "committed",
            Json::Arr(
                log.committed
                    .iter()
                    .map(|c| {
                        Json::obj([
                            ("step", Json::int(c.step as u64)),
                            ("pack", Json::str(&c.pack)),
                            ("cost", Json::Num(c.cost)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn decision_log_from(j: &Json) -> Result<DecisionLog, String> {
    let iterations = arr(j, "iterations")?
        .iter()
        .map(|it| {
            Ok(IterationLog {
                index: uint(it, "index")? as usize,
                beam_in: uint(it, "beam_in")? as usize,
                pool: uint(it, "pool")? as usize,
                deduped: uint(it, "deduped")? as usize,
                kept: uint(it, "kept")? as usize,
                candidates: arr(it, "candidates")?
                    .iter()
                    .map(|c| {
                        Ok(CandidateLog {
                            action: string(c, "action")?.to_string(),
                            g: num(c, "g")?,
                            est: num(c, "est")?,
                            score: num(c, "score")?,
                            packs: uint(c, "packs")? as usize,
                            kept: boolean(c, "kept")?,
                        })
                    })
                    .collect::<Result<_, String>>()?,
            })
        })
        .collect::<Result<_, String>>()?;
    let committed = arr(j, "committed")?
        .iter()
        .map(|c| {
            Ok(CommittedPack {
                step: uint(c, "step")? as usize,
                pack: string(c, "pack")?.to_string(),
                cost: num(c, "cost")?,
            })
        })
        .collect::<Result<_, String>>()?;
    Ok(DecisionLog { iterations, committed })
}

fn selection_json(s: &SelectionResult) -> Json {
    let mut packs = Vec::new();
    for (_, p) in s.packs.iter() {
        packs.push(pack_json(p));
    }
    Json::obj([
        ("packs", Json::Arr(packs)),
        ("vector_cost", Json::Num(s.vector_cost)),
        ("scalar_cost", Json::Num(s.scalar_cost)),
        ("states_expanded", Json::int(s.states_expanded as u64)),
        ("stats", beam_stats_json(&s.stats)),
        ("decisions", s.decisions.as_ref().map_or(Json::Null, decision_log_json)),
    ])
}

fn selection_from(j: &Json) -> Result<SelectionResult, String> {
    let mut packs = PackSet::new();
    for p in arr(j, "packs")? {
        packs.insert(pack_from(p)?);
    }
    Ok(SelectionResult {
        packs,
        vector_cost: num(j, "vector_cost")?,
        scalar_cost: num(j, "scalar_cost")?,
        states_expanded: uint(j, "states_expanded")? as usize,
        stats: beam_stats_from(field(j, "stats")?)?,
        decisions: match field(j, "decisions")? {
            Json::Null => None,
            other => Some(decision_log_from(other)?),
        },
    })
}

// ---------------------------------------------------------------------------
// Analysis report
// ---------------------------------------------------------------------------

fn location_json(l: &Location) -> Json {
    let opt_lane = |l: &Option<usize>| l.map_or(Json::Null, |n| Json::int(n as u64));
    match l {
        Location::Value(v) => Json::obj([("k", Json::str("value")), ("v", value_json(*v))]),
        Location::Pack { pack, lane } => Json::obj([
            ("k", Json::str("pack")),
            ("pack", Json::int(*pack as u64)),
            ("lane", opt_lane(lane)),
        ]),
        Location::VmInst { index, lane } => Json::obj([
            ("k", Json::str("vm")),
            ("index", Json::int(*index as u64)),
            ("lane", opt_lane(lane)),
        ]),
        Location::Mem { base, offset } => Json::obj([
            ("k", Json::str("mem")),
            ("base", Json::int(*base as u64)),
            ("offset", Json::Num(*offset as f64)),
        ]),
        Location::Inst { index, lane } => Json::obj([
            ("k", Json::str("inst")),
            ("index", Json::int(*index as u64)),
            ("lane", opt_lane(lane)),
        ]),
        Location::Program => Json::obj([("k", Json::str("program"))]),
    }
}

fn location_from(j: &Json) -> Result<Location, String> {
    let lane_of = |key: &str| -> Result<Option<usize>, String> {
        match field(j, key)? {
            Json::Null => Ok(None),
            other => {
                let v = other.as_f64().ok_or("lane is not a number")?;
                Ok(Some(v as usize))
            }
        }
    };
    Ok(match string(j, "k")? {
        "value" => Location::Value(field(j, "v").and_then(value_from)?),
        "pack" => Location::Pack { pack: uint(j, "pack")? as usize, lane: lane_of("lane")? },
        "vm" => Location::VmInst { index: uint(j, "index")? as usize, lane: lane_of("lane")? },
        "mem" => Location::Mem { base: uint(j, "base")? as usize, offset: int(j, "offset")? },
        "inst" => Location::Inst { index: uint(j, "index")? as usize, lane: lane_of("lane")? },
        "program" => Location::Program,
        other => return Err(format!("unknown location kind {other:?}")),
    })
}

fn diagnostic_json(d: &Diagnostic) -> Json {
    Json::obj([
        (
            "sev",
            Json::str(match d.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            }),
        ),
        ("loc", location_json(&d.location)),
        ("msg", Json::str(&d.message)),
    ])
}

fn diagnostic_from(j: &Json) -> Result<Diagnostic, String> {
    let severity = match string(j, "sev")? {
        "error" => Severity::Error,
        "warning" => Severity::Warning,
        other => return Err(format!("unknown severity {other:?}")),
    };
    Ok(Diagnostic {
        severity,
        location: location_from(field(j, "loc")?)?,
        message: string(j, "msg")?.to_string(),
    })
}

fn diags_json(diags: &[Diagnostic]) -> Json {
    Json::Arr(diags.iter().map(diagnostic_json).collect())
}

fn diags_from(j: &Json, key: &str) -> Result<Vec<Diagnostic>, String> {
    arr(j, key)?.iter().map(diagnostic_from).collect()
}

fn analysis_json(a: &AnalysisReport) -> Json {
    Json::obj([
        ("legality", diags_json(&a.legality)),
        ("provenance", diags_json(&a.provenance)),
        ("lint", diags_json(&a.lint)),
        ("packs_checked", Json::int(a.packs_checked as u64)),
        ("lanes_proved", Json::int(a.lanes_proved as u64)),
    ])
}

fn analysis_from(j: &Json) -> Result<AnalysisReport, String> {
    Ok(AnalysisReport {
        legality: diags_from(j, "legality")?,
        provenance: diags_from(j, "provenance")?,
        lint: diags_from(j, "lint")?,
        packs_checked: uint(j, "packs_checked")? as usize,
        lanes_proved: uint(j, "lanes_proved")? as usize,
    })
}

// ---------------------------------------------------------------------------
// Stage times + the compiled kernel
// ---------------------------------------------------------------------------

/// Encode per-stage wall times (integer nanoseconds).
pub fn stage_times_to_json(t: &StageTimes) -> Json {
    Json::obj([
        ("canonicalize_ns", duration_json(t.canonicalize)),
        ("target_desc_ns", duration_json(t.target_desc)),
        ("selection_ns", duration_json(t.selection)),
        ("lowering_ns", duration_json(t.lowering)),
        ("analysis_ns", duration_json(t.analysis)),
        ("baseline_ns", duration_json(t.baseline)),
    ])
}

/// Decode per-stage wall times.
///
/// # Errors
///
/// Returns a message naming the malformed field.
pub fn stage_times_from_json(j: &Json) -> Result<StageTimes, String> {
    Ok(StageTimes {
        canonicalize: nanos(j, "canonicalize_ns")?,
        target_desc: nanos(j, "target_desc_ns")?,
        selection: nanos(j, "selection_ns")?,
        lowering: nanos(j, "lowering_ns")?,
        analysis: nanos(j, "analysis_ns")?,
        baseline: nanos(j, "baseline_ns")?,
    })
}

/// Encode a full compiled kernel: the canonical function, all three
/// programs, the selection (packs, statistics, optional decision log), and
/// the static-analysis report.
pub fn kernel_to_json(k: &CompiledKernel) -> Json {
    Json::obj([
        ("function", function_to_json(&k.function)),
        ("scalar", program_to_json(&k.scalar)),
        ("vegen", program_to_json(&k.vegen)),
        ("baseline", program_to_json(&k.baseline)),
        ("selection", selection_json(&k.selection)),
        ("baseline_trees", Json::int(k.baseline_trees as u64)),
        ("analysis", analysis_json(&k.analysis)),
    ])
}

/// Decode a full compiled kernel.
///
/// # Errors
///
/// Returns a message naming the malformed field.
pub fn kernel_from_json(j: &Json) -> Result<CompiledKernel, String> {
    Ok(CompiledKernel {
        function: function_from_json(field(j, "function")?)?,
        scalar: program_from_json(field(j, "scalar")?)?,
        vegen: program_from_json(field(j, "vegen")?)?,
        baseline: program_from_json(field(j, "baseline")?)?,
        selection: selection_from(field(j, "selection")?)?,
        baseline_trees: uint(j, "baseline_trees")? as usize,
        analysis: analysis_from(field(j, "analysis")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vegen::driver::{compile_timed, PipelineConfig};
    use vegen_ir::FunctionBuilder;
    use vegen_isa::TargetIsa;

    fn sample() -> (CompiledKernel, StageTimes) {
        let mut b = FunctionBuilder::new("serdes_dot");
        let a = b.param("A", Type::I16, 8);
        let bb = b.param("B", Type::I16, 8);
        let c = b.param("C", Type::I32, 4);
        for lane in 0..4i64 {
            let mut terms = Vec::new();
            for k in 0..2i64 {
                let x = b.load(a, lane * 2 + k);
                let y = b.load(bb, lane * 2 + k);
                let xw = b.sext(x, Type::I32);
                let yw = b.sext(y, Type::I32);
                terms.push(b.mul(xw, yw));
            }
            let s = b.add(terms[0], terms[1]);
            b.store(c, lane, s);
        }
        let cfg = PipelineConfig::new(TargetIsa::avx2(), 8);
        compile_timed(&b.finish(), &cfg)
    }

    #[test]
    fn kernel_round_trips_byte_for_byte() {
        let (kernel, _) = sample();
        let doc = kernel_to_json(&kernel);
        let text = doc.render();
        let parsed = Json::parse(&text).expect("rendered JSON parses");
        let decoded = kernel_from_json(&parsed).expect("entry decodes");
        // Byte stability: re-encoding the decoded kernel reproduces the
        // original rendering exactly.
        assert_eq!(kernel_to_json(&decoded).render(), text);
        // And the decoded kernel is semantically the original: identical
        // listings, costs, and verification behavior.
        assert_eq!(vegen_vm::listing(&decoded.vegen), vegen_vm::listing(&kernel.vegen));
        assert_eq!(vegen_vm::listing(&decoded.scalar), vegen_vm::listing(&kernel.scalar));
        assert_eq!(vegen_vm::listing(&decoded.baseline), vegen_vm::listing(&kernel.baseline));
        assert_eq!(decoded.cycles(), kernel.cycles());
        assert_eq!(decoded.selection.packs.len(), kernel.selection.packs.len());
        assert_eq!(decoded.function, kernel.function);
        decoded.verify(8).expect("decoded programs still verify");
    }

    #[test]
    fn stage_times_round_trip() {
        let t = StageTimes {
            canonicalize: Duration::from_nanos(123),
            target_desc: Duration::from_micros(45),
            selection: Duration::from_millis(6),
            lowering: Duration::from_nanos(789),
            analysis: Duration::ZERO,
            baseline: Duration::from_nanos(1),
        };
        let j = stage_times_to_json(&t);
        let parsed = Json::parse(&j.render()).unwrap();
        assert_eq!(stage_times_from_json(&parsed).unwrap(), t);
    }

    #[test]
    fn constants_round_trip_bit_exactly() {
        for c in [
            Constant::int(Type::I64, -1),
            Constant::int(Type::I8, -128),
            Constant::bool(true),
            Constant::f32(-0.0),
            Constant::f64(f64::NAN),
            Constant::f32(1.5e-7),
        ] {
            let j = constant_json(c);
            let parsed = Json::parse(&j.render()).unwrap();
            let back = constant_from(&parsed).unwrap();
            assert_eq!(back.ty(), c.ty());
            assert_eq!(back.raw_bits(), c.raw_bits());
        }
    }

    #[test]
    fn malformed_documents_are_typed_errors() {
        assert!(function_from_json(&Json::obj([("name", Json::str("x"))]))
            .unwrap_err()
            .contains("params"));
        let bad_kind = Json::obj([("ty", Json::str("i32")), ("k", Json::str("frobnicate"))]);
        assert!(inst_from(&bad_kind).unwrap_err().contains("frobnicate"));
        assert!(parse_type("i128").is_err());
    }
}
