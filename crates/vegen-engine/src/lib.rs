#![warn(missing_docs)]

//! `vegen-engine` — a parallel, cached, instrumented, **fault-tolerant**
//! batch-compilation service around the [`vegen::driver`] pipeline.
//!
//! The paper splits VeGen into an expensive *offline* phase (generating
//! the target description from instruction semantics, §6.1) and a fast
//! *online* phase (matching + pack selection + lowering). Both halves are
//! pure functions of their inputs, which makes the whole pipeline
//! cacheable and shardable; this crate is the production-shaped layer
//! that exploits it:
//!
//! * a [content-addressed compilation cache](cache) — stable hash of
//!   `(canonical Function, TargetIsa name, BeamConfig,
//!   canonicalize_patterns)` to `Arc<CompiledKernel>`, LRU-bounded, with
//!   hit/miss counters;
//! * a [work-stealing batch executor](pool) on `std` scoped threads that
//!   compiles a batch of named kernels in parallel and returns
//!   deterministic, input-ordered results — with per-job panic isolation;
//! * a **graceful-degradation ladder**: a job that fails (typed error,
//!   panic, deadline, budget exhaustion) is retried at beam width 1 (the
//!   SLP heuristic) with a fresh deadline window, then falls back to the
//!   always-correct scalar lowering, and only reports `Failed` when even
//!   that is impossible. Every result records the [`Rung`] it completed
//!   on and the faults collected on the way down;
//! * a [persistent on-disk cache](diskcache) the in-memory cache spills
//!   to: one versioned JSON file per content hash, atomic writes, ISA
//!   fingerprinting for invalidation, shareable between processes and
//!   across restarts — so a restarted engine replays a whole suite from
//!   disk without a single cold compile;
//! * a telemetry layer: per-stage wall times from
//!   [`vegen::driver::StageTimes`] plus engine-level counters (cache
//!   hits — memory and disk separately — beam states expanded, packs
//!   committed, failures, retries, degradations, deadline hits),
//!   exported as a JSON-serializable [`report::EngineReport`]
//!   (schema v6);
//! * a [resident compile service](serve): `vegen-engine serve` accepts
//!   newline-delimited JSON requests over a Unix socket (or stdio),
//!   with bounded-queue admission control, per-request deadlines, live
//!   metrics, and graceful drain on shutdown;
//! * a `vegen-engine` binary that pushes the whole `vegen-kernels` suite
//!   through the engine, cold and warm, and emits the JSON report — with
//!   `--deadline-ms`, `--fail-fast`, `--cache-dir`, and deterministic
//!   `--faults` injection knobs.
//!
//! ```
//! use vegen_engine::{Engine, EngineConfig, Job, Rung};
//! use vegen::driver::PipelineConfig;
//! use vegen_isa::TargetIsa;
//!
//! let engine = Engine::new(EngineConfig::default());
//! let cfg = PipelineConfig::new(TargetIsa::avx2(), 8);
//! let jobs: Vec<Job> = vegen_kernels::all()
//!     .into_iter()
//!     .take(4)
//!     .map(|k| Job::new(k.name, (k.build)(), cfg.clone()))
//!     .collect();
//! let results = engine.compile_batch(&jobs);
//! assert_eq!(results.len(), 4);
//! assert!(results.iter().all(|r| r.rung == Rung::Primary && r.kernel.is_some()));
//! // A second run of the same batch is served from the cache.
//! let again = engine.compile_batch(&jobs);
//! assert!(again.iter().all(|r| r.cache_hit));
//! ```

pub mod cache;
pub mod cli;
pub mod diskcache;
pub mod events;
pub mod flight;
pub mod pool;
pub mod report;
pub mod serdes;
pub mod serve;
pub mod soak;

/// The in-tree JSON writer/parser now lives in [`vegen_trace::json`];
/// re-exported here for compatibility with existing imports.
pub use vegen_trace::json;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cache::{content_hash, CacheStats, CachedCompile, CompileCache, ContentHash};
use diskcache::{isa_fingerprint, DiskCache, DiskCacheStats};
use events::EventLog;
use flight::FlightRecorder;
use json::Json;
use vegen::driver::{
    compile_scalar_fallback, try_compile_prepared_reusing, try_prepare, CompiledKernel,
    PipelineConfig, StageTimes,
};
use vegen::error::{panic_message, take_panic_stage, CompileError, ErrorCause, Stage};
use vegen_core::{BeamConfig, SelectionReuse};
use vegen_ir::Function;

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads for batches; `0` means the machine's available
    /// parallelism (clamped to the batch size either way).
    pub threads: usize,
    /// LRU bound on the compilation cache.
    pub cache_capacity: usize,
    /// Random trials for post-compilation equivalence checking of all
    /// three programs; `0` skips verification. Verification runs once per
    /// cache entry — hits are served without re-checking.
    pub verify_trials: u64,
    /// Per-job wall-clock deadline. Checked at every stage boundary and
    /// threaded into the beam search as a cooperative wall budget. Each
    /// degradation rung gets a *fresh* window (otherwise a deadline that
    /// killed the primary attempt would instantly kill the retry too).
    pub deadline: Option<Duration>,
    /// Abort the rest of a batch after the first job that ends below
    /// [`Rung::Primary`]. Remaining jobs come back as [`Rung::Skipped`].
    /// Default off: degrade-and-continue is the production posture.
    pub fail_fast: bool,
    /// Directory for the persistent on-disk compile cache. `None` (the
    /// default) keeps the cache purely in-memory. When set, memory misses
    /// fall through to disk, and clean primary-rung compiles are written
    /// through; disk I/O failures become typed [`ErrorCause::CacheIo`]
    /// faults but never fail a job.
    pub cache_dir: Option<PathBuf>,
    /// Total-size bound in bytes for the on-disk cache; `None` (the
    /// default) is unbounded. When exceeded after a store, the oldest
    /// entries are evicted until the directory fits.
    pub cache_max_bytes: Option<u64>,
    /// Worker threads for the intra-kernel parallel beam search. `0` (the
    /// default) leaves each job's own [`BeamConfig::beam_threads`] in
    /// charge (which itself resolves `0` to the machine's available
    /// parallelism); a nonzero value fills in any job that left the knob
    /// on auto. Thread count never changes the selected packs — only the
    /// wall time — and is excluded from content-addressed cache keys.
    pub beam_threads: usize,
    /// Structured NDJSON job event log path (see [`events`]). `None` (the
    /// default) disables event logging. Open failures are kept in
    /// [`Engine::event_open_error`], never panicked on.
    pub event_log: Option<PathBuf>,
    /// Flight-recorder dump directory (see [`flight`]). `None` (the
    /// default) disables flight recording.
    pub flight_dir: Option<PathBuf>,
    /// Flight-recorder rotation window: a dump covers between one and two
    /// windows of trace history.
    pub flight_window: Duration,
    /// Whether the flight recorder may rotate (reset) the trace rings.
    /// Set false when another subsystem (the suite's `--trace`) owns the
    /// trace session and will drain it at exit.
    pub flight_rotate: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            threads: 0,
            cache_capacity: 512,
            verify_trials: 16,
            deadline: None,
            fail_fast: false,
            cache_dir: None,
            cache_max_bytes: None,
            beam_threads: 0,
            event_log: None,
            flight_dir: None,
            flight_window: Duration::from_secs(30),
            flight_rotate: true,
        }
    }
}

/// One named compilation request.
#[derive(Debug, Clone)]
pub struct Job {
    /// Display name (kernel name in reports; not part of the cache key).
    pub name: String,
    /// The scalar function to compile.
    pub function: Function,
    /// Target + search configuration.
    pub pipeline: PipelineConfig,
    /// Per-job deadline override; `None` uses the engine-wide
    /// [`EngineConfig::deadline`]. Serve mode sets this from the
    /// request's `deadline_ms`.
    pub deadline: Option<Duration>,
    /// Process-unique correlation id, assigned at construction and
    /// threaded through every event-log line and trace span this job
    /// produces.
    pub corr: String,
    /// Set when an upstream layer (serve admission) already emitted this
    /// job's `admitted` event, so the batch path does not duplicate it.
    pub(crate) pre_admitted: bool,
}

impl Job {
    /// Convenience constructor. Assigns a fresh correlation id.
    pub fn new(name: impl Into<String>, function: Function, pipeline: PipelineConfig) -> Job {
        Job {
            name: name.into(),
            function,
            pipeline,
            deadline: None,
            corr: events::next_corr(),
            pre_admitted: false,
        }
    }

    /// Set a per-job deadline (overrides the engine-wide one).
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> Job {
        self.deadline = deadline;
        self
    }
}

/// Which rung of the degradation ladder a job completed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rung {
    /// The requested configuration succeeded.
    Primary,
    /// The requested configuration failed; the beam-width-1 (SLP
    /// heuristic) retry succeeded.
    Width1,
    /// Both search rungs failed; the verified scalar lowering was used.
    Scalar,
    /// Every rung failed; `kernel` is `None` and `faults` says why.
    Failed,
    /// Not attempted: an earlier failure aborted the batch
    /// (`fail_fast`).
    Skipped,
}

impl Rung {
    /// Stable lower-case name for reports and failure tables.
    pub fn name(self) -> &'static str {
        match self {
            Rung::Primary => "primary",
            Rung::Width1 => "width1",
            Rung::Scalar => "scalar",
            Rung::Failed => "failed",
            Rung::Skipped => "skipped",
        }
    }

    /// Did the job produce a program (any rung but `Failed`/`Skipped`)?
    pub fn produced_kernel(self) -> bool {
        matches!(self, Rung::Primary | Rung::Width1 | Rung::Scalar)
    }
}

/// The engine's answer for one [`Job`].
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's display name.
    pub name: String,
    /// The correlation id this job ran under — cross-references the
    /// event log and the `job:<name>#<corr>` trace span.
    pub corr: String,
    /// Content address this job resolved to (`None` when preparation
    /// itself failed, so no canonical form was ever hashed).
    pub hash: Option<ContentHash>,
    /// The compiled kernel (shared with the cache and any equal jobs).
    /// `None` exactly when `rung` is [`Rung::Failed`] or [`Rung::Skipped`].
    pub kernel: Option<Arc<CompiledKernel>>,
    /// Which degradation rung produced `kernel`.
    pub rung: Rung,
    /// Typed faults collected on the way down the ladder (empty for a
    /// clean [`Rung::Primary`] result).
    pub faults: Vec<CompileError>,
    /// Per-stage wall times of the compile that produced `kernel` — on a
    /// cache hit these are the *original* (cold) times, kept so warm runs
    /// can still attribute where the cold time went.
    pub stages: StageTimes,
    /// Whether the cache served this job.
    pub cache_hit: bool,
    /// Whether the serving cache level was the *disk* (implies
    /// `cache_hit`; a plain memory hit leaves this false).
    pub disk_hit: bool,
    /// Time spent verifying (zero on hits and when verification is off).
    pub verify_time: Duration,
    /// First divergence found by verification, if any.
    pub verify_error: Option<String>,
    /// Wall time this job cost in *this* run (hash + lookup on a hit).
    pub wall: Duration,
}

impl JobResult {
    /// Did this job fail outright (no program at all)?
    pub fn failed(&self) -> bool {
        !self.rung.produced_kernel()
    }

    /// Which cache level served this job: `"disk"`, `"memory"`, or
    /// `"miss"` (compiled fresh). Stable strings; the report schema and
    /// the serve protocol both use them.
    pub fn cache_source(&self) -> &'static str {
        if self.disk_hit {
            "disk"
        } else if self.cache_hit {
            "memory"
        } else {
            "miss"
        }
    }
}

/// Engine-lifetime counters (monotonic; never reset).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Beam-search states expanded across all cache-miss compilations.
    pub states_expanded: u64,
    /// Beam-search successor states generated across all misses.
    pub transitions: u64,
    /// Pooled states merged into an already-seen search state.
    pub dedup_hits: u64,
    /// Producer-index lookups served from the per-context memo.
    pub producer_cache_hits: u64,
    /// Producer-index lookups that enumerated Algorithm 1.
    pub producer_cache_misses: u64,
    /// Packs committed by selected pack sets across all misses.
    pub packs_committed: u64,
    /// Compilations performed (cache misses that ran the pipeline,
    /// counting every ladder attempt that ran to completion).
    pub compilations: u64,
    /// Static analyses run (one per compilation; the driver's
    /// post-lowering legality + provenance + lint stage).
    pub analyses: u64,
    /// Error-severity findings those analyses produced (0 on a healthy
    /// pipeline; any nonzero value means a selection or lowering bug).
    pub analysis_errors: u64,
    /// Compile attempts that ended in a typed error or caught panic
    /// (every rung's failures counted individually).
    pub failures: u64,
    /// Width-1 retry attempts started (rung 2 of the ladder).
    pub retries: u64,
    /// Jobs that completed below [`Rung::Primary`] (width-1 or scalar).
    pub degradations: u64,
    /// Failures classified as deadline/budget exhaustion.
    pub deadline_hits: u64,
    /// Jobs served from the *disk* cache (memory misses that found a
    /// valid on-disk entry). Memory hits are counted by the cache's own
    /// [`CacheStats`], not here.
    pub disk_hits: u64,
    /// Clean compiles written through to the disk cache.
    pub disk_stores: u64,
    /// Typed `CacheIo` faults recorded (corrupt entries, I/O failures,
    /// failed self-checks). The jobs themselves still succeeded.
    pub cache_io_errors: u64,
    /// Beam-search estimate lookups served by the transposition table
    /// across all cache-miss compilations.
    pub tt_hits: u64,
    /// Transposition-table lookups that computed (and memoized) a fresh
    /// estimate.
    pub tt_misses: u64,
    /// Compiles that reused a frozen interned context instead of running
    /// the freeze pre-pass — nonzero exactly when the degradation
    /// ladder's width-1 retry recycled the primary attempt's snapshot.
    pub frozen_reuses: u64,
}

/// A parallel, cached, instrumented batch compiler.
pub struct Engine {
    cfg: EngineConfig,
    cache: CompileCache,
    disk: Option<DiskCache>,
    disk_open_error: Option<String>,
    events: Option<Arc<EventLog>>,
    event_open_error: Option<String>,
    flight: Option<Arc<FlightRecorder>>,
    flight_open_error: Option<String>,
    states_expanded: AtomicU64,
    transitions: AtomicU64,
    dedup_hits: AtomicU64,
    producer_cache_hits: AtomicU64,
    producer_cache_misses: AtomicU64,
    packs_committed: AtomicU64,
    compilations: AtomicU64,
    analyses: AtomicU64,
    analysis_errors: AtomicU64,
    failures: AtomicU64,
    retries: AtomicU64,
    degradations: AtomicU64,
    deadline_hits: AtomicU64,
    disk_hits: AtomicU64,
    disk_stores: AtomicU64,
    cache_io_errors: AtomicU64,
    tt_hits: AtomicU64,
    tt_misses: AtomicU64,
    frozen_reuses: AtomicU64,
}

/// Outcome of one isolated compile attempt.
type Attempt = Result<(CompiledKernel, StageTimes), CompileError>;

/// `(stage name, duration)` pairs of a [`StageTimes`], in pipeline order
/// — the iteration the event log and reports share.
fn stage_durations(st: &StageTimes) -> impl Iterator<Item = (&'static str, Duration)> {
    [
        ("canonicalize", st.canonicalize),
        ("target_desc", st.target_desc),
        ("selection", st.selection),
        ("lowering", st.lowering),
        ("analysis", st.analysis),
        ("baseline", st.baseline),
    ]
    .into_iter()
}

impl Engine {
    /// An engine with the given configuration. If
    /// [`EngineConfig::cache_dir`] is set but the directory cannot be
    /// opened, the engine still constructs — memory-only, with the error
    /// kept in [`Engine::disk_open_error`] for the caller to surface.
    pub fn new(cfg: EngineConfig) -> Engine {
        let capacity = cfg.cache_capacity;
        let (disk, disk_open_error) = match &cfg.cache_dir {
            Some(dir) => match DiskCache::open_bounded(dir, cfg.cache_max_bytes) {
                Ok(d) => (Some(d), None),
                Err(e) => (None, Some(e)),
            },
            None => (None, None),
        };
        let (events, event_open_error) = match &cfg.event_log {
            Some(path) => match EventLog::open(path) {
                Ok(log) => (Some(Arc::new(log)), None),
                Err(e) => (None, Some(e)),
            },
            None => (None, None),
        };
        let (flight, flight_open_error) = match &cfg.flight_dir {
            Some(dir) => match FlightRecorder::open(dir, cfg.flight_window, cfg.flight_rotate) {
                Ok(rec) => (Some(Arc::new(rec)), None),
                Err(e) => (None, Some(e)),
            },
            None => (None, None),
        };
        Engine {
            cfg,
            cache: CompileCache::new(capacity),
            disk,
            disk_open_error,
            events,
            event_open_error,
            flight,
            flight_open_error,
            states_expanded: AtomicU64::new(0),
            transitions: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            producer_cache_hits: AtomicU64::new(0),
            producer_cache_misses: AtomicU64::new(0),
            packs_committed: AtomicU64::new(0),
            compilations: AtomicU64::new(0),
            analyses: AtomicU64::new(0),
            analysis_errors: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            degradations: AtomicU64::new(0),
            deadline_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            disk_stores: AtomicU64::new(0),
            cache_io_errors: AtomicU64::new(0),
            tt_hits: AtomicU64::new(0),
            tt_misses: AtomicU64::new(0),
            frozen_reuses: AtomicU64::new(0),
        }
    }

    /// The configuration this engine was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Why the configured cache directory could not be opened, if so (the
    /// engine fell back to memory-only caching).
    pub fn disk_open_error(&self) -> Option<&str> {
        self.disk_open_error.as_deref()
    }

    /// Counters of the on-disk cache (`None` when no `cache_dir` is
    /// configured or opening it failed).
    pub fn disk_stats(&self) -> Option<DiskCacheStats> {
        self.disk.as_ref().map(DiskCache::stats)
    }

    /// The structured job event log, when configured and open.
    pub fn event_log(&self) -> Option<&Arc<EventLog>> {
        self.events.as_ref()
    }

    /// Why the configured event log could not be opened, if so.
    pub fn event_open_error(&self) -> Option<&str> {
        self.event_open_error.as_deref()
    }

    /// The flight recorder, when configured and open.
    pub fn flight_recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.flight.as_ref()
    }

    /// Why the configured flight directory could not be opened, if so.
    pub fn flight_open_error(&self) -> Option<&str> {
        self.flight_open_error.as_deref()
    }

    /// Eagerly load every valid on-disk entry into the in-memory cache,
    /// returning how many were loaded. Stale and corrupt entries are
    /// deleted on the way (same rules as lookups). Without a disk cache
    /// this is a no-op returning 0.
    pub fn warm_start(&self) -> usize {
        let Some(disk) = &self.disk else { return 0 };
        let _sp = vegen_trace::span("engine", "warm_start");
        let entries = disk.load_all();
        let n = entries.len();
        for (hash, value) in entries {
            self.cache.insert(hash, value);
        }
        n
    }

    /// Record a recoverable cache-I/O failure as a typed fault.
    fn note_cache_io(&self, name: &str, detail: String, faults: &mut Vec<CompileError>) {
        self.cache_io_errors.fetch_add(1, Ordering::Relaxed);
        vegen_trace::instant("engine", "cache_io_error");
        faults.push(CompileError::new(Stage::Cache, name, ErrorCause::CacheIo { detail }));
    }

    /// One pipeline attempt with panic isolation: a panic anywhere inside
    /// the driver becomes a typed [`CompileError`] attributed to the
    /// stage that was live when it fired.
    ///
    /// `reuse` carries the frozen interned context and transposition
    /// table across ladder rungs on the same kernel. Typed errors leave
    /// it warm (the retry skips the freeze pre-pass); a caught panic
    /// resets it — the panic may have torn mid-update, leaving stranded
    /// in-progress markers that must not leak into the retry.
    fn attempt(
        &self,
        name: &str,
        canonical: &Function,
        pipeline: &PipelineConfig,
        deadline: Option<Duration>,
        reuse: &mut SelectionReuse,
    ) -> Attempt {
        let deadline = deadline.map(|d| (Instant::now() + d, d));
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            try_compile_prepared_reusing(canonical.clone(), pipeline, deadline, reuse)
        }));
        match outcome {
            Ok(result) => result,
            Err(payload) => {
                reuse.reset();
                let stage = take_panic_stage().unwrap_or(Stage::Selection);
                Err(CompileError::new(
                    stage,
                    name,
                    ErrorCause::Panic { message: panic_message(payload.as_ref()) },
                ))
            }
        }
    }

    /// Record a failed attempt in the counters and fault log.
    fn note_failure(&self, error: CompileError, faults: &mut Vec<CompileError>) {
        self.failures.fetch_add(1, Ordering::Relaxed);
        if error.cause.is_timeout() {
            self.deadline_hits.fetch_add(1, Ordering::Relaxed);
        }
        vegen_trace::instant("engine", "attempt_failed");
        faults.push(error);
    }

    /// Fold one successful compile's search statistics into the counters.
    fn note_compilation(&self, kernel: &CompiledKernel) {
        let stats = kernel.selection.stats;
        self.states_expanded.fetch_add(kernel.selection.states_expanded as u64, Ordering::Relaxed);
        self.transitions.fetch_add(stats.transitions, Ordering::Relaxed);
        self.dedup_hits.fetch_add(stats.dedup_hits, Ordering::Relaxed);
        self.producer_cache_hits.fetch_add(stats.producer_cache_hits, Ordering::Relaxed);
        self.producer_cache_misses.fetch_add(stats.producer_cache_misses, Ordering::Relaxed);
        self.packs_committed.fetch_add(kernel.selection.packs.len() as u64, Ordering::Relaxed);
        self.tt_hits.fetch_add(stats.tt_hits, Ordering::Relaxed);
        self.tt_misses.fetch_add(stats.tt_misses, Ordering::Relaxed);
        self.frozen_reuses.fetch_add(stats.frozen_reused as u64, Ordering::Relaxed);
        self.compilations.fetch_add(1, Ordering::Relaxed);
        self.analyses.fetch_add(1, Ordering::Relaxed);
        self.analysis_errors.fetch_add(kernel.analysis.error_count() as u64, Ordering::Relaxed);
    }

    /// Verify `kernel`, returning `(verify_time, verify_error)`.
    fn verify(&self, kernel: &CompiledKernel) -> (Duration, Option<String>) {
        let verify_start = Instant::now();
        let verify_error = if self.cfg.verify_trials > 0 {
            let _sp = vegen_trace::span("engine", "verify");
            kernel.verify(self.cfg.verify_trials).err()
        } else {
            None
        };
        (verify_start.elapsed(), verify_error)
    }

    /// Compile one function, through the cache and down the degradation
    /// ladder: requested config → beam width 1 → scalar fallback →
    /// `Failed`. Panics anywhere in the pipeline are caught and typed;
    /// this method itself never panics on a malformed kernel. Uses the
    /// engine-wide deadline; see [`Engine::compile_one_with_deadline`]
    /// for a per-call override.
    pub fn compile_one(
        &self,
        name: &str,
        function: &Function,
        pipeline: &PipelineConfig,
    ) -> JobResult {
        self.compile_one_with_deadline(name, function, pipeline, self.cfg.deadline)
    }

    /// [`Engine::compile_one`] with an explicit per-call deadline (each
    /// degradation rung still gets a fresh window). Serve mode routes
    /// per-request `deadline_ms` through here.
    ///
    /// Assigns a fresh correlation id (batch jobs carry their own via
    /// [`Job::corr`]) and runs the full telemetry wrapper: event-log
    /// lifecycle lines, service metrics, and fault-triggered flight
    /// dumps.
    pub fn compile_one_with_deadline(
        &self,
        name: &str,
        function: &Function,
        pipeline: &PipelineConfig,
        deadline: Option<Duration>,
    ) -> JobResult {
        let corr = events::next_corr();
        if let Some(log) = &self.events {
            log.emit("admitted", &corr, name, vec![]);
        }
        self.compile_instrumented(&corr, name, function, pipeline, deadline)
    }

    /// The telemetry wrapper around one ladder run: `started` →
    /// [`Engine::compile_one_inner`] under a corr-bearing trace span →
    /// metrics, `stage_done`/`faulted`/`degraded`/`completed` events, and
    /// a flight dump when the job failed or any rung panicked. The
    /// caller has already emitted `admitted`.
    fn compile_instrumented(
        &self,
        corr: &str,
        name: &str,
        function: &Function,
        pipeline: &PipelineConfig,
        deadline: Option<Duration>,
    ) -> JobResult {
        use vegen_trace::metrics;
        if let Some(flight) = &self.flight {
            flight.maybe_rotate();
        }
        if let Some(log) = &self.events {
            log.emit("started", corr, name, vec![]);
        }
        // The job span closes (inner scope) before any flight dump below,
        // so the dump's trace contains this job's own `job:<name>#<corr>`
        // span rather than an unfinished hole.
        let mut result = {
            let _job_span = vegen_trace::enabled()
                .then(|| vegen_trace::span_owned("engine", format!("job:{name}#{corr}")));
            self.compile_one_inner(name, function, pipeline, deadline)
        };
        result.corr = corr.to_string();

        metrics::histogram("engine_compile_latency_us").record(result.wall.as_micros() as u64);
        metrics::counter("engine_jobs_total").inc();
        match result.cache_source() {
            "memory" => metrics::counter("engine_cache_memory_hits_total").inc(),
            "disk" => metrics::counter("engine_cache_disk_hits_total").inc(),
            _ => metrics::counter("engine_cache_misses_total").inc(),
        }
        let mem = metrics::counter("engine_cache_memory_hits_total").get();
        let disk = metrics::counter("engine_cache_disk_hits_total").get();
        let miss = metrics::counter("engine_cache_misses_total").get();
        let total = mem + disk + miss;
        if total > 0 {
            metrics::gauge("engine_cache_hit_ratio").set((mem + disk) as f64 / total as f64);
            metrics::gauge("engine_disk_hit_ratio").set(disk as f64 / total as f64);
        }
        if result.failed() {
            metrics::counter("engine_jobs_failed_total").inc();
        }

        if let Some(log) = &self.events {
            if !result.cache_hit {
                for (stage, dur) in stage_durations(&result.stages) {
                    if !dur.is_zero() {
                        log.emit(
                            "stage_done",
                            corr,
                            name,
                            vec![
                                ("stage", Json::str(stage)),
                                ("dur_us", Json::int(dur.as_micros() as u64)),
                            ],
                        );
                    }
                }
            }
            for fault in &result.faults {
                log.emit(
                    "faulted",
                    corr,
                    name,
                    vec![
                        ("stage", Json::str(fault.stage.name())),
                        ("tag", Json::str(fault.cause.tag())),
                        ("message", Json::str(fault.cause.to_string())),
                    ],
                );
            }
            if matches!(result.rung, Rung::Width1 | Rung::Scalar) {
                log.emit("degraded", corr, name, vec![("rung", Json::str(result.rung.name()))]);
            }
            log.emit(
                "completed",
                corr,
                name,
                vec![
                    ("rung", Json::str(result.rung.name())),
                    ("cache", Json::str(result.cache_source())),
                    ("wall_us", Json::int(result.wall.as_micros() as u64)),
                    (
                        "stages",
                        Json::obj(
                            stage_durations(&result.stages)
                                .map(|(stage, dur)| (stage, Json::int(dur.as_micros() as u64))),
                        ),
                    ),
                ],
            );
        }

        if let Some(flight) = &self.flight {
            let panicked =
                result.faults.iter().any(|f| matches!(f.cause, ErrorCause::Panic { .. }));
            if result.failed() || panicked {
                let tail = self.events.as_ref().map(|l| l.tail()).unwrap_or_default();
                let reason = if result.failed() { "job_failed" } else { "panic_recovered" };
                if let Err(detail) = flight.dump(reason, &tail) {
                    metrics::counter("flight_dump_errors_total").inc();
                    vegen_trace::instant_owned("engine", format!("flight_dump_error:{detail}"));
                }
            }
        }
        result
    }

    /// The degradation-ladder body: cache lookup, then requested config →
    /// width 1 → scalar → `Failed`. Telemetry-free except trace
    /// instants; [`Engine::compile_instrumented`] wraps it.
    fn compile_one_inner(
        &self,
        name: &str,
        function: &Function,
        pipeline: &PipelineConfig,
        deadline: Option<Duration>,
    ) -> JobResult {
        let t0 = Instant::now();
        let mut faults: Vec<CompileError> = Vec::new();

        // Preparation (canonicalize) with its own panic isolation: if we
        // cannot even canonicalize, there is no scalar fallback either.
        let prep_start = Instant::now();
        let prepared = catch_unwind(AssertUnwindSafe(|| try_prepare(function)));
        let canonicalize_time = prep_start.elapsed();
        let canonical = match prepared {
            Ok(Ok(f)) => f,
            Ok(Err(e)) => {
                self.note_failure(e, &mut faults);
                return self.failed_result(name, None, faults, t0);
            }
            Err(payload) => {
                let stage = take_panic_stage().unwrap_or(Stage::Canonicalize);
                let e = CompileError::new(
                    stage,
                    name,
                    ErrorCause::Panic { message: panic_message(payload.as_ref()) },
                );
                self.note_failure(e, &mut faults);
                return self.failed_result(name, None, faults, t0);
            }
        };
        // Engine-level beam-thread override: a nonzero
        // `EngineConfig::beam_threads` fills in any job that left the
        // knob on auto. Applied before hashing for clarity, though the
        // knob is excluded from content hashes either way — thread count
        // never changes the selected packs.
        let pipeline_owned;
        let pipeline = if self.cfg.beam_threads != 0 && pipeline.beam.beam_threads == 0 {
            pipeline_owned = PipelineConfig {
                beam: BeamConfig { beam_threads: self.cfg.beam_threads, ..pipeline.beam.clone() },
                ..pipeline.clone()
            };
            &pipeline_owned
        } else {
            pipeline
        };
        let hash = content_hash(&canonical, pipeline);

        if let Some(hit) = self.cache.get(hash) {
            vegen_trace::instant("engine", "cache_hit");
            return JobResult {
                name: name.to_string(),
                corr: String::new(),
                hash: Some(hash),
                kernel: Some(hit.kernel),
                rung: Rung::Primary,
                faults,
                stages: hit.stages,
                cache_hit: true,
                disk_hit: false,
                verify_time: Duration::ZERO,
                verify_error: None,
                wall: t0.elapsed(),
            };
        }

        // Memory miss: fall through to the disk cache. Entries were
        // verified when written, so disk hits skip re-verification just
        // like memory hits; corrupt entries become typed faults and the
        // job recompiles.
        let fingerprint = self
            .disk
            .as_ref()
            .map(|_| isa_fingerprint(&pipeline.target, pipeline.canonicalize_patterns));
        if let (Some(disk), Some(fp)) = (&self.disk, &fingerprint) {
            match disk.load(hash, fp) {
                Ok(Some(found)) => {
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                    vegen_trace::instant("engine", "disk_hit");
                    let value = self.cache.insert(hash, found.value);
                    return JobResult {
                        name: name.to_string(),
                        corr: String::new(),
                        hash: Some(hash),
                        kernel: Some(value.kernel),
                        rung: Rung::Primary,
                        faults,
                        stages: value.stages,
                        cache_hit: true,
                        disk_hit: true,
                        verify_time: Duration::ZERO,
                        verify_error: None,
                        wall: t0.elapsed(),
                    };
                }
                Ok(None) => {}
                Err(detail) => self.note_cache_io(name, detail, &mut faults),
            }
        }
        vegen_trace::instant("engine", "cache_miss");

        // One reuse handle for the whole ladder: the width-1 retry (rung
        // 2) recycles rung 1's frozen interned context and transposition
        // table instead of re-freezing. `attempt` resets it after a
        // caught panic.
        let mut reuse = SelectionReuse::new();

        // Rung 1: the requested configuration.
        match self.attempt(name, &canonical, pipeline, deadline, &mut reuse) {
            Ok((kernel, mut stages)) => {
                stages.canonicalize = canonicalize_time;
                self.note_compilation(&kernel);
                let (verify_time, verify_error) = self.verify(&kernel);
                let kernel = Arc::new(kernel);
                // Failed compilations are not poisoned into the cache;
                // only clean primary-rung results are shareable.
                let value = if verify_error.is_none() {
                    if let (Some(disk), Some(fp)) = (&self.disk, &fingerprint) {
                        match disk.store(
                            hash,
                            fp,
                            &pipeline.target.name,
                            pipeline.canonicalize_patterns,
                            &kernel,
                            &stages,
                        ) {
                            Ok(()) => {
                                self.disk_stores.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(detail) => self.note_cache_io(name, detail, &mut faults),
                        }
                    }
                    self.cache.insert(hash, CachedCompile { kernel: kernel.clone(), stages })
                } else {
                    CachedCompile { kernel: kernel.clone(), stages }
                };
                return JobResult {
                    name: name.to_string(),
                    corr: String::new(),
                    hash: Some(hash),
                    kernel: Some(value.kernel),
                    rung: Rung::Primary,
                    faults,
                    stages: value.stages,
                    cache_hit: false,
                    disk_hit: false,
                    verify_time,
                    verify_error,
                    wall: t0.elapsed(),
                };
            }
            Err(e) => self.note_failure(e, &mut faults),
        }

        // Rung 2: beam width 1 (the SLP heuristic) — cheap, deterministic,
        // and with a fresh deadline window. Skipped when the primary
        // config already *was* width 1 (retrying it changes nothing
        // unless the failure was an injected one-shot fault, which is
        // exactly what the harness wants to exercise).
        self.retries.fetch_add(1, Ordering::Relaxed);
        vegen_trace::instant("engine", "retry_width1");
        let narrow = PipelineConfig {
            beam: BeamConfig {
                budget: pipeline.beam.budget.clone(),
                beam_threads: pipeline.beam.beam_threads,
                ..BeamConfig::slp()
            },
            ..pipeline.clone()
        };
        match self.attempt(name, &canonical, &narrow, deadline, &mut reuse) {
            Ok((kernel, mut stages)) => {
                stages.canonicalize = canonicalize_time;
                self.note_compilation(&kernel);
                self.degradations.fetch_add(1, Ordering::Relaxed);
                vegen_trace::instant("engine", "degraded_width1");
                let (verify_time, verify_error) = self.verify(&kernel);
                return JobResult {
                    name: name.to_string(),
                    corr: String::new(),
                    hash: Some(hash),
                    kernel: Some(Arc::new(kernel)),
                    rung: Rung::Width1,
                    faults,
                    stages,
                    cache_hit: false,
                    disk_hit: false,
                    verify_time,
                    verify_error,
                    wall: t0.elapsed(),
                };
            }
            Err(e) => self.note_failure(e, &mut faults),
        }

        // Rung 3: the verified scalar lowering — always correct by
        // construction, no search, no baseline; isolated all the same.
        let scalar = catch_unwind(AssertUnwindSafe(|| compile_scalar_fallback(canonical.clone())));
        match scalar {
            Ok(Ok((kernel, mut stages))) => {
                stages.canonicalize = canonicalize_time;
                self.degradations.fetch_add(1, Ordering::Relaxed);
                vegen_trace::instant("engine", "degraded_scalar");
                let (verify_time, verify_error) = self.verify(&kernel);
                JobResult {
                    name: name.to_string(),
                    corr: String::new(),
                    hash: Some(hash),
                    kernel: Some(Arc::new(kernel)),
                    rung: Rung::Scalar,
                    faults,
                    stages,
                    cache_hit: false,
                    disk_hit: false,
                    verify_time,
                    verify_error,
                    wall: t0.elapsed(),
                }
            }
            Ok(Err(e)) => {
                self.note_failure(e, &mut faults);
                self.failed_result(name, Some(hash), faults, t0)
            }
            Err(payload) => {
                let stage = take_panic_stage().unwrap_or(Stage::Lowering);
                let e = CompileError::new(
                    stage,
                    name,
                    ErrorCause::Panic { message: panic_message(payload.as_ref()) },
                );
                self.note_failure(e, &mut faults);
                self.failed_result(name, Some(hash), faults, t0)
            }
        }
    }

    /// A terminal [`Rung::Failed`] result.
    fn failed_result(
        &self,
        name: &str,
        hash: Option<ContentHash>,
        faults: Vec<CompileError>,
        t0: Instant,
    ) -> JobResult {
        vegen_trace::instant("engine", "job_failed");
        JobResult {
            name: name.to_string(),
            corr: String::new(),
            hash,
            kernel: None,
            rung: Rung::Failed,
            faults,
            stages: StageTimes::default(),
            cache_hit: false,
            disk_hit: false,
            verify_time: Duration::ZERO,
            verify_error: None,
            wall: t0.elapsed(),
        }
    }

    /// A [`Rung::Skipped`] result (fail-fast aborted the batch).
    fn skipped_result(name: &str, corr: &str) -> JobResult {
        JobResult {
            name: name.to_string(),
            corr: corr.to_string(),
            hash: None,
            kernel: None,
            rung: Rung::Skipped,
            faults: Vec::new(),
            stages: StageTimes::default(),
            cache_hit: false,
            disk_hit: false,
            verify_time: Duration::ZERO,
            verify_error: None,
            wall: Duration::ZERO,
        }
    }

    /// Compile a batch in parallel. Results are input-ordered and
    /// deterministic: the programs produced never depend on thread count
    /// or scheduling, only the timing fields do. One job's failure (even
    /// a panic) never takes sibling jobs with it; under
    /// [`EngineConfig::fail_fast`] jobs *started after* the first
    /// sub-primary result come back [`Rung::Skipped`].
    pub fn compile_batch(&self, jobs: &[Job]) -> Vec<JobResult> {
        let threads = if self.cfg.threads == 0 {
            pool::default_threads(jobs.len())
        } else {
            self.cfg.threads
        };
        let abort = AtomicBool::new(false);
        if let Some(log) = &self.events {
            // Serve admission emits `admitted` at enqueue time (marking
            // the job pre-admitted); direct batch callers get it here.
            for job in jobs.iter().filter(|j| !j.pre_admitted) {
                log.emit("admitted", &job.corr, &job.name, vec![]);
            }
        }
        pool::run_batch_recover(
            threads,
            jobs,
            |_, job| {
                if self.cfg.fail_fast && abort.load(Ordering::Relaxed) {
                    if let Some(log) = &self.events {
                        log.emit(
                            "completed",
                            &job.corr,
                            &job.name,
                            vec![("rung", Json::str(Rung::Skipped.name()))],
                        );
                    }
                    return Engine::skipped_result(&job.name, &job.corr);
                }
                let result = self.compile_instrumented(
                    &job.corr,
                    &job.name,
                    &job.function,
                    &job.pipeline,
                    job.deadline.or(self.cfg.deadline),
                );
                if self.cfg.fail_fast && result.rung != Rung::Primary {
                    abort.store(true, Ordering::Relaxed);
                }
                result
            },
            // Second line of defense: a panic that escapes compile_one's
            // own isolation (engine bookkeeping, cache code) still only
            // fails its job, not the batch.
            |_, job, message| {
                self.failures.fetch_add(1, Ordering::Relaxed);
                let stage = take_panic_stage().unwrap_or(Stage::Canonicalize);
                let fault = CompileError::new(stage, &job.name, ErrorCause::Panic { message });
                if let Some(log) = &self.events {
                    log.emit(
                        "faulted",
                        &job.corr,
                        &job.name,
                        vec![
                            ("stage", Json::str(fault.stage.name())),
                            ("tag", Json::str(fault.cause.tag())),
                            ("message", Json::str(fault.cause.to_string())),
                        ],
                    );
                    log.emit(
                        "completed",
                        &job.corr,
                        &job.name,
                        vec![("rung", Json::str(Rung::Failed.name()))],
                    );
                }
                if let Some(flight) = &self.flight {
                    let tail = self.events.as_ref().map(|l| l.tail()).unwrap_or_default();
                    let _ = flight.dump("escaped_panic", &tail);
                }
                JobResult {
                    name: job.name.clone(),
                    corr: job.corr.clone(),
                    hash: None,
                    kernel: None,
                    rung: Rung::Failed,
                    faults: vec![fault],
                    stages: StageTimes::default(),
                    cache_hit: false,
                    disk_hit: false,
                    verify_time: Duration::ZERO,
                    verify_error: None,
                    wall: Duration::ZERO,
                }
            },
        )
    }

    /// Current cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Engine-lifetime pipeline counters.
    pub fn counters(&self) -> EngineCounters {
        EngineCounters {
            states_expanded: self.states_expanded.load(Ordering::Relaxed),
            transitions: self.transitions.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            producer_cache_hits: self.producer_cache_hits.load(Ordering::Relaxed),
            producer_cache_misses: self.producer_cache_misses.load(Ordering::Relaxed),
            packs_committed: self.packs_committed.load(Ordering::Relaxed),
            compilations: self.compilations.load(Ordering::Relaxed),
            analyses: self.analyses.load(Ordering::Relaxed),
            analysis_errors: self.analysis_errors.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            degradations: self.degradations.load(Ordering::Relaxed),
            deadline_hits: self.deadline_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_stores: self.disk_stores.load(Ordering::Relaxed),
            cache_io_errors: self.cache_io_errors.load(Ordering::Relaxed),
            tt_hits: self.tt_hits.load(Ordering::Relaxed),
            tt_misses: self.tt_misses.load(Ordering::Relaxed),
            frozen_reuses: self.frozen_reuses.load(Ordering::Relaxed),
        }
    }

    /// Drop every cache entry (counters are kept; useful for cold-run
    /// measurements).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new(EngineConfig::default())
    }
}
