#![warn(missing_docs)]

//! `vegen-engine` — a parallel, cached, instrumented batch-compilation
//! service around the [`vegen::driver`] pipeline.
//!
//! The paper splits VeGen into an expensive *offline* phase (generating
//! the target description from instruction semantics, §6.1) and a fast
//! *online* phase (matching + pack selection + lowering). Both halves are
//! pure functions of their inputs, which makes the whole pipeline
//! cacheable and shardable; this crate is the production-shaped layer
//! that exploits it:
//!
//! * a [content-addressed compilation cache](cache) — stable hash of
//!   `(canonical Function, TargetIsa name, BeamConfig,
//!   canonicalize_patterns)` to `Arc<CompiledKernel>`, LRU-bounded, with
//!   hit/miss counters;
//! * a [work-stealing batch executor](pool) on `std` scoped threads that
//!   compiles a batch of named kernels in parallel and returns
//!   deterministic, input-ordered results;
//! * a telemetry layer: per-stage wall times from
//!   [`vegen::driver::StageTimes`] plus engine-level counters (cache
//!   hits, beam states expanded, packs committed), exported as a
//!   JSON-serializable [`report::EngineReport`];
//! * a `vegen-engine` binary that pushes the whole `vegen-kernels` suite
//!   through the engine, cold and warm, and emits the JSON report.
//!
//! ```
//! use vegen_engine::{Engine, EngineConfig, Job};
//! use vegen::driver::PipelineConfig;
//! use vegen_isa::TargetIsa;
//!
//! let engine = Engine::new(EngineConfig::default());
//! let cfg = PipelineConfig::new(TargetIsa::avx2(), 8);
//! let jobs: Vec<Job> = vegen_kernels::all()
//!     .into_iter()
//!     .take(4)
//!     .map(|k| Job::new(k.name, (k.build)(), cfg.clone()))
//!     .collect();
//! let results = engine.compile_batch(&jobs);
//! assert_eq!(results.len(), 4);
//! // A second run of the same batch is served from the cache.
//! let again = engine.compile_batch(&jobs);
//! assert!(again.iter().all(|r| r.cache_hit));
//! ```

pub mod cache;
pub mod cli;
pub mod pool;
pub mod report;

/// The in-tree JSON writer/parser now lives in [`vegen_trace::json`];
/// re-exported here for compatibility with existing imports.
pub use vegen_trace::json;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cache::{content_hash, CacheStats, CachedCompile, CompileCache, ContentHash};
use vegen::driver::{compile_prepared_timed, prepare, CompiledKernel, PipelineConfig, StageTimes};
use vegen_ir::Function;

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads for batches; `0` means the machine's available
    /// parallelism (clamped to the batch size either way).
    pub threads: usize,
    /// LRU bound on the compilation cache.
    pub cache_capacity: usize,
    /// Random trials for post-compilation equivalence checking of all
    /// three programs; `0` skips verification. Verification runs once per
    /// cache entry — hits are served without re-checking.
    pub verify_trials: u64,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig { threads: 0, cache_capacity: 512, verify_trials: 16 }
    }
}

/// One named compilation request.
#[derive(Debug, Clone)]
pub struct Job {
    /// Display name (kernel name in reports; not part of the cache key).
    pub name: String,
    /// The scalar function to compile.
    pub function: Function,
    /// Target + search configuration.
    pub pipeline: PipelineConfig,
}

impl Job {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, function: Function, pipeline: PipelineConfig) -> Job {
        Job { name: name.into(), function, pipeline }
    }
}

/// The engine's answer for one [`Job`].
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's display name.
    pub name: String,
    /// Content address this job resolved to.
    pub hash: ContentHash,
    /// The compiled kernel (shared with the cache and any equal jobs).
    pub kernel: Arc<CompiledKernel>,
    /// Per-stage wall times of the compile that produced `kernel` — on a
    /// cache hit these are the *original* (cold) times, kept so warm runs
    /// can still attribute where the cold time went.
    pub stages: StageTimes,
    /// Whether the cache served this job.
    pub cache_hit: bool,
    /// Time spent verifying (zero on hits and when verification is off).
    pub verify_time: Duration,
    /// First divergence found by verification, if any.
    pub verify_error: Option<String>,
    /// Wall time this job cost in *this* run (hash + lookup on a hit).
    pub wall: Duration,
}

/// Engine-lifetime counters (monotonic; never reset).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Beam-search states expanded across all cache-miss compilations.
    pub states_expanded: u64,
    /// Beam-search successor states generated across all misses.
    pub transitions: u64,
    /// Pooled states merged into an already-seen search state.
    pub dedup_hits: u64,
    /// Producer-index lookups served from the per-context memo.
    pub producer_cache_hits: u64,
    /// Producer-index lookups that enumerated Algorithm 1.
    pub producer_cache_misses: u64,
    /// Packs committed by selected pack sets across all misses.
    pub packs_committed: u64,
    /// Compilations performed (cache misses that ran the pipeline).
    pub compilations: u64,
    /// Static analyses run (one per compilation; the driver's
    /// post-lowering legality + provenance + lint stage).
    pub analyses: u64,
    /// Error-severity findings those analyses produced (0 on a healthy
    /// pipeline; any nonzero value means a selection or lowering bug).
    pub analysis_errors: u64,
}

/// A parallel, cached, instrumented batch compiler.
pub struct Engine {
    cfg: EngineConfig,
    cache: CompileCache,
    states_expanded: AtomicU64,
    transitions: AtomicU64,
    dedup_hits: AtomicU64,
    producer_cache_hits: AtomicU64,
    producer_cache_misses: AtomicU64,
    packs_committed: AtomicU64,
    compilations: AtomicU64,
    analyses: AtomicU64,
    analysis_errors: AtomicU64,
}

impl Engine {
    /// An engine with the given configuration.
    pub fn new(cfg: EngineConfig) -> Engine {
        let capacity = cfg.cache_capacity;
        Engine {
            cfg,
            cache: CompileCache::new(capacity),
            states_expanded: AtomicU64::new(0),
            transitions: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            producer_cache_hits: AtomicU64::new(0),
            producer_cache_misses: AtomicU64::new(0),
            packs_committed: AtomicU64::new(0),
            compilations: AtomicU64::new(0),
            analyses: AtomicU64::new(0),
            analysis_errors: AtomicU64::new(0),
        }
    }

    /// The configuration this engine was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Compile one function, through the cache.
    pub fn compile_one(
        &self,
        name: &str,
        function: &Function,
        pipeline: &PipelineConfig,
    ) -> JobResult {
        let _job_span = vegen_trace::enabled()
            .then(|| vegen_trace::span_owned("engine", format!("job:{name}")));
        let t0 = Instant::now();
        let prep_start = Instant::now();
        let canonical = prepare(function);
        let canonicalize_time = prep_start.elapsed();
        let hash = content_hash(&canonical, pipeline);

        if let Some(hit) = self.cache.get(hash) {
            vegen_trace::instant("engine", "cache_hit");
            return JobResult {
                name: name.to_string(),
                hash,
                kernel: hit.kernel,
                stages: hit.stages,
                cache_hit: true,
                verify_time: Duration::ZERO,
                verify_error: None,
                wall: t0.elapsed(),
            };
        }

        vegen_trace::instant("engine", "cache_miss");
        let (kernel, mut stages) = compile_prepared_timed(canonical, pipeline);
        stages.canonicalize = canonicalize_time;
        let stats = kernel.selection.stats;
        self.states_expanded.fetch_add(kernel.selection.states_expanded as u64, Ordering::Relaxed);
        self.transitions.fetch_add(stats.transitions, Ordering::Relaxed);
        self.dedup_hits.fetch_add(stats.dedup_hits, Ordering::Relaxed);
        self.producer_cache_hits.fetch_add(stats.producer_cache_hits, Ordering::Relaxed);
        self.producer_cache_misses.fetch_add(stats.producer_cache_misses, Ordering::Relaxed);
        self.packs_committed.fetch_add(kernel.selection.packs.len() as u64, Ordering::Relaxed);
        self.compilations.fetch_add(1, Ordering::Relaxed);
        self.analyses.fetch_add(1, Ordering::Relaxed);
        self.analysis_errors.fetch_add(kernel.analysis.error_count() as u64, Ordering::Relaxed);

        let verify_start = Instant::now();
        let verify_error = if self.cfg.verify_trials > 0 {
            let _sp = vegen_trace::span("engine", "verify");
            kernel.verify(self.cfg.verify_trials).err()
        } else {
            None
        };
        let verify_time = verify_start.elapsed();

        let kernel = Arc::new(kernel);
        // Failed compilations are not poisoned into the cache.
        let value = if verify_error.is_none() {
            self.cache.insert(hash, CachedCompile { kernel: kernel.clone(), stages })
        } else {
            CachedCompile { kernel: kernel.clone(), stages }
        };
        JobResult {
            name: name.to_string(),
            hash,
            kernel: value.kernel,
            stages: value.stages,
            cache_hit: false,
            verify_time,
            verify_error,
            wall: t0.elapsed(),
        }
    }

    /// Compile a batch in parallel. Results are input-ordered and
    /// deterministic: the programs produced never depend on thread count
    /// or scheduling, only the timing fields do.
    pub fn compile_batch(&self, jobs: &[Job]) -> Vec<JobResult> {
        let threads = if self.cfg.threads == 0 {
            pool::default_threads(jobs.len())
        } else {
            self.cfg.threads
        };
        pool::run_batch(threads, jobs, |_, job| {
            self.compile_one(&job.name, &job.function, &job.pipeline)
        })
    }

    /// Current cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Engine-lifetime pipeline counters.
    pub fn counters(&self) -> EngineCounters {
        EngineCounters {
            states_expanded: self.states_expanded.load(Ordering::Relaxed),
            transitions: self.transitions.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            producer_cache_hits: self.producer_cache_hits.load(Ordering::Relaxed),
            producer_cache_misses: self.producer_cache_misses.load(Ordering::Relaxed),
            packs_committed: self.packs_committed.load(Ordering::Relaxed),
            compilations: self.compilations.load(Ordering::Relaxed),
            analyses: self.analyses.load(Ordering::Relaxed),
            analysis_errors: self.analysis_errors.load(Ordering::Relaxed),
        }
    }

    /// Drop every cache entry (counters are kept; useful for cold-run
    /// measurements).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new(EngineConfig::default())
    }
}
