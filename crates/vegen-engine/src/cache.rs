//! Content-addressed compilation cache.
//!
//! VeGen's offline/online split (§6.1) makes compilation results pure
//! functions of their inputs: the same canonical scalar function, compiled
//! for the same target with the same search configuration, always yields
//! the same three programs. The cache exploits that by addressing entries
//! with a stable 128-bit content hash of
//! `(canonical Function, TargetIsa name, BeamConfig, canonicalize_patterns)`
//! — *not* by kernel name, so renamed or duplicated kernels still hit.
//!
//! The map is LRU-bounded and fully thread-safe; hit/miss/eviction
//! counters feed the engine's telemetry.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use vegen::driver::{CompiledKernel, PipelineConfig, StageTimes};
use vegen_ir::Function;

/// Stable 128-bit content address of a compilation input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentHash(pub u128);

impl ContentHash {
    /// Hex rendering (for reports and logs).
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }
}

/// FNV-1a over `bytes`, in two independently-offset 64-bit lanes.
///
/// FNV is stable across processes, platforms, and Rust versions — unlike
/// `DefaultHasher`, which documents no such guarantee — which is what makes
/// the address *content*-derived rather than process-derived.
pub(crate) fn fnv128(bytes: &[u8]) -> ContentHash {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut lo: u64 = 0xcbf2_9ce4_8422_2325;
    let mut hi: u64 = 0x6c62_272e_07bb_0142; // a distinct offset basis
    for &b in bytes {
        lo = (lo ^ b as u64).wrapping_mul(PRIME);
        hi = (hi ^ (b as u64).rotate_left(3)).wrapping_mul(PRIME);
    }
    ContentHash(((hi as u128) << 64) | lo as u128)
}

/// Compute the content address of a compilation input.
///
/// The function must already be canonical (the engine canonicalizes before
/// hashing) so that textually different but canonically identical inputs
/// share an address. The serialization is the IR printer's output — the
/// stable, human-auditable form — joined with every config field that can
/// change the output program.
pub fn content_hash(canonical: &Function, cfg: &PipelineConfig) -> ContentHash {
    let mut key = String::new();
    key.push_str(&canonical.to_string());
    key.push('\u{1f}');
    key.push_str(&cfg.target.name);
    key.push('\u{1f}');
    // Explicitly serialize the BeamConfig fields that can change what the
    // caller gets back. `budget` is deliberately excluded: budgets never
    // alter a *successful* selection — exhaustion turns the whole call
    // into an error, which is never cached — so results are shareable
    // across any budget setting. `beam_threads` is likewise excluded: the
    // parallel search is deterministic by construction (worker chunks are
    // merged in slice order before the shared dedup/sort/truncate), so
    // thread count changes wall time, never the selected packs.
    // `log_decisions` stays in the key because
    // the decision log rides inside the cached SelectionResult: a logged
    // request served from an unlogged entry would silently come back
    // without its log.
    let b = &cfg.beam;
    key.push_str(&format!(
        "width={} seeds={:?} affinity={} max_transitions={} max_iters={:?} log={}",
        b.width, b.seeds, b.use_affinity_seeds, b.max_transitions, b.max_iters, b.log_decisions
    ));
    key.push('\u{1f}');
    key.push_str(if cfg.canonicalize_patterns { "canon" } else { "raw" });
    fnv128(key.as_bytes())
}

/// One cached compilation, with the stage times of the original (miss)
/// compile so warm runs can still report where the cold time went.
#[derive(Debug, Clone)]
pub struct CachedCompile {
    /// The three programs plus selection statistics.
    pub kernel: Arc<CompiledKernel>,
    /// Stage wall times of the compile that populated this entry.
    pub stages: StageTimes,
}

struct Entry {
    value: CachedCompile,
    last_used: u64,
}

/// Point-in-time counters of a [`CompileCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// The LRU bound.
    pub capacity: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; 0 when no lookups have happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded, thread-safe, content-addressed map of compilation results.
pub struct CompileCache {
    map: Mutex<HashMap<ContentHash, Entry>>,
    capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CompileCache {
    /// A cache holding at most `capacity` compilations (min 1).
    pub fn new(capacity: usize) -> CompileCache {
        CompileCache {
            map: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Look up an address, refreshing its recency on a hit.
    pub fn get(&self, key: ContentHash) -> Option<CachedCompile> {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        match map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a compilation, evicting the least-recently-used entry if the
    /// bound is reached. If another worker raced the same address in, the
    /// first insert wins and its value is returned — callers therefore
    /// always agree on one `Arc` per address.
    pub fn insert(&self, key: ContentHash, value: CachedCompile) -> CachedCompile {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = map.get_mut(&key) {
            existing.last_used = tick;
            return existing.value.clone();
        }
        if map.len() >= self.capacity {
            // O(n) scan; the bound is small (hundreds) and eviction rare
            // next to the cost of the compilations it displaces.
            if let Some(&lru) = map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k) {
                map.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        map.insert(key, Entry { value: value.clone(), last_used: tick });
        value
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.map.lock().unwrap_or_else(|e| e.into_inner()).len(),
            capacity: self.capacity,
        }
    }

    /// Drop all entries (counters are kept).
    pub fn clear(&self) {
        self.map.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vegen::driver::compile_timed;
    use vegen_core::BeamConfig;
    use vegen_ir::canon::{add_narrow_constants, canonicalize};
    use vegen_ir::{FunctionBuilder, Type};
    use vegen_isa::TargetIsa;

    fn tiny(name: &str, lanes: i64) -> vegen_ir::Function {
        let mut b = FunctionBuilder::new(name);
        let a = b.param("A", Type::I32, lanes as usize);
        let c = b.param("C", Type::I32, lanes as usize);
        for i in 0..lanes {
            let x = b.load(a, i);
            let y = b.add(x, x);
            b.store(c, i, y);
        }
        b.finish()
    }

    fn cached(f: &vegen_ir::Function, cfg: &PipelineConfig) -> CachedCompile {
        let (kernel, stages) = compile_timed(f, cfg);
        CachedCompile { kernel: Arc::new(kernel), stages }
    }

    #[test]
    fn hash_ignores_name_but_not_body_or_config() {
        let cfg = PipelineConfig::new(TargetIsa::avx2(), 8);
        let canon = |f: &vegen_ir::Function| add_narrow_constants(&canonicalize(f));
        let a = content_hash(&canon(&tiny("a", 4)), &cfg);
        let b = content_hash(&canon(&tiny("a", 4)), &cfg);
        assert_eq!(a, b, "hashing must be deterministic");
        let widened = content_hash(&canon(&tiny("a", 8)), &cfg);
        assert_ne!(a, widened, "different body must address differently");
        let other_beam = PipelineConfig {
            beam: BeamConfig::with_width(1),
            ..PipelineConfig::new(TargetIsa::avx2(), 8)
        };
        assert_ne!(
            a,
            content_hash(&canon(&tiny("a", 4)), &other_beam),
            "beam config is part of the address"
        );
        let vnni = PipelineConfig::new(TargetIsa::avx512vnni(), 8);
        assert_ne!(a, content_hash(&canon(&tiny("a", 4)), &vnni), "target is part of the address");
    }

    #[test]
    fn lru_bound_evicts_and_counts() {
        let cfg = PipelineConfig::new(TargetIsa::avx2(), 1);
        let cache = CompileCache::new(2);
        let fs: Vec<_> = (2..5).map(|n| tiny("k", n)).collect();
        let keys: Vec<_> = fs.iter().map(|f| content_hash(f, &cfg)).collect();
        for (f, &k) in fs.iter().zip(&keys) {
            assert!(cache.get(k).is_none());
            cache.insert(k, cached(f, &cfg));
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.misses, 3);
        // keys[0] was least recently used and must be gone; the rest hit.
        assert!(cache.get(keys[0]).is_none());
        assert!(cache.get(keys[1]).is_some());
        assert!(cache.get(keys[2]).is_some());
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn racing_inserts_agree_on_one_value() {
        let cfg = PipelineConfig::new(TargetIsa::avx2(), 1);
        let f = tiny("k", 4);
        let key = content_hash(&f, &cfg);
        let cache = CompileCache::new(8);
        let first = cache.insert(key, cached(&f, &cfg));
        let second = cache.insert(key, cached(&f, &cfg));
        assert!(Arc::ptr_eq(&first.kernel, &second.kernel));
    }
}
