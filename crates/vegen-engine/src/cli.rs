//! Command-line front end of the `vegen-engine` binary.
//!
//! Five entry points behind one executable:
//!
//! * the default **suite** mode — batch-compile the full `vegen-kernels`
//!   suite (cold + warm runs) and emit an [`EngineReport`]; `--trace` /
//!   `--folded` capture a [`vegen_trace`] session alongside;
//!   `--cache-dir` persists compiles to disk so a restarted run replays
//!   from the cache;
//! * **`serve`** — the resident compile daemon (`--socket PATH` or
//!   `--stdio`): newline-delimited JSON requests, bounded-queue
//!   admission, per-request deadlines, live metrics, graceful drain (see
//!   [`crate::serve`]);
//! * **`explain <kernel>`** — recompile one kernel with the beam search's
//!   decision log on and print why each pack was committed (and what was
//!   pruned against it), plus the static-validation verdict;
//! * **`lint`** — run the static validators (pack legality, lane
//!   provenance, VM lint) over the whole suite and fail on any
//!   error-severity finding, for CI gating without execution;
//! * **`check-specs`** — audit the *offline* artifact chain (pseudocode →
//!   VIDL → match table) with [`vegen_analysis::speccheck`] and fail on
//!   any error-severity finding; `--corrupt KIND` injects a deliberate
//!   corruption so CI can prove the gate actually rejects;
//! * **`diff <old.json> <new.json>`** — compare two reports
//!   kernel-by-kernel with configurable regression thresholds, for CI
//!   gating.
//!
//! Everything lives in the library (the binary is a one-line wrapper) so
//! tests can drive the exact code paths, including exit codes.

use crate::report::{EngineReport, RunReport, TraceSummary};
use crate::serve::{self, ServeConfig};
use crate::{Engine, EngineConfig, Job, JobResult, Rung};
use std::path::PathBuf;
use std::time::{Duration, Instant};
use vegen::driver::{prepare, target_desc, PipelineConfig};
use vegen::fault::FaultPlan;
use vegen_core::slp::SlpCost;
use vegen_core::{select_packs, BeamConfig, CostModel, VectorizerCtx};
use vegen_isa::TargetIsa;
use vegen_trace::json::Json;

/// Run the CLI with pre-split arguments (everything after the program
/// name) and return the process exit code: `0` success, `1` verification
/// failure or regression, `2` usage/I-O error.
pub fn main_with_args(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("explain") => run_explain(&args[1..]),
        Some("lint") => run_lint(&args[1..]),
        Some("check-specs") => run_check_specs(&args[1..]),
        Some("diff") => run_diff(&args[1..]),
        Some("serve") => run_serve(&args[1..]),
        Some("stats") => run_stats(&args[1..]),
        Some("soak") => run_soak_cmd(&args[1..]),
        _ => run_suite(args),
    }
}

/// Names of jobs whose compiled kernels failed verification, in input
/// order (the suite prints each to stderr and exits nonzero).
pub fn failing_kernels(results: &[JobResult]) -> Vec<String> {
    results.iter().filter(|r| r.verify_error.is_some()).map(|r| r.name.clone()).collect()
}

/// Print the per-kernel failure table: every job that completed below
/// [`Rung::Primary`], with its rung and the faults collected on the way
/// down. Returns `(degraded, failed)` counts. Silent when the batch was
/// entirely clean.
pub fn print_failure_table(results: &[JobResult]) -> (usize, usize) {
    let troubled: Vec<&JobResult> = results.iter().filter(|r| r.rung != Rung::Primary).collect();
    if troubled.is_empty() {
        return (0, 0);
    }
    eprintln!("vegen-engine: {} kernel(s) below primary rung:", troubled.len());
    eprintln!("  {:<24} {:<8} faults", "kernel", "rung");
    let mut degraded = 0;
    let mut failed = 0;
    for r in &troubled {
        match r.rung {
            Rung::Width1 | Rung::Scalar => degraded += 1,
            Rung::Failed => failed += 1,
            Rung::Primary | Rung::Skipped => {}
        }
        let first = r.faults.first().map(|e| e.to_string()).unwrap_or_default();
        eprintln!("  {:<24} {:<8} {first}", r.name, r.rung.name());
        for fault in r.faults.iter().skip(1) {
            eprintln!("  {:<24} {:<8} {fault}", "", "");
        }
    }
    (degraded, failed)
}

/// Resolve the fault plan from explicit CLI options or the `VEGEN_FAULTS`
/// environment variable (CLI wins). `None` means no injection.
fn resolve_fault_plan(
    spec: &Option<String>,
    seed: Option<u64>,
    count: usize,
    kernel_names: &[&str],
) -> Result<Option<FaultPlan>, String> {
    if let Some(spec) = spec {
        return FaultPlan::parse(spec).map(Some).map_err(|e| format!("--faults: {e}"));
    }
    if let Some(seed) = seed {
        return Ok(Some(FaultPlan::seeded(kernel_names, seed, count)));
    }
    match std::env::var("VEGEN_FAULTS") {
        Ok(spec) if !spec.is_empty() => {
            FaultPlan::parse(&spec).map(Some).map_err(|e| format!("VEGEN_FAULTS: {e}"))
        }
        _ => Ok(None),
    }
}

/// Default intra-kernel beam-search thread count from the
/// `VEGEN_BEAM_THREADS` environment variable (`0`/unset/unparseable =
/// auto). An explicit `--beam-threads` always wins over the environment.
fn env_beam_threads() -> usize {
    std::env::var("VEGEN_BEAM_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

fn parse_target(s: &str) -> Result<TargetIsa, String> {
    match s.to_ascii_lowercase().as_str() {
        "avx2" => Ok(TargetIsa::avx2()),
        "avx512vnni" | "avx512-vnni" | "vnni" => Ok(TargetIsa::avx512vnni()),
        "sse4" | "sse4.1" => Ok(TargetIsa::sse4()),
        other => Err(format!("unknown target {other:?}")),
    }
}

struct SuiteOptions {
    target: TargetIsa,
    beam: usize,
    threads: usize,
    beam_threads: usize,
    runs: usize,
    verify_trials: u64,
    compact: bool,
    out: Option<String>,
    trace: Option<String>,
    folded: Option<String>,
    decisions: bool,
    deadline_ms: Option<u64>,
    fail_fast: bool,
    faults: Option<String>,
    fault_seed: Option<u64>,
    fault_count: usize,
    cache_dir: Option<String>,
    cache_max_bytes: Option<u64>,
    warm_start: bool,
    event_log: Option<String>,
    flight_dir: Option<String>,
}

fn parse_suite_args(args: &[String]) -> Result<Option<SuiteOptions>, String> {
    let mut opts = SuiteOptions {
        target: TargetIsa::avx2(),
        beam: 16,
        threads: 0,
        beam_threads: env_beam_threads(),
        runs: 2,
        verify_trials: 16,
        compact: false,
        out: None,
        trace: None,
        folded: None,
        decisions: false,
        deadline_ms: None,
        fail_fast: false,
        faults: None,
        fault_seed: None,
        fault_count: 3,
        cache_dir: None,
        cache_max_bytes: None,
        warm_start: false,
        event_log: None,
        flight_dir: None,
    };
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().cloned().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--target" => opts.target = parse_target(&value("--target")?)?,
            "--beam" => opts.beam = value("--beam")?.parse().map_err(|e| format!("--beam: {e}"))?,
            "--threads" => {
                opts.threads = value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--beam-threads" => {
                opts.beam_threads =
                    value("--beam-threads")?.parse().map_err(|e| format!("--beam-threads: {e}"))?
            }
            "--runs" => {
                opts.runs =
                    value("--runs")?.parse::<usize>().map_err(|e| format!("--runs: {e}"))?.max(1)
            }
            "--no-verify" => opts.verify_trials = 0,
            "--compact" => opts.compact = true,
            "--out" => opts.out = Some(value("--out")?),
            "--trace" => opts.trace = Some(value("--trace")?),
            "--folded" => opts.folded = Some(value("--folded")?),
            "--decisions" => opts.decisions = true,
            "--deadline-ms" => {
                opts.deadline_ms = Some(
                    value("--deadline-ms")?.parse().map_err(|e| format!("--deadline-ms: {e}"))?,
                )
            }
            "--fail-fast" => opts.fail_fast = true,
            "--faults" => opts.faults = Some(value("--faults")?),
            "--fault-seed" => {
                opts.fault_seed =
                    Some(value("--fault-seed")?.parse().map_err(|e| format!("--fault-seed: {e}"))?)
            }
            "--fault-count" => {
                opts.fault_count =
                    value("--fault-count")?.parse().map_err(|e| format!("--fault-count: {e}"))?
            }
            "--cache-dir" => opts.cache_dir = Some(value("--cache-dir")?),
            "--cache-max-bytes" => {
                opts.cache_max_bytes = Some(
                    value("--cache-max-bytes")?
                        .parse()
                        .map_err(|e| format!("--cache-max-bytes: {e}"))?,
                )
            }
            "--warm-start" => opts.warm_start = true,
            "--event-log" => opts.event_log = Some(value("--event-log")?),
            "--flight-dir" => opts.flight_dir = Some(value("--flight-dir")?),
            "--help" | "-h" => {
                eprintln!(
                    "usage: vegen-engine [--target avx2|avx512vnni] [--beam N] [--threads N]\n\
                     \x20                   [--beam-threads N] [--runs N] [--no-verify]\n\
                     \x20                   [--compact] [--out FILE]\n\
                     \x20                   [--trace FILE] [--folded FILE] [--decisions]\n\
                     \x20                   [--deadline-ms N] [--fail-fast]\n\
                     \x20                   [--faults SPEC] [--fault-seed N] [--fault-count N]\n\
                     \x20                   [--cache-dir DIR] [--cache-max-bytes N] [--warm-start]\n\
                     \x20                   [--event-log FILE] [--flight-dir DIR]\n\
                     \x20      vegen-engine soak --seed N --count N [--shard I/N] [--trials N]\n\
                     \x20                   [--fault-every K] [--target T] [--beam N]\n\
                     \x20                   [--beam-threads N] [--deadline-ms N]\n\
                     \x20                   [--cache-dir DIR] [--cache-max-bytes N]\n\
                     \x20                   [--seeds-out DIR] [--no-minimize] [--out FILE]\n\
                     \x20      vegen-engine serve (--stdio | --socket PATH) [--cache-dir DIR]\n\
                     \x20                   [--warm-start] [--threads N] [--queue N] [--target T]\n\
                     \x20                   [--beam N] [--deadline-ms N] [--no-verify]\n\
                     \x20                   [--event-log FILE] [--flight-dir DIR]\n\
                     \x20      vegen-engine stats --socket PATH [--prometheus | --json]\n\
                     \x20      vegen-engine explain <kernel> [--target T] [--beam N] [--max-iters N]\n\
                     \x20      vegen-engine lint [--target T] [--beam N] [--threads N] [--out FILE]\n\
                     \x20      vegen-engine check-specs [--target T|all] [--json] [--out FILE]\n\
                     \x20                   [--corrupt KIND] [--no-canon]\n\
                     \x20      vegen-engine diff <old.json> <new.json> [--max-regress PCT]\n\
                     \x20                   [--strict-counters]\n\
                     fault SPEC is kernel:stage:kind[,...], kind = panic|error|delay=<ms>,\n\
                     `!` suffix fires on every ladder attempt; VEGEN_FAULTS env is the fallback"
                );
                return Ok(None);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Some(opts))
}

fn run_suite(args: &[String]) -> i32 {
    let opts = match parse_suite_args(args) {
        Ok(Some(o)) => o,
        Ok(None) => return 0,
        Err(e) => {
            eprintln!("vegen-engine: {e}");
            return 2;
        }
    };

    let tracing = opts.trace.is_some() || opts.folded.is_some();
    if tracing {
        vegen_trace::enable(vegen_trace::DEFAULT_CAPACITY);
    }

    let engine = Engine::new(EngineConfig {
        threads: opts.threads,
        verify_trials: opts.verify_trials,
        deadline: opts.deadline_ms.map(Duration::from_millis),
        fail_fast: opts.fail_fast,
        cache_dir: opts.cache_dir.clone().map(PathBuf::from),
        cache_max_bytes: opts.cache_max_bytes,
        beam_threads: opts.beam_threads,
        event_log: opts.event_log.clone().map(PathBuf::from),
        flight_dir: opts.flight_dir.clone().map(PathBuf::from),
        // When `--trace`/`--folded` own the trace session, the flight
        // recorder must not reset it out from under them.
        flight_rotate: !tracing,
        ..EngineConfig::default()
    });
    if let Some(e) = engine.disk_open_error() {
        eprintln!("vegen-engine: disk cache disabled: {e}");
    }
    if let Some(e) = engine.event_open_error() {
        eprintln!("vegen-engine: event log disabled: {e}");
    }
    if let Some(e) = engine.flight_open_error() {
        eprintln!("vegen-engine: flight recorder disabled: {e}");
    }
    if opts.warm_start {
        let loaded = engine.warm_start();
        eprintln!("vegen-engine: warm start loaded {loaded} cached compile(s)");
    }
    let pipeline = PipelineConfig {
        target: opts.target.clone(),
        beam: BeamConfig { log_decisions: opts.decisions, ..BeamConfig::with_width(opts.beam) },
        canonicalize_patterns: true,
    };
    // Jobs are rebuilt per run (not cloned across runs) so every
    // execution gets its own correlation id in the event log.
    let make_jobs = || -> Vec<Job> {
        vegen_kernels::all()
            .into_iter()
            .map(|k| Job::new(k.name, (k.build)(), pipeline.clone()))
            .collect()
    };
    let kernel_names: Vec<&str> = vegen_kernels::all().iter().map(|k| k.name).collect();
    match resolve_fault_plan(&opts.faults, opts.fault_seed, opts.fault_count, &kernel_names) {
        Ok(Some(plan)) => {
            let targets: Vec<String> = plan
                .specs()
                .map(|s| format!("{}:{}:{}", s.kernel, s.stage, s.kind.tag()))
                .collect();
            eprintln!("vegen-engine: fault injection active — {}", targets.join(", "));
            vegen::fault::install(plan);
        }
        Ok(None) => {}
        Err(e) => {
            eprintln!("vegen-engine: {e}");
            return 2;
        }
    }
    let job_count = vegen_kernels::all().len();
    let resolved_threads =
        if opts.threads == 0 { crate::pool::default_threads(job_count) } else { opts.threads };

    let mut runs = Vec::new();
    let mut failed = false;
    let mut hard_failures = 0usize;
    for i in 0..opts.runs {
        let label = match i {
            0 => "cold".to_string(),
            1 => "warm".to_string(),
            n => format!("warm{n}"),
        };
        let _run_span = vegen_trace::enabled()
            .then(|| vegen_trace::span_owned("engine", format!("run:{label}")));
        let jobs = make_jobs();
        let t0 = Instant::now();
        let results = engine.compile_batch(&jobs);
        let wall = t0.elapsed();
        for r in &results {
            if let Some(e) = &r.verify_error {
                eprintln!("vegen-engine: kernel {} FAILED verification: {e}", r.name);
                failed = true;
            }
        }
        let hits = results.iter().filter(|r| r.cache_hit).count();
        eprintln!(
            "vegen-engine: {label} run — {} kernels in {wall:.2?} on {resolved_threads} threads, \
             {hits}/{} cache hits",
            results.len(),
            results.len(),
        );
        // Degraded kernels (width-1 / scalar rungs) are reported, not
        // fatal: graceful degradation is the whole point. Only a kernel
        // with *no* program at all (or a fail-fast abort) gates.
        let (_, run_failed) = print_failure_table(&results);
        hard_failures += run_failed;
        if opts.fail_fast && results.iter().any(|r| r.rung != Rung::Primary) {
            hard_failures += 1;
        }
        runs.push(RunReport::new(label, wall, &results));
    }
    vegen::fault::clear();

    let mut trace_summary = TraceSummary::default();
    if tracing {
        let data = vegen_trace::drain();
        vegen_trace::disable();
        trace_summary = TraceSummary {
            enabled: true,
            events: data.event_count(),
            dropped: data.dropped(),
            threads: data.threads.len(),
            file: opts.trace.clone(),
            folded_file: opts.folded.clone(),
        };
        if let Some(path) = &opts.trace {
            let text = vegen_trace::export::chrome_trace(&data).render();
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("vegen-engine: cannot write {path}: {e}");
                return 2;
            }
            eprintln!(
                "vegen-engine: trace written to {path} ({} events, {} dropped)",
                trace_summary.events, trace_summary.dropped
            );
        }
        if let Some(path) = &opts.folded {
            if let Err(e) = std::fs::write(path, vegen_trace::export::folded_stacks(&data)) {
                eprintln!("vegen-engine: cannot write {path}: {e}");
                return 2;
            }
            eprintln!("vegen-engine: folded stacks written to {path}");
        }
    }

    // Structural match-table statistics (cheap: the table is already
    // cached process-wide after the first compile). The full speccheck
    // audit stays out of the suite path — that is `check-specs`' job.
    let table = vegen_analysis::match_table_stats(&target_desc(&opts.target, true));
    vegen_trace::metrics::counter("speccheck_rules_total").add(table.rules as u64);
    vegen_trace::metrics::gauge("speccheck_dead_rules").set(table.dead_rules as f64);
    vegen_trace::metrics::gauge("speccheck_max_overlap_class").set(table.max_overlap_class as f64);

    let report = EngineReport {
        target: opts.target.name.clone(),
        beam_width: opts.beam,
        threads: resolved_threads,
        beam_threads: opts.beam_threads,
        verify_trials: opts.verify_trials,
        runs,
        cache: engine.cache_stats(),
        disk: engine.disk_stats(),
        counters: engine.counters(),
        trace: trace_summary,
        match_table: table,
        soak: None,
    };
    let doc = report.to_json();
    let text = if opts.compact { doc.render() } else { doc.render_pretty() };
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("vegen-engine: cannot write {path}: {e}");
                return 2;
            }
            eprintln!("vegen-engine: report written to {path}");
        }
        None => println!("{text}"),
    }
    if failed || hard_failures > 0 {
        1
    } else {
        0
    }
}

// ---------------------------------------------------------------------------
// soak
// ---------------------------------------------------------------------------

/// Run the generated-kernel soak harness (see [`crate::soak`]). Exit
/// code 0 when every non-faulted kernel passes the differential check
/// and provenance audit (degradations allowed), 1 on any unexplained
/// failure, 2 on usage errors.
fn run_soak_cmd(args: &[String]) -> i32 {
    use crate::soak::{run_soak, SoakConfig, SoakStatus};

    let mut cfg = SoakConfig { beam_threads: env_beam_threads(), ..SoakConfig::default() };
    let mut out: Option<String> = None;
    let mut compact = false;
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        let mut value = |n: &str| args.next().cloned().ok_or(format!("{n} needs a value"));
        let parsed = match arg.as_str() {
            "--seed" => value("--seed")
                .and_then(|v| v.parse().map_err(|e| format!("--seed: {e}")))
                .map(|n| cfg.seed = n),
            "--count" => value("--count")
                .and_then(|v| v.parse().map_err(|e| format!("--count: {e}")))
                .map(|n| cfg.count = n),
            "--shard" => value("--shard").and_then(|v| {
                let (i, n) =
                    v.split_once('/').ok_or_else(|| format!("--shard: want I/N, got {v:?}"))?;
                cfg.shard_index = i.parse().map_err(|e| format!("--shard index: {e}"))?;
                cfg.shard_count = n.parse().map_err(|e| format!("--shard count: {e}"))?;
                Ok(())
            }),
            "--trials" => value("--trials")
                .and_then(|v| v.parse().map_err(|e| format!("--trials: {e}")))
                .map(|n| cfg.trials = n),
            "--fault-every" => value("--fault-every")
                .and_then(|v| v.parse().map_err(|e| format!("--fault-every: {e}")))
                .map(|n| cfg.fault_every = n),
            "--target" => value("--target").and_then(|v| parse_target(&v)).map(|t| cfg.target = t),
            "--beam" => value("--beam")
                .and_then(|v| v.parse().map_err(|e| format!("--beam: {e}")))
                .map(|n| cfg.beam = n),
            "--beam-threads" => value("--beam-threads")
                .and_then(|v| v.parse().map_err(|e| format!("--beam-threads: {e}")))
                .map(|n| cfg.beam_threads = n),
            "--deadline-ms" => value("--deadline-ms")
                .and_then(|v| v.parse().map_err(|e| format!("--deadline-ms: {e}")))
                .map(|n| cfg.deadline = Some(Duration::from_millis(n))),
            "--cache-dir" => value("--cache-dir").map(|v| cfg.cache_dir = Some(PathBuf::from(v))),
            "--cache-max-bytes" => value("--cache-max-bytes")
                .and_then(|v| v.parse().map_err(|e| format!("--cache-max-bytes: {e}")))
                .map(|n| cfg.cache_max_bytes = Some(n)),
            "--seeds-out" => value("--seeds-out").map(|v| cfg.seeds_out = Some(PathBuf::from(v))),
            "--no-minimize" => {
                cfg.minimize = false;
                Ok(())
            }
            "--minimize-budget" => value("--minimize-budget")
                .and_then(|v| v.parse().map_err(|e| format!("--minimize-budget: {e}")))
                .map(|n| cfg.minimize_budget = n),
            // Test-only: deterministically corrupt every compiled vegen
            // program so the differential check must catch it.
            "--inject-miscompile" => value("--inject-miscompile")
                .and_then(|v| v.parse().map_err(|e| format!("--inject-miscompile: {e}")))
                .map(|n| cfg.corrupt_vegen = Some(n)),
            "--out" => value("--out").map(|v| out = Some(v)),
            "--compact" => {
                compact = true;
                Ok(())
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: vegen-engine soak --seed N --count N [--shard I/N] [--trials N]\n\
                     \x20                   [--fault-every K] [--target T] [--beam N]\n\
                     \x20                   [--beam-threads N] [--deadline-ms N]\n\
                     \x20                   [--cache-dir DIR] [--cache-max-bytes N]\n\
                     \x20                   [--seeds-out DIR] [--no-minimize]\n\
                     \x20                   [--minimize-budget N] [--out FILE] [--compact]\n\
                     kernel i is generate(seed, i): any kernel replays from the two integers"
                );
                return 0;
            }
            other => Err(format!("unknown argument {other:?}")),
        };
        if let Err(e) = parsed {
            eprintln!("vegen-engine soak: {e}");
            return 2;
        }
    }

    let report = match run_soak(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("vegen-engine soak: {e}");
            return 2;
        }
    };
    let count = |s: SoakStatus| report.results.iter().filter(|r| r.status == s).count();
    eprintln!(
        "vegen-engine soak: seed {} — {} kernel(s) (shard {}/{}) in {:.2?}: \
         {} passed, {} faulted-degraded, {} degraded, {} diff failure(s), \
         {} provenance failure(s), {} aborted; vectorization rate {:.1}%",
        cfg.seed,
        report.results.len(),
        cfg.shard_index,
        cfg.shard_count,
        report.wall,
        count(SoakStatus::Passed),
        count(SoakStatus::Faulted),
        count(SoakStatus::Degraded),
        count(SoakStatus::DiffFailed),
        count(SoakStatus::ProvenanceFailed),
        count(SoakStatus::Aborted),
        report.vectorization_rate() * 100.0,
    );
    for r in report.results.iter().filter(|r| r.status.is_failure()) {
        eprintln!("vegen-engine soak: {} [{}] {}: {}", r.name, r.shape, r.status.name(), r.detail);
        if let Some(m) = &r.minimized {
            eprintln!(
                "vegen-engine soak:   minimized {} -> {} inst(s){}:\n{}",
                m.from_insts,
                m.insts,
                m.seed_file.as_deref().map(|p| format!(" (seed file {p})")).unwrap_or_default(),
                m.listing
            );
        }
    }

    let table = vegen_analysis::match_table_stats(&target_desc(&cfg.target, true));
    let doc = EngineReport {
        target: cfg.target.name.clone(),
        beam_width: cfg.beam,
        threads: 1,
        beam_threads: cfg.beam_threads,
        verify_trials: cfg.trials,
        runs: Vec::new(),
        cache: report.cache,
        disk: report.disk,
        counters: report.counters,
        trace: TraceSummary::default(),
        match_table: table,
        soak: Some(report.soak_json()),
    }
    .to_json();
    let text = if compact { doc.render() } else { doc.render_pretty() };
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("vegen-engine soak: cannot write {path}: {e}");
                return 2;
            }
            eprintln!("vegen-engine soak: report written to {path}");
        }
        None => println!("{text}"),
    }
    if report.unexplained_failures() > 0 {
        1
    } else {
        0
    }
}

// ---------------------------------------------------------------------------
// serve
// ---------------------------------------------------------------------------

/// Run the resident compile daemon over stdio or a Unix socket. Exit code
/// 0 on clean drain, 2 on usage or bind errors.
fn run_serve(args: &[String]) -> i32 {
    let mut stdio = false;
    let mut socket: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut cache_max_bytes: Option<u64> = None;
    let mut warm_start = false;
    let mut threads = 0usize;
    let mut beam_threads = env_beam_threads();
    let mut queue = 64usize;
    let mut deadline_ms: Option<u64> = None;
    let mut verify_trials = 16u64;
    let mut target = TargetIsa::avx2();
    let mut beam = 16usize;
    let mut event_log: Option<String> = None;
    let mut flight_dir: Option<String> = None;
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        let mut value = |n: &str| args.next().cloned().ok_or(format!("{n} needs a value"));
        let parsed = match arg.as_str() {
            "--stdio" => {
                stdio = true;
                Ok(())
            }
            "--socket" => value("--socket").map(|v| socket = Some(v)),
            "--cache-dir" => value("--cache-dir").map(|v| cache_dir = Some(v)),
            "--cache-max-bytes" => value("--cache-max-bytes")
                .and_then(|v| v.parse().map_err(|e| format!("--cache-max-bytes: {e}")))
                .map(|n| cache_max_bytes = Some(n)),
            "--warm-start" => {
                warm_start = true;
                Ok(())
            }
            "--threads" => value("--threads")
                .and_then(|v| v.parse().map_err(|e| format!("--threads: {e}")))
                .map(|n| threads = n),
            "--beam-threads" => value("--beam-threads")
                .and_then(|v| v.parse().map_err(|e| format!("--beam-threads: {e}")))
                .map(|n| beam_threads = n),
            "--queue" => value("--queue")
                .and_then(|v| v.parse().map_err(|e| format!("--queue: {e}")))
                .and_then(|n: usize| {
                    if n == 0 {
                        Err("--queue: capacity must be at least 1".to_string())
                    } else {
                        queue = n;
                        Ok(())
                    }
                }),
            "--deadline-ms" => value("--deadline-ms")
                .and_then(|v| v.parse().map_err(|e| format!("--deadline-ms: {e}")))
                .map(|n| deadline_ms = Some(n)),
            "--no-verify" => {
                verify_trials = 0;
                Ok(())
            }
            "--target" => value("--target").and_then(|v| parse_target(&v)).map(|t| target = t),
            "--beam" => value("--beam")
                .and_then(|v| v.parse().map_err(|e| format!("--beam: {e}")))
                .map(|w| beam = w),
            "--event-log" => value("--event-log").map(|v| event_log = Some(v)),
            "--flight-dir" => value("--flight-dir").map(|v| flight_dir = Some(v)),
            "--help" | "-h" => {
                eprintln!(
                    "usage: vegen-engine serve (--stdio | --socket PATH) [--cache-dir DIR]\n\
                     \x20                   [--warm-start] [--threads N] [--beam-threads N]\n\
                     \x20                   [--queue N] [--target T] [--beam N]\n\
                     \x20                   [--deadline-ms N] [--no-verify]\n\
                     \x20                   [--event-log FILE] [--flight-dir DIR]"
                );
                return 0;
            }
            other => Err(format!("unknown argument {other:?}")),
        };
        if let Err(e) = parsed {
            eprintln!("vegen-engine serve: {e}");
            return 2;
        }
    }
    if stdio == socket.is_some() {
        eprintln!("vegen-engine serve: pass exactly one of --stdio or --socket PATH");
        return 2;
    }

    let engine = Engine::new(EngineConfig {
        threads,
        verify_trials,
        deadline: deadline_ms.map(Duration::from_millis),
        cache_dir: cache_dir.map(PathBuf::from),
        cache_max_bytes,
        beam_threads,
        event_log: event_log.map(PathBuf::from),
        flight_dir: flight_dir.map(PathBuf::from),
        ..EngineConfig::default()
    });
    if let Some(e) = engine.disk_open_error() {
        eprintln!("vegen-engine serve: disk cache disabled: {e}");
    }
    if let Some(e) = engine.event_open_error() {
        eprintln!("vegen-engine serve: event log disabled: {e}");
    }
    if let Some(e) = engine.flight_open_error() {
        eprintln!("vegen-engine serve: flight recorder disabled: {e}");
    }
    if warm_start {
        let loaded = engine.warm_start();
        eprintln!("vegen-engine serve: warm start loaded {loaded} cached compile(s)");
    }
    // Publish the match table's structural statistics up front so
    // `vegen-engine stats` can read them live (and the first compile
    // finds the table already built).
    let table = vegen_analysis::match_table_stats(&target_desc(&target, true));
    vegen_trace::metrics::counter("speccheck_rules_total").add(table.rules as u64);
    vegen_trace::metrics::gauge("speccheck_dead_rules").set(table.dead_rules as f64);
    vegen_trace::metrics::gauge("speccheck_max_overlap_class").set(table.max_overlap_class as f64);

    let cfg = ServeConfig { queue_capacity: queue, target, beam_width: beam };

    let summary = if stdio {
        serve::serve_lines(&engine, &cfg, std::io::stdin().lock(), std::io::stdout())
    } else {
        let path = socket.expect("checked above");
        eprintln!("vegen-engine serve: listening on {path}");
        match serve::serve_socket(&engine, &cfg, std::path::Path::new(&path)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("vegen-engine serve: {e}");
                return 2;
            }
        }
    };
    eprintln!(
        "vegen-engine serve: drained — {} request(s), {} compile(s), {} shed, {} expired, \
         {} rejected while draining, {} protocol error(s)",
        summary.requests,
        summary.compiles,
        summary.shed,
        summary.expired,
        summary.rejected_draining,
        summary.protocol_errors
    );
    0
}

// ---------------------------------------------------------------------------
// stats
// ---------------------------------------------------------------------------

/// Pretty-print one metrics-registry snapshot (the `stats` op's JSON
/// body) as a human-readable table: histograms with their percentiles,
/// then counters, then gauges.
fn render_stats_table(snapshot: &Json) -> String {
    use std::fmt::Write as _;
    let entries = |key: &str| -> Vec<(&str, &Json)> {
        match snapshot.get(key) {
            Some(Json::Obj(pairs)) => pairs.iter().map(|(k, v)| (k.as_str(), v)).collect(),
            _ => Vec::new(),
        }
    };
    let mut out = String::new();
    let histograms = entries("histograms");
    if !histograms.is_empty() {
        let _ = writeln!(
            out,
            "{:<32} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "histogram", "count", "p50", "p90", "p99", "max"
        );
        for (name, h) in &histograms {
            let field = |k: &str| h.get(k).and_then(Json::as_f64).unwrap_or(0.0);
            let _ = writeln!(
                out,
                "{name:<32} {:>8} {:>10} {:>10} {:>10} {:>10}",
                field("count") as u64,
                field("p50") as u64,
                field("p90") as u64,
                field("p99") as u64,
                field("max") as u64,
            );
        }
    }
    let counters = entries("counters");
    if !counters.is_empty() {
        let _ = writeln!(out, "{:<32} {:>8}", "counter", "value");
        for (name, v) in &counters {
            let _ = writeln!(out, "{name:<32} {:>8}", v.as_f64().unwrap_or(0.0) as u64);
        }
    }
    let gauges = entries("gauges");
    if !gauges.is_empty() {
        let _ = writeln!(out, "{:<32} {:>12}", "gauge", "value");
        for (name, v) in &gauges {
            let _ = writeln!(out, "{name:<32} {:>12.4}", v.as_f64().unwrap_or(0.0));
        }
    }
    out
}

/// Write scrape output without panicking when stdout is a closed pipe
/// (`stats | head` must exit cleanly — it is the command built to be
/// piped).
fn write_stats_output(text: &str) {
    use std::io::Write as _;
    let _ = std::io::stdout().write_all(text.as_bytes());
}

/// Scrape a running serve daemon's metrics registry over its Unix socket
/// and print it: a human table by default, raw Prometheus text with
/// `--prometheus`, or the JSON snapshot with `--json`. Exit code 2 on
/// usage, connect, or protocol errors.
fn run_stats(args: &[String]) -> i32 {
    use std::io::{BufRead as _, BufReader, Write as _};
    let mut socket: Option<String> = None;
    let mut prometheus = false;
    let mut json = false;
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => match args.next() {
                Some(v) => socket = Some(v.clone()),
                None => {
                    eprintln!("vegen-engine stats: --socket needs a value");
                    return 2;
                }
            },
            "--prometheus" => prometheus = true,
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: vegen-engine stats --socket PATH [--prometheus | --json]");
                return 0;
            }
            other => {
                eprintln!("vegen-engine stats: unknown argument {other:?}");
                return 2;
            }
        }
    }
    let Some(path) = socket else {
        eprintln!("usage: vegen-engine stats --socket PATH [--prometheus | --json]");
        return 2;
    };
    if prometheus && json {
        eprintln!("vegen-engine stats: pass at most one of --prometheus or --json");
        return 2;
    }
    let stream = match std::os::unix::net::UnixStream::connect(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("vegen-engine stats: cannot connect to {path}: {e}");
            return 2;
        }
    };
    let mut request = vec![("op", Json::str("stats")), ("id", Json::str("stats-cli"))];
    if prometheus {
        request.push(("format", Json::str("prometheus")));
    }
    let mut write_half = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("vegen-engine stats: {e}");
            return 2;
        }
    };
    if let Err(e) = writeln!(write_half, "{}", Json::obj(request).render()) {
        eprintln!("vegen-engine stats: cannot send request: {e}");
        return 2;
    }
    let mut line = String::new();
    if let Err(e) = BufReader::new(stream).read_line(&mut line) {
        eprintln!("vegen-engine stats: cannot read response: {e}");
        return 2;
    }
    let response = match Json::parse(&line) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("vegen-engine stats: malformed response: {e}");
            return 2;
        }
    };
    if response.get("ok").and_then(Json::as_bool) != Some(true) {
        eprintln!("vegen-engine stats: daemon error: {}", response.render());
        return 2;
    }
    let Some(result) = response.get("result") else {
        eprintln!("vegen-engine stats: response has no result");
        return 2;
    };
    if prometheus {
        match result.get("prometheus").and_then(Json::as_str) {
            Some(text) => write_stats_output(text),
            None => {
                eprintln!("vegen-engine stats: response has no prometheus text");
                return 2;
            }
        }
    } else if json {
        write_stats_output(&format!("{}\n", result.render_pretty()));
    } else {
        write_stats_output(&render_stats_table(result));
    }
    0
}

// ---------------------------------------------------------------------------
// explain
// ---------------------------------------------------------------------------

fn run_explain(args: &[String]) -> i32 {
    let mut name: Option<String> = None;
    let mut target = TargetIsa::avx2();
    let mut beam = 64usize;
    let mut max_iters: Option<usize> = None;
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        let mut value = |n: &str| args.next().cloned().ok_or(format!("{n} needs a value"));
        match arg.as_str() {
            "--target" => match value("--target").and_then(|v| parse_target(&v)) {
                Ok(t) => target = t,
                Err(e) => {
                    eprintln!("vegen-engine explain: {e}");
                    return 2;
                }
            },
            "--beam" => match value("--beam").and_then(|v| v.parse().map_err(|e| format!("{e}"))) {
                Ok(w) => beam = w,
                Err(e) => {
                    eprintln!("vegen-engine explain: --beam: {e}");
                    return 2;
                }
            },
            "--max-iters" => {
                match value("--max-iters").and_then(|v| v.parse().map_err(|e| format!("{e}"))) {
                    Ok(n) => max_iters = Some(n),
                    Err(e) => {
                        eprintln!("vegen-engine explain: --max-iters: {e}");
                        return 2;
                    }
                }
            }
            other if !other.starts_with('-') && name.is_none() => name = Some(other.to_string()),
            other => {
                eprintln!("vegen-engine explain: unknown argument {other:?}");
                return 2;
            }
        }
    }
    let Some(name) = name else {
        eprintln!("usage: vegen-engine explain <kernel> [--target T] [--beam N] [--max-iters N]");
        return 2;
    };
    let Some(kernel) = vegen_kernels::find(&name) else {
        eprintln!("vegen-engine explain: unknown kernel {name:?}; available:");
        for k in vegen_kernels::all() {
            eprintln!("  {} ({:?})", k.name, k.suite);
        }
        return 2;
    };

    let f = prepare(&(kernel.build)());
    let desc = target_desc(&target, true);
    let ctx = VectorizerCtx::new(&f, &desc, CostModel::default());

    println!("explain {} (target {}, beam {beam})", kernel.name, target.name);
    println!("function: {} instructions, {} stores", f.insts.len(), f.stores().len());

    // costSLP of each store chain's value operand — the Σ costSLP(v) terms
    // the search starts from (this is the diagnostic the old scratch `dbg`
    // binary printed for fft8's output chunks, generalized).
    let slp = SlpCost::new(&ctx);
    for chain in ctx.store_chain_packs() {
        if let Some(x) = chain.store_operand() {
            println!("costSLP({}) = {:.1}", vegen_core::describe_pack(&ctx, &chain), slp.cost(&x));
        }
    }

    let cfg = BeamConfig { log_decisions: true, max_iters, ..BeamConfig::with_width(beam) };
    let t0 = Instant::now();
    // No budget is set here, so the search cannot fail — but surface a
    // typed error cleanly rather than panicking if that ever changes.
    let r = match select_packs(&ctx, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("vegen-engine explain: selection failed: {e}");
            return 2;
        }
    };
    let wall = t0.elapsed();
    println!(
        "selection: scalar {:.1} → vector {:.1} ({:.2}x estimated), {} states expanded in {wall:.2?}",
        r.scalar_cost,
        r.vector_cost,
        r.scalar_cost / r.vector_cost.max(1e-9),
        r.states_expanded,
    );

    let log = r.decisions.as_ref().expect("log_decisions was set");
    println!("committed packs ({}):", log.committed.len());
    for c in &log.committed {
        println!("  {:>3}. {:<40} costop {:.1}", c.step, c.pack, c.cost);
    }
    println!("iterations ({}):", log.iterations.len());
    for it in &log.iterations {
        println!(
            "  iter {:>3}: beam {} → pool {} → dedup {} → kept {}",
            it.index, it.beam_in, it.pool, it.deduped, it.kept
        );
        for c in &it.candidates {
            println!(
                "    {} {:<44} g={:<8.1} est={:<8.1} score={:<8.1} packs={}",
                if c.kept { "KEEP " } else { "PRUNE" },
                c.action,
                c.g,
                c.est,
                c.score,
                c.packs
            );
        }
    }

    // Static validation of the full compilation, run through the engine
    // (so the profitability backstop and lowering are the real ones, and
    // the printed job carries the correlation id and cache source that
    // cross-reference the event log and any flight dump).
    let pipeline = PipelineConfig {
        target: target.clone(),
        beam: BeamConfig::with_width(beam),
        canonicalize_patterns: true,
    };
    let engine = Engine::new(EngineConfig { threads: 1, verify_trials: 0, ..Default::default() });
    let result = engine.compile_one(kernel.name, &(kernel.build)(), &pipeline);
    println!(
        "job: corr {} rung {} cache {}",
        result.corr,
        result.rung.name(),
        result.cache_source()
    );
    let Some(compiled) = result.kernel.as_deref() else {
        eprintln!("vegen-engine explain: compilation produced no program:");
        for fault in &result.faults {
            eprintln!("  {fault}");
        }
        return 1;
    };
    println!("static validation: {}", compiled.analysis.verdict());
    for d in compiled.analysis.all() {
        println!("  {d}");
    }
    0
}

// ---------------------------------------------------------------------------
// lint
// ---------------------------------------------------------------------------

/// Run the static validators over the whole suite. Exit code 1 when any
/// kernel has an error-severity finding; warnings are reported but do not
/// gate. `--out` writes the diagnostics as a JSON artifact.
fn run_lint(args: &[String]) -> i32 {
    let mut target = TargetIsa::avx2();
    let mut beam = 16usize;
    let mut threads = 0usize;
    let mut out: Option<String> = None;
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        let mut value = |n: &str| args.next().cloned().ok_or(format!("{n} needs a value"));
        let parsed = match arg.as_str() {
            "--target" => value("--target").and_then(|v| parse_target(&v)).map(|t| target = t),
            "--beam" => value("--beam")
                .and_then(|v| v.parse().map_err(|e| format!("--beam: {e}")))
                .map(|w| beam = w),
            "--threads" => value("--threads")
                .and_then(|v| v.parse().map_err(|e| format!("--threads: {e}")))
                .map(|n| threads = n),
            "--out" => value("--out").map(|v| out = Some(v)),
            "--help" | "-h" => {
                eprintln!(
                    "usage: vegen-engine lint [--target avx2|avx512vnni] [--beam N] \
                     [--threads N] [--out FILE]"
                );
                return 0;
            }
            other => Err(format!("unknown argument {other:?}")),
        };
        if let Err(e) = parsed {
            eprintln!("vegen-engine lint: {e}");
            return 2;
        }
    }

    // Verification trials off: this gate is purely static; the suite mode
    // covers dynamic checking.
    let engine = Engine::new(EngineConfig { threads, verify_trials: 0, ..EngineConfig::default() });
    let pipeline = PipelineConfig {
        target: target.clone(),
        beam: BeamConfig::with_width(beam),
        canonicalize_patterns: true,
    };
    let jobs: Vec<Job> = vegen_kernels::all()
        .into_iter()
        .map(|k| Job::new(k.name, (k.build)(), pipeline.clone()))
        .collect();
    let t0 = Instant::now();
    let results = engine.compile_batch(&jobs);
    let wall = t0.elapsed();

    let mut total_errors = 0usize;
    let mut total_warnings = 0usize;
    let mut rows = Vec::new();
    for r in &results {
        // A job that produced no program at all is an error-severity
        // finding in its own right; degraded rungs still carry a real
        // analysis (or an empty one for the scalar rung) and lint it.
        let Some(kernel) = r.kernel.as_deref() else {
            total_errors += 1;
            let fault =
                r.faults.first().map(|e| e.to_string()).unwrap_or_else(|| "no program".into());
            println!(
                "{:<24} {:<8} {:<6} {} — {fault}",
                r.name,
                r.corr,
                r.cache_source(),
                r.rung.name()
            );
            rows.push(Json::obj([
                ("name", Json::str(&r.name)),
                ("corr", Json::str(&r.corr)),
                ("cache", Json::str(r.cache_source())),
                ("rung", Json::str(r.rung.name())),
                ("errors", Json::int(1)),
                ("warnings", Json::int(0)),
                ("packs_checked", Json::int(0)),
                ("lanes_proved", Json::int(0)),
                (
                    "diagnostics",
                    Json::Arr(r.faults.iter().map(|e| Json::str(e.to_string())).collect()),
                ),
            ]));
            continue;
        };
        let a = &kernel.analysis;
        total_errors += a.error_count();
        total_warnings += a.warning_count();
        println!("{:<24} {:<8} {:<6} {}", r.name, r.corr, r.cache_source(), a.verdict());
        for d in a.all() {
            println!("    {d}");
        }
        rows.push(Json::obj([
            ("name", Json::str(&r.name)),
            ("corr", Json::str(&r.corr)),
            ("cache", Json::str(r.cache_source())),
            ("rung", Json::str(r.rung.name())),
            ("errors", Json::int(a.error_count() as u64)),
            ("warnings", Json::int(a.warning_count() as u64)),
            ("packs_checked", Json::int(a.packs_checked as u64)),
            ("lanes_proved", Json::int(a.lanes_proved as u64)),
            ("diagnostics", Json::Arr(a.all().map(|d| Json::str(d.to_string())).collect())),
        ]));
    }
    print_failure_table(&results);
    println!(
        "vegen-engine lint: {} kernels in {wall:.2?} (target {}, beam {beam}) — {} error(s), \
         {} warning(s)",
        results.len(),
        target.name,
        total_errors,
        total_warnings
    );

    if let Some(path) = &out {
        let doc = Json::obj([
            ("schema", Json::str("vegen-engine-lint/v1")),
            ("target", Json::str(&target.name)),
            ("beam_width", Json::int(beam as u64)),
            ("errors", Json::int(total_errors as u64)),
            ("warnings", Json::int(total_warnings as u64)),
            ("kernels", Json::Arr(rows)),
        ]);
        if let Err(e) = std::fs::write(path, doc.render_pretty()) {
            eprintln!("vegen-engine lint: cannot write {path}: {e}");
            return 2;
        }
        eprintln!("vegen-engine lint: report written to {path}");
    }
    if total_errors > 0 {
        1
    } else {
        0
    }
}

// ---------------------------------------------------------------------------
// check-specs
// ---------------------------------------------------------------------------

/// Audit the offline spec chain (pseudocode → VIDL → match table) for one
/// or all targets. Exit code 1 when any target has an error-severity
/// finding; warnings are reported but do not gate. `--corrupt KIND`
/// injects a deliberate corruption first, so CI can assert the gate
/// rejects a broken database and names the mutated instruction.
fn run_check_specs(args: &[String]) -> i32 {
    use vegen_analysis::speccheck::{check_database, corrupt_database};
    use vegen_isa::{specs::all_specs, InstDb};

    let mut targets = vec![TargetIsa::sse4(), TargetIsa::avx2(), TargetIsa::avx512vnni()];
    let mut json = false;
    let mut out: Option<String> = None;
    let mut corrupt: Option<String> = None;
    let mut canonicalize = true;
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        let mut value = |n: &str| args.next().cloned().ok_or(format!("{n} needs a value"));
        let parsed = match arg.as_str() {
            "--target" => value("--target").and_then(|v| {
                if v.eq_ignore_ascii_case("all") {
                    Ok(())
                } else {
                    parse_target(&v).map(|t| targets = vec![t])
                }
            }),
            "--json" => {
                json = true;
                Ok(())
            }
            "--out" => value("--out").map(|v| out = Some(v)),
            "--corrupt" => value("--corrupt").map(|v| corrupt = Some(v)),
            "--no-canon" => {
                canonicalize = false;
                Ok(())
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: vegen-engine check-specs [--target sse4|avx2|avx512vnni|all] \
                     [--json] [--out FILE] [--corrupt KIND] [--no-canon]\n\
                     corruption KIND is lane-swap|widen|flip-cmp|dup-rule|neg-cost|rename-op"
                );
                return 0;
            }
            other => Err(format!("unknown argument {other:?}")),
        };
        if let Err(e) = parsed {
            eprintln!("vegen-engine check-specs: {e}");
            return 2;
        }
    }

    let t0 = Instant::now();
    let mut total_errors = 0usize;
    let mut total_warnings = 0usize;
    let mut rows = Vec::new();
    for target in &targets {
        let specs: Vec<_> = all_specs()
            .iter()
            .filter(|s| target.has(s.ext) && s.bits <= target.max_bits)
            .cloned()
            .collect();
        let mut db = InstDb::for_target(target);
        let mut corrupted_inst: Option<String> = None;
        if let Some(kind) = &corrupt {
            match corrupt_database(&db, kind) {
                Ok((bad, name)) => {
                    eprintln!(
                        "vegen-engine check-specs: injected {kind} corruption into {name} \
                         ({})",
                        target.name
                    );
                    db = bad;
                    corrupted_inst = Some(name);
                }
                Err(e) => {
                    eprintln!("vegen-engine check-specs: --corrupt {kind}: {e}");
                    return 2;
                }
            }
        }
        let report = check_database(&target.name, &specs, &db, canonicalize);
        total_errors += report.error_count();
        total_warnings += report.warning_count();
        if !json {
            println!("{}", report.verdict());
            for d in &report.diagnostics {
                println!("    {d}");
            }
        }
        vegen_trace::metrics::counter("speccheck_rules_total").add(report.stats.rules as u64);
        vegen_trace::metrics::gauge("speccheck_dead_rules").set(report.stats.dead_rules as f64);
        vegen_trace::metrics::gauge("speccheck_max_overlap_class")
            .set(report.stats.max_overlap_class as f64);
        rows.push(Json::obj([
            ("target", Json::str(&report.target)),
            ("insts_checked", Json::int(report.insts_checked as u64)),
            ("lanes_proved", Json::int(report.lanes_proved as u64)),
            ("lanes_validated", Json::int(report.lanes_validated as u64)),
            ("rules", Json::int(report.stats.rules as u64)),
            ("ops", Json::int(report.stats.ops as u64)),
            ("dead_rules", Json::int(report.stats.dead_rules as u64)),
            ("max_overlap_class", Json::int(report.stats.max_overlap_class as u64)),
            ("errors", Json::int(report.error_count() as u64)),
            ("warnings", Json::int(report.warning_count() as u64)),
            ("corrupted_inst", corrupted_inst.as_deref().map_or(Json::Null, Json::str)),
            (
                "diagnostics",
                Json::Arr(report.diagnostics.iter().map(|d| Json::str(d.to_string())).collect()),
            ),
        ]));
    }
    let doc = Json::obj([
        ("schema", Json::str("vegen-engine-speccheck/v1")),
        ("corruption", corrupt.as_deref().map_or(Json::Null, Json::str)),
        ("errors", Json::int(total_errors as u64)),
        ("warnings", Json::int(total_warnings as u64)),
        ("targets", Json::Arr(rows)),
    ]);
    if json {
        println!("{}", doc.render_pretty());
    }
    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, doc.render_pretty()) {
            eprintln!("vegen-engine check-specs: cannot write {path}: {e}");
            return 2;
        }
        eprintln!("vegen-engine check-specs: report written to {path}");
    }
    if !json {
        println!(
            "vegen-engine check-specs: {} target(s) in {:.2?} — {} error(s), {} warning(s)",
            targets.len(),
            t0.elapsed(),
            total_errors,
            total_warnings
        );
    }
    if total_errors > 0 {
        1
    } else {
        0
    }
}

// ---------------------------------------------------------------------------
// diff
// ---------------------------------------------------------------------------

struct KernelRow {
    vegen_cycles: f64,
    speedup_vs_baseline: f64,
    states_expanded: f64,
    transitions: f64,
}

/// A report regression found by [`diff_reports`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Kernel name (or `"<suite>"` for report-level findings).
    pub kernel: String,
    /// What regressed, with old → new values.
    pub what: String,
}

/// Thresholds for [`diff_reports`].
#[derive(Debug, Clone, Copy)]
pub struct DiffConfig {
    /// Allowed relative worsening, in percent, of cycles and speedups.
    pub max_regress_pct: f64,
    /// Treat search-effort counter growth beyond the threshold as a
    /// regression too (off by default: counters are informational).
    pub strict_counters: bool,
}

impl Default for DiffConfig {
    fn default() -> DiffConfig {
        DiffConfig { max_regress_pct: 2.0, strict_counters: false }
    }
}

fn pick_run(report: &Json) -> Result<&Json, String> {
    let runs = report
        .get("runs")
        .and_then(Json::as_arr)
        .ok_or_else(|| "report has no runs".to_string())?;
    runs.iter()
        .find(|r| r.get("label").and_then(Json::as_str) == Some("cold"))
        .or_else(|| runs.first())
        .ok_or_else(|| "report has zero runs".to_string())
}

fn kernel_rows(run: &Json) -> Result<Vec<(String, KernelRow)>, String> {
    let kernels = run
        .get("kernels")
        .and_then(Json::as_arr)
        .ok_or_else(|| "run has no kernels".to_string())?;
    let mut rows = Vec::new();
    for k in kernels {
        let name = k
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| "kernel without a name".to_string())?;
        let num = |key: &str| k.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN);
        let beam_num = |key: &str| {
            k.get("beam").and_then(|b| b.get(key)).and_then(Json::as_f64).unwrap_or(0.0)
        };
        rows.push((
            name.to_string(),
            KernelRow {
                vegen_cycles: num("vegen_cycles"),
                speedup_vs_baseline: num("speedup_vs_baseline"),
                states_expanded: num("states_expanded"),
                transitions: beam_num("transitions"),
            },
        ));
    }
    Ok(rows)
}

fn check_schema(report: &Json, which: &str) -> Result<(), String> {
    let schema = report
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{which}: missing schema field"))?;
    // `BENCH_suite.json` (the suite bench artifact) embeds the same
    // per-run kernel rows, so diff accepts either document.
    if !schema.starts_with("vegen-engine-report/") && !schema.starts_with("vegen-bench-suite/") {
        return Err(format!("{which}: unrecognized schema {schema:?}"));
    }
    Ok(())
}

/// Compare two parsed engine reports. Returns the regressions (empty =
/// gate passes) and informational lines describing non-gating changes.
///
/// # Errors
///
/// Returns a message when either document is not an engine report.
pub fn diff_reports(
    old: &Json,
    new: &Json,
    cfg: &DiffConfig,
) -> Result<(Vec<Regression>, Vec<String>), String> {
    check_schema(old, "old")?;
    check_schema(new, "new")?;
    let old_rows = kernel_rows(pick_run(old)?)?;
    let new_rows = kernel_rows(pick_run(new)?)?;
    let factor = 1.0 + cfg.max_regress_pct / 100.0;

    let mut regressions = Vec::new();
    let mut info = Vec::new();
    for (name, o) in &old_rows {
        let Some((_, n)) = new_rows.iter().find(|(nn, _)| nn == name) else {
            regressions.push(Regression {
                kernel: name.clone(),
                what: "kernel missing from new report".to_string(),
            });
            continue;
        };
        if n.vegen_cycles > o.vegen_cycles * factor {
            regressions.push(Regression {
                kernel: name.clone(),
                what: format!(
                    "vegen_cycles {:.1} → {:.1} (+{:.1}%)",
                    o.vegen_cycles,
                    n.vegen_cycles,
                    (n.vegen_cycles / o.vegen_cycles - 1.0) * 100.0
                ),
            });
        }
        if n.speedup_vs_baseline * factor < o.speedup_vs_baseline {
            regressions.push(Regression {
                kernel: name.clone(),
                what: format!(
                    "speedup_vs_baseline {:.3} → {:.3}",
                    o.speedup_vs_baseline, n.speedup_vs_baseline
                ),
            });
        }
        for (label, ov, nv) in [
            ("states_expanded", o.states_expanded, n.states_expanded),
            ("transitions", o.transitions, n.transitions),
        ] {
            if nv > ov * factor && ov > 0.0 {
                let line =
                    format!("{name}: {label} {ov:.0} → {nv:.0} (+{:.1}%)", (nv / ov - 1.0) * 100.0);
                if cfg.strict_counters {
                    regressions.push(Regression { kernel: name.clone(), what: line });
                } else {
                    info.push(line);
                }
            }
        }
    }
    for (name, _) in &new_rows {
        if !old_rows.iter().any(|(on, _)| on == name) {
            info.push(format!("{name}: new kernel (not in old report)"));
        }
    }
    Ok((regressions, info))
}

fn run_diff(args: &[String]) -> i32 {
    let mut files = Vec::new();
    let mut cfg = DiffConfig::default();
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-regress" => {
                match args.next().map(|v| v.parse::<f64>()) {
                    Some(Ok(pct)) if pct >= 0.0 => cfg.max_regress_pct = pct,
                    _ => {
                        eprintln!("vegen-engine diff: --max-regress needs a percentage");
                        return 2;
                    }
                };
            }
            "--strict-counters" => cfg.strict_counters = true,
            other if !other.starts_with('-') => files.push(other.to_string()),
            other => {
                eprintln!("vegen-engine diff: unknown argument {other:?}");
                return 2;
            }
        }
    }
    let [old_path, new_path] = files.as_slice() else {
        eprintln!(
            "usage: vegen-engine diff <old.json> <new.json> [--max-regress PCT] \
             [--strict-counters]"
        );
        return 2;
    };
    let load = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Json::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("vegen-engine diff: {e}");
            return 2;
        }
    };
    match diff_reports(&old, &new, &cfg) {
        Ok((regressions, info)) => {
            for line in &info {
                println!("info: {line}");
            }
            for r in &regressions {
                println!("REGRESSION {}: {}", r.kernel, r.what);
            }
            if regressions.is_empty() {
                println!(
                    "vegen-engine diff: no regressions (threshold {:.1}%)",
                    cfg.max_regress_pct
                );
                0
            } else {
                println!("vegen-engine diff: {} regression(s)", regressions.len());
                1
            }
        }
        Err(e) => {
            eprintln!("vegen-engine diff: {e}");
            2
        }
    }
}
