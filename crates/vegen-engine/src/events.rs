//! Structured job event log: one NDJSON line per job lifecycle event,
//! threaded by correlation id.
//!
//! Every job — batch or serve — is assigned a process-unique correlation
//! id (`c000001`, `c000002`, …) at creation. The engine emits events at
//! each lifecycle boundary:
//!
//! | event       | when                                                |
//! |-------------|-----------------------------------------------------|
//! | `admitted`  | the job entered the engine (serve queue or batch)   |
//! | `started`   | a worker began executing it                         |
//! | `stage_done`| a pipeline stage finished (cache misses only)       |
//! | `degraded`  | the job completed below the primary rung            |
//! | `faulted`   | one ladder attempt failed (typed error or panic)    |
//! | `completed` | the job finished, any rung — including `failed`     |
//!
//! Every line carries `ts_us` (microseconds on the shared trace-epoch
//! clock, so events cross-reference trace spans exactly), `event`,
//! `corr`, and `job`; `completed` adds the rung, cache source, wall time,
//! and per-stage timings. Lines are appended (and flushed) one `write`
//! call at a time, so concurrent workers never interleave partial lines.
//!
//! The log keeps an in-memory tail of the most recent lines for the
//! flight recorder: a fault dump embeds the event context around the
//! failure without re-reading the file.

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use vegen_trace::json::Json;

/// Lines retained in memory for flight-dump context.
const TAIL_CAPACITY: usize = 256;

static NEXT_CORR: AtomicU64 = AtomicU64::new(1);

/// A fresh process-unique correlation id (`c000001`-style).
pub fn next_corr() -> String {
    format!("c{:06}", NEXT_CORR.fetch_add(1, Ordering::Relaxed))
}

struct Inner {
    file: File,
    tail: VecDeque<String>,
}

/// An append-only NDJSON job event log (see the module docs for the
/// schema).
pub struct EventLog {
    path: PathBuf,
    inner: Mutex<Inner>,
    written: AtomicU64,
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("path", &self.path)
            .field("written", &self.written.load(Ordering::Relaxed))
            .finish()
    }
}

impl EventLog {
    /// Open (append-create) the event log at `path`.
    ///
    /// # Errors
    ///
    /// Returns a description when the file cannot be opened.
    pub fn open(path: &Path) -> Result<EventLog, String> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("open event log {}: {e}", path.display()))?;
        Ok(EventLog {
            path: path.to_path_buf(),
            inner: Mutex::new(Inner { file, tail: VecDeque::new() }),
            written: AtomicU64::new(0),
        })
    }

    /// The file this log appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Lines written so far.
    pub fn written(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }

    /// Append one event. `extra` fields follow the standard
    /// `ts_us`/`event`/`corr`/`job` prefix. Write failures are recorded
    /// in the `engine_event_log_errors_total` counter but never fail the
    /// job being logged.
    pub fn emit(
        &self,
        event: &'static str,
        corr: &str,
        job: &str,
        extra: Vec<(&'static str, Json)>,
    ) {
        let mut pairs = vec![
            ("ts_us", Json::int(vegen_trace::timestamp_us())),
            ("event", Json::str(event)),
            ("corr", Json::str(corr)),
            ("job", Json::str(job)),
        ];
        pairs.extend(extra);
        let line = Json::obj(pairs).render();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.tail.len() == TAIL_CAPACITY {
            inner.tail.pop_front();
        }
        inner.tail.push_back(line.clone());
        // One write call per line: POSIX appends are atomic at this size,
        // so concurrent workers cannot interleave partial lines.
        if writeln!(inner.file, "{line}").is_err() || inner.file.flush().is_err() {
            vegen_trace::metrics::counter("engine_event_log_errors_total").inc();
        } else {
            self.written.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The most recent lines (bounded), oldest first — flight-dump
    /// context.
    pub fn tail(&self) -> Vec<String> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tail.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlation_ids_are_unique_and_formatted() {
        let a = next_corr();
        let b = next_corr();
        assert_ne!(a, b);
        assert!(a.starts_with('c') && a.len() >= 7, "{a}");
        assert!(a[1..].chars().all(|c| c.is_ascii_digit()), "{a}");
    }

    #[test]
    fn emitted_lines_are_parseable_and_tailed() {
        let dir = std::env::temp_dir().join(format!("vegen-events-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.ndjson");
        let _ = std::fs::remove_file(&path);
        let log = EventLog::open(&path).unwrap();
        log.emit("admitted", "c000123", "dot4", vec![]);
        log.emit(
            "completed",
            "c000123",
            "dot4",
            vec![("rung", Json::str("primary")), ("cache", Json::str("miss"))],
        );
        assert_eq!(log.written(), 2);
        assert_eq!(log.tail().len(), 2);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("event").unwrap().as_str(), Some("admitted"));
        assert_eq!(first.get("corr").unwrap().as_str(), Some("c000123"));
        let last = Json::parse(lines[1]).unwrap();
        assert_eq!(last.get("rung").unwrap().as_str(), Some("primary"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tail_is_bounded() {
        let dir = std::env::temp_dir().join(format!("vegen-events-tail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.ndjson");
        let log = EventLog::open(&path).unwrap();
        for _ in 0..(TAIL_CAPACITY + 50) {
            log.emit("admitted", "c1", "k", vec![]);
        }
        assert_eq!(log.tail().len(), TAIL_CAPACITY);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
