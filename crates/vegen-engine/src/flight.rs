//! Fault flight recorder: a continuously running trace ring that dumps
//! the recent past whenever something goes wrong.
//!
//! Serve mode (and the suite, when `--flight-dir` is given) keeps the
//! per-thread trace rings of [`vegen_trace`] recording at all times. The
//! rings are bounded and *drop* on overflow (they never wrap — that is
//! what makes concurrent snapshotting sound), so "the last N seconds" is
//! implemented by **double-buffer rotation**: every `window`, the current
//! session is drained into a held *previous* snapshot and the rings are
//! reset ([`vegen_trace::enable`] bumps the session generation, so every
//! thread re-registers into fresh buffers). A dump therefore always
//! covers between one and two windows of history.
//!
//! Dump triggers (wired in the engine and the serve loop):
//!
//! * a job that ends [`crate::Rung::Failed`];
//! * any caught **panic** on the way down the degradation ladder (even
//!   when a lower rung recovered the job);
//! * serve-daemon shutdown (one final dump, reason `shutdown`).
//!
//! Each dump is a self-contained Chrome-trace JSON file
//! (`flight-<ts_us>-<seq>.json`) with two extra top-level keys: `reason`,
//! and `jobEvents` — the event log's in-memory tail — so the spans and
//! the job lifecycle around the fault land in one artifact.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use vegen_trace::json::Json;
use vegen_trace::TraceData;

/// Per-thread ring capacity for flight recording — larger than the trace
/// default because the rings run continuously between rotations.
const FLIGHT_CAPACITY: usize = 1 << 16;

struct State {
    /// The previous window's drained events.
    prev: TraceData,
    last_rotate: Instant,
    seq: u64,
}

/// A continuously recording trace window with fault-triggered dumps (see
/// the module docs).
pub struct FlightRecorder {
    dir: PathBuf,
    window: Duration,
    /// When false, the rings are never reset — for callers (the suite's
    /// `--trace`) that will drain the session themselves at exit.
    rotate: bool,
    state: Mutex<State>,
    dumps: AtomicU64,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("dir", &self.dir)
            .field("window", &self.window)
            .field("dumps", &self.dumps.load(Ordering::Relaxed))
            .finish()
    }
}

impl FlightRecorder {
    /// Create the dump directory and start recording (enables tracing at
    /// [`FLIGHT_CAPACITY`] unless a session is already running, which is
    /// left untouched — and `rotate` should then be `false` so this
    /// recorder never resets someone else's session).
    ///
    /// # Errors
    ///
    /// Returns a description when the directory cannot be created.
    pub fn open(dir: &Path, window: Duration, rotate: bool) -> Result<FlightRecorder, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("create flight dir {}: {e}", dir.display()))?;
        if !vegen_trace::enabled() {
            vegen_trace::enable(FLIGHT_CAPACITY);
        }
        Ok(FlightRecorder {
            dir: dir.to_path_buf(),
            window,
            rotate,
            state: Mutex::new(State {
                prev: TraceData::default(),
                last_rotate: Instant::now(),
                seq: 0,
            }),
            dumps: AtomicU64::new(0),
        })
    }

    /// The directory dumps are written to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Dumps written so far.
    pub fn dumps(&self) -> u64 {
        self.dumps.load(Ordering::Relaxed)
    }

    /// Rotate the double buffer if a window has elapsed: drain the
    /// current session into `prev` and reset the rings. Called
    /// opportunistically from the engine's per-job wrapper — cheap when
    /// the window has not elapsed (one mutex lock and an `Instant`
    /// comparison).
    pub fn maybe_rotate(&self) {
        if !self.rotate {
            return;
        }
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.last_rotate.elapsed() < self.window {
            return;
        }
        st.prev = vegen_trace::drain();
        vegen_trace::enable(FLIGHT_CAPACITY);
        st.last_rotate = Instant::now();
        vegen_trace::metrics::counter("flight_rotations_total").inc();
    }

    /// Write one dump: the previous window plus the live session as a
    /// Chrome trace, with `reason` and the event-log tail attached.
    /// Returns the written path.
    ///
    /// # Errors
    ///
    /// Returns a description when the file cannot be written; callers
    /// treat that as a recoverable fault, never a job failure.
    pub fn dump(&self, reason: &str, event_tail: &[String]) -> Result<PathBuf, String> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let current = vegen_trace::drain();
        let mut threads = st.prev.threads.clone();
        threads.extend(current.threads);
        threads.sort_by_key(|t| t.tid);
        let merged = TraceData { threads };

        let mut doc = vegen_trace::export::chrome_trace(&merged);
        if let Json::Obj(pairs) = &mut doc {
            pairs.push(("reason".to_string(), Json::str(reason)));
            pairs.push((
                "jobEvents".to_string(),
                Json::Arr(
                    event_tail
                        .iter()
                        .map(|line| Json::parse(line).unwrap_or_else(|_| Json::str(line.clone())))
                        .collect(),
                ),
            ));
        }

        st.seq += 1;
        let path =
            self.dir.join(format!("flight-{:012}-{:03}.json", vegen_trace::timestamp_us(), st.seq));
        std::fs::write(&path, doc.render_pretty())
            .map_err(|e| format!("write flight dump {}: {e}", path.display()))?;
        self.dumps.fetch_add(1, Ordering::Relaxed);
        vegen_trace::metrics::counter("flight_dumps_total").inc();
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_writes_a_chrome_trace_with_reason_and_events() {
        let dir = std::env::temp_dir().join(format!("vegen-flight-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rec = FlightRecorder::open(&dir, Duration::from_secs(30), true).unwrap();
        {
            let _sp = vegen_trace::span("test", "flight_span");
        }
        let tail = vec![r#"{"event":"faulted","corr":"c000042"}"#.to_string()];
        let path = rec.dump("job_failed", &tail).unwrap();
        assert!(path.file_name().unwrap().to_str().unwrap().starts_with("flight-"));
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.get("reason").unwrap().as_str(), Some("job_failed"));
        let events = doc.get("jobEvents").unwrap().as_arr().unwrap();
        assert_eq!(events[0].get("corr").unwrap().as_str(), Some("c000042"));
        assert!(doc.get("traceEvents").is_some());
        assert_eq!(rec.dumps(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
