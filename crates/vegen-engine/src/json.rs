//! A minimal JSON document builder.
//!
//! The workspace builds fully offline, so `serde`/`serde_json` are not
//! available; this module is the serialization layer the
//! [`EngineReport`](crate::report::EngineReport) renders through. It
//! emits RFC 8259-conformant text (escaped strings, `null` for
//! non-finite numbers) and nothing more — there is deliberately no
//! parser here.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (rendered via `f64`; non-finite becomes `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: an integer value (exact for |v| < 2^53).
    pub fn int(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// An object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Render compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if !v.is_finite() {
                    out.push_str("null");
                } else if *v == v.trunc() && v.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *v as i64);
                } else {
                    let _ = write!(out, "{v}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::obj([
            ("name", Json::str("dot4")),
            ("hit", Json::Bool(true)),
            ("cycles", Json::Num(12.5)),
            ("ops", Json::Arr(vec![Json::str("pmaddwd_128")])),
            ("none", Json::Null),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"dot4","hit":true,"cycles":12.5,"ops":["pmaddwd_128"],"none":null}"#
        );
    }

    #[test]
    fn escapes_strings_and_handles_nonfinite() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::int(42).render(), "42");
    }

    #[test]
    fn pretty_rendering_is_valid_and_indented() {
        let doc = Json::obj([("a", Json::Arr(vec![Json::int(1), Json::int(2)]))]);
        assert_eq!(doc.render_pretty(), "{\n  \"a\": [\n    1,\n    2\n  ]\n}\n");
    }
}
