//! `vegen-engine` — batch-compile the full `vegen-kernels` suite through
//! the parallel, cached engine and emit a JSON `EngineReport`.
//!
//! By default the batch runs twice against one engine: a cold pass that
//! compiles everything, then a warm pass that must be served entirely from
//! the content-addressed cache. The report carries both runs so the cache
//! effect is visible in the artifact itself.
//!
//! ```text
//! vegen-engine [--target avx2|avx512vnni] [--beam N] [--threads N]
//!              [--runs N] [--no-verify] [--compact] [--out FILE]
//! ```

use std::time::Instant;
use vegen::driver::PipelineConfig;
use vegen_core::BeamConfig;
use vegen_engine::report::{EngineReport, RunReport};
use vegen_engine::{Engine, EngineConfig, Job};
use vegen_isa::TargetIsa;

struct Options {
    target: TargetIsa,
    beam: usize,
    threads: usize,
    runs: usize,
    verify_trials: u64,
    compact: bool,
    out: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        target: TargetIsa::avx2(),
        beam: 16,
        threads: 0,
        runs: 2,
        verify_trials: 16,
        compact: false,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--target" => {
                opts.target = match value("--target")?.to_ascii_lowercase().as_str() {
                    "avx2" => TargetIsa::avx2(),
                    "avx512vnni" | "avx512-vnni" | "vnni" => TargetIsa::avx512vnni(),
                    other => return Err(format!("unknown target {other:?}")),
                }
            }
            "--beam" => opts.beam = value("--beam")?.parse().map_err(|e| format!("--beam: {e}"))?,
            "--threads" => {
                opts.threads = value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--runs" => {
                opts.runs =
                    value("--runs")?.parse::<usize>().map_err(|e| format!("--runs: {e}"))?.max(1)
            }
            "--no-verify" => opts.verify_trials = 0,
            "--compact" => opts.compact = true,
            "--out" => opts.out = Some(value("--out")?),
            "--help" | "-h" => {
                eprintln!(
                    "usage: vegen-engine [--target avx2|avx512vnni] [--beam N] [--threads N]\n\
                     \x20                   [--runs N] [--no-verify] [--compact] [--out FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("vegen-engine: {e}");
            std::process::exit(2);
        }
    };

    let engine = Engine::new(EngineConfig {
        threads: opts.threads,
        verify_trials: opts.verify_trials,
        ..EngineConfig::default()
    });
    let pipeline = PipelineConfig {
        target: opts.target.clone(),
        beam: BeamConfig::with_width(opts.beam),
        canonicalize_patterns: true,
    };
    let jobs: Vec<Job> = vegen_kernels::all()
        .into_iter()
        .map(|k| Job::new(k.name, (k.build)(), pipeline.clone()))
        .collect();
    let resolved_threads = if opts.threads == 0 {
        vegen_engine::pool::default_threads(jobs.len())
    } else {
        opts.threads
    };

    let mut runs = Vec::new();
    let mut failed = false;
    for i in 0..opts.runs {
        let label = match i {
            0 => "cold".to_string(),
            1 => "warm".to_string(),
            n => format!("warm{n}"),
        };
        let t0 = Instant::now();
        let results = engine.compile_batch(&jobs);
        let wall = t0.elapsed();
        for r in &results {
            if let Some(e) = &r.verify_error {
                eprintln!("vegen-engine: kernel {} FAILED verification: {e}", r.name);
                failed = true;
            }
        }
        let hits = results.iter().filter(|r| r.cache_hit).count();
        eprintln!(
            "vegen-engine: {label} run — {} kernels in {wall:.2?} on {resolved_threads} threads, \
             {hits}/{} cache hits",
            results.len(),
            results.len(),
        );
        runs.push(RunReport::new(label, wall, &results));
    }

    let report = EngineReport {
        target: opts.target.name.clone(),
        beam_width: opts.beam,
        threads: resolved_threads,
        verify_trials: opts.verify_trials,
        runs,
        cache: engine.cache_stats(),
        counters: engine.counters(),
    };
    let doc = report.to_json();
    let text = if opts.compact { doc.render() } else { doc.render_pretty() };
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("vegen-engine: cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("vegen-engine: report written to {path}");
        }
        None => println!("{text}"),
    }
    if failed {
        std::process::exit(1);
    }
}
