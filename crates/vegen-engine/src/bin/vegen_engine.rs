//! `vegen-engine` — suite runner, `explain`, and `diff` (see
//! [`vegen_engine::cli`] for the full usage; all logic lives in the
//! library so tests can drive it).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(vegen_engine::cli::main_with_args(&args));
}
