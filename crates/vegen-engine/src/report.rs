//! Telemetry report types and their JSON rendering.
//!
//! An [`EngineReport`] is the engine's external instrumentation surface:
//! one entry per kernel (cycles under the paper's throughput model,
//! speedups, per-stage wall times, search statistics) plus engine-level
//! cache and pipeline counters. The shapes are plain data and would
//! `#[derive(serde::Serialize)]` verbatim; this workspace builds offline
//! without serde, so rendering goes through the in-tree [`json`] writer
//! instead.

use crate::cache::CacheStats;
use crate::diskcache::DiskCacheStats;
use crate::json::Json;
use crate::{EngineCounters, JobResult};
use std::time::Duration;
use vegen::driver::StageTimes;

fn micros(d: Duration) -> Json {
    Json::Num(d.as_secs_f64() * 1e6)
}

/// Snapshot the process-wide metrics registry as JSON, after syncing the
/// gauges that are only computed at exposition time (currently
/// `trace_dropped_events`, the total events lost to ring-buffer overflow
/// across all trace sessions).
pub fn metrics_registry_json() -> Json {
    sync_exposition_gauges();
    vegen_trace::metrics::snapshot().to_json()
}

/// Render the process-wide metrics registry in Prometheus text
/// exposition format (version 0.0.4), syncing exposition-time gauges
/// first.
pub fn metrics_prometheus() -> String {
    sync_exposition_gauges();
    vegen_trace::metrics::snapshot().prometheus()
}

fn sync_exposition_gauges() {
    vegen_trace::metrics::gauge("trace_dropped_events").set(vegen_trace::dropped_total() as f64);
}

/// JSON rendering of the engine counters (the report's `counters` block;
/// also what the serve protocol's `metrics` op returns).
pub fn counters_json(c: &EngineCounters) -> Json {
    Json::obj([
        ("states_expanded", Json::int(c.states_expanded)),
        ("transitions", Json::int(c.transitions)),
        ("dedup_hits", Json::int(c.dedup_hits)),
        ("producer_cache_hits", Json::int(c.producer_cache_hits)),
        ("producer_cache_misses", Json::int(c.producer_cache_misses)),
        ("packs_committed", Json::int(c.packs_committed)),
        ("compilations", Json::int(c.compilations)),
        ("analyses", Json::int(c.analyses)),
        ("analysis_errors", Json::int(c.analysis_errors)),
        ("failures", Json::int(c.failures)),
        ("retries", Json::int(c.retries)),
        ("degradations", Json::int(c.degradations)),
        ("deadline_hits", Json::int(c.deadline_hits)),
        ("disk_hits", Json::int(c.disk_hits)),
        ("disk_stores", Json::int(c.disk_stores)),
        ("cache_io_errors", Json::int(c.cache_io_errors)),
        ("tt_hits", Json::int(c.tt_hits)),
        ("tt_misses", Json::int(c.tt_misses)),
        ("frozen_reuses", Json::int(c.frozen_reuses)),
    ])
}

/// JSON rendering of the in-memory cache counters.
pub fn cache_json(c: &CacheStats) -> Json {
    Json::obj([
        ("hits", Json::int(c.hits)),
        ("misses", Json::int(c.misses)),
        ("evictions", Json::int(c.evictions)),
        ("entries", Json::int(c.entries as u64)),
        ("capacity", Json::int(c.capacity as u64)),
        ("hit_rate", Json::Num(c.hit_rate())),
    ])
}

/// JSON rendering of the on-disk cache counters (the report's `disk`
/// block when a cache directory is configured).
pub fn disk_json(d: &DiskCacheStats) -> Json {
    Json::obj([
        ("entries", Json::int(d.entries as u64)),
        ("hits", Json::int(d.hits)),
        ("misses", Json::int(d.misses)),
        ("stores", Json::int(d.stores)),
        ("invalidated", Json::int(d.invalidated)),
        ("corrupt", Json::int(d.corrupt)),
        ("io_errors", Json::int(d.io_errors)),
        ("evicted", Json::int(d.evicted)),
    ])
}

/// Per-stage wall times in microseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageReport {
    /// The stage times being reported.
    pub stages: StageTimes,
    /// Verification time (the engine's own stage, not the driver's).
    pub verify: Duration,
}

impl StageReport {
    fn to_json(self) -> Json {
        Json::obj([
            ("canonicalize_us", micros(self.stages.canonicalize)),
            ("target_desc_us", micros(self.stages.target_desc)),
            ("selection_us", micros(self.stages.selection)),
            ("lowering_us", micros(self.stages.lowering)),
            ("analysis_us", micros(self.stages.analysis)),
            ("baseline_us", micros(self.stages.baseline)),
            ("verify_us", micros(self.verify)),
            ("total_us", micros(self.stages.total() + self.verify)),
        ])
    }
}

/// One kernel's row in the report.
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// Kernel name.
    pub name: String,
    /// Content address (hex; empty when preparation failed before
    /// anything could be hashed).
    pub content_hash: String,
    /// Whether the cache served it.
    pub cache_hit: bool,
    /// Which cache level served it: `"disk"`, `"memory"`, or `"miss"`
    /// (since schema v6).
    pub cache: &'static str,
    /// Degradation rung the job completed on ("primary", "width1",
    /// "scalar", "failed", "skipped").
    pub rung: &'static str,
    /// Whether the job produced no program at all.
    pub failed: bool,
    /// Rendered faults collected down the ladder (empty on a clean run).
    pub faults: Vec<String>,
    /// Estimated cycles: scalar / baseline-SLP / VeGen.
    pub scalar_cycles: f64,
    /// Baseline cycles.
    pub baseline_cycles: f64,
    /// VeGen cycles.
    pub vegen_cycles: f64,
    /// VeGen speedup over the baseline (the paper's headline metric).
    pub speedup_vs_baseline: f64,
    /// VeGen speedup over scalar.
    pub speedup_vs_scalar: f64,
    /// Beam states expanded selecting this kernel's packs.
    pub states_expanded: usize,
    /// Beam search-effort and cache statistics for this kernel.
    pub beam: vegen_core::beam::BeamStats,
    /// Packs the selection committed.
    pub packs_committed: usize,
    /// Distinct vector instructions VeGen used.
    pub vegen_ops: Vec<String>,
    /// Stage timings (cold-compile attribution; see [`JobResult::stages`]).
    pub stage_times: StageReport,
    /// Wall time this job cost in this run.
    pub wall: Duration,
    /// Verification failure, if any.
    pub verify_error: Option<String>,
    /// Static-validation outcome (legality + provenance + lint).
    pub analysis: AnalysisSummary,
    /// Decision-log summary (present only when the batch ran with
    /// `BeamConfig::log_decisions`).
    pub decisions: Option<DecisionSummary>,
}

/// A compact rendering of a kernel's [`vegen_core::DecisionLog`] for the
/// report (the full per-candidate log stays in `vegen-engine explain`).
#[derive(Debug, Clone)]
pub struct DecisionSummary {
    /// Beam iterations run.
    pub iterations: usize,
    /// Candidates recorded across all iterations.
    pub candidates: usize,
    /// The committed pack sequence: `(description, costop)`.
    pub committed_packs: Vec<(String, f64)>,
}

impl DecisionSummary {
    /// Summarize a selection's decision log, if it kept one.
    pub fn from_log(log: &vegen_core::DecisionLog) -> DecisionSummary {
        DecisionSummary {
            iterations: log.iterations.len(),
            candidates: log.iterations.iter().map(|it| it.candidates.len()).sum(),
            committed_packs: log.committed.iter().map(|c| (c.pack.clone(), c.cost)).collect(),
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("iterations", Json::int(self.iterations as u64)),
            ("candidates", Json::int(self.candidates as u64)),
            (
                "committed_packs",
                Json::Arr(
                    self.committed_packs
                        .iter()
                        .map(|(pack, cost)| {
                            Json::obj([("pack", Json::str(pack)), ("cost", Json::Num(*cost))])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl KernelReport {
    /// Build a row from an engine result. A failed/skipped job (no
    /// kernel) yields a row with zeroed metrics and its faults rendered.
    pub fn from_result(r: &JobResult) -> KernelReport {
        let faults = r.faults.iter().map(|e| e.to_string()).collect();
        let base = KernelReport {
            name: r.name.clone(),
            content_hash: r.hash.map(|h| h.hex()).unwrap_or_default(),
            cache_hit: r.cache_hit,
            cache: r.cache_source(),
            rung: r.rung.name(),
            failed: r.failed(),
            faults,
            scalar_cycles: 0.0,
            baseline_cycles: 0.0,
            vegen_cycles: 0.0,
            speedup_vs_baseline: 0.0,
            speedup_vs_scalar: 0.0,
            states_expanded: 0,
            beam: Default::default(),
            packs_committed: 0,
            vegen_ops: Vec::new(),
            stage_times: StageReport { stages: r.stages, verify: r.verify_time },
            wall: r.wall,
            verify_error: r.verify_error.clone(),
            analysis: AnalysisSummary::default(),
            decisions: None,
        };
        let Some(kernel) = r.kernel.as_deref() else { return base };
        let (scalar, baseline, vegen) = kernel.cycles();
        KernelReport {
            scalar_cycles: scalar,
            baseline_cycles: baseline,
            vegen_cycles: vegen,
            speedup_vs_baseline: kernel.speedup_vs_baseline(),
            speedup_vs_scalar: kernel.speedup_vs_scalar(),
            states_expanded: kernel.selection.states_expanded,
            beam: kernel.selection.stats,
            packs_committed: kernel.selection.packs.len(),
            vegen_ops: kernel.vegen.vector_ops_used(),
            analysis: AnalysisSummary::from_report(&kernel.analysis),
            decisions: kernel.selection.decisions.as_ref().map(DecisionSummary::from_log),
            ..base
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(&self.name)),
            ("content_hash", Json::str(&self.content_hash)),
            ("cache_hit", Json::Bool(self.cache_hit)),
            ("cache", Json::str(self.cache)),
            ("rung", Json::str(self.rung)),
            ("failed", Json::Bool(self.failed)),
            ("faults", Json::Arr(self.faults.iter().map(Json::str).collect())),
            ("scalar_cycles", Json::Num(self.scalar_cycles)),
            ("baseline_cycles", Json::Num(self.baseline_cycles)),
            ("vegen_cycles", Json::Num(self.vegen_cycles)),
            ("speedup_vs_baseline", Json::Num(self.speedup_vs_baseline)),
            ("speedup_vs_scalar", Json::Num(self.speedup_vs_scalar)),
            ("states_expanded", Json::int(self.states_expanded as u64)),
            (
                "beam",
                Json::obj([
                    ("transitions", Json::int(self.beam.transitions)),
                    ("dedup_hits", Json::int(self.beam.dedup_hits)),
                    ("hash_collisions", Json::int(self.beam.hash_collisions)),
                    ("producer_cache_hits", Json::int(self.beam.producer_cache_hits)),
                    ("producer_cache_misses", Json::int(self.beam.producer_cache_misses)),
                    ("interned_operands", Json::int(self.beam.interned_operands as u64)),
                    ("interned_packs", Json::int(self.beam.interned_packs as u64)),
                    ("beam_wall_us", micros(self.beam.beam_wall)),
                    ("workers", Json::int(self.beam.workers as u64)),
                    ("fanouts", Json::int(self.beam.fanouts)),
                    ("tt_hits", Json::int(self.beam.tt_hits)),
                    ("tt_misses", Json::int(self.beam.tt_misses)),
                    ("merge_wall_us", micros(self.beam.merge_wall)),
                    ("freeze_wall_us", micros(self.beam.freeze_wall)),
                    ("frozen_reused", Json::Bool(self.beam.frozen_reused)),
                ]),
            ),
            ("packs_committed", Json::int(self.packs_committed as u64)),
            ("vegen_ops", Json::Arr(self.vegen_ops.iter().map(Json::str).collect())),
            ("stage_times", self.stage_times.to_json()),
            ("wall_us", micros(self.wall)),
            (
                "verify_error",
                match &self.verify_error {
                    Some(e) => Json::str(e),
                    None => Json::Null,
                },
            ),
            (
                "decisions",
                match &self.decisions {
                    Some(d) => d.to_json(),
                    None => Json::Null,
                },
            ),
            ("analysis", self.analysis.to_json()),
        ])
    }
}

/// The static-validation block of a kernel row (since schema v4).
#[derive(Debug, Clone, Default)]
pub struct AnalysisSummary {
    /// Error-severity findings across all three passes.
    pub errors: usize,
    /// Warning-severity findings.
    pub warnings: usize,
    /// Packs the legality pass examined.
    pub packs_checked: usize,
    /// Stored lanes the provenance pass proved equal to scalar.
    pub lanes_proved: usize,
    /// Rendered diagnostics ("severity [location]: message").
    pub diagnostics: Vec<String>,
}

impl AnalysisSummary {
    /// Summarize a driver analysis report.
    pub fn from_report(a: &vegen::analysis::AnalysisReport) -> AnalysisSummary {
        AnalysisSummary {
            errors: a.error_count(),
            warnings: a.warning_count(),
            packs_checked: a.packs_checked,
            lanes_proved: a.lanes_proved,
            diagnostics: a.all().map(|d| d.to_string()).collect(),
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("errors", Json::int(self.errors as u64)),
            ("warnings", Json::int(self.warnings as u64)),
            ("packs_checked", Json::int(self.packs_checked as u64)),
            ("lanes_proved", Json::int(self.lanes_proved as u64)),
            ("diagnostics", Json::Arr(self.diagnostics.iter().map(Json::str).collect())),
        ])
    }
}

/// One pass of a batch through the engine.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Run label ("cold", "warm", …).
    pub label: String,
    /// Total batch wall time.
    pub wall: Duration,
    /// Cache hits within this run.
    pub cache_hits: usize,
    /// How many of those hits came from the disk cache (since v6).
    pub disk_hits: usize,
    /// Kernel rows, in input order.
    pub kernels: Vec<KernelReport>,
}

impl RunReport {
    /// Build a run row from a labeled batch result.
    pub fn new(label: impl Into<String>, wall: Duration, results: &[JobResult]) -> RunReport {
        RunReport {
            label: label.into(),
            wall,
            cache_hits: results.iter().filter(|r| r.cache_hit).count(),
            disk_hits: results.iter().filter(|r| r.disk_hit).count(),
            kernels: results.iter().map(KernelReport::from_result).collect(),
        }
    }

    /// Render as a JSON document (public so the suite bench can write
    /// per-run rows into `BENCH_suite.json`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::str(&self.label)),
            ("wall_us", micros(self.wall)),
            ("cache_hits", Json::int(self.cache_hits as u64)),
            ("disk_hits", Json::int(self.disk_hits as u64)),
            ("kernels_total", Json::int(self.kernels.len() as u64)),
            ("kernels", Json::Arr(self.kernels.iter().map(|k| k.to_json()).collect())),
        ])
    }
}

/// The full instrumentation report of an engine session.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Target ISA name.
    pub target: String,
    /// Beam width used.
    pub beam_width: usize,
    /// Worker threads (resolved, not the `0` sentinel).
    pub threads: usize,
    /// Intra-kernel beam-search worker threads (`0` = per-search auto;
    /// since schema v7).
    pub beam_threads: usize,
    /// Verification trials per cache entry.
    pub verify_trials: u64,
    /// Runs, in execution order.
    pub runs: Vec<RunReport>,
    /// Cache counters at report time.
    pub cache: CacheStats,
    /// On-disk cache counters (`None` when no cache directory is
    /// configured; since schema v6).
    pub disk: Option<DiskCacheStats>,
    /// Engine-lifetime pipeline counters.
    pub counters: EngineCounters,
    /// Trace-session metadata for the run.
    pub trace: TraceSummary,
    /// Structural statistics of the match table the session compiled
    /// against (since schema v9).
    pub match_table: vegen_analysis::MatchTableStats,
    /// Soak-harness summary (pre-rendered by [`crate::soak`]; `None` for
    /// plain suite runs; since schema v10).
    pub soak: Option<Json>,
}

/// Metadata about the trace session that accompanied a report (since
/// schema v3).
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Whether tracing was enabled for the session.
    pub enabled: bool,
    /// Events recorded across all threads.
    pub events: u64,
    /// Events dropped to buffer overflow.
    pub dropped: u64,
    /// Threads that recorded at least one event.
    pub threads: usize,
    /// Where the Chrome trace was written, if anywhere.
    pub file: Option<String>,
    /// Where the folded stacks were written, if anywhere.
    pub folded_file: Option<String>,
}

impl TraceSummary {
    fn to_json(&self) -> Json {
        let opt = |v: &Option<String>| v.as_ref().map_or(Json::Null, Json::str);
        Json::obj([
            ("enabled", Json::Bool(self.enabled)),
            ("events", Json::int(self.events)),
            ("dropped", Json::int(self.dropped)),
            ("threads", Json::int(self.threads as u64)),
            ("file", opt(&self.file)),
            ("folded_file", opt(&self.folded_file)),
        ])
    }
}

impl EngineReport {
    /// Render as a JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str("vegen-engine-report/v10")),
            ("target", Json::str(&self.target)),
            ("beam_width", Json::int(self.beam_width as u64)),
            ("threads", Json::int(self.threads as u64)),
            ("beam_threads", Json::int(self.beam_threads as u64)),
            ("verify_trials", Json::int(self.verify_trials)),
            ("runs", Json::Arr(self.runs.iter().map(|r| r.to_json()).collect())),
            ("cache", cache_json(&self.cache)),
            ("disk", self.disk.as_ref().map_or(Json::Null, disk_json)),
            ("counters", counters_json(&self.counters)),
            ("trace", self.trace.to_json()),
            // Since schema v8: the process-wide metrics registry
            // (latency histograms with percentiles, counters, gauges).
            ("metrics", metrics_registry_json()),
            // Since schema v9: the match table's structural statistics,
            // as audited by `vegen_analysis::speccheck`.
            (
                "match_table",
                Json::obj([
                    ("rules", Json::int(self.match_table.rules as u64)),
                    ("ops", Json::int(self.match_table.ops as u64)),
                    ("dead_rules", Json::int(self.match_table.dead_rules as u64)),
                    ("max_overlap_class", Json::int(self.match_table.max_overlap_class as u64)),
                ]),
            ),
            // Since schema v10: the soak-harness summary (generated-corpus
            // runs only; `null` for plain suite reports).
            ("soak", self.soak.clone().unwrap_or(Json::Null)),
        ])
    }
}
