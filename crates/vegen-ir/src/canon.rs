//! `instcombine`-style canonicalization.
//!
//! §6 of the paper runs LLVM's `instcombine` over each generated pattern so
//! the pattern matchers agree with the canonical form LLVM feeds the
//! vectorizer. We reproduce that arrangement with one shared canonicalizer
//! applied both to input programs (before matching) and to the IR snippets
//! the pattern generator derives from VIDL operations. The most important
//! rewrite — called out explicitly in the paper — is turning non-strict
//! comparisons against constants into strict ones (`x <= 1` becomes
//! `x < 2`), which is what makes integer-saturation patterns match.

use crate::constant::Constant;
use crate::function::{Function, ValueId};
use crate::inst::{BinOp, CastOp, CmpPred, Inst, InstKind};
use crate::interp::{eval_bin, eval_cast, eval_cmp};
use crate::types::Type;
use std::collections::HashMap;

/// Canonicalize `f`: constant-fold, apply identity simplifications,
/// order commutative operands, rewrite comparisons to strict form, CSE,
/// and drop dead pure instructions.
///
/// The result computes the same memory effects as the input (validated by
/// the crate's equivalence tests).
pub fn canonicalize(f: &Function) -> Function {
    let mut cur = f.clone();
    // Rewrites cascade within a pass (operands are remapped as we go), but
    // structural rewrites (trunc sinking, extension composition) emit their
    // new sub-instructions raw and rely on the next pass to simplify them,
    // so deep cast chains need one pass per level. Sixteen covers any
    // realistic nest with margin.
    for _ in 0..16 {
        let next = rebalance_adds(&canonicalize_once(&cur));
        if next == cur {
            break;
        }
        cur = next;
    }
    cur
}

/// Rebalance single-use `add`/`fadd` chains into adjacent-pair trees:
/// `(((a+b)+c)+d)` becomes `(a+b)+(c+d)`.
///
/// Front ends emit accumulation chains left-leaning, which hides
/// multiply-add pairs from the pattern matcher (`madd` needs
/// `add(mul, mul)` subtrees). Both kernels and generated patterns pass
/// through this, so their shapes stay aligned. `fadd` reassociation
/// matches the paper's `-ffast-math` evaluation setup.
fn rebalance_adds(f: &Function) -> Function {
    let users = f.users();
    let chain_op = |kind: &InstKind| -> Option<BinOp> {
        match kind {
            InstKind::Bin { op: op @ (BinOp::Add | BinOp::FAdd), .. } => Some(*op),
            _ => None,
        }
    };
    // A chain interior node: same opcode, exactly one use, and that use is
    // the chain above it.
    let is_interior = |v: ValueId| -> bool {
        chain_op(&f.inst(v).kind).is_some()
            && users[v.index()].len() == 1
            && chain_op(&f.inst(users[v.index()][0]).kind) == chain_op(&f.inst(v).kind)
    };
    fn flatten(
        f: &Function,
        v: ValueId,
        op: BinOp,
        is_interior: &dyn Fn(ValueId) -> bool,
        leaves: &mut Vec<ValueId>,
    ) {
        match f.inst(v).kind {
            InstKind::Bin { op: o, lhs, rhs } if o == op => {
                for side in [lhs, rhs] {
                    if is_interior(side) {
                        flatten(f, side, op, is_interior, leaves);
                    } else {
                        leaves.push(side);
                    }
                }
            }
            _ => leaves.push(v),
        }
    }
    let mut out = Function::new(f.name.clone());
    out.params = f.params.clone();
    let mut remap: Vec<ValueId> = Vec::with_capacity(f.insts.len());
    for (v, inst) in f.iter() {
        let mut inst = inst.clone();
        inst.map_operands(|o| remap[o.index()]);
        // Only rebuild at chain roots with more than 3 leaves (3-leaf
        // chains are already the balanced shape).
        let root_op = chain_op(&f.inst(v).kind).filter(|_| !is_interior(v));
        if let Some(op) = root_op {
            let mut leaves = Vec::new();
            flatten(f, v, op, &is_interior, &mut leaves);
            if leaves.len() >= 4 {
                // Pair adjacent terms (in original order) until one remains.
                let mut level: Vec<ValueId> = leaves.iter().map(|l| remap[l.index()]).collect();
                let ty = inst.ty;
                while level.len() > 1 {
                    let mut next = Vec::with_capacity(level.len().div_ceil(2));
                    let mut it = level.chunks(2);
                    for pair in &mut it {
                        next.push(match pair {
                            [a, b] => {
                                out.push(Inst { kind: InstKind::Bin { op, lhs: *a, rhs: *b }, ty })
                            }
                            [a] => *a,
                            _ => unreachable!(),
                        });
                    }
                    level = next;
                }
                remap.push(level[0]);
                continue;
            }
        }
        let nv = out.push(inst);
        remap.push(nv);
    }
    out
}

fn canonicalize_once(f: &Function) -> Function {
    let mut out = Function::new(f.name.clone());
    out.params = f.params.clone();
    // Map from old value id to new value id.
    let mut remap: Vec<ValueId> = Vec::with_capacity(f.insts.len());
    // Value numbering for CSE of pure instructions.
    let mut numbering: HashMap<Inst, ValueId> = HashMap::new();
    // Memory version per (base, offset): CSE of loads is only sound between
    // stores to the same location; bump a global store counter per base.
    let mut store_epoch: HashMap<usize, u64> = HashMap::new();

    for (_, inst) in f.iter() {
        let mut inst = inst.clone();
        inst.map_operands(|v| remap[v.index()]);
        let new_id = simplify_and_emit(&mut out, &mut numbering, &mut store_epoch, inst);
        remap.push(new_id);
    }
    dce(&out)
}

/// Emit `inst` into `out` after simplification, reusing an existing value
/// when possible. Returns the value the original instruction maps to.
fn simplify_and_emit(
    out: &mut Function,
    numbering: &mut HashMap<Inst, ValueId>,
    store_epoch: &mut HashMap<usize, u64>,
    inst: Inst,
) -> ValueId {
    // First, structural simplifications that may dissolve the instruction
    // into an existing value entirely.
    if let Some(existing) = simplify_to_value(out, &inst) {
        return existing;
    }
    // Then rewrites that produce a (possibly different) instruction.
    let inst = rewrite(out, inst);
    if let Some(existing) = simplify_to_value(out, &inst) {
        return existing;
    }

    match inst.kind {
        InstKind::Store { loc, .. } => {
            *store_epoch.entry(loc.base).or_insert(0) += 1;
            out.push(inst)
        }
        InstKind::Load { loc } => {
            // Key loads by their memory epoch so CSE cannot cross a store.
            let epoch = *store_epoch.get(&loc.base).unwrap_or(&0);
            let key = Inst {
                kind: InstKind::Const(Constant::int(
                    Type::I64,
                    // Synthetic key: (base, offset, epoch) folded into bits.
                    ((loc.base as i64) << 48) ^ (loc.offset << 16) ^ epoch as i64,
                )),
                ty: inst.ty,
            };
            if let Some(&v) = numbering.get(&key) {
                return v;
            }
            let v = out.push(inst);
            numbering.insert(key, v);
            v
        }
        _ => {
            if let Some(&v) = numbering.get(&inst) {
                return v;
            }
            let v = out.push(inst.clone());
            numbering.insert(inst, v);
            v
        }
    }
}

/// Try to resolve `inst` to an already-available value (constant folding and
/// identity rules). Returns the value to use instead, if any.
fn simplify_to_value(out: &mut Function, inst: &Inst) -> Option<ValueId> {
    let const_of = |out: &Function, v: ValueId| -> Option<Constant> {
        match out.inst(v).kind {
            InstKind::Const(c) => Some(c),
            _ => None,
        }
    };
    match &inst.kind {
        InstKind::Bin { op, lhs, rhs } => {
            let lc = const_of(out, *lhs);
            let rc = const_of(out, *rhs);
            // Full constant folding.
            if let (Some(a), Some(b)) = (lc, rc) {
                if let Ok(c) = eval_bin(*op, a, b) {
                    return Some(push_const(out, c));
                }
            }
            // Integer identities (float identities are unsafe under NaN).
            if let Some(b) = rc {
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Or | BinOp::Xor if b.is_zero() => {
                        return Some(*lhs)
                    }
                    BinOp::Shl | BinOp::LShr | BinOp::AShr if b.is_zero() => return Some(*lhs),
                    BinOp::Mul if b.is_one() => return Some(*lhs),
                    BinOp::Mul if b.is_zero() => {
                        return Some(push_const(out, Constant::zero(inst.ty)))
                    }
                    BinOp::And if b.is_all_ones() => return Some(*lhs),
                    BinOp::And if b.is_zero() => {
                        return Some(push_const(out, Constant::zero(inst.ty)))
                    }
                    _ => {}
                }
            }
            // x - x = 0, x ^ x = 0 for integers.
            if lhs == rhs && inst.ty.is_int() {
                match op {
                    BinOp::Sub | BinOp::Xor => {
                        return Some(push_const(out, Constant::zero(inst.ty)))
                    }
                    BinOp::And | BinOp::Or => return Some(*lhs),
                    _ => {}
                }
            }
            None
        }
        InstKind::Cast { op, arg } => {
            if let Some(c) = const_of(out, *arg) {
                return Some(push_const(out, eval_cast(*op, c, inst.ty)));
            }
            if *op == CastOp::Trunc {
                if let InstKind::Cast { op: inner_op @ (CastOp::SExt | CastOp::ZExt), arg: src } =
                    out.inst(*arg).kind
                {
                    let src_ty = out.ty(src);
                    // trunc(ext(x)) where the widths return to the source is
                    // the source itself.
                    if inst.ty == src_ty {
                        return Some(src);
                    }
                    // Still wider than the source: a narrower extension.
                    if inst.ty.bits() > src_ty.bits() {
                        let v = out.push(Inst {
                            kind: InstKind::Cast { op: inner_op, arg: src },
                            ty: inst.ty,
                        });
                        return Some(v);
                    }
                    // Narrower than the source: truncate the source directly.
                    let v = out.push(Inst {
                        kind: InstKind::Cast { op: CastOp::Trunc, arg: src },
                        ty: inst.ty,
                    });
                    return Some(v);
                }
                // Sink trunc through width-local binops and selects so
                // narrow computations expressed widely (C integer promotion)
                // converge with patterns written at the narrow width.
                match out.inst(*arg).kind.clone() {
                    InstKind::Bin {
                        op:
                            bop @ (BinOp::Add
                            | BinOp::Sub
                            | BinOp::Mul
                            | BinOp::And
                            | BinOp::Or
                            | BinOp::Xor),
                        lhs,
                        rhs,
                    } => {
                        let l = out.push(Inst {
                            kind: InstKind::Cast { op: CastOp::Trunc, arg: lhs },
                            ty: inst.ty,
                        });
                        let r = out.push(Inst {
                            kind: InstKind::Cast { op: CastOp::Trunc, arg: rhs },
                            ty: inst.ty,
                        });
                        let v = out.push(Inst {
                            kind: InstKind::Bin { op: bop, lhs: l, rhs: r },
                            ty: inst.ty,
                        });
                        return Some(v);
                    }
                    InstKind::Select { cond, on_true, on_false } => {
                        let t = out.push(Inst {
                            kind: InstKind::Cast { op: CastOp::Trunc, arg: on_true },
                            ty: inst.ty,
                        });
                        let e = out.push(Inst {
                            kind: InstKind::Cast { op: CastOp::Trunc, arg: on_false },
                            ty: inst.ty,
                        });
                        let v = out.push(Inst {
                            kind: InstKind::Select { cond, on_true: t, on_false: e },
                            ty: inst.ty,
                        });
                        return Some(v);
                    }
                    _ => {}
                }
            }
            // ext(ext(x)) composes; sext of a zext is a zext.
            if let (
                ext_op @ (CastOp::SExt | CastOp::ZExt),
                InstKind::Cast { op: inner @ (CastOp::SExt | CastOp::ZExt), arg: src },
            ) = (*op, out.inst(*arg).kind.clone())
            {
                let combined = match (ext_op, inner) {
                    (_, CastOp::ZExt) => CastOp::ZExt,
                    (CastOp::ZExt, CastOp::SExt) => return None, // zext(sext) does not compose
                    _ => CastOp::SExt,
                };
                let v =
                    out.push(Inst { kind: InstKind::Cast { op: combined, arg: src }, ty: inst.ty });
                return Some(v);
            }
            None
        }
        InstKind::FNeg { arg } => {
            if let InstKind::FNeg { arg: inner } = out.inst(*arg).kind {
                return Some(inner);
            }
            None
        }
        InstKind::Cmp { pred, lhs, rhs } => {
            if let (Some(a), Some(b)) = (const_of(out, *lhs), const_of(out, *rhs)) {
                return Some(push_const(out, eval_cmp(*pred, a, b)));
            }
            None
        }
        InstKind::Select { cond, on_true, on_false } => {
            if on_true == on_false {
                return Some(*on_true);
            }
            if let Some(c) = const_of(out, *cond) {
                return Some(if c.as_bool() { *on_true } else { *on_false });
            }
            None
        }
        _ => None,
    }
}

/// Rewrites that keep an instruction but in canonical shape.
fn rewrite(out: &mut Function, mut inst: Inst) -> Inst {
    let is_const = |out: &Function, v: ValueId| matches!(out.inst(v).kind, InstKind::Const(_));
    match &mut inst.kind {
        InstKind::Bin { op, lhs, rhs } if op.is_commutative() && should_swap(out, *lhs, *rhs) => {
            std::mem::swap(lhs, rhs);
        }
        InstKind::Cmp { pred, lhs, rhs } => {
            // Constant to the right.
            if is_const(out, *lhs) && !is_const(out, *rhs) {
                std::mem::swap(lhs, rhs);
                *pred = pred.swapped();
            }
            // Narrow comparisons of matching extensions: LLVM's
            // `icmp (zext a), (zext b)` -> `icmp.unsigned a, b` and the
            // sext analogue (both orders are preserved by extension).
            if let (
                InstKind::Cast { op: lop @ (CastOp::SExt | CastOp::ZExt), arg: la },
                InstKind::Cast { op: rop, arg: ra },
            ) = (out.inst(*lhs).kind.clone(), out.inst(*rhs).kind.clone())
            {
                if lop == rop && out.ty(la) == out.ty(ra) && !pred.is_float() {
                    let narrowed = match (lop, *pred) {
                        // Equality is extension-agnostic.
                        (_, CmpPred::Eq) | (_, CmpPred::Ne) => Some(*pred),
                        // zext turns signed predicates unsigned.
                        (CastOp::ZExt, CmpPred::Slt) => Some(CmpPred::Ult),
                        (CastOp::ZExt, CmpPred::Sle) => Some(CmpPred::Ule),
                        (CastOp::ZExt, CmpPred::Sgt) => Some(CmpPred::Ugt),
                        (CastOp::ZExt, CmpPred::Sge) => Some(CmpPred::Uge),
                        (CastOp::ZExt, p) => Some(p), // unsigned stays
                        // sext preserves both signed and unsigned order.
                        (CastOp::SExt, p) => Some(p),
                        _ => None,
                    };
                    if let Some(np) = narrowed {
                        *pred = np;
                        *lhs = la;
                        *rhs = ra;
                    }
                }
            }
            // Narrow `cmp (ext x), C` when C is representable at x's width.
            if let (
                InstKind::Cast { op: lop @ (CastOp::SExt | CastOp::ZExt), arg: la },
                InstKind::Const(c),
            ) = (out.inst(*lhs).kind.clone(), out.inst(*rhs).kind.clone())
            {
                if !pred.is_float() {
                    let nty = out.ty(la);
                    let bits = nty.bits();
                    let fits = match lop {
                        CastOp::SExt => {
                            let smax =
                                crate::constant::sext(crate::constant::mask(bits) >> 1, bits);
                            c.as_i64() <= smax && c.as_i64() >= -smax - 1
                        }
                        _ => c.as_u64() <= crate::constant::mask(bits),
                    };
                    // Narrowing is order-preserving for both extension
                    // kinds once the constant is representable: zext turns
                    // signed predicates unsigned below; sext images keep
                    // both signed and unsigned order.
                    if fits {
                        let np = if lop == CastOp::ZExt {
                            match *pred {
                                CmpPred::Slt => CmpPred::Ult,
                                CmpPred::Sle => CmpPred::Ule,
                                CmpPred::Sgt => CmpPred::Ugt,
                                CmpPred::Sge => CmpPred::Uge,
                                p => p,
                            }
                        } else {
                            *pred
                        };
                        let nc = if lop == CastOp::ZExt {
                            Constant::int(nty, c.as_u64() as i64)
                        } else {
                            Constant::int(nty, c.as_i64())
                        };
                        *pred = np;
                        *lhs = la;
                        *rhs = push_const(out, nc);
                    }
                }
            }
            // Non-strict against a constant becomes strict (the rewrite the
            // paper singles out as crucial for saturation patterns).
            if let InstKind::Const(c) = out.inst(*rhs).kind {
                if c.ty().is_int() {
                    let bits = c.ty().bits();
                    let smax = crate::constant::sext(crate::constant::mask(bits) >> 1, bits);
                    let smin = -smax - 1;
                    let umax = crate::constant::mask(bits);
                    let replace =
                        |out: &mut Function, v: i64| push_const_ret(out, Constant::int(c.ty(), v));
                    match *pred {
                        CmpPred::Sle if c.as_i64() < smax => {
                            *pred = CmpPred::Slt;
                            *rhs = replace(out, c.as_i64() + 1);
                        }
                        CmpPred::Sge if c.as_i64() > smin => {
                            *pred = CmpPred::Sgt;
                            *rhs = replace(out, c.as_i64() - 1);
                        }
                        CmpPred::Ule if c.as_u64() < umax => {
                            *pred = CmpPred::Ult;
                            *rhs = replace(out, (c.as_u64() + 1) as i64);
                        }
                        CmpPred::Uge if c.as_u64() > 0 => {
                            *pred = CmpPred::Ugt;
                            *rhs = replace(out, (c.as_u64() - 1) as i64);
                        }
                        _ => {}
                    }
                }
            }
        }
        _ => {}
    }
    inst
}

/// Commutative operand order: constants last; otherwise higher "complexity"
/// first (LLVM's convention), with value id as the tiebreak.
fn should_swap(out: &Function, lhs: ValueId, rhs: ValueId) -> bool {
    let rank = |v: ValueId| -> (u8, u32) {
        let r = match out.inst(v).kind {
            InstKind::Const(_) => 0u8,
            InstKind::Load { .. } => 1,
            InstKind::Cast { .. } => 2,
            _ => 3,
        };
        (r, v.index() as u32)
    };
    rank(lhs) < rank(rhs)
}

fn push_const(out: &mut Function, c: Constant) -> ValueId {
    out.push(Inst { kind: InstKind::Const(c), ty: c.ty() })
}

fn push_const_ret(out: &mut Function, c: Constant) -> ValueId {
    push_const(out, c)
}

/// Append narrowed twins of every integer constant (e.g. `83_i16` next to
/// `83_i32`).
///
/// Vector-instruction patterns frequently read an extended operand
/// (`sext_i32(x: i16)`); in the scalar program the corresponding position
/// often holds a *wide constant* (the front end folds `sext i16 83` to
/// `i32 83`). The matcher can bind such a pattern parameter to the
/// narrowed constant — provided a narrow constant instruction exists to
/// bind to. This pass materializes them; they are pure, unused, and cost
/// nothing unless a selected pack's operand references them (in which case
/// they fold into a constant vector).
pub fn add_narrow_constants(f: &Function) -> Function {
    let mut out = f.clone();
    // Collect in program order: iterating the HashSet directly would append
    // the twins in RandomState order, making the canonical form (and hence
    // content-addressed cache keys) differ from run to run.
    let mut existing: std::collections::HashSet<Constant> = std::collections::HashSet::new();
    let mut wide: Vec<Constant> = Vec::new();
    for i in &f.insts {
        if let InstKind::Const(c) = i.kind {
            if existing.insert(c) {
                wide.push(c);
            }
        }
    }
    for c in wide {
        if !c.ty().is_int() {
            continue;
        }
        for bits in [8u32, 16, 32] {
            if bits >= c.ty().bits() {
                continue;
            }
            let nty = Type::int_with_bits(bits).unwrap();
            let smax = crate::constant::sext(crate::constant::mask(bits) >> 1, bits);
            // Signed-narrowing twin (for sext-parameter bindings).
            if c.as_i64() <= smax && c.as_i64() >= -smax - 1 {
                let n = Constant::int(nty, c.as_i64());
                if existing.insert(n) {
                    out.push(Inst { kind: InstKind::Const(n), ty: nty });
                }
            }
            // Unsigned-narrowing twin (for zext-parameter bindings).
            if c.as_u64() <= crate::constant::mask(bits) {
                let n = Constant::int(nty, c.as_u64() as i64);
                if existing.insert(n) {
                    out.push(Inst { kind: InstKind::Const(n), ty: nty });
                }
            }
        }
    }
    out
}

/// Drop pure instructions with no (transitive) store users.
fn dce(f: &Function) -> Function {
    let n = f.insts.len();
    let mut live = vec![false; n];
    let mut stack: Vec<ValueId> = Vec::new();
    for (v, inst) in f.iter() {
        if !inst.is_pure() {
            live[v.index()] = true;
            stack.push(v);
        }
    }
    while let Some(v) = stack.pop() {
        for op in f.inst(v).operands() {
            if !live[op.index()] {
                live[op.index()] = true;
                stack.push(op);
            }
        }
    }
    // Loads have no side effects here (no volatile), so dead loads go too.
    let mut out = Function::new(f.name.clone());
    out.params = f.params.clone();
    let mut remap: HashMap<ValueId, ValueId> = HashMap::new();
    for (v, inst) in f.iter() {
        if live[v.index()] {
            let mut inst = inst.clone();
            inst.map_operands(|o| remap[&o]);
            let nv = out.push(inst);
            remap.insert(v, nv);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::interp::{random_memory, run};

    fn equivalent(before: &Function, after: &Function) {
        for seed in 0..16 {
            let mut m1 = random_memory(before, seed);
            let mut m2 = m1.clone();
            run(before, &mut m1).unwrap();
            run(after, &mut m2).unwrap();
            assert_eq!(m1, m2, "canonicalization changed behaviour (seed {seed})");
        }
    }

    #[test]
    fn folds_constants() {
        let mut b = FunctionBuilder::new("t");
        let p = b.param("A", Type::I32, 1);
        let c1 = b.iconst(Type::I32, 2);
        let c2 = b.iconst(Type::I32, 3);
        let s = b.add(c1, c2);
        let x = b.load(p, 0);
        let y = b.add(x, s);
        b.store(p, 0, y);
        let f = b.finish();
        let g = canonicalize(&f);
        equivalent(&f, &g);
        // 2+3 should have become the constant 5.
        assert!(g.insts.iter().any(|i| matches!(i.kind, InstKind::Const(c) if c.as_i64() == 5)));
        assert!(!g.insts.iter().any(|i| matches!(i.kind, InstKind::Const(c) if c.as_i64() == 2)));
    }

    #[test]
    fn removes_identity_ops() {
        let mut b = FunctionBuilder::new("t");
        let p = b.param("A", Type::I32, 1);
        let x = b.load(p, 0);
        let z = b.iconst(Type::I32, 0);
        let y = b.add(x, z);
        let one = b.iconst(Type::I32, 1);
        let w = b.mul(y, one);
        b.store(p, 0, w);
        let f = b.finish();
        let g = canonicalize(&f);
        equivalent(&f, &g);
        assert_eq!(g.insts.len(), 2, "only load and store remain: {g}");
    }

    #[test]
    fn cse_merges_duplicates() {
        let mut b = FunctionBuilder::new("t");
        let p = b.param("A", Type::I32, 3);
        let x = b.load(p, 0);
        let y = b.load(p, 1);
        let s1 = b.add(x, y);
        let s2 = b.add(x, y);
        let m = b.mul(s1, s2);
        b.store(p, 2, m);
        let f = b.finish();
        let g = canonicalize(&f);
        equivalent(&f, &g);
        let adds = g
            .insts
            .iter()
            .filter(|i| matches!(i.kind, InstKind::Bin { op: BinOp::Add, .. }))
            .count();
        assert_eq!(adds, 1);
    }

    #[test]
    fn load_cse_does_not_cross_store() {
        let mut b = FunctionBuilder::new("t");
        let p = b.param("A", Type::I32, 2);
        let x1 = b.load(p, 0);
        let c = b.iconst(Type::I32, 9);
        b.store(p, 0, c);
        let x2 = b.load(p, 0); // must reload
        let s = b.add(x1, x2);
        b.store(p, 1, s);
        let f = b.finish();
        let g = canonicalize(&f);
        equivalent(&f, &g);
        let loads = g.insts.iter().filter(|i| matches!(i.kind, InstKind::Load { .. })).count();
        assert_eq!(loads, 2);
    }

    #[test]
    fn loads_cse_within_epoch() {
        let mut b = FunctionBuilder::new("t");
        let p = b.param("A", Type::I32, 2);
        let x1 = b.load(p, 0);
        let x2 = b.load(p, 0);
        let s = b.add(x1, x2);
        b.store(p, 1, s);
        let f = b.finish();
        let g = canonicalize(&f);
        equivalent(&f, &g);
        let loads = g.insts.iter().filter(|i| matches!(i.kind, InstKind::Load { .. })).count();
        assert_eq!(loads, 1);
    }

    #[test]
    fn strict_inequality_rewrite() {
        // x <= 1  becomes  x < 2 (the example from §6 of the paper).
        let mut b = FunctionBuilder::new("t");
        let p = b.param("A", Type::I32, 2);
        let x = b.load(p, 0);
        let one = b.iconst(Type::I32, 1);
        let c = b.cmp(CmpPred::Sle, x, one);
        let z = b.iconst(Type::I32, 0);
        let sel = b.select(c, x, z);
        b.store(p, 1, sel);
        let f = b.finish();
        let g = canonicalize(&f);
        equivalent(&f, &g);
        let cmp = g
            .insts
            .iter()
            .find_map(|i| match i.kind {
                InstKind::Cmp { pred, rhs, .. } => Some((pred, rhs)),
                _ => None,
            })
            .unwrap();
        assert_eq!(cmp.0, CmpPred::Slt);
        assert_eq!(g.inst(cmp.1).kind, InstKind::Const(Constant::int(Type::I32, 2)));
    }

    #[test]
    fn strict_rewrite_respects_overflow_boundary() {
        // x sle INT32_MAX must NOT become x slt INT32_MAX+1.
        let mut b = FunctionBuilder::new("t");
        let p = b.param("A", Type::I32, 2);
        let x = b.load(p, 0);
        let m = b.iconst(Type::I32, i32::MAX as i64);
        let c = b.cmp(CmpPred::Sle, x, m);
        let z = b.iconst(Type::I32, 0);
        let sel = b.select(c, x, z);
        b.store(p, 1, sel);
        let f = b.finish();
        let g = canonicalize(&f);
        equivalent(&f, &g);
    }

    #[test]
    fn constant_moves_to_rhs_of_cmp() {
        let mut b = FunctionBuilder::new("t");
        let p = b.param("A", Type::I32, 2);
        let x = b.load(p, 0);
        let k = b.iconst(Type::I32, 4);
        let c = b.cmp(CmpPred::Slt, k, x); // 4 < x  =>  x > 4  =>  x sgt 4
        let z = b.iconst(Type::I32, 0);
        let sel = b.select(c, x, z);
        b.store(p, 1, sel);
        let f = b.finish();
        let g = canonicalize(&f);
        equivalent(&f, &g);
        let found = g.insts.iter().any(|i| {
            matches!(i.kind, InstKind::Cmp { pred: CmpPred::Sgt, rhs, .. }
                if matches!(g.inst(rhs).kind, InstKind::Const(_)))
        });
        assert!(found, "{g}");
    }

    #[test]
    fn commutative_order_is_canonical() {
        // add(const, x) and add(x, const) should land in the same form.
        let build = |flip: bool| {
            let mut b = FunctionBuilder::new("t");
            let p = b.param("A", Type::I32, 2);
            let x = b.load(p, 0);
            let k = b.iconst(Type::I32, 3);
            let s = if flip { b.add(k, x) } else { b.add(x, k) };
            b.store(p, 1, s);
            b.finish()
        };
        let g1 = canonicalize(&build(false));
        let g2 = canonicalize(&build(true));
        assert_eq!(g1.insts, g2.insts);
    }

    #[test]
    fn dce_drops_dead_code() {
        let mut b = FunctionBuilder::new("t");
        let p = b.param("A", Type::I32, 2);
        let x = b.load(p, 0);
        let _dead = b.mul(x, x);
        b.store(p, 1, x);
        let f = b.finish();
        let g = canonicalize(&f);
        assert_eq!(g.insts.len(), 2);
    }

    #[test]
    fn trunc_of_ext_returns_source() {
        let mut b = FunctionBuilder::new("t");
        let p = b.param("A", Type::I16, 2);
        let x = b.load(p, 0);
        let w = b.sext(x, Type::I32);
        let n = b.trunc(w, Type::I16);
        b.store(p, 1, n);
        let f = b.finish();
        let g = canonicalize(&f);
        equivalent(&f, &g);
        assert_eq!(g.insts.len(), 2, "{g}");
    }

    #[test]
    fn trunc_sinks_through_binop() {
        // trunc16(mul32(sext32 x, sext32 y)) => mul16(x, y): the pmullw
        // pattern convergence.
        let mut b = FunctionBuilder::new("t");
        let p = b.param("A", Type::I16, 3);
        let x = b.load(p, 0);
        let y = b.load(p, 1);
        let xw = b.sext(x, Type::I32);
        let yw = b.sext(y, Type::I32);
        let m = b.mul(xw, yw);
        let n = b.trunc(m, Type::I16);
        b.store(p, 2, n);
        let f = b.finish();
        let g = canonicalize(&f);
        equivalent(&f, &g);
        assert!(
            g.insts.iter().any(|i| matches!(i.kind,
                InstKind::Bin { op: BinOp::Mul, .. } if i.ty == Type::I16)),
            "expected a narrow multiply: {g}"
        );
        assert!(
            !g.insts.iter().any(|i| matches!(i.kind, InstKind::Cast { .. })),
            "all casts should fold away: {g}"
        );
    }

    #[test]
    fn trunc_sinks_into_select() {
        let mut b = FunctionBuilder::new("t");
        let p = b.param("A", Type::I32, 2);
        let q = b.param("O", Type::I16, 1);
        let x = b.load(p, 0);
        let c = b.clamp(x, -32768, 32767);
        let n = b.trunc(c, Type::I16);
        b.store(q, 0, n);
        let f = b.finish();
        let g = canonicalize(&f);
        equivalent(&f, &g);
        // The outermost value stored is now a select over i16 values.
        let InstKind::Store { value, .. } = g.insts.last().unwrap().kind else { panic!() };
        assert!(matches!(g.inst(value).kind, InstKind::Select { .. }), "{g}");
        assert_eq!(g.ty(value), Type::I16);
    }

    #[test]
    fn cmp_of_zexts_narrows_to_unsigned() {
        let mut b = FunctionBuilder::new("t");
        let p = b.param("A", Type::I8, 3);
        let x = b.load(p, 0);
        let y = b.load(p, 1);
        let xw = b.zext(x, Type::I32);
        let yw = b.zext(y, Type::I32);
        let c = b.cmp(CmpPred::Slt, xw, yw);
        let sel = b.select(c, x, y);
        b.store(p, 2, sel);
        let f = b.finish();
        let g = canonicalize(&f);
        equivalent(&f, &g);
        assert!(
            g.insts.iter().any(|i| matches!(i.kind,
                InstKind::Cmp { pred: CmpPred::Ult, lhs, .. } if g.ty(lhs) == Type::I8)),
            "{g}"
        );
    }

    #[test]
    fn cmp_of_sexts_narrows_signed() {
        let mut b = FunctionBuilder::new("t");
        let p = b.param("A", Type::I16, 3);
        let x = b.load(p, 0);
        let y = b.load(p, 1);
        let xw = b.sext(x, Type::I32);
        let yw = b.sext(y, Type::I32);
        let c = b.cmp(CmpPred::Sgt, xw, yw);
        let sel = b.select(c, x, y);
        b.store(p, 2, sel);
        let f = b.finish();
        let g = canonicalize(&f);
        equivalent(&f, &g);
        assert!(
            g.insts.iter().any(|i| matches!(i.kind,
                InstKind::Cmp { pred: CmpPred::Sgt, lhs, .. } if g.ty(lhs) == Type::I16)),
            "{g}"
        );
    }

    #[test]
    fn cmp_ext_vs_constant_narrows_when_it_fits() {
        let mut b = FunctionBuilder::new("t");
        let p = b.param("A", Type::I8, 2);
        let x = b.load(p, 0);
        let xw = b.zext(x, Type::I32);
        let k = b.iconst(Type::I32, 200);
        let c = b.cmp(CmpPred::Slt, xw, k);
        let z = b.iconst(Type::I8, 0);
        let sel = b.select(c, x, z);
        b.store(p, 1, sel);
        let f = b.finish();
        let g = canonicalize(&f);
        equivalent(&f, &g);
        assert!(
            g.insts.iter().any(|i| matches!(i.kind,
                InstKind::Cmp { pred: CmpPred::Ult, lhs, .. } if g.ty(lhs) == Type::I8)),
            "{g}"
        );
    }

    #[test]
    fn ext_of_ext_composes() {
        let mut b = FunctionBuilder::new("t");
        let p = b.param("A", Type::I8, 1);
        let q = b.param("O", Type::I64, 1);
        let x = b.load(p, 0);
        let w1 = b.zext(x, Type::I16);
        let w2 = b.sext(w1, Type::I64); // sext(zext) == zext
        b.store(q, 0, w2);
        let f = b.finish();
        let g = canonicalize(&f);
        equivalent(&f, &g);
        let casts: Vec<_> = g
            .insts
            .iter()
            .filter_map(|i| match i.kind {
                InstKind::Cast { op, .. } => Some(op),
                _ => None,
            })
            .collect();
        assert_eq!(casts, vec![CastOp::ZExt], "{g}");
    }

    #[test]
    fn x_minus_x_folds_to_zero() {
        let mut b = FunctionBuilder::new("t");
        let p = b.param("A", Type::I32, 2);
        let x = b.load(p, 0);
        let d = b.sub(x, x);
        b.store(p, 1, d);
        let f = b.finish();
        let g = canonicalize(&f);
        equivalent(&f, &g);
        assert!(g.insts.iter().any(|i| matches!(i.kind, InstKind::Const(c) if c.is_zero())));
    }
}
