//! Typed constants and the scalar arithmetic used by the interpreter.

use crate::types::Type;
use std::fmt;

/// A typed scalar constant.
///
/// Integers are stored zero-extended in `bits` (only the low `ty.bits()`
/// bits are significant); floats are stored as their IEEE bit patterns. This
/// representation makes `Eq`/`Hash` structural (NaNs compare by payload),
/// which is what the canonicalizer and match table need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Constant {
    ty: Type,
    bits: u64,
}

impl Constant {
    /// Build an integer constant of type `ty` from a signed value, wrapping
    /// to the type's width.
    ///
    /// # Panics
    ///
    /// Panics if `ty` is not an integer type.
    pub fn int(ty: Type, v: i64) -> Constant {
        assert!(ty.is_int(), "Constant::int requires an integer type, got {ty}");
        Constant { ty, bits: (v as u64) & mask(ty.bits()) }
    }

    /// Build a boolean (`i1`) constant.
    pub fn bool(v: bool) -> Constant {
        Constant { ty: Type::I1, bits: v as u64 }
    }

    /// Build an `f32` constant.
    pub fn f32(v: f32) -> Constant {
        Constant { ty: Type::F32, bits: v.to_bits() as u64 }
    }

    /// Build an `f64` constant.
    pub fn f64(v: f64) -> Constant {
        Constant { ty: Type::F64, bits: v.to_bits() }
    }

    /// Build a zero of any non-void type.
    pub fn zero(ty: Type) -> Constant {
        match ty {
            Type::F32 => Constant::f32(0.0),
            Type::F64 => Constant::f64(0.0),
            Type::Void => panic!("no zero of type void"),
            _ => Constant::int(ty, 0),
        }
    }

    /// The constant's type.
    pub fn ty(self) -> Type {
        self.ty
    }

    /// Raw bit pattern, zero-extended to 64 bits.
    pub fn raw_bits(self) -> u64 {
        self.bits
    }

    /// Value as a sign-extended `i64`.
    ///
    /// # Panics
    ///
    /// Panics if the type is not an integer type.
    pub fn as_i64(self) -> i64 {
        assert!(self.ty.is_int());
        sext(self.bits, self.ty.bits())
    }

    /// Value as a zero-extended `u64`.
    ///
    /// # Panics
    ///
    /// Panics if the type is not an integer type.
    pub fn as_u64(self) -> u64 {
        assert!(self.ty.is_int());
        self.bits & mask(self.ty.bits())
    }

    /// Value as `f32`.
    ///
    /// # Panics
    ///
    /// Panics if the type is not `F32`.
    pub fn as_f32(self) -> f32 {
        assert_eq!(self.ty, Type::F32);
        f32::from_bits(self.bits as u32)
    }

    /// Value as `f64`.
    ///
    /// # Panics
    ///
    /// Panics if the type is not `F64`.
    pub fn as_f64(self) -> f64 {
        assert_eq!(self.ty, Type::F64);
        f64::from_bits(self.bits)
    }

    /// Value as a boolean.
    ///
    /// # Panics
    ///
    /// Panics if the type is not `I1`.
    pub fn as_bool(self) -> bool {
        assert_eq!(self.ty, Type::I1);
        self.bits != 0
    }

    /// True if this is an integer zero / false / +0.0 of its type.
    pub fn is_zero(self) -> bool {
        self.bits == 0
    }

    /// True if this is the integer one of its type.
    pub fn is_one(self) -> bool {
        self.ty.is_int() && self.bits == 1
    }

    /// True if every significant bit is set (i.e. the integer -1).
    pub fn is_all_ones(self) -> bool {
        self.ty.is_int() && self.bits == mask(self.ty.bits())
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.ty {
            Type::F32 => write!(f, "{:?}f32", self.as_f32()),
            Type::F64 => write!(f, "{:?}f64", self.as_f64()),
            Type::I1 => write!(f, "{}", self.as_bool()),
            Type::Void => write!(f, "void"),
            _ => write!(f, "{}_{}", self.as_i64(), self.ty),
        }
    }
}

/// Bit mask with the low `bits` bits set.
pub fn mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Sign-extend the low `bits` bits of `v` to an `i64`.
pub fn sext(v: u64, bits: u32) -> i64 {
    if bits == 0 {
        return 0;
    }
    if bits >= 64 {
        return v as i64;
    }
    let shift = 64 - bits;
    (((v & mask(bits)) << shift) as i64) >> shift
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrip_wraps() {
        let c = Constant::int(Type::I8, -1);
        assert_eq!(c.as_i64(), -1);
        assert_eq!(c.as_u64(), 0xff);
        let c = Constant::int(Type::I8, 300);
        assert_eq!(c.as_i64(), 44); // 300 mod 256
    }

    #[test]
    fn i64_extremes() {
        let c = Constant::int(Type::I64, i64::MIN);
        assert_eq!(c.as_i64(), i64::MIN);
        let c = Constant::int(Type::I64, -1);
        assert_eq!(c.as_u64(), u64::MAX);
    }

    #[test]
    fn float_bits_roundtrip() {
        let c = Constant::f32(-1.5);
        assert_eq!(c.as_f32(), -1.5);
        let c = Constant::f64(f64::NAN);
        assert!(c.as_f64().is_nan());
    }

    #[test]
    fn nan_is_structurally_equal() {
        assert_eq!(Constant::f64(f64::NAN), Constant::f64(f64::NAN));
    }

    #[test]
    fn zero_one_allones() {
        assert!(Constant::zero(Type::I32).is_zero());
        assert!(Constant::zero(Type::F64).is_zero());
        assert!(Constant::int(Type::I16, 1).is_one());
        assert!(Constant::int(Type::I16, -1).is_all_ones());
        assert!(!Constant::int(Type::I16, 0x7fff).is_all_ones());
    }

    #[test]
    fn sext_helper() {
        assert_eq!(sext(0xff, 8), -1);
        assert_eq!(sext(0x7f, 8), 127);
        assert_eq!(sext(0x8000, 16), -32768);
        assert_eq!(sext(1, 1), -1);
        assert_eq!(sext(u64::MAX, 64), -1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Constant::int(Type::I32, -5).to_string(), "-5_i32");
        assert_eq!(Constant::bool(true).to_string(), "true");
    }

    #[test]
    #[should_panic]
    fn int_of_float_type_panics() {
        let _ = Constant::int(Type::F32, 3);
    }
}
