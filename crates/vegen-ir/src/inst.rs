//! Instructions.

use crate::constant::Constant;
use crate::function::ValueId;
use crate::types::Type;
use std::fmt;

/// Binary opcodes.
///
/// Integer arithmetic wraps (like LLVM without `nsw`/`nuw`); shifts with an
/// out-of-range amount produce 0 (a deliberate total semantics so random
/// testing never hits UB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // variant and field names are the documentation
pub enum BinOp {
    Add,
    Sub,
    Mul,
    SDiv,
    UDiv,
    SRem,
    URem,
    And,
    Or,
    Xor,
    Shl,
    LShr,
    AShr,
    FAdd,
    FSub,
    FMul,
    FDiv,
}

impl BinOp {
    /// True if `op(a, b) == op(b, a)`.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::FAdd
                | BinOp::FMul
        )
    }

    /// True for the floating-point opcodes.
    pub fn is_float(self) -> bool {
        matches!(self, BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv)
    }

    /// Mnemonic used by the printer.
    pub fn name(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::SDiv => "sdiv",
            BinOp::UDiv => "udiv",
            BinOp::SRem => "srem",
            BinOp::URem => "urem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
        }
    }
}

/// Cast opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CastOp {
    /// Sign-extend to a wider integer type.
    SExt,
    /// Zero-extend to a wider integer type.
    ZExt,
    /// Truncate to a narrower integer type.
    Trunc,
    /// `f32` to `f64`.
    FPExt,
    /// `f64` to `f32`.
    FPTrunc,
    /// Signed integer to float.
    SIToFP,
    /// Unsigned integer to float.
    UIToFP,
    /// Float to signed integer (saturating toward the LLVM `fptosi` poison
    /// case being defined as clamping here, again for total semantics).
    FPToSI,
}

impl CastOp {
    /// Mnemonic used by the printer.
    pub fn name(self) -> &'static str {
        match self {
            CastOp::SExt => "sext",
            CastOp::ZExt => "zext",
            CastOp::Trunc => "trunc",
            CastOp::FPExt => "fpext",
            CastOp::FPTrunc => "fptrunc",
            CastOp::SIToFP => "sitofp",
            CastOp::UIToFP => "uitofp",
            CastOp::FPToSI => "fptosi",
        }
    }
}

/// Comparison predicates (integer signed/unsigned and ordered float).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // variant and field names are the documentation
pub enum CmpPred {
    Eq,
    Ne,
    Slt,
    Sle,
    Sgt,
    Sge,
    Ult,
    Ule,
    Ugt,
    Uge,
    Feq,
    Fne,
    Flt,
    Fle,
    Fgt,
    Fge,
}

impl CmpPred {
    /// The predicate with operands swapped: `a pred b == b swap(pred) a`.
    pub fn swapped(self) -> CmpPred {
        use CmpPred::*;
        match self {
            Eq => Eq,
            Ne => Ne,
            Slt => Sgt,
            Sle => Sge,
            Sgt => Slt,
            Sge => Sle,
            Ult => Ugt,
            Ule => Uge,
            Ugt => Ult,
            Uge => Ule,
            Feq => Feq,
            Fne => Fne,
            Flt => Fgt,
            Fle => Fge,
            Fgt => Flt,
            Fge => Fle,
        }
    }

    /// The logical negation: `!(a pred b) == a inverse(pred) b`.
    ///
    /// For the ordered float predicates this is only exact in the absence of
    /// NaNs; the canonicalizer uses it only where the paper's matcher would
    /// (select/cmp inversion under fast-math).
    pub fn inverse(self) -> CmpPred {
        use CmpPred::*;
        match self {
            Eq => Ne,
            Ne => Eq,
            Slt => Sge,
            Sle => Sgt,
            Sgt => Sle,
            Sge => Slt,
            Ult => Uge,
            Ule => Ugt,
            Ugt => Ule,
            Uge => Ult,
            Feq => Fne,
            Fne => Feq,
            Flt => Fge,
            Fle => Fgt,
            Fgt => Fle,
            Fge => Flt,
        }
    }

    /// True for the float predicates.
    pub fn is_float(self) -> bool {
        use CmpPred::*;
        matches!(self, Feq | Fne | Flt | Fle | Fgt | Fge)
    }

    /// Mnemonic used by the printer.
    pub fn name(self) -> &'static str {
        use CmpPred::*;
        match self {
            Eq => "eq",
            Ne => "ne",
            Slt => "slt",
            Sle => "sle",
            Sgt => "sgt",
            Sge => "sge",
            Ult => "ult",
            Ule => "ule",
            Ugt => "ugt",
            Uge => "uge",
            Feq => "feq",
            Fne => "fne",
            Flt => "flt",
            Fle => "fle",
            Fgt => "fgt",
            Fge => "fge",
        }
    }
}

/// A memory location: a parameter buffer plus a constant element offset.
///
/// All addressing in the kernels the paper evaluates is affine with
/// constant offsets after unrolling, and contiguity checks (for load/store
/// packs) reduce to consecutive offsets on the same base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemLoc {
    /// Index of the pointer parameter.
    pub base: usize,
    /// Element offset into the buffer.
    pub offset: i64,
}

impl fmt::Display for MemLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "arg{}[{}]", self.base, self.offset)
    }
}

/// The operation an instruction performs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant and field names are the documentation
pub enum InstKind {
    /// A typed constant.
    Const(Constant),
    /// Binary operation.
    Bin { op: BinOp, lhs: ValueId, rhs: ValueId },
    /// Floating-point negation.
    FNeg { arg: ValueId },
    /// Conversion.
    Cast { op: CastOp, arg: ValueId },
    /// Comparison producing `i1`.
    Cmp { pred: CmpPred, lhs: ValueId, rhs: ValueId },
    /// `cond ? on_true : on_false`.
    Select { cond: ValueId, on_true: ValueId, on_false: ValueId },
    /// Load from a buffer.
    Load { loc: MemLoc },
    /// Store to a buffer.
    Store { loc: MemLoc, value: ValueId },
}

/// An instruction: an [`InstKind`] plus its result type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Inst {
    /// What the instruction does.
    pub kind: InstKind,
    /// Result type (`Void` for stores).
    pub ty: Type,
}

impl Inst {
    /// The value operands, in order.
    pub fn operands(&self) -> Vec<ValueId> {
        match &self.kind {
            InstKind::Const(_) | InstKind::Load { .. } => vec![],
            InstKind::Bin { lhs, rhs, .. } | InstKind::Cmp { lhs, rhs, .. } => {
                vec![*lhs, *rhs]
            }
            InstKind::FNeg { arg } | InstKind::Cast { arg, .. } => vec![*arg],
            InstKind::Select { cond, on_true, on_false } => {
                vec![*cond, *on_true, *on_false]
            }
            InstKind::Store { value, .. } => vec![*value],
        }
    }

    /// Rewrite each operand through `f` in place.
    pub fn map_operands(&mut self, mut f: impl FnMut(ValueId) -> ValueId) {
        match &mut self.kind {
            InstKind::Const(_) | InstKind::Load { .. } => {}
            InstKind::Bin { lhs, rhs, .. } | InstKind::Cmp { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            InstKind::FNeg { arg } | InstKind::Cast { arg, .. } => *arg = f(*arg),
            InstKind::Select { cond, on_true, on_false } => {
                *cond = f(*cond);
                *on_true = f(*on_true);
                *on_false = f(*on_false);
            }
            InstKind::Store { value, .. } => *value = f(*value),
        }
    }

    /// True for instructions with no side effects (everything but stores).
    pub fn is_pure(&self) -> bool {
        !matches!(self.kind, InstKind::Store { .. })
    }

    /// True if the instruction reads or writes memory.
    pub fn touches_memory(&self) -> bool {
        matches!(self.kind, InstKind::Load { .. } | InstKind::Store { .. })
    }

    /// The memory location accessed, if any.
    pub fn mem_loc(&self) -> Option<MemLoc> {
        match self.kind {
            InstKind::Load { loc } | InstKind::Store { loc, .. } => Some(loc),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commutativity() {
        assert!(BinOp::Add.is_commutative());
        assert!(BinOp::FMul.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
        assert!(!BinOp::Shl.is_commutative());
        assert!(!BinOp::FDiv.is_commutative());
    }

    #[test]
    fn predicate_swap_is_involution() {
        use CmpPred::*;
        for p in [Eq, Ne, Slt, Sle, Sgt, Sge, Ult, Ule, Ugt, Uge, Feq, Fne, Flt, Fle, Fgt, Fge] {
            assert_eq!(p.swapped().swapped(), p);
            assert_eq!(p.inverse().inverse(), p);
        }
    }

    #[test]
    fn predicate_swap_examples() {
        assert_eq!(CmpPred::Slt.swapped(), CmpPred::Sgt);
        assert_eq!(CmpPred::Fge.swapped(), CmpPred::Fle);
        assert_eq!(CmpPred::Slt.inverse(), CmpPred::Sge);
    }

    #[test]
    fn operand_lists() {
        let v0 = ValueId::from_raw(0);
        let v1 = ValueId::from_raw(1);
        let v2 = ValueId::from_raw(2);
        let sel =
            Inst { kind: InstKind::Select { cond: v0, on_true: v1, on_false: v2 }, ty: Type::I32 };
        assert_eq!(sel.operands(), vec![v0, v1, v2]);
        let ld = Inst { kind: InstKind::Load { loc: MemLoc { base: 0, offset: 3 } }, ty: Type::I8 };
        assert!(ld.operands().is_empty());
        assert!(ld.touches_memory());
        assert!(ld.is_pure());
        let st = Inst {
            kind: InstKind::Store { loc: MemLoc { base: 1, offset: 0 }, value: v1 },
            ty: Type::Void,
        };
        assert!(!st.is_pure());
        assert_eq!(st.mem_loc(), Some(MemLoc { base: 1, offset: 0 }));
    }

    #[test]
    fn map_operands_rewrites_all() {
        let v0 = ValueId::from_raw(0);
        let v9 = ValueId::from_raw(9);
        let mut i =
            Inst { kind: InstKind::Bin { op: BinOp::Add, lhs: v0, rhs: v0 }, ty: Type::I32 };
        i.map_operands(|_| v9);
        assert_eq!(i.operands(), vec![v9, v9]);
    }
}
