//! A tiny deterministic PRNG for test harnesses.
//!
//! The workspace's property tests used to lean on the `proptest` crate;
//! this repository must build fully offline, so the generators are driven
//! by this xorshift64* stream instead (the same generator
//! [`interp::random_memory`](crate::interp::random_memory) uses for
//! memory images). Determinism is a feature: every failure reproduces
//! from the case's seed alone.

/// xorshift64* pseudo-random stream.
#[derive(Debug, Clone)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Seeded stream; any seed (including 0) is fine.
    pub fn new(seed: u64) -> XorShift {
        XorShift { state: seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        self.state.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Uniform-ish value in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform-ish value in `[lo, hi)`. `hi` must exceed `lo`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }

    /// A coin flip.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = (0..8)
            .map({
                let mut r = XorShift::new(7);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut r = XorShift::new(7);
                move |_| r.next_u64()
            })
            .collect();
        let c: Vec<u64> = (0..8)
            .map({
                let mut r = XorShift::new(8);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = XorShift::new(3);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            let v = r.range_i64(-5, 9);
            assert!((-5..9).contains(&v));
        }
    }
}
