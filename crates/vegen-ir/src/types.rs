//! Scalar types.

use std::fmt;

/// A scalar IR type.
///
/// Mirrors the LLVM scalar types the paper's patterns range over: the fixed
/// integer widths used by x86 vector lanes plus the two IEEE float widths.
/// `I1` is the result type of comparisons, `Void` the "type" of stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// 1-bit boolean (comparison results).
    I1,
    /// 8-bit integer.
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// IEEE-754 single precision.
    F32,
    /// IEEE-754 double precision.
    F64,
    /// No value (stores).
    Void,
}

impl Type {
    /// Bit width of the type. `Void` has width 0.
    ///
    /// ```
    /// use vegen_ir::Type;
    /// assert_eq!(Type::I16.bits(), 16);
    /// assert_eq!(Type::F64.bits(), 64);
    /// ```
    pub fn bits(self) -> u32 {
        match self {
            Type::I1 => 1,
            Type::I8 => 8,
            Type::I16 => 16,
            Type::I32 => 32,
            Type::I64 => 64,
            Type::F32 => 32,
            Type::F64 => 64,
            Type::Void => 0,
        }
    }

    /// True for the integer types (including `I1`).
    pub fn is_int(self) -> bool {
        matches!(self, Type::I1 | Type::I8 | Type::I16 | Type::I32 | Type::I64)
    }

    /// True for `F32` / `F64`.
    pub fn is_float(self) -> bool {
        matches!(self, Type::F32 | Type::F64)
    }

    /// The integer type of exactly `bits` width, if one exists.
    ///
    /// ```
    /// use vegen_ir::Type;
    /// assert_eq!(Type::int_with_bits(32), Some(Type::I32));
    /// assert_eq!(Type::int_with_bits(24), None);
    /// ```
    pub fn int_with_bits(bits: u32) -> Option<Type> {
        match bits {
            1 => Some(Type::I1),
            8 => Some(Type::I8),
            16 => Some(Type::I16),
            32 => Some(Type::I32),
            64 => Some(Type::I64),
            _ => None,
        }
    }

    /// The float type of exactly `bits` width, if one exists.
    pub fn float_with_bits(bits: u32) -> Option<Type> {
        match bits {
            32 => Some(Type::F32),
            64 => Some(Type::F64),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Type::I1 => "i1",
            Type::I8 => "i8",
            Type::I16 => "i16",
            Type::I32 => "i32",
            Type::I64 => "i64",
            Type::F32 => "f32",
            Type::F64 => "f64",
            Type::Void => "void",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(Type::I1.bits(), 1);
        assert_eq!(Type::I8.bits(), 8);
        assert_eq!(Type::I16.bits(), 16);
        assert_eq!(Type::I32.bits(), 32);
        assert_eq!(Type::I64.bits(), 64);
        assert_eq!(Type::F32.bits(), 32);
        assert_eq!(Type::F64.bits(), 64);
        assert_eq!(Type::Void.bits(), 0);
    }

    #[test]
    fn classification() {
        assert!(Type::I8.is_int());
        assert!(Type::I1.is_int());
        assert!(!Type::F32.is_int());
        assert!(Type::F32.is_float());
        assert!(!Type::Void.is_float());
        assert!(!Type::Void.is_int());
    }

    #[test]
    fn lookup_by_width() {
        for t in [Type::I8, Type::I16, Type::I32, Type::I64] {
            assert_eq!(Type::int_with_bits(t.bits()), Some(t));
        }
        for t in [Type::F32, Type::F64] {
            assert_eq!(Type::float_with_bits(t.bits()), Some(t));
        }
        assert_eq!(Type::int_with_bits(128), None);
        assert_eq!(Type::float_with_bits(16), None);
    }

    #[test]
    fn display() {
        assert_eq!(Type::I32.to_string(), "i32");
        assert_eq!(Type::F64.to_string(), "f64");
        assert_eq!(Type::Void.to_string(), "void");
    }
}
