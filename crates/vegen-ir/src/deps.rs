//! Dependence analysis over straight-line code.
//!
//! The vectorizer needs two queries: "does instruction `b` (transitively)
//! depend on instruction `a`?" (pack legality, §4.4) and "which values are
//! independent?" (packs require independent live-outs). Dependences are
//! use-def edges plus memory-order edges.
//!
//! # Aliasing model (`restrict` assumption)
//!
//! Every buffer parameter is treated as `restrict`-qualified, as in the
//! paper's kernel setting: **distinct parameters never alias**, so a store
//! to `A` imposes no ordering on loads or stores of `B` no matter what
//! offsets either uses. Within one parameter, all offsets are compile-time
//! constants (this IR has no computed addressing), so two accesses alias
//! **iff their constant element offsets are equal** — `A[0]` and `A[1]`
//! are disjoint cells, never a may-alias pair. The memory-order edges this
//! produces are exactly:
//!
//! * store→load (flow): a load sees the last prior store to the same cell;
//! * load→store (anti): a store is ordered after every prior load of the
//!   cell it overwrites;
//! * store→store (output): stores to the same cell stay in program order.
//!
//! Callers that ever introduce non-`restrict` inputs or runtime-computed
//! offsets must conservatively merge those parameters' cells before using
//! this graph; nothing here degrades to a may-alias answer on its own.

use crate::function::{Function, ValueId};
use crate::inst::InstKind;

/// Precomputed transitive dependence relation for a function.
///
/// `O(n^2 / 64)` bitset closure — functions here are kernels of at most a
/// few hundred instructions, so this is cheap and makes the hot
/// `depends(a, b)` query O(1).
#[derive(Debug, Clone)]
pub struct DepGraph {
    n: usize,
    words: usize,
    /// `closed[i]` = bitset of values that `i` transitively depends on.
    closed: Vec<u64>,
    /// Direct dependence edges (use-def plus memory order), per value.
    direct: Vec<Vec<ValueId>>,
}

impl DepGraph {
    /// Build the transitive dependence closure of `f`.
    pub fn build(f: &Function) -> DepGraph {
        let n = f.insts.len();
        let words = n.div_ceil(64).max(1);
        let mut closed = vec![0u64; n * words];
        let mut direct_edges: Vec<Vec<ValueId>> = Vec::with_capacity(n);

        // Memory state while scanning forward: last store per (base, offset)
        // and all prior loads per (base, offset) awaiting a store edge.
        use std::collections::HashMap;
        let mut last_store: HashMap<(usize, i64), ValueId> = HashMap::new();
        let mut loads_since_store: HashMap<(usize, i64), Vec<ValueId>> = HashMap::new();

        for (v, inst) in f.iter() {
            let vi = v.index();
            let mut direct: Vec<ValueId> = inst.operands();
            match inst.kind {
                InstKind::Load { loc } => {
                    let key = (loc.base, loc.offset);
                    if let Some(&s) = last_store.get(&key) {
                        direct.push(s);
                    }
                    loads_since_store.entry(key).or_default().push(v);
                }
                InstKind::Store { loc, .. } => {
                    let key = (loc.base, loc.offset);
                    if let Some(&s) = last_store.get(&key) {
                        direct.push(s); // store-store order
                    }
                    for l in loads_since_store.remove(&key).unwrap_or_default() {
                        direct.push(l); // anti-dependence: load before store
                    }
                    last_store.insert(key, v);
                }
                _ => {}
            }
            // closed[v] = union of closed[d] | {d} over direct deps d.
            for &d in &direct {
                let di = d.index();
                let (head, tail) = closed.split_at_mut(vi * words);
                let src = &head[di * words..di * words + words];
                let dst = &mut tail[..words];
                for w in 0..words {
                    dst[w] |= src[w];
                }
                dst[di / 64] |= 1u64 << (di % 64);
            }
            direct_edges.push(direct);
        }
        DepGraph { n, words, closed, direct: direct_edges }
    }

    /// The direct dependence edges of `v` (operands plus memory-order
    /// predecessors). Used by legality checks that contract packs into
    /// single nodes.
    pub fn direct_deps(&self, v: ValueId) -> &[ValueId] {
        &self.direct[v.index()]
    }

    /// True if `user` transitively depends on `dep`.
    pub fn depends(&self, user: ValueId, dep: ValueId) -> bool {
        let ui = user.index();
        let di = dep.index();
        debug_assert!(ui < self.n && di < self.n);
        self.closed[ui * self.words + di / 64] >> (di % 64) & 1 != 0
    }

    /// True if neither value depends on the other (and they are distinct).
    pub fn independent(&self, a: ValueId, b: ValueId) -> bool {
        a != b && !self.depends(a, b) && !self.depends(b, a)
    }

    /// True if all values in the slice are pairwise independent.
    pub fn all_independent(&self, vs: &[ValueId]) -> bool {
        for (i, &a) in vs.iter().enumerate() {
            for &b in &vs[i + 1..] {
                if !self.independent(a, b) {
                    return false;
                }
            }
        }
        true
    }

    /// Number of instructions covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the function had no instructions.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Type;

    #[test]
    fn use_def_chains() {
        let mut b = FunctionBuilder::new("t");
        let p = b.param("A", Type::I32, 4);
        let x = b.load(p, 0);
        let y = b.load(p, 1);
        let s = b.add(x, y);
        let t = b.add(s, s);
        let f = b.finish();
        let g = DepGraph::build(&f);
        assert!(g.depends(s, x));
        assert!(g.depends(t, x)); // transitive
        assert!(!g.depends(x, s));
        assert!(g.independent(x, y));
        assert!(!g.independent(t, s));
    }

    #[test]
    fn store_load_forwarding_edge() {
        let mut b = FunctionBuilder::new("t");
        let p = b.param("A", Type::I32, 4);
        let x = b.load(p, 0);
        let st = b.store(p, 1, x);
        let y = b.load(p, 1); // must see the store
        let z = b.load(p, 2); // unrelated offset
        let f = b.finish();
        let g = DepGraph::build(&f);
        assert!(g.depends(y, st));
        assert!(!g.depends(z, st));
    }

    #[test]
    fn anti_dependence_load_then_store() {
        let mut b = FunctionBuilder::new("t");
        let p = b.param("A", Type::I32, 4);
        let x = b.load(p, 0);
        let one = b.iconst(Type::I32, 1);
        let y = b.add(x, one);
        let st = b.store(p, 0, y); // overwrites what x read
        let f = b.finish();
        let g = DepGraph::build(&f);
        assert!(g.depends(st, x), "store must be ordered after the earlier load");
    }

    #[test]
    fn store_store_order() {
        let mut b = FunctionBuilder::new("t");
        let p = b.param("A", Type::I32, 2);
        let c = b.iconst(Type::I32, 1);
        let s1 = b.store(p, 0, c);
        let s2 = b.store(p, 0, c);
        let s3 = b.store(p, 1, c);
        let f = b.finish();
        let g = DepGraph::build(&f);
        assert!(g.depends(s2, s1));
        assert!(!g.depends(s3, s1));
    }

    #[test]
    fn distinct_params_never_alias() {
        let mut b = FunctionBuilder::new("t");
        let p = b.param("A", Type::I32, 2);
        let q = b.param("B", Type::I32, 2);
        let c = b.iconst(Type::I32, 7);
        let st = b.store(p, 0, c);
        let x = b.load(q, 0);
        let f = b.finish();
        let g = DepGraph::build(&f);
        assert!(!g.depends(x, st));
    }

    #[test]
    fn store_then_load_mixed_offsets() {
        // store A[0]; store A[2]; loads at 0, 1, 2 — each load must depend
        // exactly on the store to its own offset.
        let mut b = FunctionBuilder::new("t");
        let p = b.param("A", Type::I32, 4);
        let c = b.iconst(Type::I32, 9);
        let s0 = b.store(p, 0, c);
        let s2 = b.store(p, 2, c);
        let l0 = b.load(p, 0);
        let l1 = b.load(p, 1);
        let l2 = b.load(p, 2);
        let f = b.finish();
        let g = DepGraph::build(&f);
        assert!(g.depends(l0, s0) && !g.depends(l0, s2));
        assert!(!g.depends(l1, s0) && !g.depends(l1, s2));
        assert!(g.depends(l2, s2) && !g.depends(l2, s0));
    }

    #[test]
    fn load_then_store_mixed_offsets() {
        // Loads at 0 and 1, then stores at 1 and 3: only the store that
        // overwrites a previously read cell gets the anti edge.
        let mut b = FunctionBuilder::new("t");
        let p = b.param("A", Type::I32, 4);
        let l0 = b.load(p, 0);
        let l1 = b.load(p, 1);
        let s1 = b.store(p, 1, l0);
        let s3 = b.store(p, 3, l1);
        let f = b.finish();
        let g = DepGraph::build(&f);
        assert!(g.depends(s1, l1), "anti edge: store A[1] after load A[1]");
        assert!(!g.depends(s3, l0), "store A[3] overwrites nothing that was read");
        // s3 depends on l1 only through use-def (it stores l1), which is
        // not an aliasing artifact.
        assert!(g.depends(s3, l1));
    }

    #[test]
    fn store_store_mixed_offsets() {
        // Interleaved stores at alternating offsets: output edges connect
        // same-offset stores only, transitively in program order.
        let mut b = FunctionBuilder::new("t");
        let p = b.param("A", Type::I32, 4);
        let c = b.iconst(Type::I32, 1);
        let a0 = b.store(p, 0, c);
        let a1 = b.store(p, 1, c);
        let b0 = b.store(p, 0, c);
        let b1 = b.store(p, 1, c);
        let f = b.finish();
        let g = DepGraph::build(&f);
        assert!(g.depends(b0, a0) && g.depends(b1, a1));
        assert!(!g.depends(b0, a1) && !g.depends(b1, b0));
        assert!(g.independent(a0, a1) && g.independent(b0, b1));
    }

    #[test]
    fn all_independent_checks_pairs() {
        let mut b = FunctionBuilder::new("t");
        let p = b.param("A", Type::I32, 4);
        let x = b.load(p, 0);
        let y = b.load(p, 1);
        let z = b.add(x, y);
        let f = b.finish();
        let g = DepGraph::build(&f);
        assert!(g.all_independent(&[x, y]));
        assert!(!g.all_independent(&[x, y, z]));
    }
}
