#![warn(missing_docs)]

//! Scalar SSA intermediate representation for the VeGen reproduction.
//!
//! This crate stands in for the subset of LLVM IR that VeGen's vectorizer
//! consumes: straight-line, single-basic-block SSA over fixed-width integer
//! and floating-point scalars, with loads and stores addressed by
//! `(buffer, constant element offset)` pairs. The paper's pass only
//! vectorizes within a basic block (§5.2: "VEGEN does not vectorize across
//! basic blocks"), so a single-block function is the natural unit here.
//!
//! The crate provides:
//!
//! * the IR itself ([`Function`], [`Inst`], [`InstKind`], [`Type`],
//!   [`Constant`]),
//! * a builder ([`FunctionBuilder`]) used by the kernel library and by the
//!   pattern generator,
//! * a structural [verifier](verify::verify) enforcing SSA and type rules,
//! * a reference [interpreter](interp) that gives the IR an executable
//!   semantics (used to validate every vectorization end to end),
//! * [dependence analysis](deps) (use-def plus memory order), and
//! * an `instcombine`-style [canonicalizer](canon) shared between input
//!   programs and generated patterns, mirroring §6 of the paper.
//!
//! # Example
//!
//! ```
//! use vegen_ir::{FunctionBuilder, Type};
//!
//! // C[0] = A[0] * B[0] + A[1] * B[1]  (one lane of a dot product)
//! let mut b = FunctionBuilder::new("dot1");
//! let a = b.param("A", Type::I16, 2);
//! let bb = b.param("B", Type::I16, 2);
//! let c = b.param("C", Type::I32, 1);
//! let a0 = b.load(a, 0);
//! let b0 = b.load(bb, 0);
//! let a1 = b.load(a, 1);
//! let b1 = b.load(bb, 1);
//! let a0w = b.sext(a0, Type::I32);
//! let b0w = b.sext(b0, Type::I32);
//! let a1w = b.sext(a1, Type::I32);
//! let b1w = b.sext(b1, Type::I32);
//! let m0 = b.mul(a0w, b0w);
//! let m1 = b.mul(a1w, b1w);
//! let s = b.add(m0, m1);
//! b.store(c, 0, s);
//! let f = b.finish();
//! assert!(vegen_ir::verify::verify(&f).is_ok());
//! ```

pub mod builder;
pub mod canon;
pub mod constant;
pub mod deps;
pub mod function;
pub mod inst;
pub mod interp;
pub mod printer;
pub mod reduce;
pub mod rng;
pub mod types;
pub mod verify;

pub use builder::FunctionBuilder;
pub use constant::Constant;
pub use function::{Function, Param, ValueId};
pub use inst::{BinOp, CastOp, CmpPred, Inst, InstKind, MemLoc};
pub use types::Type;
